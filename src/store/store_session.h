// Server-side secure-channel endpoint of the ResultStore.
//
// Each connected application gets one session: the store's end of the
// attested secure channel. A frame arrives from the host, one ECALL enters
// the store enclave, the frame is unwrapped, dispatched against the trusted
// dictionary, and the response is wrapped — mirroring the paper's "the duty
// of the ECALL is to marshal data at the enclave boundary and access the
// dictionary inside the trusted enclave".
//
// Two establishment modes:
//   * attested handshake (preferred): construct from the client's
//     HandshakeMessage; the session verifies the report, derives the X25519
//     session key, and exposes server_hello() for the client;
//   * pre-provisioned key: construct from the client measurement using the
//     platform-derived key (see net/secure_channel.h).
#pragma once

#include <memory>

#include "common/annotated_lock.h"
#include "net/channel.h"
#include "net/handshake.h"
#include "net/secure_channel.h"
#include "sgx/switchless.h"
#include "store/result_store.h"

namespace speed::store {

class StoreSession {
 public:
  /// Pre-provisioned-key mode.
  StoreSession(ResultStore& store, const sgx::Measurement& client_measurement)
      : store_(store),
        channel_(net::derive_channel_key(store.enclave(), client_measurement),
                 /*is_initiator=*/false) {}

  /// Attested-handshake mode: verifies `client_hello` inside the store
  /// enclave and derives the session key. Throws ProtocolError if the hello
  /// does not authenticate.
  StoreSession(ResultStore& store, const net::HandshakeMessage& client_hello)
      : store_(store),
        key_exchange_(std::in_place, store.enclave()),
        channel_(store.enclave().ecall([&] {
          auto key = key_exchange_->derive(client_hello);
          if (!key.has_value()) {
            throw ProtocolError("StoreSession: client hello failed attestation");
          }
          return net::SecureChannel(std::move(*key), /*is_initiator=*/false);
        })) {
    client_hello_ = client_hello;
    peer_version_ = net::negotiate_version(net::kProtocolVersionCurrent,
                                           net::handshake_version(client_hello));
  }

  /// The store's half of the handshake (attested-handshake mode only).
  net::HandshakeMessage server_hello() const {
    if (!key_exchange_.has_value()) {
      throw ProtocolError("StoreSession: no handshake in pre-provisioned mode");
    }
    return key_exchange_->hello(client_hello_.report.source_measurement);
  }

  /// Protocol version negotiated with this client (min of both hellos);
  /// kProtocolVersionLegacy in pre-provisioned mode.
  std::uint8_t peer_version() const { return peer_version_; }

  /// Route this session's trusted work through a shared switchless ring
  /// instead of a private ECALL per frame (sgx/switchless.h). The ring must
  /// belong to the same store enclave and outlive the session.
  void set_switchless(sgx::SwitchlessRing* ring) { switchless_ = ring; }

  /// Cap on ops per batch frame; an oversized batch gets a clean wire
  /// ErrorResponse instead of service. 0 = unlimited.
  void set_max_batch_entries(std::size_t n) { max_batch_entries_ = n; }

  /// Wrap a top-level error produced outside normal dispatch — e.g. the host
  /// refused a frame by its length prefix (over max_frame_bytes) without ever
  /// buffering it. Advances the send sequence like any response; the caller
  /// is expected to close the connection once it is flushed.
  // lockdiscipline-allow: LD004 send sequence must advance atomically
  Bytes wrap_error(serialize::ErrorCode code, const std::string& detail) {
    MutexLock lock(mu_);
    const serialize::Message err = serialize::ErrorResponse{code, detail};
    const Bytes plain = serialize::encode_message(err);
    if (switchless_ != nullptr) {
      return switchless_->call([this, &plain] {
        mu_.assert_held();  // caller blocks in call() with mu_ held
        return channel_.wrap(plain);
      });
    }
    return store_.enclave().ecall([&] {
      mu_.assert_held();
      return channel_.wrap(plain);
    });
  }

  /// Handle one secure frame; throws ProtocolError on channel violations
  /// (tampering/replay), which a real server would treat as a dead peer.
  // mu_ is held across the ECALL / switchless submission: the session is a
  // strand — channel sequence numbers require frames to be served in order.
  // lockdiscipline-allow: LD004 session strand orders channel sequence numbers
  Bytes handle_frame(ByteView frame) {
    MutexLock lock(mu_);
    if (switchless_ != nullptr) {
      // The caller blocks inside call(), so `frame` stays alive for the
      // poller; the transition cost is charged once per ring drain.
      return switchless_->call([this, frame] { return handle_frame_trusted(frame); });
    }
    return store_.enclave().ecall([&] { return handle_frame_trusted(frame); });
  }

  /// Transport a client can hand to its DedupRuntime; optional one-way
  /// latency models a socket hop.
  std::unique_ptr<net::Transport> transport(std::uint64_t one_way_ns = 0) {
    return std::make_unique<net::LoopbackTransport>(
        [this](ByteView frame) { return handle_frame(frame); }, one_way_ns);
  }

 private:
  /// Body of one frame; must already run in the store enclave's context
  /// (under handle_frame's own ECALL or a switchless ring drain). The
  /// caller blocks inside handle_frame with mu_ held, so channel_ access
  /// here is covered even when a ring poller thread runs the closure —
  /// asserted (not REQUIRES) because the analysis cannot see through the
  /// ECALL/ring submission lambda.
  Bytes handle_frame_trusted(ByteView frame) {
    mu_.assert_held();
    const auto request_plain = channel_.unwrap(frame);
    if (!request_plain.has_value()) {
      throw ProtocolError("StoreSession: bad frame (tamper/replay)");
    }
    const auto request = serialize::decode_message(*request_plain);
    // An oversized batch is a protocol-clean refusal, not a dead session:
    // the client gets a typed error it can split the batch on.
    if (const auto* batch = std::get_if<serialize::BatchRequest>(&request);
        batch != nullptr && max_batch_entries_ > 0 &&
        batch->ops.size() > max_batch_entries_) {
      const serialize::Message err = serialize::ErrorResponse{
          serialize::ErrorCode::kBatchTooLarge,
          "batch exceeds server max_batch_entries"};
      return channel_.wrap(serialize::encode_message(err));
    }
    // Application role: GET/PUT/heartbeat/batch only. Infra-plane messages
    // (sync, push/pull, membership) are rejected inside dispatch.
    const auto response = store_.dispatch_trusted(request, Peer::kApp);
    return channel_.wrap(serialize::encode_message(response));
  }

  ResultStore& store_;
  std::optional<net::ChannelKeyExchange> key_exchange_;
  net::HandshakeMessage client_hello_;
  net::SecureChannel channel_ GUARDED_BY(mu_);
  std::uint8_t peer_version_ = net::kProtocolVersionLegacy;
  sgx::SwitchlessRing* switchless_ = nullptr;
  std::size_t max_batch_entries_ = 0;
  // 560: held across the dispatch into the store (shard 600+) and across
  // switchless submission (580) — both nest above it.
  mutable Mutex mu_{LockRank::kSession};
};

/// In-process connection bundle: performs the attested handshake between an
/// application enclave and a store, yielding the client's session key and a
/// transport bound to the server session.
struct AppConnection {
  std::unique_ptr<StoreSession> session;
  secret::Buffer session_key;
  std::unique_ptr<net::Transport> transport;
};

inline AppConnection connect_app(ResultStore& store, sgx::Enclave& app,
                                 std::uint64_t one_way_ns = 0) {
  AppConnection conn;
  const net::ChannelKeyExchange kx(app);
  const auto client_hello = kx.hello(store.enclave().measurement());
  conn.session = std::make_unique<StoreSession>(store, client_hello);
  const auto server_hello = conn.session->server_hello();
  // The client pins the store's measurement: it will not talk to an
  // impostor store enclave.
  auto key = kx.derive(server_hello, store.enclave().measurement());
  if (!key.has_value()) {
    throw ProtocolError("connect_app: server hello failed attestation");
  }
  conn.session_key = std::move(*key);
  conn.transport = conn.session->transport(one_way_ns);
  return conn;
}

}  // namespace speed::store
