#include "store/blob_backend.h"

namespace speed::store {

BlobRef MemoryBackend::put_blob(ByteView blob) {
  BlobRef ref;
  ref.segment = 0;
  ref.offset = next_id_.fetch_add(1, std::memory_order_relaxed);
  ref.length = blob.size();
  Stripe& s = stripe_for(ref);
  {
    MutexLock lock(s.mu);
    s.blobs.emplace(ref.offset, Bytes(blob.begin(), blob.end()));
  }
  live_bytes_.fetch_add(blob.size(), std::memory_order_relaxed);
  return ref;
}

std::optional<Bytes> MemoryBackend::get_blob(const BlobRef& ref) const {
  Stripe& s = stripe_for(ref);
  MutexLock lock(s.mu);
  const auto it = s.blobs.find(ref.offset);
  if (it == s.blobs.end()) return std::nullopt;
  return it->second;
}

void MemoryBackend::delete_blob(const BlobRef& ref) {
  Stripe& s = stripe_for(ref);
  MutexLock lock(s.mu);
  const auto it = s.blobs.find(ref.offset);
  if (it == s.blobs.end()) return;
  live_bytes_.fetch_sub(it->second.size(), std::memory_order_relaxed);
  // RAM is reclaimed immediately; nothing accrues for compaction.
  s.blobs.erase(it);
}

bool MemoryBackend::note_blob(const BlobRef& ref) {
  Stripe& s = stripe_for(ref);
  MutexLock lock(s.mu);
  const auto it = s.blobs.find(ref.offset);
  return it != s.blobs.end() && it->second.size() == ref.length;
}

bool MemoryBackend::corrupt_blob(const BlobRef& ref) {
  Stripe& s = stripe_for(ref);
  MutexLock lock(s.mu);
  const auto it = s.blobs.find(ref.offset);
  if (it == s.blobs.end() || it->second.empty()) return false;
  it->second[it->second.size() / 2] ^= 0x01;
  return true;
}

void MemoryBackend::wal_append(ByteView record) {
  if (!record_wal_) return;
  MutexLock lock(wal_mu_);
  wal_.emplace_back(record.begin(), record.end());
  ++wal_appends_;
  wal_bytes_ += record.size();
}

void MemoryBackend::wal_sync() {
  if (!record_wal_) return;
  MutexLock lock(wal_mu_);
  ++wal_syncs_;  // RAM is "stable" for this backend; only the count matters.
}

void MemoryBackend::wal_replay(
    const std::function<bool(ByteView, std::uint64_t)>& fn) {
  std::vector<Bytes> records;
  {
    MutexLock lock(wal_mu_);
    records = wal_;
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!fn(ByteView(records[i].data(), records[i].size()), i)) return;
  }
}

void MemoryBackend::wal_truncate(std::uint64_t offset) {
  MutexLock lock(wal_mu_);
  if (offset < wal_.size()) {
    wal_.resize(static_cast<std::size_t>(offset));
  }
}

BackendStats MemoryBackend::stats() const {
  BackendStats s;
  s.live_blob_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.dead_blob_bytes = dead_bytes_.load(std::memory_order_relaxed);
  MutexLock lock(wal_mu_);
  s.wal_appends = wal_appends_;
  s.wal_fsyncs = wal_syncs_;
  s.wal_bytes = wal_bytes_;
  return s;
}

}  // namespace speed::store
