#include "store/access_control.h"

namespace speed::store {

serialize::Message GatedResultStore::dispatch_trusted(
    const serialize::Message& request, std::uint64_t now_ns) {
  // Extract the requester identity (GET/PUT carry it; SYNC is infra-only
  // and passes through — deployments gate it at the connection layer).
  const serialize::AppId* requester = nullptr;
  if (const auto* get = std::get_if<serialize::GetRequest>(&request)) {
    requester = &get->requester;
  } else if (const auto* put = std::get_if<serialize::PutRequest>(&request)) {
    requester = &put->requester;
  }

  if (requester != nullptr) {
    if (!policy_.permits(*requester)) {
      MutexLock lock(mu_);
      ++stats_.denied;
      if (std::holds_alternative<serialize::GetRequest>(request)) {
        return serialize::GetResponse{};  // miss
      }
      return serialize::PutResponse{serialize::PutStatus::kQuotaExceeded};
    }
    if (limiter_ != nullptr && !limiter_->admit(*requester, now_ns)) {
      MutexLock lock(mu_);
      ++stats_.throttled;
      if (std::holds_alternative<serialize::GetRequest>(request)) {
        return serialize::GetResponse{};
      }
      return serialize::PutResponse{serialize::PutStatus::kQuotaExceeded};
    }
  }
  return store_.dispatch_trusted(request);
}

}  // namespace speed::store
