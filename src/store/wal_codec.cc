#include "store/wal_codec.h"

#include <algorithm>

#include "serialize/codec.h"

namespace speed::store {

// Plaintext record layout (little-endian, canonical codec):
//
//   u8  version (= kWalFormatVersion)
//   u8  op      (1 = insert, 2 = erase)
//   raw tag[32]
//   -- insert only --
//   raw owner[32]
//   var challenge
//   var wrapped_key
//   raw blob_digest[32]
//   u64 blob_bytes
//   u32 ref.segment
//   u64 ref.offset
//   u64 ref.length
//   u64 hits
//
// Erase records stop after the tag. Golden vectors for both shapes live in
// tests/wal_codec_test.cc; touch this layout and they will tell you.

Bytes encode_wal_record(const WalRecord& rec) {
  serialize::Encoder enc;
  enc.u8(kWalFormatVersion);
  enc.u8(static_cast<std::uint8_t>(rec.op));
  enc.raw(ByteView(rec.tag.data(), rec.tag.size()));
  if (rec.op == WalRecord::Op::kInsert) {
    enc.raw(ByteView(rec.owner.data(), rec.owner.size()));
    enc.var_bytes(rec.challenge);
    enc.var_bytes(rec.wrapped_key);
    enc.raw(ByteView(rec.blob_digest.data(), rec.blob_digest.size()));
    enc.u64(rec.blob_bytes);
    enc.u32(rec.ref.segment);
    enc.u64(rec.ref.offset);
    enc.u64(rec.ref.length);
    enc.u64(rec.hits);
  }
  return enc.take();
}

WalRecord decode_wal_record(ByteView data) {
  serialize::Decoder dec(data);
  const std::uint8_t version = dec.u8();
  if (version != kWalFormatVersion) {
    throw SerializationError(
        "wal record: unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kWalFormatVersion) +
        ")");
  }
  WalRecord rec;
  const std::uint8_t op = dec.u8();
  if (op != static_cast<std::uint8_t>(WalRecord::Op::kInsert) &&
      op != static_cast<std::uint8_t>(WalRecord::Op::kErase)) {
    throw SerializationError("wal record: unknown op " + std::to_string(op));
  }
  rec.op = static_cast<WalRecord::Op>(op);
  const ByteView tag = dec.raw(rec.tag.size());
  std::copy(tag.begin(), tag.end(), rec.tag.begin());
  if (rec.op == WalRecord::Op::kInsert) {
    const ByteView owner = dec.raw(rec.owner.size());
    std::copy(owner.begin(), owner.end(), rec.owner.begin());
    rec.challenge = dec.var_bytes();
    rec.wrapped_key = dec.var_bytes();
    const ByteView digest = dec.raw(rec.blob_digest.size());
    std::copy(digest.begin(), digest.end(), rec.blob_digest.begin());
    rec.blob_bytes = dec.u64();
    rec.ref.segment = dec.u32();
    rec.ref.offset = dec.u64();
    rec.ref.length = dec.u64();
    rec.hits = dec.u64();
  }
  dec.expect_done();
  return rec;
}

Bytes chain_aad(std::uint64_t seq, const WalChainTag& prev) {
  serialize::Encoder enc;
  enc.str(kWalDomain);
  enc.u8(kWalFormatVersion);
  enc.u64(seq);
  enc.raw(ByteView(prev.data(), prev.size()));
  return enc.take();
}

WalChainTag chain_tag_of(ByteView sealed) {
  WalChainTag tag{};
  const std::size_t n = tag.size();
  std::copy(sealed.end() - static_cast<std::ptrdiff_t>(n), sealed.end(),
            tag.begin());
  return tag;
}

}  // namespace speed::store
