// File-backed BlobBackend: append-only blob segments + a framed, fsync-
// batched metadata WAL.
//
// Directory layout:
//
//   <dir>/wal.log            framed sealed records: 8-byte header
//                            ("SPWAL", format version), then per record a
//                            u32 length prefix + the sealed bytes
//   <dir>/seg-XXXXXXXX.blob  8-byte header ("SPSEG", version), then raw
//                            concatenated [res] envelopes; BlobRefs index
//                            (segment id, byte offset, length)
//
// Segments roll over at segment_bytes and are immutable once sealed; a
// sealed segment whose blobs are all dead is unlink()ed (compaction — the
// only reclamation, so BlobRefs never move and the WAL never needs
// rewriting for it). The WAL is the authority on which blobs are live:
// after a crash, segment liveness is rebuilt from the store's replay via
// note_blob()/delete_blob().
//
// Torn-write semantics: a record is on disk only up to its last completed
// write, and on stable storage only up to the last fsync (batched every
// fsync_every appends; wal_sync() forces one, ordering segment data before
// the log so a synced record never references unsynced blob bytes). Replay
// truncates framing-level torn tails itself; cryptographic verification of
// record integrity and ordering is the store enclave's job (wal_codec.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/annotated_lock.h"
#include "store/blob_backend.h"
#include "store/result_store.h"

namespace speed::store {

struct FileBackendConfig {
  /// Roll the active segment once it would exceed this many payload bytes
  /// (a single larger blob still gets its own segment).
  std::uint64_t segment_bytes = 64ull * 1024 * 1024;
  /// Group-commit factor: fsync the WAL (and the segments it references)
  /// every N appends. 1 = sync before every PUT acknowledgment (strongest
  /// durability, the default); larger values trade a bounded window of
  /// acknowledged-but-unsynced PUTs for throughput — wal_sync() closes the
  /// window at any batching level.
  std::size_t fsync_every = 1;
  /// Unlink a sealed segment as soon as its last live blob dies. Off only
  /// for tests that want to inspect dead segments before compact().
  bool auto_compact = true;
};

class FileBackend : public BlobBackend {
 public:
  /// Opens (creating if needed) the backend directory. Throws Error on an
  /// unreadable directory or an incompatible on-disk format version.
  explicit FileBackend(std::string dir,
                       FileBackendConfig config = FileBackendConfig{});
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  BlobRef put_blob(ByteView blob) override;
  std::optional<Bytes> get_blob(const BlobRef& ref) const override;
  void delete_blob(const BlobRef& ref) override;
  bool note_blob(const BlobRef& ref) override;
  std::size_t compact() override;
  bool corrupt_blob(const BlobRef& ref) override;

  bool durable() const override { return true; }
  void wal_append(ByteView record) override;
  void wal_sync() override;
  void wal_replay(const std::function<bool(ByteView, std::uint64_t)>& fn)
      override;
  void wal_truncate(std::uint64_t offset) override;

  BackendStats stats() const override;

  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    ~Segment();
    int fd = -1;
    std::uint64_t size = 0;  ///< bytes written, header included
    std::uint64_t live_blobs = 0;
    std::uint64_t live_bytes = 0;
    std::uint64_t dead_bytes = 0;
    bool dirty = false;  ///< written since last fsync
  };

  std::string segment_path(std::uint32_t id) const;
  std::shared_ptr<Segment> segment_for_locked(std::uint32_t id) const
      REQUIRES(mu_);
  /// Opens a fresh active segment (header written) under mu_.
  void roll_segment_locked() REQUIRES(mu_);
  /// fsyncs dirty segments then the WAL; resets the batch counter.
  void sync_locked() REQUIRES(mu_);
  /// Unlinks `id` if sealed and fully dead; true when reclaimed.
  bool try_compact_locked(std::uint32_t id) REQUIRES(mu_);

  const std::string dir_;
  const FileBackendConfig config_;

  // 760: a leaf on the I/O side — backend calls acquire nothing further.
  // Held across pwrite/fsync by design (the on-disk segment/WAL state must
  // mutate atomically with the in-memory accounting).
  mutable Mutex mu_{LockRank::kBackend};
  std::map<std::uint32_t, std::shared_ptr<Segment>> segments_ GUARDED_BY(mu_);
  std::uint32_t active_segment_ GUARDED_BY(mu_) = 0;  ///< 0 = none yet
  std::uint32_t next_segment_id_ GUARDED_BY(mu_) = 1;

  int wal_fd_ GUARDED_BY(mu_) = -1;
  std::uint64_t wal_size_ GUARDED_BY(mu_) = 0;  ///< valid bytes (append pos)
  std::size_t appends_since_sync_ GUARDED_BY(mu_) = 0;

  // Accounting (guarded by mu_; stats() snapshots under the lock).
  BackendStats stats_ GUARDED_BY(mu_);
};

/// One-call file-backed store: equivalent to setting
/// `config.backend = std::make_shared<FileBackend>(dir, file_config)` —
/// the constructor replays whatever WAL the directory already holds.
std::unique_ptr<ResultStore> open_result_store(
    sgx::Platform& platform, const std::string& dir,
    StoreConfig config = StoreConfig{},
    FileBackendConfig file_config = FileBackendConfig{});

}  // namespace speed::store
