// Cluster replication driver: anti-entropy between ResultStore nodes
// (docs/PROTOCOL.md §8).
//
// Extends the single master/replica pull of store/master_sync.h into the
// three mechanisms a replicated cluster needs:
//
//   * membership: a monotonically-versioned view broadcast to every node
//     (MembershipUpdate); nodes apply it idempotently, so the driver can
//     re-broadcast after any churn;
//   * hot-entry push: ask one node for its most-hit entries (the popularity
//     counters the store already keeps) and push each to the rendezvous
//     owners the ring assigns it — the steady-state convergence path that
//     keeps popular results at full replication after churn;
//   * resumable bulk pull: a rejoining node pages a live peer's whole
//     dictionary through PullRequest's lexicographic cursor, keeping only
//     the tags the ring assigns it. Interrupting and restarting a pull
//     re-transfers nothing that already merged.
//
// The driver speaks the same host-side framed protocol as master_sync
// (entries are self-protecting AEAD ciphertexts; see that header's trust
// argument), so a PeerStore::call can be an in-process ResultStore::handle
// or a TCP conduit. All failures surface as net::StoreUnavailableError —
// replication is an optimization and must degrade quietly.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/channel.h"
#include "serialize/rendezvous.h"
#include "serialize/wire.h"
#include "sgx/enclave.h"
#include "telemetry/registry.h"

namespace speed::store {

/// Host-side conduit to one node's infra plane.
struct PeerStore {
  std::string name;
  /// Framed request -> framed response (e.g. ResultStore::handle).
  std::function<Bytes(ByteView)> call;
};

struct ReplicationConfig {
  /// Hottest entries requested per push round.
  std::uint32_t hot_entries = 64;
  /// Page size of resumable bulk pulls.
  std::uint32_t pull_page = 128;
  /// Copies per tag (primary + replicas), matching the client's
  /// ClusterConfig::replicas + 1.
  std::size_t copies = 2;
};

/// Mutual local attestation between a (re)joining store enclave and a live
/// peer's enclave: each side produces a report targeted at the other and
/// verifies the peer's. False means the joiner must not be admitted.
inline bool attest_peers(sgx::Enclave& joiner, sgx::Enclave& peer) {
  const auto joiner_report =
      joiner.create_report(peer.measurement(), as_bytes("cluster-join"));
  const auto peer_report =
      peer.create_report(joiner.measurement(), as_bytes("cluster-join"));
  return peer.verify_report(joiner_report) &&
         joiner.verify_report(peer_report);
}

class ClusterReplicator {
 public:
  ClusterReplicator(std::vector<PeerStore> peers,
                    ReplicationConfig config = ReplicationConfig{});

  ClusterReplicator(const ClusterReplicator&) = delete;
  ClusterReplicator& operator=(const ClusterReplicator&) = delete;

  /// Broadcast the current view (statuses from `up`) at the next epoch.
  /// Unreachable nodes are skipped; returns how many applied the update.
  std::size_t broadcast_membership(const std::vector<bool>& up);

  /// One hot-entry push round originating at `from`: fetch its hottest
  /// entries, route each to the ring owners among the other nodes, push.
  /// Returns entries newly accepted across all receivers.
  std::size_t push_hot_entries(std::size_t from);

  /// One page of a resumable bulk pull: `to` merges a page of `from`'s
  /// entries, keeping only tags the ring assigns `to`. Returns the cursor
  /// for the next page (nullopt when the scan is complete) via `cursor`.
  struct PullPage {
    std::optional<serialize::Tag> cursor;  ///< resume point; nullopt = done
    std::size_t merged = 0;
  };
  PullPage pull_page(std::size_t to, std::size_t from,
                     std::optional<serialize::Tag> cursor);

  /// Full bulk pull `from` -> `to` (loops pull_page to completion).
  std::size_t pull_all(std::size_t to, std::size_t from);

  /// Rejoin protocol for `node`: refresh membership (every node up except
  /// those in `still_down`), then bulk-pull the node's ring share from every
  /// other live peer. Returns entries merged.
  std::size_t rejoin(std::size_t node,
                     const std::vector<std::size_t>& still_down = {});

  std::uint64_t epoch() const { return epoch_; }
  std::size_t node_count() const { return peers_.size(); }
  const ReplicationConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t membership_rounds = 0;
    std::uint64_t pushed_entries = 0;
    std::uint64_t pulled_entries = 0;
    std::uint64_t sync_failures = 0;
    /// Entries the last push round could not place (receiver down/full) —
    /// the cluster's replication lag signal.
    std::uint64_t sync_lag = 0;
  };
  Stats stats() const;

 private:
  /// One framed infra round trip; failures throw StoreUnavailableError.
  serialize::Message call(std::size_t node, const serialize::Message& request);
  /// Owners (node indices) the ring assigns `tag`, first `copies` of the
  /// preference order.
  std::vector<std::size_t> owners_of(const serialize::Tag& tag) const;

  std::vector<PeerStore> peers_;
  ReplicationConfig config_;
  std::vector<serialize::MemberInfo> members_;
  std::uint64_t epoch_ = 0;

  telemetry::Counter membership_rounds_;
  telemetry::Counter pushed_entries_;
  telemetry::Counter pulled_entries_;
  telemetry::Counter sync_failures_;
  telemetry::Gauge sync_lag_;
  telemetry::Registry::Handle telemetry_handle_;
};

}  // namespace speed::store
