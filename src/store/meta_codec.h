// Compact codec for spilled ResultStore metadata records.
//
// PR 10 replaces the pointer-heavy per-entry `std::unordered_map` node with a
// two-tier layout: a fixed 32-byte open-addressed slot stays resident in EPC
// (store/meta_index.h) while the full record — tag, owner, challenge r,
// wrapped key [k], result-blob digest and locator — is sealed and spilled to
// the blob backend, to be faulted back in on demand. This codec defines that
// spilled record's plaintext layout.
//
// Two layers, same trust split as the WAL (store/wal_codec.h):
//
//   * the *plaintext record* (this codec): a versioned canonical encoding of
//     one dictionary entry. Unlike the WAL codec the variable fields carry
//     u16 length prefixes capped at kMaxMetaVarBytes, so a tampered length
//     can never make the enclave allocate more than a few KiB while decoding
//     (alloc-bomb guard, asserted in tests/meta_codec_test.cc). Golden byte
//     vectors pin the layout;
//   * the *sealed record* the backend stores: the plaintext sealed with the
//     store enclave's sealing key (AES-GCM) under the kMetaDomain AAD. The
//     host can shuffle or destroy sealed spill blobs but never read or forge
//     one; a swapped blob decodes to the wrong tag and the index's full-tag
//     confirm check rejects it.
//
// The resident slot packs the spill blob's BlobRef into a single u64
// locator (pack_loc/unpack_loc): 19 bits of segment, 44 bits of offset —
// enough for 2^19 segments of 16 TiB each, with bit 63 reserved for the
// index's kPinnedLocBit. Refs outside that range (never produced by the
// in-tree backends) fail pack_loc and the entry is pinned resident instead
// of spilled.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "serialize/wire.h"
#include "store/blob_backend.h"

namespace speed::store {

/// Format version of the plaintext record (first byte). Bump on any layout
/// change; decode_meta_record rejects unknown versions loudly.
inline constexpr std::uint8_t kMetaFormatVersion = 1;

/// Domain label bound into every sealed spill record's AAD (with version).
inline constexpr std::string_view kMetaDomain = "speed-store-meta";

/// Upper bound on each variable-length field (challenge, wrapped key). The
/// store rejects PUTs above it; the decoder enforces it *before* allocating,
/// so a bit-flipped length prefix cannot trigger a giant allocation inside
/// the enclave.
inline constexpr std::size_t kMaxMetaVarBytes = 4096;

/// The full metadata for one stored entry — everything the resident 32-byte
/// slot does not carry.
struct MetaRecord {
  serialize::Tag tag{};
  serialize::AppId owner{};
  Bytes challenge;                     ///< r
  Bytes wrapped_key;                   ///< [k]
  crypto::Sha256Digest blob_digest{};  ///< integrity pin of [res]
  std::uint64_t blob_bytes = 0;
  BlobRef blob;  ///< where the backend stored [res]

  friend bool operator==(const MetaRecord&, const MetaRecord&) = default;
};

/// Canonical plaintext encoding (versioned; layout notes in the .cc).
/// Throws ProtocolError when a variable field exceeds kMaxMetaVarBytes —
/// callers validate request sizes before building a record.
Bytes encode_meta_record(const MetaRecord& rec);

/// Throws SerializationError on truncation, trailing bytes, an unsupported
/// version, or a length prefix above kMaxMetaVarBytes (checked before any
/// allocation).
MetaRecord decode_meta_record(ByteView data);

/// AAD for sealing spill records (domain + format version).
Bytes meta_seal_aad();

/// Packs a spill-blob BlobRef into the resident slot's u64 locator:
/// segment in bits [44,63), offset in bits [0,44); bit 63 stays clear
/// (reserved for kPinnedLocBit). Returns nullopt when the ref does not fit
/// (entry must stay pinned resident instead).
std::optional<std::uint64_t> pack_loc(const BlobRef& ref);

/// Inverse of pack_loc; `length` restores the BlobRef's byte length (kept
/// separately in the slot as spill_len).
BlobRef unpack_loc(std::uint64_t loc, std::uint64_t length);

}  // namespace speed::store
