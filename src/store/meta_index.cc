#include "store/meta_index.h"

#include <algorithm>
#include <utility>

namespace speed::store {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 8;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

MetaIndex::MetaIndex(std::size_t initial_capacity)
    : table_(round_up_pow2(std::max<std::size_t>(initial_capacity, 8))) {}

std::uint64_t MetaIndex::fingerprint(const serialize::Tag& tag) {
  std::uint64_t fp = 0;
  for (int i = 7; i >= 0; --i) {
    fp = (fp << 8) | tag[static_cast<std::size_t>(i)];
  }
  return fp == 0 ? 1 : fp;
}

std::uint64_t MetaIndex::mix(std::uint64_t x) {
  // splitmix64 finalizer: tag bytes are uniform already, but the index must
  // stay well-behaved for the adversarial fingerprints the differential
  // harness feeds it.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::size_t MetaIndex::probe_distance(const std::vector<MetaSlot>& t,
                                      std::size_t idx) {
  const std::size_t mask = t.size() - 1;
  return (idx - home(t[idx].fp, t.size())) & mask;
}

MetaSlot* MetaIndex::find_loc(std::uint64_t fp, std::uint64_t loc) {
  return find(fp, [loc](const MetaSlot& s) { return s.loc == loc; });
}

void MetaIndex::insert_into(std::vector<MetaSlot>& t, MetaSlot slot) {
  const std::size_t mask = t.size() - 1;
  std::size_t idx = home(slot.fp, t.size());
  std::size_t dist = 0;
  while (true) {
    MetaSlot& s = t[idx];
    if (s.fp == 0) {
      s = slot;
      return;
    }
    // Robin-hood displacement: the richer entry (shorter probe) yields its
    // slot, bounding probe-length variance.
    const std::size_t cur = probe_distance(t, idx);
    if (cur < dist) {
      std::swap(slot, s);
      dist = cur;
    }
    idx = (idx + 1) & mask;
    ++dist;
  }
}

bool MetaIndex::erase_from(std::vector<MetaSlot>& t, std::uint64_t fp,
                           std::uint64_t loc) {
  if (t.empty()) return false;
  const std::size_t mask = t.size() - 1;
  std::size_t idx = home(fp, t.size());
  for (std::size_t dist = 0; dist < t.size(); ++dist) {
    MetaSlot& s = t[idx];
    if (s.fp == 0) return false;
    if (probe_distance(t, idx) < dist) return false;
    if (s.fp == fp && s.loc == loc) {
      // Backward-shift deletion keeps probe sequences tombstone-free.
      std::size_t hole = idx;
      while (true) {
        const std::size_t next = (hole + 1) & mask;
        if (t[next].fp == 0 || probe_distance(t, next) == 0) break;
        t[hole] = t[next];
        hole = next;
      }
      t[hole].fp = 0;
      return true;
    }
    idx = (idx + 1) & mask;
  }
  return false;
}

void MetaIndex::insert(const MetaSlot& slot) {
  step_migration(kMigrateBatch);
  maybe_grow();
  insert_into(table_, slot);
  ++size_;
}

bool MetaIndex::erase_loc(std::uint64_t fp, std::uint64_t loc) {
  step_migration(kMigrateBatch);
  if (erase_from(table_, fp, loc) || erase_from(old_, fp, loc)) {
    --size_;
    return true;
  }
  return false;
}

void MetaIndex::step_migration(std::size_t n) {
  while (n > 0 && !old_.empty()) {
    // Skip slots already drained (cheap; amortized once per migration).
    while (old_cursor_ < old_.size() && old_[old_cursor_].fp == 0) {
      ++old_cursor_;
    }
    if (old_cursor_ >= old_.size()) break;
    // Extract via backward-shift deletion, NOT by zeroing in place: zeroing
    // would punch a hole mid-probe-chain and make entries that probe through
    // this slot unreachable until they migrate. erase_from repairs the chain,
    // so lookups and erases against the draining table stay correct at every
    // intermediate state (the shift may refill this very slot — the cursor
    // deliberately does not advance, it re-extracts until the slot stays
    // empty, meaning no remaining chain needs it).
    const MetaSlot copy = old_[old_cursor_];
    erase_from(old_, copy.fp, copy.loc);
    insert_into(table_, copy);
    --n;
  }
  if (!old_.empty() && old_cursor_ >= old_.size()) {
    std::vector<MetaSlot>().swap(old_);  // release the drained table
    old_cursor_ = 0;
  }
}

void MetaIndex::drain_all() {
  while (!old_.empty()) step_migration(old_.size() + 1);
}

void MetaIndex::maybe_grow() {
  if ((size_ + 1) * kMaxLoadDen <= table_.size() * kMaxLoadNum) return;
  // Finish any in-flight migration before moving the current table aside.
  drain_all();
  std::size_t cap = table_.size();
  while ((size_ + 1) * kMaxLoadDen > cap * kMaxLoadNum) cap <<= 1;
  old_ = std::move(table_);
  old_cursor_ = 0;
  table_.assign(cap, MetaSlot{});
}

std::size_t MetaIndex::max_probe_length() const {
  std::size_t worst = 0;
  for (const std::vector<MetaSlot>* t : {&table_, &old_}) {
    for (std::size_t i = 0; i < t->size(); ++i) {
      if ((*t)[i].fp != 0) worst = std::max(worst, probe_distance(*t, i));
    }
  }
  return worst;
}

std::string MetaIndex::check_invariants() const {
  std::size_t live = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;
  for (const std::vector<MetaSlot>* t : {&table_, &old_}) {
    for (std::size_t i = 0; i < t->size(); ++i) {
      const MetaSlot& s = (*t)[i];
      if (s.fp == 0) continue;
      ++live;
      keys.emplace_back(s.fp, s.loc);
      // Reachability: walking from the entry's home bucket must arrive at
      // slot i without crossing an empty slot or a robin-hood early exit.
      const std::size_t mask = t->size() - 1;
      std::size_t idx = home(s.fp, t->size());
      for (std::size_t dist = 0;; ++dist) {
        if (dist >= t->size()) return "entry unreachable (probe exhausted)";
        if (idx == i) break;
        if ((*t)[idx].fp == 0) return "entry unreachable (empty slot)";
        if (probe_distance(*t, idx) < dist) {
          return "entry unreachable (robin-hood order violated)";
        }
        idx = (idx + 1) & mask;
      }
    }
  }
  if (live != size_) return "size() disagrees with live slot count";
  std::sort(keys.begin(), keys.end());
  if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
    return "duplicate (fp, loc) identity";
  }
  if (size_ >= table_.size() + (old_.empty() ? 0 : old_.size())) {
    return "table saturated (insert would not terminate)";
  }
  if (old_.empty() &&
      size_ * kMaxLoadDen > table_.size() * kMaxLoadNum + kMaxLoadDen) {
    return "load factor above bound outside migration";
  }
  return {};
}

}  // namespace speed::store
