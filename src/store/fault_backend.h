// Crash/fault injection for BlobBackends (tests and the torture harness),
// mirroring net/fault.h for transports.
//
// The wrapper meters every byte the store writes (blob payloads and WAL
// records, in order) against a budget. The write that would exceed the
// budget is *torn*: only the bytes that fit are forwarded to the inner
// backend, then BackendWriteError is thrown — exactly what a crash mid-
// pwrite leaves on disk. Subsequent writes fail outright. Reads are never
// affected, so a degraded store keeps serving GETs.
//
// Recording mode (budget = kNoLimit) lets a harness capture the clean run's
// write boundaries first, then replay the same workload with a crash
// planted at every interesting byte position (see tests/recovery_test.cc).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/annotated_lock.h"
#include "store/blob_backend.h"

namespace speed::store {

class FaultInjectingBackend : public BlobBackend {
 public:
  static constexpr std::uint64_t kNoLimit =
      std::numeric_limits<std::uint64_t>::max();

  explicit FaultInjectingBackend(std::shared_ptr<BlobBackend> inner)
      : inner_(std::move(inner)) {}

  /// Total bytes of writes (blobs + WAL records) allowed before the crash.
  void fail_after_bytes(std::uint64_t budget) {
    MutexLock lock(mu_);
    budget_ = budget;
  }

  /// Size of every write attempted so far, in order (recorded even when a
  /// write was allowed through) — the crash-point schedule for a torture run.
  std::vector<std::uint64_t> write_sizes() const {
    MutexLock lock(mu_);
    return write_sizes_;
  }

  std::uint64_t bytes_written() const {
    MutexLock lock(mu_);
    return written_;
  }

  BlobRef put_blob(ByteView blob) override {
    const std::uint64_t allowed = admit(blob.size());
    if (allowed < blob.size()) {
      if (allowed > 0) inner_->put_blob(blob.first(allowed));  // torn tail
      throw BackendWriteError("injected crash during blob write");
    }
    return inner_->put_blob(blob);
  }

  std::optional<Bytes> get_blob(const BlobRef& ref) const override {
    return inner_->get_blob(ref);
  }
  void delete_blob(const BlobRef& ref) override { inner_->delete_blob(ref); }
  bool note_blob(const BlobRef& ref) override {
    return inner_->note_blob(ref);
  }
  std::size_t compact() override { return inner_->compact(); }
  bool corrupt_blob(const BlobRef& ref) override {
    return inner_->corrupt_blob(ref);
  }

  bool durable() const override { return inner_->durable(); }

  void wal_append(ByteView record) override {
    const std::uint64_t allowed = admit(record.size());
    if (allowed < record.size()) {
      // Forward a truncated record: the backend frames it as a complete
      // frame of garbage-suffixed bytes, which is what a torn pwrite inside
      // a framed record decays to — the enclave's MAC chain rejects it.
      if (allowed > 0) inner_->wal_append(record.first(allowed));
      throw BackendWriteError("injected crash during wal append");
    }
    inner_->wal_append(record);
  }

  void wal_sync() override { inner_->wal_sync(); }
  void wal_replay(const std::function<bool(ByteView, std::uint64_t)>& fn)
      override {
    inner_->wal_replay(fn);
  }
  void wal_truncate(std::uint64_t offset) override {
    inner_->wal_truncate(offset);
  }

  BackendStats stats() const override { return inner_->stats(); }

  BlobBackend& inner() { return *inner_; }

 private:
  /// Records the write and returns how many of `size` bytes may proceed.
  std::uint64_t admit(std::uint64_t size) {
    MutexLock lock(mu_);
    write_sizes_.push_back(size);
    const std::uint64_t remaining =
        budget_ == kNoLimit ? size
                            : (budget_ > written_ ? budget_ - written_ : 0);
    const std::uint64_t allowed = std::min(size, remaining);
    written_ += allowed;
    return allowed;
  }

  std::shared_ptr<BlobBackend> inner_;
  // 750: released before forwarding to the inner backend (760).
  mutable Mutex mu_{LockRank::kBackendInject};
  std::uint64_t budget_ GUARDED_BY(mu_) = kNoLimit;
  std::uint64_t written_ GUARDED_BY(mu_) = 0;
  std::vector<std::uint64_t> write_sizes_ GUARDED_BY(mu_);
};

}  // namespace speed::store
