// EPC-scale resident metadata index: a robin-hood open-addressed table of
// fixed 32-byte slots with incremental (two-table) resize.
//
// This replaces the per-shard `std::unordered_map<Tag, MetaEntry>` +
// `std::list` LRU inside ResultStore. A node-based map costs hundreds of
// bytes of EPC per entry (node header, bucket pointer, list node, three
// heap-allocated byte vectors); at tens of millions of tags that blows the
// ~90 MB EPC cap and SPEED's cost model starts charging page-swap penalties
// on every touch. Here an entry's *resident* footprint is exactly one
// MetaSlot:
//
//   fp          8B  tag fingerprint (tag bytes [0,8), little-endian, never 0)
//   loc         8B  packed spill-blob locator (meta_codec.h pack_loc), or a
//                   kPinnedLocBit-tagged handle for entries pinned resident
//   clock       4B  per-shard recency stamp (exact LRU order; LFU tiebreak)
//   blob_bytes  4B  result-ciphertext size (quota/eviction accounting)
//   owner_ref   4B  index into the shard's interned owner table
//   spill_len   2B  sealed spill record length (restores the BlobRef)
//   hits        2B  saturating popularity counter (LFU + anti-entropy)
//
// Everything else (tag, owner id, challenge, wrapped key, digest, result
// BlobRef) lives in the sealed spill record and is faulted in on demand.
// Fingerprints collide (8 bytes of a 32-byte tag), so every lookup confirms
// candidates against the full record via a caller-supplied callback; `loc`
// is unique per entry and serves as the identity for erase.
//
// Resize is incremental: growth moves the current table aside and migrates a
// bounded batch of slots per subsequent mutation, so no single PUT ever pays
// an O(n) rehash inside the enclave's cost model. Lookups probe both tables
// mid-migration. Capacity only grows (a store that has seen N entries keeps
// index room for N; documented in docs/PROTOCOL.md §11).
//
// Thread-compatible, not thread-safe: every instance is guarded by its
// shard's mutex (ResultStore). Invariants are checked by the differential
// model-checking harness in tests/meta_index_test.cc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serialize/wire.h"

namespace speed::store {

/// Set in MetaSlot::loc for entries whose full record is pinned in trusted
/// memory (spill write failed, e.g. disk full at recovery) instead of
/// spilled. Packed spill locators never set this bit (pack_loc caps the
/// segment at 19 bits, keeping bit 63 clear).
inline constexpr std::uint64_t kPinnedLocBit = std::uint64_t{1} << 63;

struct MetaSlot {
  std::uint64_t fp = 0;  ///< 0 = empty slot (fingerprints are never 0)
  std::uint64_t loc = 0;
  std::uint32_t clock = 0;
  std::uint32_t blob_bytes = 0;
  std::uint32_t owner_ref = 0;
  std::uint16_t spill_len = 0;
  std::uint16_t hits = 0;
};
static_assert(sizeof(MetaSlot) == 32,
              "MetaSlot is the unit of resident EPC cost; keep it 32 bytes");

class MetaIndex {
 public:
  static constexpr std::size_t kInitialCapacity = 64;  ///< slots (2 KiB)
  /// Slots migrated from the draining table per mutation during a resize.
  static constexpr std::size_t kMigrateBatch = 32;
  /// Grow when size exceeds capacity * 7/8.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  explicit MetaIndex(std::size_t initial_capacity = kInitialCapacity);

  /// Tag bytes [0,8) as a little-endian u64, forced nonzero (0 marks an
  /// empty slot). Same byte range TagHash used, disjoint from the shard
  /// selector ([8,16)) and rendezvous ([16,24)) ranges.
  static std::uint64_t fingerprint(const serialize::Tag& tag);

  /// Probes for `fp`; calls `confirm(slot)` on every fingerprint match and
  /// returns the first slot it accepts (nullptr when none). The pointer is
  /// invalidated by any mutation (insert/erase/step_migration).
  template <typename Confirm>
  MetaSlot* find(std::uint64_t fp, Confirm&& confirm) {
    if (MetaSlot* s = probe(table_, fp, confirm)) return s;
    if (!old_.empty()) {
      if (MetaSlot* s = probe(old_, fp, confirm)) return s;
    }
    return nullptr;
  }

  /// Exact-identity lookup by (fp, loc) — loc is unique per entry.
  MetaSlot* find_loc(std::uint64_t fp, std::uint64_t loc);

  /// Inserts a slot (caller guarantees the entry is not already present).
  /// Advances migration and may grow; invalidates outstanding pointers.
  void insert(const MetaSlot& slot);

  /// Erases the entry identified by (fp, loc) via backward-shift deletion.
  /// Returns false when absent. Advances migration.
  bool erase_loc(std::uint64_t fp, std::uint64_t loc);

  /// Visits every live slot (both tables mid-migration). `fn(MetaSlot&)`
  /// may mutate bookkeeping fields (clock/hits) but not fp/loc.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (MetaSlot& s : table_) {
      if (s.fp != 0) fn(s);
    }
    for (MetaSlot& s : old_) {
      if (s.fp != 0) fn(s);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const MetaSlot& s : table_) {
      if (s.fp != 0) fn(s);
    }
    for (const MetaSlot& s : old_) {
      if (s.fp != 0) fn(s);
    }
  }

  std::size_t size() const { return size_; }
  /// Total slot capacity (both tables while a migration is draining).
  std::size_t capacity() const { return table_.size() + old_.size(); }
  /// Resident bytes this index charges against the EPC.
  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(capacity()) * sizeof(MetaSlot);
  }
  bool migrating() const { return !old_.empty(); }
  double load_factor() const {
    return capacity() == 0
               ? 0.0
               : static_cast<double>(size_) / static_cast<double>(capacity());
  }

  /// Migrates up to `n` slots from the draining table (tests use this to
  /// park the index at adversarial mid-resize states).
  void step_migration(std::size_t n);

  /// Longest probe sequence any current entry needs (scan; test-only).
  std::size_t max_probe_length() const;

  /// Structural self-check: every entry reachable, no duplicate identities,
  /// size consistent, load factor within bounds. Returns an empty string
  /// when healthy, else a description of the first violation.
  std::string check_invariants() const;

 private:
  static std::uint64_t mix(std::uint64_t x);
  static std::size_t home(std::uint64_t fp, std::size_t capacity) {
    return static_cast<std::size_t>(mix(fp)) & (capacity - 1);
  }
  static std::size_t probe_distance(const std::vector<MetaSlot>& t,
                                    std::size_t idx);

  template <typename Confirm>
  static MetaSlot* probe(std::vector<MetaSlot>& t, std::uint64_t fp,
                         Confirm&& confirm) {
    if (t.empty()) return nullptr;
    const std::size_t mask = t.size() - 1;
    std::size_t idx = home(fp, t.size());
    for (std::size_t dist = 0; dist < t.size(); ++dist) {
      MetaSlot& s = t[idx];
      if (s.fp == 0) return nullptr;
      // Robin-hood early exit: a resident entry poorer than our probe age
      // would have been displaced if fp were stored here.
      if (probe_distance(t, idx) < dist) return nullptr;
      if (s.fp == fp && confirm(s)) return &s;
      idx = (idx + 1) & mask;
    }
    return nullptr;
  }

  static void insert_into(std::vector<MetaSlot>& t, MetaSlot slot);
  static bool erase_from(std::vector<MetaSlot>& t, std::uint64_t fp,
                         std::uint64_t loc);

  void maybe_grow();
  void drain_all();

  std::vector<MetaSlot> table_;
  std::vector<MetaSlot> old_;  ///< draining source table (empty = no resize)
  std::size_t old_cursor_ = 0;
  std::size_t size_ = 0;
};

}  // namespace speed::store
