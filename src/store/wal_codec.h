// On-disk codec for ResultStore metadata WAL records.
//
// Two layers, split along the trust boundary:
//
//   * the *plaintext record* (this codec): a versioned, canonical encoding
//     of one dictionary mutation — insert of tag -> (r, [k], digest,
//     BlobRef, owner, hits) or erase of a tag. Golden byte vectors for this
//     format are checked in under tests/wal_codec_test.cc, so any format
//     change fails loudly instead of silently corrupting old logs;
//   * the *sealed record* the backend persists: the plaintext encrypted
//     with the store enclave's sealing key (AES-GCM), with AAD binding the
//     record's sequence number and the previous record's GCM tag. The tags
//     therefore form a MAC chain: dropping, reordering, splicing, or
//     tampering with any record breaks authentication at that point and
//     recovery truncates there. Only same-measurement store enclaves on the
//     same platform can read or extend the log.
//
// The chain AAD (chain_aad) is part of the on-disk contract: changing it
// orphans every existing log, which is exactly the loud failure we want.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/gcm.h"
#include "crypto/sha256.h"
#include "serialize/wire.h"
#include "store/blob_backend.h"

namespace speed::store {

/// Format version of the plaintext record encoding (first byte of every
/// record). Bump on any layout change; decode_wal_record rejects unknown
/// versions with a distinct error message.
inline constexpr std::uint8_t kWalFormatVersion = 1;

/// Domain label sealed into every record's AAD (with the version).
inline constexpr std::string_view kWalDomain = "speed-store-wal";

/// The previous-record link: the 16-byte GCM tag of the preceding sealed
/// record (zero for the first record).
using WalChainTag = std::array<std::uint8_t, crypto::kGcmTagSize>;

struct WalRecord {
  enum class Op : std::uint8_t { kInsert = 1, kErase = 2 };

  Op op = Op::kInsert;
  serialize::Tag tag{};

  // Insert-only fields (ignored/empty for erase).
  serialize::AppId owner{};
  Bytes challenge;                     ///< r
  Bytes wrapped_key;                   ///< [k]
  crypto::Sha256Digest blob_digest{};  ///< integrity pin of [res]
  std::uint64_t blob_bytes = 0;
  BlobRef ref;          ///< where the backend stored [res]
  std::uint64_t hits = 0;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Canonical plaintext encoding (versioned; see format notes in the .cc).
Bytes encode_wal_record(const WalRecord& rec);

/// Throws SerializationError on truncation, trailing bytes, unknown op, or
/// an unsupported format version (distinct "unsupported version" message).
WalRecord decode_wal_record(ByteView data);

/// AAD binding a sealed record into the chain at position `seq` after the
/// record whose GCM tag was `prev`.
Bytes chain_aad(std::uint64_t seq, const WalChainTag& prev);

/// The chain link a sealed record contributes: its trailing GCM tag.
/// Precondition: `sealed` is a gcm_encrypt envelope (>= iv + tag bytes).
WalChainTag chain_tag_of(ByteView sealed);

}  // namespace speed::store
