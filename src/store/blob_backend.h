// Pluggable persistence for the ResultStore's untrusted half.
//
// The store's trust split (§IV-B) puts only the small metadata dictionary
// inside the enclave; the result ciphertexts and the durability log live in
// untrusted storage. A BlobBackend is that untrusted storage:
//
//   * a *blob arena* holding the [res] AEAD envelopes, addressed by opaque
//     BlobRefs. Blobs are ciphertext end to end, so the backend needs no
//     protection of its own — the trusted dictionary pins each blob with a
//     digest and the store degrades a mismatch to a miss;
//   * a *metadata WAL* of records the store enclave has already sealed and
//     MAC-chained (store/wal_codec.h). The backend never sees plaintext
//     metadata; it only frames, persists, replays, and truncates opaque
//     records. Torn tails are its problem, authenticity is the enclave's.
//
// Implementations: MemoryBackend (the original in-RAM arena, optionally
// recording the WAL so recovery logic can be exercised without a disk) and
// FileBackend (file_backend.h: append-only blob segments + an fsync-batched
// log). FaultInjectingBackend (fault_backend.h) wraps either to kill writes
// at arbitrary byte positions for the crash-recovery torture tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/annotated_lock.h"
#include "common/bytes.h"
#include "common/error.h"

namespace speed::store {

/// A write the backend could not complete (disk full, torn by a simulated
/// crash). The store reacts by rejecting the PUT and entering degraded mode:
/// once a WAL append has failed, the on-disk tail may be garbage, so no
/// further record may be appended until a reopen re-establishes the chain.
class BackendWriteError : public Error {
 public:
  explicit BackendWriteError(const std::string& what) : Error(what) {}
};

/// Location of one blob inside a backend. Opaque to the trusted dictionary
/// (stored per entry, logged in WAL insert records); meaningful only to the
/// backend that issued it.
struct BlobRef {
  std::uint32_t segment = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  friend bool operator==(const BlobRef&, const BlobRef&) = default;
};

/// Cumulative backend-side accounting, exported by the store's telemetry
/// collector (speed_store_wal_* / speed_store_segments_* families).
struct BackendStats {
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_fsyncs = 0;
  std::uint64_t wal_bytes = 0;        ///< framed bytes appended to the log
  std::uint64_t segments_created = 0;
  std::uint64_t segments_compacted = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t live_blob_bytes = 0;
  std::uint64_t dead_blob_bytes = 0;  ///< deleted but not yet compacted away
};

class BlobBackend {
 public:
  virtual ~BlobBackend() = default;

  // ------------------------------------------------------------ blob arena

  /// Append a blob; throws BackendWriteError if it cannot be stored.
  virtual BlobRef put_blob(ByteView blob) = 0;

  /// Read a blob back; nullopt when the ref is dangling (deleted, compacted
  /// away, or pointing into a torn segment tail). The caller verifies the
  /// contents against the trusted digest — the backend only fetches bytes.
  virtual std::optional<Bytes> get_blob(const BlobRef& ref) const = 0;

  /// Mark a blob dead (eviction, corruption-triggered erase). Space is
  /// reclaimed by segment compaction, not immediately.
  virtual void delete_blob(const BlobRef& ref) = 0;

  /// Recovery hook: re-register a live blob after a WAL replay so segment
  /// liveness accounting survives a reopen. Returns false when the blob is
  /// not actually present (segment missing or shorter than the ref claims) —
  /// the store then drops the recovered entry instead of serving a
  /// guaranteed miss.
  virtual bool note_blob(const BlobRef& ref) = 0;

  /// Reclaim storage whose blobs are all dead. Returns how many units
  /// (segments) were reclaimed. Backends without physical segments return 0.
  virtual std::size_t compact() { return 0; }

  /// Test hook modelling a compromised host: flip one bit of the blob at
  /// `ref`. False when the ref is dangling.
  virtual bool corrupt_blob(const BlobRef& ref) = 0;

  // ---------------------------------------------------------- metadata WAL

  /// Whether this backend persists the WAL (and therefore supports
  /// recovery). Non-durable backends make wal_append a no-op, and the store
  /// skips sealing WAL records entirely — the original in-memory fast path.
  virtual bool durable() const = 0;

  /// Append one opaque (sealed) record. Durability batching is internal:
  /// the record is on stable storage once the backend's fsync policy has
  /// synced it (FileBackendConfig::fsync_every; wal_sync() forces it).
  virtual void wal_append(ByteView record) = 0;

  /// Force everything appended so far onto stable storage.
  virtual void wal_sync() = 0;

  /// Replay intact records in append order. Framing-level torn tails are
  /// detected and truncated by the backend before `fn` sees anything. `fn`
  /// returns false to stop early (the enclave failed the MAC chain); the
  /// caller then discards the tail with wal_truncate(offset).
  /// `offset` is an opaque backend position usable with wal_truncate.
  virtual void wal_replay(
      const std::function<bool(ByteView record, std::uint64_t offset)>& fn) = 0;

  /// Discard the record at `offset` and everything after it.
  virtual void wal_truncate(std::uint64_t offset) = 0;

  virtual BackendStats stats() const = 0;
};

/// The original in-RAM arena behind the backend interface. Blob storage is
/// lock-striped so concurrent GET/PUT from different store shards keep
/// scaling as before. With `record_wal` the (already sealed) WAL records are
/// kept in memory too: the backend then survives the death of the
/// *ResultStore object* and a new store can recover from it — the pure-logic
/// crash simulation used by the torture tests. Default is non-durable.
class MemoryBackend : public BlobBackend {
 public:
  explicit MemoryBackend(bool record_wal = false) : record_wal_(record_wal) {}

  BlobRef put_blob(ByteView blob) override;
  std::optional<Bytes> get_blob(const BlobRef& ref) const override;
  void delete_blob(const BlobRef& ref) override;
  bool note_blob(const BlobRef& ref) override;
  bool corrupt_blob(const BlobRef& ref) override;

  bool durable() const override { return record_wal_; }
  void wal_append(ByteView record) override;
  void wal_sync() override;
  void wal_replay(const std::function<bool(ByteView, std::uint64_t)>& fn)
      override;
  void wal_truncate(std::uint64_t offset) override;

  BackendStats stats() const override;

 private:
  static constexpr std::size_t kStripes = 16;

  struct Stripe {
    // 760: backend I/O leaf, same tier as FileBackend's lock; at most one
    // stripe is ever held at a time (BlobRefs address a single stripe).
    mutable Mutex mu{LockRank::kBackend};
    std::unordered_map<std::uint64_t, Bytes> blobs GUARDED_BY(mu);
  };
  Stripe& stripe_for(const BlobRef& ref) const {
    return stripes_[ref.offset % kStripes];
  }

  mutable std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> live_bytes_{0};
  std::atomic<std::uint64_t> dead_bytes_{0};

  const bool record_wal_;
  // 780: never held with a stripe lock; ranked above so a future nesting
  // (append while a blob write is in flight) stays ordered.
  mutable Mutex wal_mu_{LockRank::kBackendWal};
  std::vector<Bytes> wal_ GUARDED_BY(wal_mu_);
  std::uint64_t wal_appends_ GUARDED_BY(wal_mu_) = 0;
  std::uint64_t wal_syncs_ GUARDED_BY(wal_mu_) = 0;
  std::uint64_t wal_bytes_ GUARDED_BY(wal_mu_) = 0;
};

}  // namespace speed::store
