// Access control and rate limiting for the ResultStore (paper §III-D).
//
// Two policies the paper discusses beyond the byte quota:
//
//   * "Discussion on controlled deduplication": the keyless RCE scheme lets
//     any application that owns (func, m) decrypt, so restricting *who may
//     talk to the store at all* requires an additional authorization
//     mechanism. AccessPolicy is that mechanism — an allowlist/denylist of
//     enclave measurements, checked against the attested identity of each
//     requester.
//
//   * "Mitigating denial-of-service attacks": a malicious application may
//     flood the store with update requests. RateLimiter is a per-identity
//     token bucket over requests/second (complementing the per-app byte
//     quota already enforced by ResultStore).
//
// Both are enforced inside the store enclave by GatedResultStore's dispatch.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>

#include "common/annotated_lock.h"
#include "serialize/wire.h"
#include "store/result_store.h"

namespace speed::store {

/// Measurement-based authorization.
class AccessPolicy {
 public:
  enum class Mode {
    kOpen,       ///< everyone may connect (the paper's default deployment)
    kAllowlist,  ///< only listed measurements
  };

  AccessPolicy() = default;

  void set_mode(Mode mode) {
    WriterLock lock(mu_);
    mode_ = mode;
  }

  void allow(const serialize::AppId& app) {
    WriterLock lock(mu_);
    allowed_.insert(app);
  }

  void revoke(const serialize::AppId& app) {
    WriterLock lock(mu_);
    allowed_.erase(app);
  }

  /// Hot path (checked per request): shared lock so concurrent dispatch
  /// threads never serialize on a read-mostly policy.
  bool permits(const serialize::AppId& app) const {
    ReaderLock lock(mu_);
    if (mode_ == Mode::kOpen) return true;
    return allowed_.contains(app);
  }

 private:
  mutable SharedMutex mu_{LockRank::kAccess};  // 590: checked before shards
  Mode mode_ GUARDED_BY(mu_) = Mode::kOpen;
  std::set<serialize::AppId> allowed_ GUARDED_BY(mu_);
};

/// Per-identity token bucket, `rate` tokens/second up to `burst`.
/// Time is injected (monotonic nanoseconds) so tests are deterministic.
class RateLimiter {
 public:
  RateLimiter(double tokens_per_second, double burst)
      : rate_(tokens_per_second), burst_(burst) {}

  /// Consume one token for `app` at time `now_ns`; false = rate exceeded.
  bool admit(const serialize::AppId& app, std::uint64_t now_ns) {
    MutexLock lock(mu_);
    Bucket& b = buckets_[app];
    if (!b.initialized) {
      b.tokens = burst_;
      b.last_ns = now_ns;
      b.initialized = true;
    }
    const double elapsed_s =
        static_cast<double>(now_ns - b.last_ns) / 1e9;
    b.tokens = std::min(burst_, b.tokens + elapsed_s * rate_);
    b.last_ns = now_ns;
    if (b.tokens < 1.0) return false;
    b.tokens -= 1.0;
    return true;
  }

 private:
  struct Bucket {
    double tokens = 0;
    std::uint64_t last_ns = 0;
    bool initialized = false;
  };
  struct AppIdHash {
    std::size_t operator()(const serialize::AppId& a) const {
      std::size_t h;
      __builtin_memcpy(&h, a.data(), sizeof(h));
      return h;
    }
  };

  Mutex mu_{LockRank::kAccess};  // 590: checked before shard locks
  double rate_;
  double burst_;
  std::unordered_map<serialize::AppId, Bucket, AppIdHash> buckets_
      GUARDED_BY(mu_);
};

/// ResultStore front that enforces the policy and the limiter before
/// delegating to the trusted dictionary. GETs of unauthorized or throttled
/// apps return "not found"; PUTs return kQuotaExceeded (the client treats
/// both as cache-unavailable and recomputes — correctness is unaffected).
class GatedResultStore {
 public:
  GatedResultStore(ResultStore& store, AccessPolicy& policy,
                   RateLimiter* limiter = nullptr)
      : store_(store), policy_(policy), limiter_(limiter) {}

  serialize::Message dispatch_trusted(const serialize::Message& request,
                                      std::uint64_t now_ns);

  struct Stats {
    std::uint64_t denied = 0;
    std::uint64_t throttled = 0;
  };
  Stats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  ResultStore& store_;
  AccessPolicy& policy_;
  RateLimiter* limiter_;
  mutable Mutex mu_{LockRank::kAccess};
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace speed::store
