#include "store/replication.h"

#include <algorithm>
#include <map>

namespace speed::store {

using serialize::MemberInfo;
using serialize::MemberStatus;
using serialize::MembershipAck;
using serialize::MembershipUpdate;
using serialize::Message;
using serialize::PullRequest;
using serialize::PullResponse;
using serialize::PushRequest;
using serialize::PushResponse;
using serialize::SyncEntry;
using serialize::SyncRequest;
using serialize::SyncResponse;
using serialize::Tag;

ClusterReplicator::ClusterReplicator(std::vector<PeerStore> peers,
                                     ReplicationConfig config)
    : peers_(std::move(peers)), config_(config) {
  if (peers_.empty()) {
    throw net::StoreUnavailableError("ClusterReplicator: no peers");
  }
  members_.reserve(peers_.size());
  for (const PeerStore& p : peers_) {
    members_.push_back({p.name, MemberStatus::kUp});
  }
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        sink.counter("speed_replication_membership_rounds_total",
                     "Membership broadcasts driven", {},
                     membership_rounds_.value());
        sink.counter("speed_replication_pushed_entries_total",
                     "Entries accepted by anti-entropy push receivers", {},
                     pushed_entries_.value());
        sink.counter("speed_replication_pulled_entries_total",
                     "Entries merged by bulk pulls", {},
                     pulled_entries_.value());
        sink.counter("speed_replication_sync_failures_total",
                     "Replication round trips that failed", {},
                     sync_failures_.value());
        sink.gauge("speed_replication_sync_lag",
                   "Entries the last push round could not place", {},
                   sync_lag_.value());
      });
}

ClusterReplicator::Stats ClusterReplicator::stats() const {
  Stats s;
  s.membership_rounds = membership_rounds_.value();
  s.pushed_entries = pushed_entries_.value();
  s.pulled_entries = pulled_entries_.value();
  s.sync_failures = sync_failures_.value();
  s.sync_lag = static_cast<std::uint64_t>(sync_lag_.value());
  return s;
}

Message ClusterReplicator::call(std::size_t node, const Message& request) {
  try {
    const Bytes framed = serialize::encode_message(request);
    const Bytes response = peers_[node].call(framed);
    return serialize::decode_message(response);
  } catch (const net::StoreUnavailableError&) {
    sync_failures_.inc();
    throw;
  } catch (const Error& e) {
    sync_failures_.inc();
    throw net::StoreUnavailableError(
        std::string("ClusterReplicator: node ") + peers_[node].name +
        " unreachable: " + e.what());
  }
}

std::vector<std::size_t> ClusterReplicator::owners_of(const Tag& tag) const {
  auto order = serialize::rendezvous_order(members_, tag);
  if (order.size() > config_.copies) order.resize(config_.copies);
  return order;
}

std::size_t ClusterReplicator::broadcast_membership(
    const std::vector<bool>& up) {
  ++epoch_;
  membership_rounds_.inc();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    members_[i].status = (i < up.size() && up[i]) ? MemberStatus::kUp
                                                  : MemberStatus::kDown;
  }
  MembershipUpdate update;
  update.epoch = epoch_;
  update.members = members_;
  std::size_t applied = 0;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (members_[i].status != MemberStatus::kUp) continue;
    try {
      const Message m = call(i, Message(update));
      const auto* ack = std::get_if<MembershipAck>(&m);
      if (ack != nullptr && ack->applied) ++applied;
    } catch (const net::StoreUnavailableError&) {
      // Unreachable now; it will learn the view on rejoin.
    }
  }
  return applied;
}

std::size_t ClusterReplicator::push_hot_entries(std::size_t from) {
  SyncResponse hot;
  try {
    const Message m = call(from, Message(SyncRequest{config_.hot_entries}));
    const auto* batch = std::get_if<SyncResponse>(&m);
    if (batch == nullptr) return 0;
    hot = *batch;
  } catch (const net::StoreUnavailableError&) {
    return 0;
  }

  // Route each hot entry to the ring owners that are not the source, then
  // push one batch per receiver.
  std::map<std::size_t, PushRequest> batches;
  std::size_t placements_wanted = 0;
  for (SyncEntry& e : hot.entries) {
    for (const std::size_t owner : owners_of(e.tag)) {
      if (owner == from || members_[owner].status != MemberStatus::kUp) {
        continue;
      }
      ++placements_wanted;
      batches[owner].entries.push_back(e);
    }
  }
  std::size_t accepted = 0;
  std::size_t placed = 0;
  for (auto& [owner, batch] : batches) {
    try {
      const Message m = call(owner, Message(batch));
      const auto* resp = std::get_if<PushResponse>(&m);
      if (resp != nullptr) {
        accepted += resp->accepted;
        placed += batch.entries.size();
      }
    } catch (const net::StoreUnavailableError&) {
      // Receiver down mid-round; lag accounts for it below.
    }
  }
  pushed_entries_.inc(accepted);
  sync_lag_.set(static_cast<std::int64_t>(placements_wanted - placed));
  return accepted;
}

ClusterReplicator::PullPage ClusterReplicator::pull_page(
    std::size_t to, std::size_t from, std::optional<Tag> cursor) {
  PullRequest req;
  req.max_entries = config_.pull_page;
  req.resume = cursor.has_value();
  if (cursor.has_value()) req.after = *cursor;

  const Message m = call(from, Message(req));
  const auto* page = std::get_if<PullResponse>(&m);
  if (page == nullptr) {
    sync_failures_.inc();
    throw net::StoreUnavailableError(
        "ClusterReplicator: unexpected PULL response from " +
        peers_[from].name);
  }

  // Keep only the tags the ring assigns `to`: a rejoining node pulls its
  // share, not the whole cluster.
  PushRequest keep;
  for (const SyncEntry& e : page->entries) {
    const auto owners = owners_of(e.tag);
    if (std::find(owners.begin(), owners.end(), to) != owners.end()) {
      keep.entries.push_back(e);
    }
  }

  PullPage result;
  if (!keep.entries.empty()) {
    const Message merged = call(to, Message(keep));
    if (const auto* resp = std::get_if<PushResponse>(&merged)) {
      result.merged = resp->accepted;
      pulled_entries_.inc(resp->accepted);
    }
  }
  if (!page->done) result.cursor = page->next;
  return result;
}

std::size_t ClusterReplicator::pull_all(std::size_t to, std::size_t from) {
  std::size_t merged = 0;
  std::optional<Tag> cursor;
  bool first = true;
  while (first || cursor.has_value()) {
    first = false;
    const PullPage page = pull_page(to, from, cursor);
    merged += page.merged;
    cursor = page.cursor;
  }
  return merged;
}

std::size_t ClusterReplicator::rejoin(
    std::size_t node, const std::vector<std::size_t>& still_down) {
  std::vector<bool> up(peers_.size(), true);
  for (const std::size_t i : still_down) {
    if (i < up.size()) up[i] = false;
  }
  broadcast_membership(up);
  std::size_t merged = 0;
  for (std::size_t from = 0; from < peers_.size(); ++from) {
    if (from == node || members_[from].status != MemberStatus::kUp) continue;
    try {
      merged += pull_all(node, from);
    } catch (const net::StoreUnavailableError&) {
      // This peer died mid-pull; the next one (or the next anti-entropy
      // round) completes convergence.
    }
  }
  return merged;
}

}  // namespace speed::store
