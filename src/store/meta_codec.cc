#include "store/meta_codec.h"

#include <algorithm>

#include "common/error.h"
#include "serialize/codec.h"

namespace speed::store {
namespace {

// Plaintext record layout (little-endian, canonical codec):
//
//   u8  version (= kMetaFormatVersion)
//   raw tag[32]
//   raw owner[32]
//   u16 challenge_len   (<= kMaxMetaVarBytes)
//   raw challenge
//   u16 wrapped_key_len (<= kMaxMetaVarBytes)
//   raw wrapped_key
//   raw blob_digest[32]
//   u64 blob_bytes
//   u32 blob.segment
//   u64 blob.offset
//   u64 blob.length
//
// Golden vectors for this layout live in tests/meta_codec_test.cc; touch it
// and they will tell you. The u16 prefixes (vs the WAL's u32) are the point:
// the decoder can bound every allocation at kMaxMetaVarBytes no matter what
// a corrupted or hostile length byte says.

void put_capped(serialize::Encoder& enc, ByteView data, const char* field) {
  if (data.size() > kMaxMetaVarBytes) {
    throw ProtocolError(std::string("meta record: ") + field + " exceeds " +
                        std::to_string(kMaxMetaVarBytes) + " bytes");
  }
  enc.u16(static_cast<std::uint16_t>(data.size()));
  enc.raw(data);
}

Bytes take_capped(serialize::Decoder& dec, const char* field) {
  const std::uint16_t len = dec.u16();
  if (len > kMaxMetaVarBytes) {
    throw SerializationError(std::string("meta record: ") + field +
                             " length " + std::to_string(len) +
                             " exceeds cap");
  }
  // Bounds-checked take() before the copy: a truncated record throws here
  // without allocating.
  const ByteView b = dec.raw(len);
  return Bytes(b.begin(), b.end());
}

constexpr std::uint64_t kLocOffsetBits = 44;
constexpr std::uint64_t kLocOffsetMask = (std::uint64_t{1} << kLocOffsetBits) - 1;
// Segment is 19 bits, not 20: bit 63 of the packed locator is reserved for
// kPinnedLocBit (store/meta_index.h), so a valid spill locator must never
// set it.
constexpr std::uint32_t kLocMaxSegment = (std::uint32_t{1} << 19) - 1;

}  // namespace

Bytes encode_meta_record(const MetaRecord& rec) {
  serialize::Encoder enc;
  enc.u8(kMetaFormatVersion);
  enc.raw(ByteView(rec.tag.data(), rec.tag.size()));
  enc.raw(ByteView(rec.owner.data(), rec.owner.size()));
  put_capped(enc, rec.challenge, "challenge");
  put_capped(enc, rec.wrapped_key, "wrapped_key");
  enc.raw(ByteView(rec.blob_digest.data(), rec.blob_digest.size()));
  enc.u64(rec.blob_bytes);
  enc.u32(rec.blob.segment);
  enc.u64(rec.blob.offset);
  enc.u64(rec.blob.length);
  return enc.take();
}

MetaRecord decode_meta_record(ByteView data) {
  serialize::Decoder dec(data);
  const std::uint8_t version = dec.u8();
  if (version != kMetaFormatVersion) {
    throw SerializationError(
        "meta record: unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kMetaFormatVersion) +
        ")");
  }
  MetaRecord rec;
  const ByteView tag = dec.raw(rec.tag.size());
  std::copy(tag.begin(), tag.end(), rec.tag.begin());
  const ByteView owner = dec.raw(rec.owner.size());
  std::copy(owner.begin(), owner.end(), rec.owner.begin());
  rec.challenge = take_capped(dec, "challenge");
  rec.wrapped_key = take_capped(dec, "wrapped_key");
  const ByteView digest = dec.raw(rec.blob_digest.size());
  std::copy(digest.begin(), digest.end(), rec.blob_digest.begin());
  rec.blob_bytes = dec.u64();
  rec.blob.segment = dec.u32();
  rec.blob.offset = dec.u64();
  rec.blob.length = dec.u64();
  dec.expect_done();
  return rec;
}

Bytes meta_seal_aad() {
  serialize::Encoder enc;
  enc.str(kMetaDomain);
  enc.u8(kMetaFormatVersion);
  return enc.take();
}

std::optional<std::uint64_t> pack_loc(const BlobRef& ref) {
  if (ref.segment > kLocMaxSegment || ref.offset > kLocOffsetMask) {
    return std::nullopt;
  }
  return (static_cast<std::uint64_t>(ref.segment) << kLocOffsetBits) |
         ref.offset;
}

BlobRef unpack_loc(std::uint64_t loc, std::uint64_t length) {
  BlobRef ref;
  ref.segment = static_cast<std::uint32_t>(loc >> kLocOffsetBits);
  ref.offset = loc & kLocOffsetMask;
  ref.length = length;
  return ref;
}

}  // namespace speed::store
