// ResultStore served over TCP (separate-process deployment).
//
// Connection protocol:
//   1. client sends its handshake hello (encoded HandshakeMessage);
//   2. server verifies it inside the store enclave, replies with its hello;
//   3. every further frame is a secure-channel frame carrying one wire
//      request; the server replies with one secure frame per request.
//
// Connections that fail attestation or violate the channel (tamper/replay)
// are dropped. Each connection is served by its own thread; the trusted
// dictionary is shared (ResultStore is thread-safe). With
// StoreConfig::shards > 1 those per-connection threads execute GET/PUT
// against different tag shards in parallel — only requests that land on
// the same shard serialize on its mutex.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/resilient.h"
#include "net/tcp.h"
#include "store/store_session.h"
#include "telemetry/admin_server.h"

namespace speed::store {

class StoreTcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting. When
  /// `admin_port` is set, also serves the plaintext telemetry endpoint
  /// (telemetry::AdminServer — /metrics, /snapshot.json, /traces.json) on
  /// 127.0.0.1:*admin_port (0 = ephemeral, read back with admin_port()).
  StoreTcpServer(ResultStore& store, std::uint16_t port = 0,
                 std::optional<std::uint16_t> admin_port = std::nullopt);
  ~StoreTcpServer();

  StoreTcpServer(const StoreTcpServer&) = delete;
  StoreTcpServer& operator=(const StoreTcpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  /// 0 when the server was started without an admin endpoint.
  std::uint16_t admin_port() const {
    return admin_ != nullptr ? admin_->port() : 0;
  }

  /// Stop accepting and join all connection threads.
  void stop();

  std::uint64_t connections_accepted() const { return accepted_.load(); }
  std::uint64_t connections_rejected() const { return rejected_.load(); }
  /// Sessions that died after a successful handshake: client gone mid-frame,
  /// channel violation, or a send to a half-closed peer. Each costs only its
  /// own connection; the accept loop and other sessions are unaffected.
  std::uint64_t session_errors() const { return session_errors_.load(); }

 private:
  void accept_loop();
  void serve_connection(const std::shared_ptr<net::FramedSocket>& socket);

  ResultStore& store_;
  net::TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> session_errors_{0};
  std::thread accept_thread_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  // Live connection sockets, shut down by stop() to unblock workers that
  // are parked in recv() waiting for a client's next request.
  std::vector<std::shared_ptr<net::FramedSocket>> connections_;
  std::unique_ptr<telemetry::AdminServer> admin_;
  // Declared after the counters it reads (deregisters first).
  telemetry::Registry::Handle telemetry_handle_;
};

/// Client side: connect an application enclave to a remote store over TCP,
/// performing the attested handshake. `store_measurement` pins the store
/// identity the client is willing to talk to.
struct TcpAppConnection {
  secret::Buffer session_key;
  std::unique_ptr<net::Transport> transport;
};

TcpAppConnection connect_tcp_app(sgx::Enclave& app,
                                 const sgx::Measurement& store_measurement,
                                 const std::string& host, std::uint16_t port);

/// Like connect_tcp_app, but the transport is wrapped in a
/// ResilientTransport whose reconnect hook re-dials host:port and re-runs
/// the attested handshake (yielding a fresh channel key each time), and
/// every round trip is bounded by `deadline_ms` (-1 = no deadline). This is
/// the production-posture client: store crashes, restarts, and network
/// faults degrade calls to local compute instead of failing them.
TcpAppConnection connect_tcp_app_resilient(
    sgx::Enclave& app, const sgx::Measurement& store_measurement,
    const std::string& host, std::uint16_t port,
    net::ResilienceConfig resilience = net::ResilienceConfig{},
    std::int64_t deadline_ms = -1);

}  // namespace speed::store
