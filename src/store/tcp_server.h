// ResultStore served over TCP (separate-process deployment).
//
// Connection protocol:
//   1. client sends its handshake hello (encoded HandshakeMessage);
//   2. server verifies it inside the store enclave, replies with its hello;
//   3. every further frame is a secure-channel frame carrying one wire
//      request (or, for v2 peers, a batch of them); the server replies with
//      one secure frame per request frame, in order.
//
// Architecture (docs/PROTOCOL.md §9): a single epoll event loop owns every
// socket — nonblocking reads into per-connection buffers, frame parsing,
// nonblocking writes — and a small worker pool executes the decrypted
// requests against the sharded store. Each connection is a strand: exactly
// one worker drains its parsed-frame inbox at a time, so secure-channel
// sequence numbers stay aligned with delivery order while frames from many
// connections (and pipelined frames within one) execute concurrently.
// Optionally the workers submit their trusted work to a shared switchless
// ring (sgx/switchless.h) so the enclave-transition cost is charged once
// per ring drain instead of once per frame.
//
// Connections that fail attestation or violate the channel (tamper/replay)
// are dropped, costing only themselves — identical containment to the old
// thread-per-connection server, measured by the same counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/annotated_lock.h"
#include "net/resilient.h"
#include "net/tcp.h"
#include "sgx/switchless.h"
#include "store/store_session.h"
#include "telemetry/admin_server.h"

namespace speed::store {

struct StoreServerConfig {
  /// Worker threads executing decrypted requests against the store.
  std::size_t workers = 4;
  /// Largest frame the server will buffer. The length prefix is checked
  /// before any payload allocation, so a hostile length cannot balloon
  /// memory; an oversized frame earns a clean wire error, then the
  /// connection closes. 0 = the transport-level 256 MB cap only.
  std::size_t max_frame_bytes = 4ull * 1024 * 1024;
  /// Cap on sub-requests per batch frame (clean wire error beyond it).
  /// 0 = unlimited.
  std::size_t max_batch_entries = 4096;
  /// Route per-frame trusted work through a shared switchless ring: one
  /// enclave crossing per ring drain instead of per frame.
  bool switchless = false;
  /// Largest burst one ring drain executes (ignored unless switchless).
  std::size_t switchless_burst = 64;
};

class StoreTcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving. When
  /// `admin_port` is set, also serves the plaintext telemetry endpoint
  /// (telemetry::AdminServer — /metrics, /snapshot.json, /traces.json) on
  /// 127.0.0.1:*admin_port (0 = ephemeral, read back with admin_port()).
  StoreTcpServer(ResultStore& store, std::uint16_t port = 0,
                 std::optional<std::uint16_t> admin_port = std::nullopt,
                 StoreServerConfig config = StoreServerConfig{});
  ~StoreTcpServer();

  StoreTcpServer(const StoreTcpServer&) = delete;
  StoreTcpServer& operator=(const StoreTcpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  /// 0 when the server was started without an admin endpoint.
  std::uint16_t admin_port() const {
    return admin_ != nullptr ? admin_->port() : 0;
  }

  const StoreServerConfig& config() const { return config_; }
  /// Shared transition-amortization ring; nullptr unless switchless mode.
  sgx::SwitchlessRing* switchless_ring() {
    return ring_.has_value() ? &*ring_ : nullptr;
  }

  /// Stop serving: close every connection, join the loop and workers.
  void stop();

  std::uint64_t connections_accepted() const { return accepted_.load(); }
  std::uint64_t connections_rejected() const { return rejected_.load(); }
  /// Sessions that died after a successful handshake: client gone mid-frame,
  /// channel violation, or a send to a half-closed peer. Each costs only its
  /// own connection; the event loop and other sessions are unaffected.
  std::uint64_t session_errors() const { return session_errors_.load(); }
  /// Frames refused for exceeding max_frame_bytes.
  std::uint64_t oversized_frames() const { return oversized_frames_.load(); }

 private:
  /// Per-connection state. The fd and epoll interest are owned by the loop
  /// thread; everything under `mu` is shared with the worker draining the
  /// strand.
  struct Conn {
    explicit Conn(int fd) : fd(fd) {}
    const int fd;

    // ---- loop-thread-only ----
    Bytes rbuf;                ///< unparsed input bytes
    std::size_t roff = 0;      ///< parse cursor into rbuf
    bool want_write = false;   ///< EPOLLOUT currently armed
    bool read_closed = false;  ///< EOF seen / reading abandoned
    bool closed = false;       ///< fd closed, awaiting map erase
    std::uint32_t interest = 0;  ///< epoll mask currently registered

    // ---- shared (guarded by mu) ----
    // 840: the strand lock. The pool rendezvous locks (850) may be taken
    // while a conn lock is held (reevaluate enqueues under conn->mu), so
    // conn ranks strictly below them; no path holds two conn locks at once.
    Mutex mu{LockRank::kServerConn};
    std::deque<Bytes> inbox GUARDED_BY(mu);  ///< parsed frames awaiting the strand
    Bytes wbuf GUARDED_BY(mu);            ///< encoded responses awaiting the socket
    std::size_t woff GUARDED_BY(mu) = 0;  ///< send cursor into wbuf
    bool processing GUARDED_BY(mu) = false;  ///< a worker owns the strand now
    bool handshaken GUARDED_BY(mu) = false;
    bool oversized GUARDED_BY(mu) = false;  ///< frame over the limit arrived
    bool oversized_handled GUARDED_BY(mu) = false;
    bool abort GUARDED_BY(mu) = false;  ///< stop processing; drop remaining inbox
    bool close_after_flush GUARDED_BY(mu) = false;
    bool error_counted GUARDED_BY(mu) = false;  ///< session_errors_ bumped once
    std::optional<StoreSession> session GUARDED_BY(mu);
  };

  void loop();
  void worker_loop();
  void process_conn(const std::shared_ptr<Conn>& conn);
  void handle_frame_on_worker(const std::shared_ptr<Conn>& conn, Bytes frame);
  void handle_oversize_on_worker(const std::shared_ptr<Conn>& conn);

  // Loop-thread helpers.
  void accept_ready();
  void handle_readable(const std::shared_ptr<Conn>& conn);
  void parse_frames(const std::shared_ptr<Conn>& conn);
  void flush_conn(const std::shared_ptr<Conn>& conn);
  void update_interest(const std::shared_ptr<Conn>& conn);
  /// Schedule pending inbox work onto the pool and/or close a drained
  /// connection whose close_after_flush flag is set.
  void reevaluate(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);

  /// Worker -> loop: responses or flags changed; re-evaluate this conn.
  void notify_loop(const std::shared_ptr<Conn>& conn);

  ResultStore& store_;
  StoreServerConfig config_;
  net::TcpListener listener_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::optional<sgx::SwitchlessRing> ring_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> session_errors_{0};
  std::atomic<std::uint64_t> oversized_frames_{0};

  /// All live connections, keyed by fd (loop thread only).
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  /// Worker pool rendezvous (850: above every conn lock).
  Mutex ready_mu_{LockRank::kServerPool};
  CondVar ready_cv_;
  std::deque<std::shared_ptr<Conn>> ready_ GUARDED_BY(ready_mu_);

  /// Conns the workers finished touching, drained by the loop on eventfd.
  Mutex completed_mu_{LockRank::kServerPool};
  std::vector<std::shared_ptr<Conn>> completed_ GUARDED_BY(completed_mu_);

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::unique_ptr<telemetry::AdminServer> admin_;
  // Declared after the counters it reads (deregisters first).
  telemetry::Registry::Handle telemetry_handle_;
};

/// Client side: connect an application enclave to a remote store over TCP,
/// performing the attested handshake. `store_measurement` pins the store
/// identity the client is willing to talk to.
struct TcpAppConnection {
  secret::Buffer session_key;
  std::unique_ptr<net::Transport> transport;
  /// Wire-protocol version negotiated with the store (min of both hellos);
  /// batch frames require >= net::kProtocolVersionBatch.
  std::uint8_t protocol_version = net::kProtocolVersionLegacy;
};

TcpAppConnection connect_tcp_app(sgx::Enclave& app,
                                 const sgx::Measurement& store_measurement,
                                 const std::string& host, std::uint16_t port);

/// Like connect_tcp_app, but the transport is wrapped in a
/// ResilientTransport whose reconnect hook re-dials host:port and re-runs
/// the attested handshake (yielding a fresh channel key each time), and
/// every round trip is bounded by `deadline_ms` (-1 = no deadline). This is
/// the production-posture client: store crashes, restarts, and network
/// faults degrade calls to local compute instead of failing them.
TcpAppConnection connect_tcp_app_resilient(
    sgx::Enclave& app, const sgx::Measurement& store_measurement,
    const std::string& host, std::uint16_t port,
    net::ResilienceConfig resilience = net::ResilienceConfig{},
    std::int64_t deadline_ms = -1);

}  // namespace speed::store
