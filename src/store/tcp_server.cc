#include "store/tcp_server.h"

#include <chrono>
#include <optional>
#include <thread>

namespace speed::store {

StoreTcpServer::StoreTcpServer(ResultStore& store, std::uint16_t port,
                               std::optional<std::uint16_t> admin_port)
    : store_(store), listener_(port) {
  if (admin_port.has_value()) {
    admin_ = std::make_unique<telemetry::AdminServer>(*admin_port);
  }
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        constexpr auto kResult = telemetry::LabelKey::of("result");
        sink.counter("speed_server_connections_total",
                     "Store TCP connections by handshake result",
                     {{kResult, telemetry::LabelValue::lit("accepted")}},
                     accepted_.load(std::memory_order_relaxed));
        sink.counter("speed_server_connections_total",
                     "Store TCP connections by handshake result",
                     {{kResult, telemetry::LabelValue::lit("rejected")}},
                     rejected_.load(std::memory_order_relaxed));
        sink.counter("speed_server_session_errors_total",
                     "Sessions that died after a successful handshake", {},
                     session_errors_.load(std::memory_order_relaxed));
      });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

StoreTcpServer::~StoreTcpServer() { stop(); }

void StoreTcpServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    // Unblock workers parked in recv() on live connections.
    for (const auto& conn : connections_) conn->shutdown();
    connections_.clear();
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void StoreTcpServer::accept_loop() {
  while (!stopping_.load()) {
    std::shared_ptr<net::FramedSocket> socket;
    try {
      socket = std::make_shared<net::FramedSocket>(listener_.accept());
    } catch (const net::TcpError&) {
      if (stopping_.load()) break;  // listener closed by stop()
      // Transient accept failure (e.g. fd pressure): keep serving. Back off
      // briefly so a persistent failure cannot spin the loop hot.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    std::lock_guard<std::mutex> lock(workers_mu_);
    if (stopping_.load()) {
      socket->shutdown();
      break;
    }
    // Prune sockets whose worker already exited (sole remaining reference
    // is ours) so a long-running server does not accumulate dead entries.
    std::erase_if(connections_, [](const std::shared_ptr<net::FramedSocket>& c) {
      return c.use_count() == 1;
    });
    connections_.push_back(socket);
    workers_.emplace_back([this, socket] { serve_connection(socket); });
  }
}

void StoreTcpServer::serve_connection(
    const std::shared_ptr<net::FramedSocket>& socket) {
  // The registry in stop() holds a second reference, so the socket must be
  // shut down explicitly when this worker exits — otherwise a client whose
  // handshake we rejected would block forever waiting for a reply.
  struct Hangup {
    net::FramedSocket* s;
    ~Hangup() { s->shutdown(); }
  } hangup{socket.get()};

  // Step 1-2: attested handshake.
  std::optional<StoreSession> session;
  try {
    const Bytes hello_wire = socket->recv_frame();
    const net::HandshakeMessage client_hello =
        net::decode_handshake(hello_wire);
    session.emplace(store_, client_hello);  // throws on bad attestation
    socket->send_frame(net::encode_handshake(session->server_hello()));
    ++accepted_;
  } catch (const Error&) {
    ++rejected_;  // bad attestation or malformed hello
    return;
  }

  // Step 3: request/response frames until the peer hangs up. A client that
  // dies mid-frame (or violates the channel) costs exactly this session —
  // never the accept loop or any other connection.
  try {
    while (!stopping_.load()) {
      auto frame = socket->try_recv_frame();
      if (!frame.has_value()) break;  // orderly disconnect or shutdown()
      socket->send_frame(session->handle_frame(*frame));
    }
  } catch (const Error&) {
    ++session_errors_;  // half-closed peer, truncated frame, tamper/replay
  }
}

TcpAppConnection connect_tcp_app(sgx::Enclave& app,
                                 const sgx::Measurement& store_measurement,
                                 const std::string& host, std::uint16_t port) {
  net::FramedSocket socket = net::tcp_connect(host, port);

  const net::ChannelKeyExchange kx(app);
  socket.send_frame(net::encode_handshake(kx.hello(store_measurement)));
  const net::HandshakeMessage server_hello =
      net::decode_handshake(socket.recv_frame());
  auto key = kx.derive(server_hello, store_measurement);
  if (!key.has_value()) {
    throw ProtocolError("connect_tcp_app: store failed attestation");
  }

  TcpAppConnection conn;
  conn.session_key = std::move(*key);
  conn.transport = std::make_unique<net::TcpTransport>(std::move(socket));
  return conn;
}

TcpAppConnection connect_tcp_app_resilient(
    sgx::Enclave& app, const sgx::Measurement& store_measurement,
    const std::string& host, std::uint16_t port,
    net::ResilienceConfig resilience, std::int64_t deadline_ms) {
  const auto dial = [&app, store_measurement, host, port, deadline_ms] {
    TcpAppConnection fresh = connect_tcp_app(app, store_measurement, host, port);
    if (deadline_ms >= 0) {
      static_cast<net::TcpTransport*>(fresh.transport.get())
          ->set_deadline_ms(deadline_ms);
    }
    return fresh;
  };

  TcpAppConnection initial = dial();
  TcpAppConnection conn;
  conn.session_key = std::move(initial.session_key);
  conn.transport = std::make_unique<net::ResilientTransport>(
      std::move(initial.transport),
      [dial]() -> net::ResilientTransport::Connection {
        TcpAppConnection fresh = dial();
        return {std::move(fresh.transport), std::move(fresh.session_key)};
      },
      resilience);
  return conn;
}

}  // namespace speed::store
