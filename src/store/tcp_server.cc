#include "store/tcp_server.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace speed::store {

namespace {

/// Transport-level frame cap (matches FramedSocket); config.max_frame_bytes
/// only tightens it.
constexpr std::size_t kTransportMaxFrame = 256u * 1024 * 1024;

/// Compact consumed rbuf/wbuf prefixes once the cursor passes this, so a
/// long-lived pipelined connection does not hold on to dead bytes.
constexpr std::size_t kCompactThreshold = 256u * 1024;

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Append a u32-length-prefixed frame to `out` (same framing FramedSocket
/// speaks on the client side).
void append_frame(Bytes& out, ByteView payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

StoreTcpServer::StoreTcpServer(ResultStore& store, std::uint16_t port,
                               std::optional<std::uint16_t> admin_port,
                               StoreServerConfig config)
    : store_(store), config_(config), listener_(port) {
  if (config_.workers == 0) config_.workers = 1;

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw net::TcpError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw net::TcpError(std::string("eventfd: ") + std::strerror(err));
  }
  listener_.set_nonblocking();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  if (config_.switchless) {
    sgx::SwitchlessRing::Config ring_config;
    ring_config.max_burst = config_.switchless_burst;
    ring_.emplace(store_.enclave(), ring_config);
  }
  if (admin_port.has_value()) {
    admin_ = std::make_unique<telemetry::AdminServer>(*admin_port);
  }
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        constexpr auto kResult = telemetry::LabelKey::of("result");
        sink.counter("speed_server_connections_total",
                     "Store TCP connections by handshake result",
                     {{kResult, telemetry::LabelValue::lit("accepted")}},
                     accepted_.load(std::memory_order_relaxed));
        sink.counter("speed_server_connections_total",
                     "Store TCP connections by handshake result",
                     {{kResult, telemetry::LabelValue::lit("rejected")}},
                     rejected_.load(std::memory_order_relaxed));
        sink.counter("speed_server_session_errors_total",
                     "Sessions that died after a successful handshake", {},
                     session_errors_.load(std::memory_order_relaxed));
        sink.counter("speed_server_oversized_frames_total",
                     "Frames refused for exceeding max_frame_bytes", {},
                     oversized_frames_.load(std::memory_order_relaxed));
      });

  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  loop_thread_ = std::thread([this] { loop(); });
}

StoreTcpServer::~StoreTcpServer() { stop(); }

void StoreTcpServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  // Workers first: they may be blocked on the ring, whose poller keeps
  // draining until ring stop — so join order is workers, ring, loop.
  {
    MutexLock lock(ready_mu_);
  }
  ready_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (ring_.has_value()) ring_->stop();
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(event_fd_, &one, sizeof(one));
  if (loop_thread_.joinable()) loop_thread_.join();
  // Abrupt teardown of live connections: clients see EOF/RST and surface it
  // as TcpError, same as the thread-per-connection server's shutdown().
  for (auto& [fd, conn] : conns_) {
    if (!conn->closed) {
      conn->closed = true;
      ::close(fd);
    }
  }
  conns_.clear();
  if (event_fd_ >= 0) {
    ::close(event_fd_);
    event_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Event loop (single thread; owns every fd).
// ---------------------------------------------------------------------------

void StoreTcpServer::loop() {
  const int listen_fd = listener_.fd();
  std::vector<epoll_event> events(64);
  while (!stopping_.load()) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only happens at teardown
    }
    for (int i = 0; i < n && !stopping_.load(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd) {
        accept_ready();
        continue;
      }
      if (fd == event_fd_) {
        std::uint64_t drained = 0;
        while (::read(event_fd_, &drained, sizeof(drained)) > 0) {
        }
        std::vector<std::shared_ptr<Conn>> done;
        {
          MutexLock lock(completed_mu_);
          done.swap(completed_);
        }
        for (const auto& conn : done) {
          if (conn->closed) continue;
          flush_conn(conn);
          update_interest(conn);
          reevaluate(conn);
        }
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      const std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & EPOLLOUT) != 0 && !conn->closed) {
        flush_conn(conn);
      }
      if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0 &&
          !conn->closed && !conn->read_closed) {
        handle_readable(conn);
      }
      if (!conn->closed) {
        update_interest(conn);
        reevaluate(conn);
      }
    }
  }
}

void StoreTcpServer::accept_ready() {
  for (;;) {
    std::optional<net::FramedSocket> socket;
    try {
      socket = listener_.try_accept();
    } catch (const net::TcpError&) {
      return;  // listener closed (stop) — the loop exits on stopping_
    }
    if (!socket.has_value()) return;
    const int fd = socket->release();
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    auto conn = std::make_shared<Conn>(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conn->interest = EPOLLIN;
    conns_.emplace(fd, std::move(conn));
  }
}

void StoreTcpServer::handle_readable(const std::shared_ptr<Conn>& conn) {
  bool eof = false;
  bool read_error = false;
  std::uint8_t buf[64 * 1024];
  while (!conn->read_closed) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->rbuf.insert(conn->rbuf.end(), buf, buf + n);
      // Parse as we go: an oversized length prefix flips read_closed before
      // the payload is ever buffered, let alone allocated whole.
      parse_frames(conn);
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    read_error = true;
    break;
  }
  if (!eof && !read_error) return;

  conn->read_closed = true;
  const bool mid_frame = (conn->rbuf.size() - conn->roff) > 0 || read_error;
  MutexLock lock(conn->mu);
  conn->close_after_flush = true;
  if (!conn->handshaken) {
    // Disconnect before the handshake completed. If a hello frame is already
    // parsed (or being processed), the worker decides accepted/rejected;
    // otherwise this mirrors the blocking server, where recv_frame failing
    // during the hello counted the connection as rejected.
    if (!conn->error_counted && conn->inbox.empty() && !conn->processing &&
        !conn->oversized) {
      ++rejected_;
      conn->error_counted = true;
    }
  } else if (mid_frame && !conn->error_counted) {
    ++session_errors_;  // client died mid-frame after a good handshake
    conn->error_counted = true;
  }
}

void StoreTcpServer::parse_frames(const std::shared_ptr<Conn>& conn) {
  const std::size_t max_frame =
      config_.max_frame_bytes > 0 && config_.max_frame_bytes < kTransportMaxFrame
          ? config_.max_frame_bytes
          : kTransportMaxFrame;
  std::vector<Bytes> frames;
  bool oversize = false;
  for (;;) {
    const std::size_t avail = conn->rbuf.size() - conn->roff;
    if (avail < 4) break;
    const std::uint8_t* p = conn->rbuf.data() + conn->roff;
    const std::uint32_t len = le32(p);
    if (len > max_frame) {
      oversize = true;
      break;
    }
    if (avail < 4u + len) break;
    frames.emplace_back(p + 4, p + 4 + len);
    conn->roff += 4u + len;
  }
  if (conn->roff == conn->rbuf.size()) {
    conn->rbuf.clear();
    conn->roff = 0;
  } else if (conn->roff > kCompactThreshold) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<std::ptrdiff_t>(conn->roff));
    conn->roff = 0;
  }
  if (oversize) {
    ++oversized_frames_;
    conn->read_closed = true;  // refuse the rest of the stream
  }
  if (frames.empty() && !oversize) return;
  MutexLock lock(conn->mu);
  for (auto& f : frames) conn->inbox.push_back(std::move(f));
  if (oversize) conn->oversized = true;
}

void StoreTcpServer::flush_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  MutexLock lock(conn->mu);
  bool write_failed = false;
  while (conn->woff < conn->wbuf.size()) {
    const ssize_t n = ::send(conn->fd, conn->wbuf.data() + conn->woff,
                             conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    write_failed = true;
    break;
  }
  if (conn->woff == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->woff = 0;
  } else if (conn->woff > kCompactThreshold) {
    conn->wbuf.erase(conn->wbuf.begin(),
                     conn->wbuf.begin() + static_cast<std::ptrdiff_t>(conn->woff));
    conn->woff = 0;
  }
  if (write_failed) {
    // Peer is gone; responses are undeliverable. Matches the blocking
    // server's send_frame throwing out of the serve loop.
    if (!conn->error_counted) {
      if (conn->handshaken) {
        ++session_errors_;
      } else {
        ++rejected_;
      }
      conn->error_counted = true;
    }
    conn->abort = true;
    conn->close_after_flush = true;
    conn->wbuf.clear();
    conn->woff = 0;
  }
}

void StoreTcpServer::update_interest(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  bool residual;
  {
    MutexLock lock(conn->mu);
    residual = conn->woff < conn->wbuf.size();
  }
  conn->want_write = residual;
  std::uint32_t mask = 0;
  if (!conn->read_closed) mask |= EPOLLIN;
  if (conn->want_write) mask |= EPOLLOUT;
  if (mask == conn->interest) return;
  conn->interest = mask;
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void StoreTcpServer::reevaluate(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  bool close_now = false;
  {
    MutexLock lock(conn->mu);
    const bool pending =
        !conn->abort && (!conn->inbox.empty() ||
                         (conn->oversized && !conn->oversized_handled));
    if (pending && !conn->processing) {
      conn->processing = true;
      {
        MutexLock ready_lock(ready_mu_);
        ready_.push_back(conn);
      }
      ready_cv_.notify_one();
      return;
    }
    close_now = conn->close_after_flush && !conn->processing && !pending &&
                conn->woff == conn->wbuf.size();
  }
  if (close_now) close_conn(conn);
}

void StoreTcpServer::close_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
}

// ---------------------------------------------------------------------------
// Worker pool (CPU only: handshake, unwrap, dispatch, wrap — never fds).
// ---------------------------------------------------------------------------

void StoreTcpServer::worker_loop() {
  for (;;) {
    std::shared_ptr<Conn> conn;
    {
      MutexLock lock(ready_mu_);
      while (!stopping_.load() && ready_.empty()) ready_cv_.wait(ready_mu_);
      if (stopping_.load()) return;
      conn = std::move(ready_.front());
      ready_.pop_front();
    }
    process_conn(conn);
  }
}

void StoreTcpServer::process_conn(const std::shared_ptr<Conn>& conn) {
  // Strand: this worker exclusively owns the connection's inbox until it
  // runs dry, so responses are produced — and wbuf-appended — in arrival
  // order, which the secure channel's sequence numbers require.
  for (;;) {
    Bytes frame;
    bool have_frame = false;
    bool do_oversize = false;
    {
      MutexLock lock(conn->mu);
      if (conn->abort) conn->inbox.clear();
      if (!conn->abort && !conn->inbox.empty()) {
        frame = std::move(conn->inbox.front());
        conn->inbox.pop_front();
        have_frame = true;
      } else if (!conn->abort && conn->oversized && !conn->oversized_handled) {
        conn->oversized_handled = true;
        do_oversize = true;
      } else {
        conn->processing = false;
        break;
      }
    }
    if (have_frame) {
      handle_frame_on_worker(conn, std::move(frame));
    } else if (do_oversize) {
      handle_oversize_on_worker(conn);
    }
    if (stopping_.load()) {
      MutexLock lock(conn->mu);
      conn->processing = false;
      break;
    }
  }
  notify_loop(conn);
}

void StoreTcpServer::handle_frame_on_worker(const std::shared_ptr<Conn>& conn,
                                            Bytes frame) {
  bool first;
  {
    MutexLock lock(conn->mu);
    first = !conn->handshaken;
  }
  if (first) {
    // Steps 1-2: attested handshake. `session` is strand-private, so the
    // emplace needs no lock; `handshaken` is shared and does.
    try {
      const net::HandshakeMessage client_hello = net::decode_handshake(frame);
      conn->session.emplace(store_, client_hello);  // throws on bad attestation
    } catch (const Error&) {
      ++rejected_;
      MutexLock lock(conn->mu);
      conn->abort = true;
      conn->close_after_flush = true;
      conn->error_counted = true;
      return;
    }
    if (switchless_ring() != nullptr) {
      conn->session->set_switchless(switchless_ring());
    }
    conn->session->set_max_batch_entries(config_.max_batch_entries);
    const Bytes reply = net::encode_handshake(conn->session->server_hello());
    ++accepted_;
    MutexLock lock(conn->mu);
    conn->handshaken = true;
    append_frame(conn->wbuf, reply);
    return;
  }

  Bytes response;
  try {
    response = conn->session->handle_frame(frame);
  } catch (const Error&) {
    // Channel violation (tamper/replay) or a poisoned session: drop the
    // connection, costing only itself.
    MutexLock lock(conn->mu);
    if (!conn->error_counted) {
      ++session_errors_;
      conn->error_counted = true;
    }
    conn->abort = true;
    conn->close_after_flush = true;
    return;
  }
  MutexLock lock(conn->mu);
  append_frame(conn->wbuf, response);
}

void StoreTcpServer::handle_oversize_on_worker(
    const std::shared_ptr<Conn>& conn) {
  bool handshaken;
  {
    MutexLock lock(conn->mu);
    handshaken = conn->handshaken;
  }
  if (!handshaken) {
    // A giant pre-handshake frame is just a malformed hello.
    ++rejected_;
    MutexLock lock(conn->mu);
    conn->abort = true;
    conn->close_after_flush = true;
    conn->error_counted = true;
    return;
  }
  try {
    const Bytes err = conn->session->wrap_error(
        serialize::ErrorCode::kFrameTooLarge,
        "frame exceeds server max_frame_bytes");
    MutexLock lock(conn->mu);
    append_frame(conn->wbuf, err);
    conn->close_after_flush = true;
  } catch (const Error&) {
    MutexLock lock(conn->mu);
    if (!conn->error_counted) {
      ++session_errors_;
      conn->error_counted = true;
    }
    conn->abort = true;
    conn->close_after_flush = true;
  }
}

void StoreTcpServer::notify_loop(const std::shared_ptr<Conn>& conn) {
  {
    MutexLock lock(completed_mu_);
    completed_.push_back(conn);
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(event_fd_, &one, sizeof(one));
}

// ---------------------------------------------------------------------------
// Client-side dialers.
// ---------------------------------------------------------------------------

TcpAppConnection connect_tcp_app(sgx::Enclave& app,
                                 const sgx::Measurement& store_measurement,
                                 const std::string& host, std::uint16_t port) {
  net::FramedSocket socket = net::tcp_connect(host, port);

  const net::ChannelKeyExchange kx(app);
  socket.send_frame(net::encode_handshake(kx.hello(store_measurement)));
  const net::HandshakeMessage server_hello =
      net::decode_handshake(socket.recv_frame());
  auto key = kx.derive(server_hello, store_measurement);
  if (!key.has_value()) {
    throw ProtocolError("connect_tcp_app: store failed attestation");
  }

  TcpAppConnection conn;
  conn.session_key = std::move(*key);
  conn.protocol_version = net::negotiate_version(
      net::kProtocolVersionCurrent, net::handshake_version(server_hello));
  conn.transport = std::make_unique<net::TcpTransport>(std::move(socket));
  return conn;
}

TcpAppConnection connect_tcp_app_resilient(
    sgx::Enclave& app, const sgx::Measurement& store_measurement,
    const std::string& host, std::uint16_t port,
    net::ResilienceConfig resilience, std::int64_t deadline_ms) {
  const auto dial = [&app, store_measurement, host, port, deadline_ms] {
    TcpAppConnection fresh = connect_tcp_app(app, store_measurement, host, port);
    if (deadline_ms >= 0) {
      static_cast<net::TcpTransport*>(fresh.transport.get())
          ->set_deadline_ms(deadline_ms);
    }
    return fresh;
  };

  TcpAppConnection initial = dial();
  TcpAppConnection conn;
  conn.session_key = std::move(initial.session_key);
  conn.protocol_version = initial.protocol_version;
  conn.transport = std::make_unique<net::ResilientTransport>(
      std::move(initial.transport),
      [dial]() -> net::ResilientTransport::Connection {
        TcpAppConnection fresh = dial();
        return {std::move(fresh.transport), std::move(fresh.session_key)};
      },
      resilience);
  return conn;
}

}  // namespace speed::store
