// Master-store synchronization (paper §IV-B Remark).
//
// A dedicated master ResultStore can periodically collect the popular
// (frequently hit) entries of per-machine stores, and per-machine replicas
// can pull the master's hottest entries. Entries are self-protecting — the
// payloads are AEAD ciphertexts whose keys only eligible applications can
// recover — so replication does not need the per-application secure channel;
// in a real deployment this link would still run over attested TLS for
// integrity. Because tags are deterministic, only one ciphertext version per
// computation ever needs to be stored, and it remains decryptable by every
// eligible application regardless of which machine computed it.
#pragma once

#include "net/channel.h"
#include "store/result_store.h"

namespace speed::store {

/// Pull up to `max_entries` of `master`'s hottest entries into `replica`
/// through the wire protocol. Returns how many were newly inserted.
///
/// Failures — a malformed or unexpected response, a decode error — surface
/// as net::StoreUnavailableError, the same fail-open signal every other
/// store fault produces: sync is an optimization, and a broken master must
/// degrade quietly (the replica keeps serving and recomputing) rather than
/// crash the replication driver with a raw protocol error.
inline std::size_t sync_replica_from_master(ResultStore& replica,
                                            ResultStore& master,
                                            std::uint32_t max_entries) {
  try {
    const Bytes request =
        serialize::encode_message(serialize::SyncRequest{max_entries});
    const Bytes response = master.handle(request);
    const auto decoded = serialize::decode_message(response);
    const auto* batch = std::get_if<serialize::SyncResponse>(&decoded);
    if (batch == nullptr) {
      throw net::StoreUnavailableError(
          "sync_replica_from_master: unexpected response type");
    }
    return replica.merge_from_master(*batch);
  } catch (const net::StoreUnavailableError&) {
    throw;
  } catch (const Error& e) {
    throw net::StoreUnavailableError(std::string("sync_replica_from_master: ") +
                                     e.what());
  }
}

}  // namespace speed::store
