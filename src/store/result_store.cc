#include "store/result_store.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.h"
#include "serialize/codec.h"

namespace speed::store {

using serialize::EntryPayload;
using serialize::GetRequest;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;
using serialize::SyncEntry;
using serialize::SyncRequest;
using serialize::SyncResponse;
using serialize::Tag;

namespace {

/// Resident-memory cost model of one *decoded* record held in the cache or
/// pinned tier: tag + owner + digest + locator + container overhead, plus
/// the variable fields. Deliberately on the generous side — the EPC charge
/// must never undercount real trusted memory.
constexpr std::uint64_t kMetaRecordOverheadBytes = 128;

/// Cost of one interned owner slot (id + refcount + lookup entry).
constexpr std::uint64_t kOwnerSlotBytes = 80;

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Records the enclosing scope's duration into a shard histogram on every
/// exit path (get/insert have several).
struct LatencyScope {
  explicit LatencyScope(telemetry::Histogram& h) : hist(h) {}
  ~LatencyScope() { hist.record(sw.elapsed_ns()); }
  telemetry::Histogram& hist;
  Stopwatch sw;
};

}  // namespace

// ------------------------------------------------------------ QuotaLedger

ResultStore::QuotaLedger::QuotaLedger(std::uint64_t limit, std::size_t stripes)
    : limit_(limit) {
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

const ResultStore::QuotaLedger::Stripe& ResultStore::QuotaLedger::stripe_for(
    const serialize::AppId& app) const {
  return *stripes_[AppIdHash{}(app) % stripes_.size()];
}

ResultStore::QuotaLedger::Stripe& ResultStore::QuotaLedger::stripe_for(
    const serialize::AppId& app) {
  return *stripes_[AppIdHash{}(app) % stripes_.size()];
}

bool ResultStore::QuotaLedger::try_charge(const serialize::AppId& app,
                                          std::uint64_t bytes) {
  Stripe& s = stripe_for(app);
  MutexLock lock(s.mu);
  std::uint64_t& used = s.used[app];
  if (used + bytes > limit_) {
    if (used == 0) s.used.erase(app);
    return false;
  }
  used += bytes;
  return true;
}

void ResultStore::QuotaLedger::charge(const serialize::AppId& app,
                                      std::uint64_t bytes) {
  Stripe& s = stripe_for(app);
  MutexLock lock(s.mu);
  s.used[app] += bytes;
}

void ResultStore::QuotaLedger::release(const serialize::AppId& app,
                                       std::uint64_t bytes) {
  Stripe& s = stripe_for(app);
  MutexLock lock(s.mu);
  const auto it = s.used.find(app);
  if (it == s.used.end()) return;
  it->second -= std::min(it->second, bytes);
  // Erase emptied entries: an adversary cycling through app identities must
  // not be able to grow the ledger without bound, and the leak-check tests
  // assert a fully drained app leaves no residue.
  if (it->second == 0) s.used.erase(it);
}

std::uint64_t ResultStore::QuotaLedger::used(
    const serialize::AppId& app) const {
  const Stripe& s = stripe_for(app);
  MutexLock lock(s.mu);
  const auto it = s.used.find(app);
  return it == s.used.end() ? 0 : it->second;
}

// ------------------------------------------------------------- ResultStore

ResultStore::ResultStore(sgx::Platform& platform, StoreConfig config)
    : platform_(platform),
      enclave_(platform.create_enclave("speed-result-store")),
      config_(std::move(config)),
      backend_(config_.backend ? config_.backend
                               : std::make_shared<MemoryBackend>()),
      quota_(config_.per_app_quota_bytes,
             std::max<std::size_t>(config_.shards, 8)) {
  if (config_.shards == 0) {
    throw ProtocolError("ResultStore: shards must be >= 1");
  }
  shard_capacity_bytes_ =
      std::max<std::uint64_t>(1, ceil_div(config_.max_ciphertext_bytes,
                                          config_.shards));
  shard_max_entries_ = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, ceil_div(config_.max_entries, config_.shards)));
  const std::uint64_t cache_budget =
      config_.resident_meta_bytes == 0
          ? 0
          : std::max<std::uint64_t>(
                1, ceil_div(config_.resident_meta_bytes, config_.shards));
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(*enclave_, cache_budget));
  }
  // Charge the initial index tables before anything is inserted, so the
  // leak-check baseline (EPC after construction) already includes them.
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    sync_trusted_charge_locked(*shard);
  }
  recover_from_backend();
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        constexpr auto kShard = telemetry::LabelKey::of("shard");
        for (std::size_t i = 0; i < shards_.size(); ++i) {
          const Shard& s = *shards_[i];
          const telemetry::LabelSet labels{
              {kShard, telemetry::LabelValue::index(i)}};
          sink.counter("speed_store_get_requests_total",
                       "GET requests dispatched into the store enclave",
                       labels, s.get_requests.value());
          sink.counter("speed_store_hits_total",
                       "GETs served from the dedup dictionary", labels,
                       s.hits.value());
          sink.counter("speed_store_put_requests_total",
                       "PUT requests dispatched into the store enclave",
                       labels, s.put_requests.value());
          sink.counter("speed_store_stored_total", "Entries newly inserted",
                       labels, s.stored.value());
          sink.counter("speed_store_duplicate_puts_total",
                       "PUTs that lost the first-write race", labels,
                       s.duplicate_puts.value());
          sink.counter("speed_store_quota_rejections_total",
                       "PUTs rejected by the per-app byte quota", labels,
                       s.quota_rejections.value());
          sink.counter("speed_store_evictions_total",
                       "Entries evicted for arena capacity", labels,
                       s.evictions.value());
          sink.counter("speed_store_corrupt_blobs_total",
                       "Host-side blob corruption detected on GET", labels,
                       s.corrupt_blobs.value());
          sink.counter("speed_store_meta_spills_total",
                       "Sealed metadata records written to the spill tier",
                       labels, s.meta_spills.value());
          sink.counter("speed_store_meta_fault_ins_total",
                       "Cold metadata records faulted back into the enclave",
                       labels, s.meta_fault_ins.value());
          sink.gauge("speed_store_entries", "Live dictionary entries", labels,
                     s.entries.value());
          sink.gauge("speed_store_ciphertext_bytes",
                     "Untrusted arena bytes in use", labels,
                     s.ciphertext_bytes.value());
          sink.gauge("speed_store_meta_resident_bytes",
                     "Trusted bytes charged for metadata (index+cache+pins)",
                     labels, s.meta_resident_bytes.value());
          sink.gauge("speed_store_meta_index_bytes",
                     "Slot-table share of the resident metadata charge",
                     labels, s.meta_index_bytes.value());
          sink.gauge("speed_store_meta_pinned_records",
                     "Entries pinned resident (spill write failed)", labels,
                     s.meta_pinned_records.value());
          sink.histogram("speed_store_get_ns",
                         "In-enclave GET service latency", labels, s.get_ns);
          sink.histogram("speed_store_put_ns",
                         "In-enclave PUT/insert service latency", labels,
                         s.put_ns);
        }
        const BackendStats b = backend_->stats();
        sink.counter("speed_store_wal_appends_total",
                     "Sealed metadata WAL records appended", {},
                     b.wal_appends);
        sink.counter("speed_store_wal_fsyncs_total",
                     "WAL fsync batches forced to stable storage", {},
                     b.wal_fsyncs);
        sink.counter("speed_store_wal_bytes_total",
                     "Framed bytes appended to the metadata WAL", {},
                     b.wal_bytes);
        sink.counter("speed_store_segments_created_total",
                     "Blob segments created by the backend", {},
                     b.segments_created);
        sink.counter("speed_store_segments_compacted_total",
                     "Fully-dead blob segments reclaimed", {},
                     b.segments_compacted);
        sink.counter("speed_store_backend_write_errors_total",
                     "Backend writes that failed (disk full, torn)", {},
                     backend_write_errors_.value());
        sink.counter("speed_store_recovered_entries_total",
                     "Dictionary entries rebuilt by WAL replay", {},
                     recovered_entries_.value());
        sink.counter("speed_store_wal_torn_tails_total",
                     "WAL tails truncated during recovery", {},
                     wal_torn_tails_.value());
        sink.counter("speed_store_push_accepted_total",
                     "Entries accepted from anti-entropy pushes", {},
                     push_accepted_.value());
        sink.counter("speed_store_pull_entries_served_total",
                     "Entries served to anti-entropy pulls", {},
                     pull_entries_served_.value());
        sink.counter("speed_store_infra_rejections_total",
                     "Infra-plane messages rejected on app sessions", {},
                     infra_rejections_.value());
        sink.histogram("speed_store_batch_ops",
                       "Sub-requests per dispatched batch frame", {},
                       batch_ops_);
        sink.gauge("speed_store_cluster_epoch",
                   "Membership epoch this node has applied", {},
                   static_cast<std::int64_t>(cluster_view().epoch));
        sink.gauge("speed_store_recovery_ms",
                   "Wall time of the last constructor-time WAL replay", {},
                   recovery_ms_.value());
        sink.gauge("speed_store_degraded",
                   "1 after a backend write failure (PUTs rejected)", {},
                   degraded() ? 1 : 0);
        sink.gauge("speed_store_backend_live_blob_bytes",
                   "Blob bytes reachable from the trusted dictionary", {},
                   static_cast<std::int64_t>(b.live_blob_bytes));
        sink.gauge("speed_store_backend_dead_blob_bytes",
                   "Deleted blob bytes awaiting compaction", {},
                   static_cast<std::int64_t>(b.dead_blob_bytes));
      });
}

ResultStore::Shard& ResultStore::shard_for(const Tag& tag) {
  // Bytes [8, 16) of the tag — disjoint from the bytes MetaIndex fingerprints
  // ([0, 8)) — so shard choice and bucket choice stay independent. Tags are
  // SHA-256 outputs, hence uniform.
  std::uint64_t v;
  __builtin_memcpy(&v, tag.data() + 8, sizeof(v));
  return *shards_[v % shards_.size()];
}

Bytes ResultStore::handle(ByteView request) {
  // Host side: preliminary parse happens outside the enclave (only the type
  // byte is inspected), then one ECALL dispatches into the trusted body.
  const Message req = serialize::decode_message(request);
  const Message resp = enclave_->ecall([&] { return dispatch_trusted(req); });
  return serialize::encode_message(resp);
}

Message ResultStore::dispatch_trusted(const Message& request, Peer peer) {
  if (const auto* get_req = std::get_if<GetRequest>(&request)) {
    return get_trusted(*get_req);
  }
  if (const auto* put_req = std::get_if<PutRequest>(&request)) {
    return put_trusted(*put_req);
  }
  if (const auto* hb_req = std::get_if<serialize::HeartbeatRequest>(&request)) {
    return heartbeat_trusted(*hb_req);
  }
  if (const auto* batch_req = std::get_if<serialize::BatchRequest>(&request)) {
    return batch_trusted(*batch_req, peer);
  }
  if (peer == Peer::kApp) {
    // Applications never speak the infra plane: PUSH/PULL merges are
    // quota-exempt, so letting an app session reach them would let it store
    // bytes its quota ledger never sees.
    infra_rejections_.inc();
    throw ProtocolError("ResultStore: infra message on application session");
  }
  if (const auto* sync_req = std::get_if<SyncRequest>(&request)) {
    return sync_trusted(*sync_req);
  }
  if (const auto* pull_req = std::get_if<serialize::PullRequest>(&request)) {
    return pull_trusted(*pull_req);
  }
  if (const auto* push_req = std::get_if<serialize::PushRequest>(&request)) {
    return push_trusted(*push_req);
  }
  if (const auto* mem_req =
          std::get_if<serialize::MembershipUpdate>(&request)) {
    return membership_trusted(*mem_req);
  }
  throw ProtocolError("ResultStore: request type has no server handler");
}

serialize::BatchResponse ResultStore::batch_trusted(
    const serialize::BatchRequest& req, Peer peer) {
  serialize::BatchResponse resp;
  resp.replies.reserve(req.ops.size());
  batch_ops_.record(req.ops.size());
  for (const serialize::BatchOp& op : req.ops) {
    // Per-entry containment: a failed sub-request answers with an
    // ErrorResponse in its slot and never disturbs its neighbors.
    try {
      const Message sub = std::visit(
          [](const auto& o) { return Message(o); }, op);
      Message reply = dispatch_trusted(sub, peer);
      if (auto* get_resp = std::get_if<GetResponse>(&reply)) {
        resp.replies.emplace_back(std::move(*get_resp));
      } else if (const auto* put_resp = std::get_if<PutResponse>(&reply)) {
        resp.replies.emplace_back(*put_resp);
      } else {
        resp.replies.emplace_back(serialize::ErrorResponse{
            serialize::ErrorCode::kBadRequest, "unexpected reply type"});
      }
    } catch (const Error& e) {
      resp.replies.emplace_back(serialize::ErrorResponse{
          serialize::ErrorCode::kBadRequest, e.what()});
    }
  }
  return resp;
}

GetResponse ResultStore::get(const GetRequest& req) {
  return enclave_->ecall([&] { return get_trusted(req); });
}

PutResponse ResultStore::put(const PutRequest& req) {
  return enclave_->ecall([&] { return put_trusted(req); });
}

SyncResponse ResultStore::sync(const SyncRequest& req) {
  return enclave_->ecall([&] { return sync_trusted(req); });
}

// --------------------------------------------------- metadata two-tier core

std::uint64_t ResultStore::record_bytes(const MetaRecord& rec) {
  return kMetaRecordOverheadBytes + rec.challenge.size() +
         rec.wrapped_key.size();
}

std::uint32_t ResultStore::next_clock_locked(Shard& shard) {
  if (shard.clock == std::numeric_limits<std::uint32_t>::max()) {
    // Rank-compress every live stamp so relative recency survives the wrap
    // (reached once per 2^32 touches per shard; O(n log n) then).
    std::vector<std::uint32_t> stamps;
    stamps.reserve(shard.index.size());
    shard.index.for_each(
        [&](const MetaSlot& s) { stamps.push_back(s.clock); });
    std::sort(stamps.begin(), stamps.end());
    stamps.erase(std::unique(stamps.begin(), stamps.end()), stamps.end());
    shard.index.for_each([&](MetaSlot& s) {
      s.clock = static_cast<std::uint32_t>(
          std::lower_bound(stamps.begin(), stamps.end(), s.clock) -
          stamps.begin());
    });
    shard.clock = static_cast<std::uint32_t>(stamps.size());
  }
  return ++shard.clock;
}

std::uint32_t ResultStore::owner_intern_locked(Shard& shard,
                                               const serialize::AppId& app) {
  const auto it = shard.owner_lookup.find(app);
  if (it != shard.owner_lookup.end()) {
    ++shard.owners[it->second].refs;
    return it->second;
  }
  std::uint32_t ref;
  if (!shard.owner_free.empty()) {
    ref = shard.owner_free.back();
    shard.owner_free.pop_back();
  } else {
    ref = static_cast<std::uint32_t>(shard.owners.size());
    shard.owners.emplace_back();
  }
  shard.owners[ref].id = app;
  shard.owners[ref].refs = 1;
  shard.owner_lookup.emplace(app, ref);
  return ref;
}

void ResultStore::owner_release_locked(Shard& shard, std::uint32_t ref) {
  OwnerSlot& slot = shard.owners[ref];
  if (--slot.refs == 0) {
    shard.owner_lookup.erase(slot.id);
    shard.owner_free.push_back(ref);
  }
}

void ResultStore::cache_put_locked(Shard& shard, std::uint64_t loc,
                                   MetaRecord rec) {
  if (shard.cache_budget == 0) return;
  const auto it = shard.cache.find(loc);
  if (it != shard.cache.end()) {
    shard.cache_lru.splice(shard.cache_lru.begin(), shard.cache_lru,
                           it->second.lru_it);
    return;
  }
  shard.cache_bytes += record_bytes(rec);
  shard.cache_lru.push_front(loc);
  shard.cache.emplace(loc, CachedMeta{std::move(rec), shard.cache_lru.begin()});
  // Evict cold decoded records down to budget, always keeping the newest
  // (its caller is about to use it).
  while (shard.cache_bytes > shard.cache_budget && shard.cache.size() > 1) {
    const std::uint64_t victim = shard.cache_lru.back();
    const auto vit = shard.cache.find(victim);
    shard.cache_bytes -= record_bytes(vit->second.rec);
    shard.cache_lru.pop_back();
    shard.cache.erase(vit);
  }
}

const MetaRecord* ResultStore::cache_get_locked(Shard& shard,
                                                std::uint64_t loc) {
  const auto it = shard.cache.find(loc);
  if (it == shard.cache.end()) return nullptr;
  shard.cache_lru.splice(shard.cache_lru.begin(), shard.cache_lru,
                         it->second.lru_it);
  return &it->second.rec;
}

void ResultStore::cache_erase_locked(Shard& shard, std::uint64_t loc) {
  const auto it = shard.cache.find(loc);
  if (it == shard.cache.end()) return;
  shard.cache_bytes -= record_bytes(it->second.rec);
  shard.cache_lru.erase(it->second.lru_it);
  shard.cache.erase(it);
}

std::optional<MetaRecord> ResultStore::load_record_locked(
    Shard& shard, const MetaSlot& slot) {
  if (slot.loc & kPinnedLocBit) {
    const auto it = shard.pinned.find(slot.loc);
    if (it == shard.pinned.end()) return std::nullopt;
    return it->second;
  }
  if (const MetaRecord* cached = cache_get_locked(shard, slot.loc)) {
    return *cached;
  }
  // Fault-in: read the sealed record back, unseal under the metadata AAD,
  // decode. Any failure (host deleted/corrupted/swapped the spill blob)
  // reports "unreadable" — never a forged record.
  const auto sealed = backend_->get_blob(unpack_loc(slot.loc, slot.spill_len));
  if (!sealed.has_value()) return std::nullopt;
  const auto plain = enclave_->unseal(meta_seal_aad(), *sealed);
  if (!plain.has_value()) return std::nullopt;
  MetaRecord rec;
  try {
    rec = decode_meta_record(*plain);
  } catch (const SerializationError&) {
    return std::nullopt;
  }
  shard.meta_fault_ins.inc();
  std::optional<MetaRecord> out = rec;
  cache_put_locked(shard, slot.loc, std::move(rec));
  sync_trusted_charge_locked(shard);
  return out;
}

std::optional<ResultStore::Found> ResultStore::find_entry_locked(
    Shard& shard, const Tag& tag) {
  const std::uint64_t fp = MetaIndex::fingerprint(tag);
  // The probe can pass over entries whose spill record the host destroyed;
  // those are dropped and the probe restarted (a drop invalidates slot
  // pointers). Each retry removes at least one entry, so this terminates.
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> unreadable;
    MetaRecord rec;
    MetaSlot* slot = shard.index.find(fp, [&](const MetaSlot& s) {
      shard.mu.assert_held();
      auto loaded = load_record_locked(shard, s);
      if (!loaded.has_value()) {
        unreadable.emplace_back(s.fp, s.loc);
        return false;
      }
      if (loaded->tag != tag) return false;  // fingerprint collision
      rec = std::move(*loaded);
      return true;
    });
    if (unreadable.empty()) {
      if (slot == nullptr) return std::nullopt;
      return Found{slot, std::move(rec)};
    }
    for (const auto& [ufp, uloc] : unreadable) {
      drop_unreadable_locked(shard, ufp, uloc);
    }
  }
  return std::nullopt;
}

void ResultStore::drop_unreadable_locked(Shard& shard, std::uint64_t fp,
                                         std::uint64_t loc) {
  MetaSlot* slot = shard.index.find_loc(fp, loc);
  if (slot == nullptr) return;
  // The record (and with it the result blob's ref) is gone, so accounting is
  // released from resident slot fields alone; the orphaned result blob waits
  // for compaction. A durable store's WAL still holds the insert — recovery
  // resurrects the entry with a fresh spill record.
  shard.corrupt_blobs.inc();
  quota_.release(shard.owners[slot->owner_ref].id, slot->blob_bytes);
  owner_release_locked(shard, slot->owner_ref);
  shard.ciphertext_bytes.sub(static_cast<std::int64_t>(slot->blob_bytes));
  shard.entries.sub(1);
  if (loc & kPinnedLocBit) {
    const auto it = shard.pinned.find(loc);
    if (it != shard.pinned.end()) {
      shard.pinned_bytes -= record_bytes(it->second);
      shard.pinned.erase(it);
    }
  } else {
    cache_erase_locked(shard, loc);
  }
  shard.index.erase_loc(fp, loc);
  sync_trusted_charge_locked(shard);
}

void ResultStore::erase_entry_locked(Shard& shard, const MetaSlot& slot,
                                     const MetaRecord& rec, bool log_wal) {
  if (log_wal && backend_->durable() &&
      !degraded_.load(std::memory_order_relaxed)) {
    try {
      WalRecord wal;
      wal.op = WalRecord::Op::kErase;
      wal.tag = rec.tag;
      wal_append_record(wal);
    } catch (const BackendWriteError&) {
      // The in-memory erase still proceeds. A recovered store may resurrect
      // the entry; if its blob is gone by then, note_blob() drops it.
      enter_degraded();
    }
  }
  backend_->delete_blob(rec.blob);
  if (slot.loc & kPinnedLocBit) {
    const auto it = shard.pinned.find(slot.loc);
    if (it != shard.pinned.end()) {
      shard.pinned_bytes -= record_bytes(it->second);
      shard.pinned.erase(it);
    }
  } else {
    backend_->delete_blob(unpack_loc(slot.loc, slot.spill_len));
    cache_erase_locked(shard, slot.loc);
  }
  shard.ciphertext_bytes.sub(static_cast<std::int64_t>(rec.blob_bytes));
  quota_.release(rec.owner, rec.blob_bytes);
  owner_release_locked(shard, slot.owner_ref);
  shard.index.erase_loc(slot.fp, slot.loc);
  shard.entries.sub(1);
  sync_trusted_charge_locked(shard);
}

bool ResultStore::evict_one_locked(Shard& shard) {
  while (shard.index.size() > 0) {
    const bool lfu = config_.eviction == StoreConfig::Eviction::kLfu;
    bool found = false;
    std::uint64_t best_key = 0;
    std::uint64_t fp = 0;
    std::uint64_t loc = 0;
    // kLru: oldest recency stamp. kLfu: fewest hits, ties toward oldest
    // stamp — lexicographic (hits, clock), packed into one u64 key.
    shard.index.for_each([&](const MetaSlot& s) {
      const std::uint64_t key =
          lfu ? (static_cast<std::uint64_t>(s.hits) << 32) | s.clock
              : static_cast<std::uint64_t>(s.clock);
      if (!found || key < best_key) {
        found = true;
        best_key = key;
        fp = s.fp;
        loc = s.loc;
      }
    });
    if (!found) return false;
    MetaSlot* slot = shard.index.find_loc(fp, loc);
    if (slot == nullptr) return false;
    const MetaSlot victim = *slot;
    const auto rec = load_record_locked(shard, victim);
    if (!rec.has_value()) {
      // Unreadable victim: drop it (which frees space too) and rescan.
      drop_unreadable_locked(shard, fp, loc);
      continue;
    }
    erase_entry_locked(shard, victim, *rec, /*log_wal=*/true);
    shard.evictions.inc();
    return true;
  }
  return false;
}

void ResultStore::evict_for_space_locked(Shard& shard,
                                         std::uint64_t incoming_bytes) {
  while (shard.index.size() > 0 &&
         static_cast<std::uint64_t>(shard.ciphertext_bytes.value()) +
                 incoming_bytes >
             shard_capacity_bytes_) {
    if (!evict_one_locked(shard)) break;
  }
}

std::pair<std::uint64_t, std::uint16_t> ResultStore::spill_record(
    const MetaRecord& rec) {
  const Bytes sealed = enclave_->seal(meta_seal_aad(), encode_meta_record(rec));
  const BlobRef ref = backend_->put_blob(sealed);  // may throw
  const auto packed = pack_loc(ref);
  if (!packed.has_value() ||
      sealed.size() > std::numeric_limits<std::uint16_t>::max()) {
    // Locator outside the packable range (not produced by in-tree backends):
    // treat like a failed write so the caller pins or rejects.
    backend_->delete_blob(ref);
    throw BackendWriteError("meta spill locator unrepresentable");
  }
  return {*packed, static_cast<std::uint16_t>(sealed.size())};
}

std::uint64_t ResultStore::pin_record_locked(Shard& shard, MetaRecord rec) {
  const std::uint64_t loc = kPinnedLocBit | shard.next_pin++;
  shard.pinned_bytes += record_bytes(rec);
  shard.pinned.emplace(loc, std::move(rec));
  return loc;
}

void ResultStore::sync_trusted_charge_locked(Shard& shard) {
  const std::uint64_t owner_bytes =
      (shard.owners.size() - shard.owner_free.size()) * kOwnerSlotBytes;
  shard.trusted_bytes = shard.index.capacity_bytes() + shard.cache_bytes +
                        shard.pinned_bytes + owner_bytes;
  shard.trusted_charge.resize(shard.trusted_bytes);
  shard.meta_resident_bytes.set(
      static_cast<std::int64_t>(shard.trusted_bytes));
  shard.meta_index_bytes.set(
      static_cast<std::int64_t>(shard.index.capacity_bytes()));
  shard.meta_pinned_records.set(static_cast<std::int64_t>(shard.pinned.size()));
}

// ----------------------------------------------------------- request paths

GetResponse ResultStore::get_trusted(const GetRequest& req) {
  Shard& shard = shard_for(req.tag);
  shard.get_requests.inc();
  const LatencyScope timer(shard.get_ns);
  GetResponse resp;
  MutexLock lock(shard.mu);
  // Simulated in-enclave service time (marshalling + verification under
  // load); 0 outside throughput benches. Deliberately inside the critical
  // section — that is the work the lock protects.
  sgx::charge_wait(platform_.cost_model(),
                   platform_.cost_model().store_service_ns);
  auto found = find_entry_locked(shard, req.tag);
  if (!found.has_value()) return resp;

  std::optional<Bytes> blob = backend_->get_blob(found->rec.blob);
  if (!blob.has_value()) {
    // Host deleted the ciphertext from under us: degrade to a miss and drop
    // the orphaned metadata.
    shard.corrupt_blobs.inc();
    erase_entry_locked(shard, *found->slot, found->rec, /*log_wal=*/true);
    return resp;
  }
  // Verify the untrusted blob against the trusted digest before serving it
  // (the "authentication MAC" kept in the dictionary entry, §IV-B).
  const auto digest = crypto::Sha256::digest(*blob);
  if (!ct_equal(ByteView(digest.data(), digest.size()),
                ByteView(found->rec.blob_digest.data(),
                         found->rec.blob_digest.size()))) {
    shard.corrupt_blobs.inc();
    erase_entry_locked(shard, *found->slot, found->rec, /*log_wal=*/true);
    return resp;
  }

  shard.hits.inc();
  if (found->slot->hits < std::numeric_limits<std::uint16_t>::max()) {
    ++found->slot->hits;
  }
  found->slot->clock = next_clock_locked(shard);
  resp.found = true;
  resp.entry.challenge = std::move(found->rec.challenge);
  resp.entry.wrapped_key = std::move(found->rec.wrapped_key);
  resp.entry.result_ct = std::move(*blob);
  return resp;
}

PutResponse ResultStore::put_trusted(const PutRequest& req) {
  shard_for(req.tag).put_requests.inc();
  return PutResponse{
      insert_trusted(req.tag, req.requester, req.entry, /*enforce_quota=*/true)};
}

PutStatus ResultStore::insert_trusted(const Tag& tag,
                                      const serialize::AppId& owner,
                                      const EntryPayload& entry,
                                      bool enforce_quota) {
  Shard& shard = shard_for(tag);
  const LatencyScope timer(shard.put_ns);
  MutexLock lock(shard.mu);
  sgx::charge_wait(platform_.cost_model(),
                   platform_.cost_model().store_service_ns);
  if (find_entry_locked(shard, tag).has_value()) {
    // Concurrent initial computations of the same tag: first write wins; the
    // stored ciphertext is decryptable by every eligible application anyway
    // (§IV-B Remark).
    shard.duplicate_puts.inc();
    return PutStatus::kAlreadyPresent;
  }
  const std::uint64_t blob_bytes = entry.result_ct.size();
  if (blob_bytes > shard_capacity_bytes_ ||
      blob_bytes > std::numeric_limits<std::uint32_t>::max() ||
      entry.challenge.size() > kMaxMetaVarBytes ||
      entry.wrapped_key.size() > kMaxMetaVarBytes ||
      shard.index.size() >= shard_max_entries_ ||
      degraded_.load(std::memory_order_relaxed)) {
    return PutStatus::kRejected;
  }
  if (enforce_quota) {
    if (!quota_.try_charge(owner, blob_bytes)) {
      shard.quota_rejections.inc();
      return PutStatus::kQuotaExceeded;
    }
  } else {
    quota_.charge(owner, blob_bytes);
  }
  evict_for_space_locked(shard, blob_bytes);
  if (degraded_.load(std::memory_order_relaxed)) {
    // An eviction's erase record tore the log; nothing may be acknowledged
    // past that point.
    quota_.release(owner, blob_bytes);
    return PutStatus::kRejected;
  }

  MetaRecord rec;
  rec.tag = tag;
  rec.owner = owner;
  rec.challenge = entry.challenge;
  rec.wrapped_key = entry.wrapped_key;
  rec.blob_digest = crypto::Sha256::digest(entry.result_ct);
  rec.blob_bytes = blob_bytes;

  // Result blob first, spill record second, WAL record last: a crash between
  // any two leaves unreferenced blobs (reclaimed by compaction), never an
  // acknowledged record whose data is missing. The backend syncs segments
  // before the log for the same reason (file_backend.cc).
  bool blob_placed = false;
  bool spill_placed = false;
  std::uint64_t loc = 0;
  std::uint16_t spill_len = 0;
  try {
    rec.blob = backend_->put_blob(entry.result_ct);
    blob_placed = true;
    std::tie(loc, spill_len) = spill_record(rec);
    spill_placed = true;
    if (backend_->durable()) {
      WalRecord wal;
      wal.op = WalRecord::Op::kInsert;
      wal.tag = tag;
      wal.owner = owner;
      wal.challenge = rec.challenge;
      wal.wrapped_key = rec.wrapped_key;
      wal.blob_digest = rec.blob_digest;
      wal.blob_bytes = blob_bytes;
      wal.ref = rec.blob;
      wal_append_record(wal);
    }
  } catch (const BackendWriteError&) {
    enter_degraded();
    if (spill_placed) backend_->delete_blob(unpack_loc(loc, spill_len));
    if (blob_placed) backend_->delete_blob(rec.blob);
    quota_.release(owner, blob_bytes);
    return PutStatus::kRejected;
  }

  MetaSlot slot;
  slot.fp = MetaIndex::fingerprint(tag);
  slot.loc = loc;
  slot.clock = next_clock_locked(shard);
  slot.blob_bytes = static_cast<std::uint32_t>(blob_bytes);
  slot.owner_ref = owner_intern_locked(shard, owner);
  slot.spill_len = spill_len;
  slot.hits = 0;
  shard.index.insert(slot);
  shard.meta_spills.inc();
  cache_put_locked(shard, loc, std::move(rec));
  shard.stored.inc();
  shard.entries.add(1);
  shard.ciphertext_bytes.add(static_cast<std::int64_t>(blob_bytes));
  sync_trusted_charge_locked(shard);
  return PutStatus::kStored;
}

SyncResponse ResultStore::sync_trusted(const SyncRequest& req) {
  // Serve the hottest entries (popularity = hit count), capped at
  // max_entries; this is what a master store replicates to peers. Two-phase
  // across shards: rank a point-in-time (hits, tag) census taken one shard
  // at a time, then re-fetch the winners — entries evicted between phases
  // are simply skipped, like entries whose blob vanished. The census is
  // spill-aware: cold entries are faulted in for their tag, never skipped.
  std::vector<std::pair<std::uint64_t, Tag>> ranked;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    ranked.reserve(ranked.size() + shard->index.size());
    shard->index.for_each([&](const MetaSlot& s) {
      shard->mu.assert_held();
      const auto rec = load_record_locked(*shard, s);
      if (rec.has_value()) ranked.emplace_back(s.hits, rec->tag);
    });
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  SyncResponse resp;
  const std::size_t limit =
      std::min<std::size_t>(req.max_entries, ranked.size());
  resp.entries.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    const Tag& tag = ranked[i].second;
    Shard& shard = shard_for(tag);
    MutexLock lock(shard.mu);
    const auto found = find_entry_locked(shard, tag);
    if (!found.has_value()) continue;
    std::optional<Bytes> blob = backend_->get_blob(found->rec.blob);
    if (!blob.has_value()) continue;
    SyncEntry e;
    e.tag = tag;
    e.entry.challenge = found->rec.challenge;
    e.entry.wrapped_key = found->rec.wrapped_key;
    e.entry.result_ct = std::move(*blob);
    e.hits = found->slot->hits;
    resp.entries.push_back(std::move(e));
  }
  return resp;
}

std::size_t ResultStore::merge_from_master(const SyncResponse& batch) {
  return enclave_->ecall([&] { return merge_entries_trusted(batch.entries); });
}

std::size_t ResultStore::merge_entries_trusted(
    const std::vector<SyncEntry>& entries) {
  std::size_t inserted = 0;
  serialize::AppId master_owner{};
  master_owner.fill(0xee);  // synthetic owner for replicated entries
  for (const SyncEntry& e : entries) {
    if (insert_trusted(e.tag, master_owner, e.entry,
                       /*enforce_quota=*/false) != PutStatus::kStored) {
      continue;
    }
    ++inserted;
    if (e.hits > 0) {
      // Carry the sender's popularity so LFU eviction and the next sync's
      // hit ranking treat a replicated hot entry as hot, not freshly cold.
      set_hits_trusted(e.tag, e.hits);
    }
  }
  return inserted;
}

void ResultStore::set_hits_trusted(const Tag& tag, std::uint64_t hits) {
  Shard& shard = shard_for(tag);
  MutexLock lock(shard.mu);
  const auto found = find_entry_locked(shard, tag);
  if (!found.has_value()) return;
  found->slot->hits = static_cast<std::uint16_t>(std::min<std::uint64_t>(
      hits, std::numeric_limits<std::uint16_t>::max()));
}

// ----------------------------------------------------------- cluster plane

serialize::HeartbeatResponse ResultStore::heartbeat_trusted(
    const serialize::HeartbeatRequest& req) const {
  serialize::HeartbeatResponse resp;
  resp.nonce = req.nonce;
  resp.entries = stats().entries;
  {
    MutexLock lock(cluster_mu_);
    resp.cluster_epoch = cluster_.epoch;
  }
  resp.degraded = degraded();
  return resp;
}

serialize::PullResponse ResultStore::pull_trusted(
    const serialize::PullRequest& req) {
  // Census of tags past the cursor, one shard at a time (same point-in-time
  // discipline as sync_trusted), then fetch the first max_entries in tag
  // order. The lexicographic cursor makes the scan resumable: a rejoining
  // node that crashed mid-pull restarts from its last `next` and never
  // re-transfers what it already merged. Spill-aware: the census faults in
  // cold entries for their tags, so anti-entropy never silently skips an
  // entry just because it went cold.
  std::vector<Tag> tags;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->index.for_each([&](const MetaSlot& s) {
      shard->mu.assert_held();
      const auto rec = load_record_locked(*shard, s);
      if (rec.has_value() && (!req.resume || rec->tag > req.after)) {
        tags.push_back(rec->tag);
      }
    });
  }
  std::sort(tags.begin(), tags.end());

  serialize::PullResponse resp;
  const std::size_t limit = std::min<std::size_t>(req.max_entries, tags.size());
  resp.entries.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    const Tag& tag = tags[i];
    Shard& shard = shard_for(tag);
    MutexLock lock(shard.mu);
    const auto found = find_entry_locked(shard, tag);
    if (!found.has_value()) continue;  // evicted between phases
    std::optional<Bytes> blob = backend_->get_blob(found->rec.blob);
    if (!blob.has_value()) continue;
    SyncEntry e;
    e.tag = tag;
    e.entry.challenge = found->rec.challenge;
    e.entry.wrapped_key = found->rec.wrapped_key;
    e.entry.result_ct = std::move(*blob);
    e.hits = found->slot->hits;
    resp.entries.push_back(std::move(e));
    resp.next = tag;
  }
  resp.done = limit >= tags.size();
  pull_entries_served_.inc(resp.entries.size());
  return resp;
}

serialize::PushResponse ResultStore::push_trusted(
    const serialize::PushRequest& req) {
  serialize::PushResponse resp;
  resp.accepted =
      static_cast<std::uint32_t>(merge_entries_trusted(req.entries));
  push_accepted_.inc(resp.accepted);
  return resp;
}

serialize::MembershipAck ResultStore::membership_trusted(
    const serialize::MembershipUpdate& req) {
  MutexLock lock(cluster_mu_);
  serialize::MembershipAck ack;
  // Monotonic application: a reordered or replayed broadcast with a stale
  // epoch is acknowledged (the sender learns our epoch) but never rolls the
  // view back.
  if (req.epoch > cluster_.epoch) {
    cluster_.epoch = req.epoch;
    cluster_.members = req.members;
    ack.applied = true;
  }
  ack.epoch = cluster_.epoch;
  return ack;
}

ResultStore::ClusterView ResultStore::cluster_view() const {
  MutexLock lock(cluster_mu_);
  return cluster_;
}

// -------------------------------------------------------------- durability

void ResultStore::wal_append_record(const WalRecord& rec) {
  const Bytes plain = encode_wal_record(rec);
  MutexLock lock(wal_mu_);
  const Bytes aad = chain_aad(wal_seq_, wal_prev_);
  const Bytes sealed = enclave_->seal(aad, plain);
  backend_->wal_append(sealed);  // may throw BackendWriteError
  // Only an append the backend accepted extends the chain; a torn one leaves
  // (seq, prev) pointing at the last good record for the reopened store.
  wal_prev_ = chain_tag_of(sealed);
  ++wal_seq_;
}

void ResultStore::enter_degraded() {
  degraded_.store(true, std::memory_order_relaxed);
  backend_write_errors_.inc();
}

void ResultStore::recover_from_backend() {
  if (!backend_->durable()) return;
  const Stopwatch sw;
  bool torn = false;
  std::uint64_t truncate_at = 0;
  // One ECALL for the whole replay, mirroring the batched-transition style
  // of the paper's customized ECALLs.
  enclave_->ecall([&] {
    backend_->wal_replay([&](ByteView record, std::uint64_t offset) {
      const Bytes aad = chain_aad(wal_seq_, wal_prev_);
      const auto plain = enclave_->unseal(aad, record);
      if (!plain.has_value()) {
        // Torn, tampered, reordered, or spliced from another log: the chain
        // breaks here and everything from this record on is discarded.
        torn = true;
        truncate_at = offset;
        return false;
      }
      apply_recovered(decode_wal_record(*plain));
      wal_prev_ = chain_tag_of(record);
      ++wal_seq_;
      ++recovery_info_.replayed_records;
      return true;
    });
  });
  if (torn) {
    backend_->wal_truncate(truncate_at);
    recovery_info_.torn_tail = true;
    wal_torn_tails_.inc();
  }
  // Re-apply capacity limits: this store may be configured smaller than the
  // one that wrote the log. Evictions here append fresh erase records,
  // extending the (possibly truncated) chain.
  enclave_->ecall([&] {
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mu);
      evict_for_space_locked(*shard, 0);
      while (shard->index.size() > shard_max_entries_) {
        if (!evict_one_locked(*shard)) break;
      }
    }
  });
  backend_->compact();
  recovery_info_.recovery_ms =
      static_cast<double>(sw.elapsed_ns()) / 1e6;
  recovery_ms_.set(static_cast<std::int64_t>(recovery_info_.recovery_ms));
}

void ResultStore::apply_recovered(const WalRecord& rec) {
  Shard& shard = shard_for(rec.tag);
  MutexLock lock(shard.mu);
  if (rec.op == WalRecord::Op::kErase) {
    if (const auto found = find_entry_locked(shard, rec.tag)) {
      erase_entry_locked(shard, *found->slot, found->rec, /*log_wal=*/false);
    }
    ++recovery_info_.erases;
    return;
  }
  if (find_entry_locked(shard, rec.tag).has_value()) {
    return;  // first write wins, as live
  }
  if (!backend_->note_blob(rec.ref)) {
    // The record survived but its blob did not (compaction raced a lost
    // erase record): drop the entry rather than recover a guaranteed miss.
    ++recovery_info_.dropped_blobs;
    return;
  }
  MetaRecord mr;
  mr.tag = rec.tag;
  mr.owner = rec.owner;
  mr.challenge = rec.challenge;
  mr.wrapped_key = rec.wrapped_key;
  mr.blob_digest = rec.blob_digest;
  mr.blob_bytes = rec.blob_bytes;
  mr.blob = rec.ref;

  MetaSlot slot;
  slot.fp = MetaIndex::fingerprint(rec.tag);
  slot.clock = next_clock_locked(shard);
  slot.blob_bytes = static_cast<std::uint32_t>(rec.blob_bytes);
  slot.owner_ref = owner_intern_locked(shard, rec.owner);
  slot.hits = static_cast<std::uint16_t>(std::min<std::uint64_t>(
      rec.hits, std::numeric_limits<std::uint16_t>::max()));
  bool is_pinned = false;
  try {
    std::tie(slot.loc, slot.spill_len) = spill_record(mr);
    shard.meta_spills.inc();
  } catch (const BackendWriteError&) {
    // Disk already full at recovery time: pin the record resident instead of
    // losing an acknowledged entry. Recovery itself stays non-degraded — the
    // rebuilt state is consistent; the next failing *runtime* write will
    // degrade the store as usual.
    slot.loc = pin_record_locked(shard, mr);
    slot.spill_len = 0;
    is_pinned = true;
    ++recovery_info_.pinned_records;
  }
  shard.index.insert(slot);
  if (!is_pinned) cache_put_locked(shard, slot.loc, std::move(mr));
  quota_.charge(rec.owner, rec.blob_bytes);
  shard.ciphertext_bytes.add(static_cast<std::int64_t>(rec.blob_bytes));
  shard.entries.add(1);
  sync_trusted_charge_locked(shard);
  recovered_entries_.inc();
  ++recovery_info_.inserts;
}

void ResultStore::flush_backend() {
  if (!backend_->durable() || degraded()) return;
  try {
    backend_->wal_sync();
  } catch (const BackendWriteError&) {
    enter_degraded();
  }
}

std::uint64_t ResultStore::quota_used(const serialize::AppId& app) const {
  return quota_.used(app);
}

bool ResultStore::corrupt_blob_for_testing(const serialize::Tag& tag) {
  Shard& shard = shard_for(tag);
  MutexLock lock(shard.mu);
  const auto found = find_entry_locked(shard, tag);
  if (!found.has_value()) return false;
  return backend_->corrupt_blob(found->rec.blob);
}

ResultStore::Stats ResultStore::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    s.get_requests += shard->get_requests.value();
    s.hits += shard->hits.value();
    s.put_requests += shard->put_requests.value();
    s.stored += shard->stored.value();
    s.duplicate_puts += shard->duplicate_puts.value();
    s.quota_rejections += shard->quota_rejections.value();
    s.evictions += shard->evictions.value();
    s.corrupt_blobs += shard->corrupt_blobs.value();
    s.entries += static_cast<std::uint64_t>(shard->entries.value());
    s.ciphertext_bytes +=
        static_cast<std::uint64_t>(shard->ciphertext_bytes.value());
    s.meta_spills += shard->meta_spills.value();
    s.meta_fault_ins += shard->meta_fault_ins.value();
    s.meta_resident_bytes +=
        static_cast<std::uint64_t>(shard->meta_resident_bytes.value());
    s.meta_index_bytes +=
        static_cast<std::uint64_t>(shard->meta_index_bytes.value());
    s.meta_pinned_records +=
        static_cast<std::uint64_t>(shard->meta_pinned_records.value());
  }
  s.backend_write_errors = backend_write_errors_.value();
  return s;
}

// ------------------------------------------------------------- persistence

Bytes ResultStore::seal_snapshot() {
  return enclave_->ecall([&] {
    // All shard locks, in index order (the only multi-lock path; single-tag
    // operations only ever hold one). Equal ranks admit no ordering rule, so
    // this is the one sanctioned MutexLockAll site for shard locks.
    const auto get_shard_mu = [&](std::size_t i) -> Mutex& {
      return shards_[i]->mu;
    };
    MutexLockAll<decltype(get_shard_mu)> locks(shards_.size(), get_shard_mu);
    for (const auto& shard : shards_) shard->mu.assert_held();

    // Spill-aware sweep: fault in every cold record so a snapshot never
    // silently drops an entry that merely aged out of the resident cache.
    std::vector<std::pair<MetaRecord, std::uint64_t>> entries;
    for (const auto& shard : shards_) {
      shard->index.for_each([&](const MetaSlot& s) {
        shard->mu.assert_held();
        auto rec = load_record_locked(*shard, s);
        if (rec.has_value()) {
          entries.emplace_back(std::move(*rec), s.hits);
        }
      });
    }
    serialize::Encoder enc;
    enc.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& [rec, hits] : entries) {
      enc.raw(ByteView(rec.tag.data(), rec.tag.size()));
      enc.var_bytes(rec.challenge);
      enc.var_bytes(rec.wrapped_key);
      enc.raw(ByteView(rec.owner.data(), rec.owner.size()));
      enc.u64(hits);
      const auto blob = backend_->get_blob(rec.blob);
      enc.var_bytes(blob.has_value() ? *blob : Bytes{});
    }
    return enclave_->seal(as_bytes("result-store-snapshot-v1"), enc.view());
  });
}

bool ResultStore::restore_snapshot(ByteView sealed) {
  return enclave_->ecall([&] {
    const auto plain =
        enclave_->unseal(as_bytes("result-store-snapshot-v1"), sealed);
    if (!plain.has_value()) return false;
    try {
      serialize::Decoder dec(*plain);
      const std::uint32_t n = dec.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        Tag tag;
        const ByteView tb = dec.raw(32);
        std::copy(tb.begin(), tb.end(), tag.begin());
        EntryPayload entry;
        entry.challenge = dec.var_bytes();
        entry.wrapped_key = dec.var_bytes();
        serialize::AppId owner;
        const ByteView ob = dec.raw(32);
        std::copy(ob.begin(), ob.end(), owner.begin());
        const std::uint64_t hits = dec.u64();
        entry.result_ct = dec.var_bytes();
        if (insert_trusted(tag, owner, entry, /*enforce_quota=*/false) ==
                PutStatus::kStored &&
            hits > 0) {
          set_hits_trusted(tag, hits);
        }
      }
      dec.expect_done();
    } catch (const SerializationError&) {
      return false;
    }
    return true;
  });
}

}  // namespace speed::store
