#include "store/result_store.h"

#include <algorithm>

#include "common/error.h"
#include "serialize/codec.h"

namespace speed::store {

using serialize::EntryPayload;
using serialize::GetRequest;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;
using serialize::SyncEntry;
using serialize::SyncRequest;
using serialize::SyncResponse;
using serialize::Tag;

namespace {

/// Approximate trusted bytes per dictionary entry: challenge + wrapped key +
/// digest + bookkeeping. Used for EPC accounting.
std::uint64_t meta_bytes(const Bytes& challenge, const Bytes& wrapped_key) {
  return challenge.size() + wrapped_key.size() + /*digest*/ 32 +
         /*tag key + bookkeeping*/ 96;
}

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Records the enclosing scope's duration into a shard histogram on every
/// exit path (get/insert have several).
struct LatencyScope {
  explicit LatencyScope(telemetry::Histogram& h) : hist(h) {}
  ~LatencyScope() { hist.record(sw.elapsed_ns()); }
  telemetry::Histogram& hist;
  Stopwatch sw;
};

}  // namespace

// ------------------------------------------------------------ QuotaLedger

ResultStore::QuotaLedger::QuotaLedger(std::uint64_t limit, std::size_t stripes)
    : limit_(limit) {
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

const ResultStore::QuotaLedger::Stripe& ResultStore::QuotaLedger::stripe_for(
    const serialize::AppId& app) const {
  return *stripes_[AppIdHash{}(app) % stripes_.size()];
}

ResultStore::QuotaLedger::Stripe& ResultStore::QuotaLedger::stripe_for(
    const serialize::AppId& app) {
  return *stripes_[AppIdHash{}(app) % stripes_.size()];
}

bool ResultStore::QuotaLedger::try_charge(const serialize::AppId& app,
                                          std::uint64_t bytes) {
  Stripe& s = stripe_for(app);
  MutexLock lock(s.mu);
  std::uint64_t& used = s.used[app];
  if (used + bytes > limit_) {
    if (used == 0) s.used.erase(app);
    return false;
  }
  used += bytes;
  return true;
}

void ResultStore::QuotaLedger::charge(const serialize::AppId& app,
                                      std::uint64_t bytes) {
  Stripe& s = stripe_for(app);
  MutexLock lock(s.mu);
  s.used[app] += bytes;
}

void ResultStore::QuotaLedger::release(const serialize::AppId& app,
                                       std::uint64_t bytes) {
  Stripe& s = stripe_for(app);
  MutexLock lock(s.mu);
  const auto it = s.used.find(app);
  if (it == s.used.end()) return;
  it->second -= std::min(it->second, bytes);
  // Erase emptied entries: an adversary cycling through app identities must
  // not be able to grow the ledger without bound, and the leak-check tests
  // assert a fully drained app leaves no residue.
  if (it->second == 0) s.used.erase(it);
}

std::uint64_t ResultStore::QuotaLedger::used(
    const serialize::AppId& app) const {
  const Stripe& s = stripe_for(app);
  MutexLock lock(s.mu);
  const auto it = s.used.find(app);
  return it == s.used.end() ? 0 : it->second;
}

// ------------------------------------------------------------- ResultStore

ResultStore::ResultStore(sgx::Platform& platform, StoreConfig config)
    : platform_(platform),
      enclave_(platform.create_enclave("speed-result-store")),
      config_(std::move(config)),
      backend_(config_.backend ? config_.backend
                               : std::make_shared<MemoryBackend>()),
      quota_(config_.per_app_quota_bytes,
             std::max<std::size_t>(config_.shards, 8)) {
  if (config_.shards == 0) {
    throw ProtocolError("ResultStore: shards must be >= 1");
  }
  shard_capacity_bytes_ =
      std::max<std::uint64_t>(1, ceil_div(config_.max_ciphertext_bytes,
                                          config_.shards));
  shard_max_entries_ = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, ceil_div(config_.max_entries, config_.shards)));
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(*enclave_));
  }
  recover_from_backend();
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        constexpr auto kShard = telemetry::LabelKey::of("shard");
        for (std::size_t i = 0; i < shards_.size(); ++i) {
          const Shard& s = *shards_[i];
          const telemetry::LabelSet labels{
              {kShard, telemetry::LabelValue::index(i)}};
          sink.counter("speed_store_get_requests_total",
                       "GET requests dispatched into the store enclave",
                       labels, s.get_requests.value());
          sink.counter("speed_store_hits_total",
                       "GETs served from the dedup dictionary", labels,
                       s.hits.value());
          sink.counter("speed_store_put_requests_total",
                       "PUT requests dispatched into the store enclave",
                       labels, s.put_requests.value());
          sink.counter("speed_store_stored_total", "Entries newly inserted",
                       labels, s.stored.value());
          sink.counter("speed_store_duplicate_puts_total",
                       "PUTs that lost the first-write race", labels,
                       s.duplicate_puts.value());
          sink.counter("speed_store_quota_rejections_total",
                       "PUTs rejected by the per-app byte quota", labels,
                       s.quota_rejections.value());
          sink.counter("speed_store_evictions_total",
                       "Entries evicted for arena capacity", labels,
                       s.evictions.value());
          sink.counter("speed_store_corrupt_blobs_total",
                       "Host-side blob corruption detected on GET", labels,
                       s.corrupt_blobs.value());
          sink.gauge("speed_store_entries", "Live dictionary entries", labels,
                     s.entries.value());
          sink.gauge("speed_store_ciphertext_bytes",
                     "Untrusted arena bytes in use", labels,
                     s.ciphertext_bytes.value());
          sink.histogram("speed_store_get_ns",
                         "In-enclave GET service latency", labels, s.get_ns);
          sink.histogram("speed_store_put_ns",
                         "In-enclave PUT/insert service latency", labels,
                         s.put_ns);
        }
        const BackendStats b = backend_->stats();
        sink.counter("speed_store_wal_appends_total",
                     "Sealed metadata WAL records appended", {},
                     b.wal_appends);
        sink.counter("speed_store_wal_fsyncs_total",
                     "WAL fsync batches forced to stable storage", {},
                     b.wal_fsyncs);
        sink.counter("speed_store_wal_bytes_total",
                     "Framed bytes appended to the metadata WAL", {},
                     b.wal_bytes);
        sink.counter("speed_store_segments_created_total",
                     "Blob segments created by the backend", {},
                     b.segments_created);
        sink.counter("speed_store_segments_compacted_total",
                     "Fully-dead blob segments reclaimed", {},
                     b.segments_compacted);
        sink.counter("speed_store_backend_write_errors_total",
                     "Backend writes that failed (disk full, torn)", {},
                     backend_write_errors_.value());
        sink.counter("speed_store_recovered_entries_total",
                     "Dictionary entries rebuilt by WAL replay", {},
                     recovered_entries_.value());
        sink.counter("speed_store_wal_torn_tails_total",
                     "WAL tails truncated during recovery", {},
                     wal_torn_tails_.value());
        sink.counter("speed_store_push_accepted_total",
                     "Entries accepted from anti-entropy pushes", {},
                     push_accepted_.value());
        sink.counter("speed_store_pull_entries_served_total",
                     "Entries served to anti-entropy pulls", {},
                     pull_entries_served_.value());
        sink.counter("speed_store_infra_rejections_total",
                     "Infra-plane messages rejected on app sessions", {},
                     infra_rejections_.value());
        sink.histogram("speed_store_batch_ops",
                       "Sub-requests per dispatched batch frame", {},
                       batch_ops_);
        sink.gauge("speed_store_cluster_epoch",
                   "Membership epoch this node has applied", {},
                   static_cast<std::int64_t>(cluster_view().epoch));
        sink.gauge("speed_store_recovery_ms",
                   "Wall time of the last constructor-time WAL replay", {},
                   recovery_ms_.value());
        sink.gauge("speed_store_degraded",
                   "1 after a backend write failure (PUTs rejected)", {},
                   degraded() ? 1 : 0);
        sink.gauge("speed_store_backend_live_blob_bytes",
                   "Blob bytes reachable from the trusted dictionary", {},
                   static_cast<std::int64_t>(b.live_blob_bytes));
        sink.gauge("speed_store_backend_dead_blob_bytes",
                   "Deleted blob bytes awaiting compaction", {},
                   static_cast<std::int64_t>(b.dead_blob_bytes));
      });
}

ResultStore::Shard& ResultStore::shard_for(const Tag& tag) {
  // Bytes [8, 16) of the tag — disjoint from the bytes TagHash feeds the
  // per-shard dictionaries — so shard choice and bucket choice stay
  // independent. Tags are SHA-256 outputs, hence uniform.
  std::uint64_t v;
  __builtin_memcpy(&v, tag.data() + 8, sizeof(v));
  return *shards_[v % shards_.size()];
}

Bytes ResultStore::handle(ByteView request) {
  // Host side: preliminary parse happens outside the enclave (only the type
  // byte is inspected), then one ECALL dispatches into the trusted body.
  const Message req = serialize::decode_message(request);
  const Message resp = enclave_->ecall([&] { return dispatch_trusted(req); });
  return serialize::encode_message(resp);
}

Message ResultStore::dispatch_trusted(const Message& request, Peer peer) {
  if (const auto* get_req = std::get_if<GetRequest>(&request)) {
    return get_trusted(*get_req);
  }
  if (const auto* put_req = std::get_if<PutRequest>(&request)) {
    return put_trusted(*put_req);
  }
  if (const auto* hb_req = std::get_if<serialize::HeartbeatRequest>(&request)) {
    return heartbeat_trusted(*hb_req);
  }
  if (const auto* batch_req = std::get_if<serialize::BatchRequest>(&request)) {
    return batch_trusted(*batch_req, peer);
  }
  if (peer == Peer::kApp) {
    // Applications never speak the infra plane: PUSH/PULL merges are
    // quota-exempt, so letting an app session reach them would let it store
    // bytes its quota ledger never sees.
    infra_rejections_.inc();
    throw ProtocolError("ResultStore: infra message on application session");
  }
  if (const auto* sync_req = std::get_if<SyncRequest>(&request)) {
    return sync_trusted(*sync_req);
  }
  if (const auto* pull_req = std::get_if<serialize::PullRequest>(&request)) {
    return pull_trusted(*pull_req);
  }
  if (const auto* push_req = std::get_if<serialize::PushRequest>(&request)) {
    return push_trusted(*push_req);
  }
  if (const auto* mem_req =
          std::get_if<serialize::MembershipUpdate>(&request)) {
    return membership_trusted(*mem_req);
  }
  throw ProtocolError("ResultStore: request type has no server handler");
}

serialize::BatchResponse ResultStore::batch_trusted(
    const serialize::BatchRequest& req, Peer peer) {
  serialize::BatchResponse resp;
  resp.replies.reserve(req.ops.size());
  batch_ops_.record(req.ops.size());
  for (const serialize::BatchOp& op : req.ops) {
    // Per-entry containment: a failed sub-request answers with an
    // ErrorResponse in its slot and never disturbs its neighbors.
    try {
      const Message sub = std::visit(
          [](const auto& o) { return Message(o); }, op);
      Message reply = dispatch_trusted(sub, peer);
      if (auto* get_resp = std::get_if<GetResponse>(&reply)) {
        resp.replies.emplace_back(std::move(*get_resp));
      } else if (const auto* put_resp = std::get_if<PutResponse>(&reply)) {
        resp.replies.emplace_back(*put_resp);
      } else {
        resp.replies.emplace_back(serialize::ErrorResponse{
            serialize::ErrorCode::kBadRequest, "unexpected reply type"});
      }
    } catch (const Error& e) {
      resp.replies.emplace_back(serialize::ErrorResponse{
          serialize::ErrorCode::kBadRequest, e.what()});
    }
  }
  return resp;
}

GetResponse ResultStore::get(const GetRequest& req) {
  return enclave_->ecall([&] { return get_trusted(req); });
}

PutResponse ResultStore::put(const PutRequest& req) {
  return enclave_->ecall([&] { return put_trusted(req); });
}

SyncResponse ResultStore::sync(const SyncRequest& req) {
  return enclave_->ecall([&] { return sync_trusted(req); });
}

GetResponse ResultStore::get_trusted(const GetRequest& req) {
  Shard& shard = shard_for(req.tag);
  shard.get_requests.inc();
  const LatencyScope timer(shard.get_ns);
  GetResponse resp;
  MutexLock lock(shard.mu);
  // Simulated in-enclave service time (marshalling + verification under
  // load); 0 outside throughput benches. Deliberately inside the critical
  // section — that is the work the lock protects.
  sgx::charge_wait(platform_.cost_model(),
                   platform_.cost_model().store_service_ns);
  const auto it = shard.dict.find(req.tag);
  if (it == shard.dict.end()) return resp;

  MetaEntry& meta = it->second;
  std::optional<Bytes> blob = backend_->get_blob(meta.ref);
  if (!blob.has_value()) {
    // Host deleted the ciphertext from under us: degrade to a miss and drop
    // the orphaned metadata.
    shard.corrupt_blobs.inc();
    erase_locked(shard, req.tag);
    return resp;
  }
  // Verify the untrusted blob against the trusted digest before serving it
  // (the "authentication MAC" kept in the dictionary entry, §IV-B).
  const auto digest = crypto::Sha256::digest(*blob);
  if (!ct_equal(ByteView(digest.data(), digest.size()),
                ByteView(meta.blob_digest.data(), meta.blob_digest.size()))) {
    shard.corrupt_blobs.inc();
    erase_locked(shard, req.tag);
    return resp;
  }

  shard.hits.inc();
  ++meta.hits;
  touch_lru_locked(shard, meta, req.tag);
  resp.found = true;
  resp.entry.challenge = meta.challenge;
  resp.entry.wrapped_key = meta.wrapped_key;
  resp.entry.result_ct = std::move(*blob);
  return resp;
}

PutResponse ResultStore::put_trusted(const PutRequest& req) {
  shard_for(req.tag).put_requests.inc();
  return PutResponse{
      insert_trusted(req.tag, req.requester, req.entry, /*enforce_quota=*/true)};
}

PutStatus ResultStore::insert_trusted(const Tag& tag,
                                      const serialize::AppId& owner,
                                      const EntryPayload& entry,
                                      bool enforce_quota) {
  Shard& shard = shard_for(tag);
  const LatencyScope timer(shard.put_ns);
  MutexLock lock(shard.mu);
  sgx::charge_wait(platform_.cost_model(),
                   platform_.cost_model().store_service_ns);
  if (shard.dict.contains(tag)) {
    // Concurrent initial computations of the same tag: first write wins; the
    // stored ciphertext is decryptable by every eligible application anyway
    // (§IV-B Remark).
    shard.duplicate_puts.inc();
    return PutStatus::kAlreadyPresent;
  }
  const std::uint64_t blob_bytes = entry.result_ct.size();
  if (blob_bytes > shard_capacity_bytes_ ||
      shard.dict.size() >= shard_max_entries_ ||
      degraded_.load(std::memory_order_relaxed)) {
    return PutStatus::kRejected;
  }
  if (enforce_quota) {
    if (!quota_.try_charge(owner, blob_bytes)) {
      shard.quota_rejections.inc();
      return PutStatus::kQuotaExceeded;
    }
  } else {
    quota_.charge(owner, blob_bytes);
  }
  evict_for_space_locked(shard, blob_bytes);
  if (degraded_.load(std::memory_order_relaxed)) {
    // An eviction's erase record tore the log; nothing may be acknowledged
    // past that point.
    quota_.release(owner, blob_bytes);
    return PutStatus::kRejected;
  }

  MetaEntry meta;
  meta.challenge = entry.challenge;
  meta.wrapped_key = entry.wrapped_key;
  meta.blob_digest = crypto::Sha256::digest(entry.result_ct);
  meta.blob_bytes = blob_bytes;
  meta.owner = owner;

  // Blob first, WAL record second: a crash between the two leaves an
  // unreferenced blob (reclaimed by compaction), never a record whose blob
  // is missing. The backend syncs segments before the log for the same
  // reason (file_backend.cc).
  bool blob_placed = false;
  try {
    meta.ref = backend_->put_blob(entry.result_ct);
    blob_placed = true;
    if (backend_->durable()) {
      WalRecord rec;
      rec.op = WalRecord::Op::kInsert;
      rec.tag = tag;
      rec.owner = owner;
      rec.challenge = meta.challenge;
      rec.wrapped_key = meta.wrapped_key;
      rec.blob_digest = meta.blob_digest;
      rec.blob_bytes = blob_bytes;
      rec.ref = meta.ref;
      wal_append_record(rec);
    }
  } catch (const BackendWriteError&) {
    enter_degraded();
    if (blob_placed) backend_->delete_blob(meta.ref);
    quota_.release(owner, blob_bytes);
    return PutStatus::kRejected;
  }

  shard.lru.push_front(tag);
  meta.lru_it = shard.lru.begin();
  shard.trusted_bytes += meta_bytes(meta.challenge, meta.wrapped_key);
  shard.dict.emplace(tag, std::move(meta));
  shard.stored.inc();
  shard.entries.add(1);
  shard.ciphertext_bytes.add(static_cast<std::int64_t>(blob_bytes));
  shard.trusted_charge.resize(shard.trusted_bytes);
  return PutStatus::kStored;
}

SyncResponse ResultStore::sync_trusted(const SyncRequest& req) {
  // Serve the hottest entries (popularity = hit count), capped at
  // max_entries; this is what a master store replicates to peers. Two-phase
  // across shards: rank a point-in-time (hits, tag) census taken one shard
  // at a time, then re-fetch the winners — entries evicted between phases
  // are simply skipped, like entries whose blob vanished.
  std::vector<std::pair<std::uint64_t, Tag>> ranked;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    ranked.reserve(ranked.size() + shard->dict.size());
    for (const auto& [tag, meta] : shard->dict) {
      ranked.emplace_back(meta.hits, tag);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  SyncResponse resp;
  const std::size_t limit =
      std::min<std::size_t>(req.max_entries, ranked.size());
  resp.entries.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    const Tag& tag = ranked[i].second;
    Shard& shard = shard_for(tag);
    MutexLock lock(shard.mu);
    const auto it = shard.dict.find(tag);
    if (it == shard.dict.end()) continue;
    const MetaEntry& meta = it->second;
    std::optional<Bytes> blob = backend_->get_blob(meta.ref);
    if (!blob.has_value()) continue;
    SyncEntry e;
    e.tag = tag;
    e.entry.challenge = meta.challenge;
    e.entry.wrapped_key = meta.wrapped_key;
    e.entry.result_ct = std::move(*blob);
    e.hits = meta.hits;
    resp.entries.push_back(std::move(e));
  }
  return resp;
}

std::size_t ResultStore::merge_from_master(const SyncResponse& batch) {
  return enclave_->ecall([&] { return merge_entries_trusted(batch.entries); });
}

std::size_t ResultStore::merge_entries_trusted(
    const std::vector<SyncEntry>& entries) {
  std::size_t inserted = 0;
  serialize::AppId master_owner{};
  master_owner.fill(0xee);  // synthetic owner for replicated entries
  for (const SyncEntry& e : entries) {
    if (insert_trusted(e.tag, master_owner, e.entry,
                       /*enforce_quota=*/false) != PutStatus::kStored) {
      continue;
    }
    ++inserted;
    if (e.hits > 0) {
      // Carry the sender's popularity so LFU eviction and the next sync's
      // hit ranking treat a replicated hot entry as hot, not freshly cold.
      Shard& shard = shard_for(e.tag);
      MutexLock lock(shard.mu);
      const auto it = shard.dict.find(e.tag);
      if (it != shard.dict.end()) it->second.hits = e.hits;
    }
  }
  return inserted;
}

// ----------------------------------------------------------- cluster plane

serialize::HeartbeatResponse ResultStore::heartbeat_trusted(
    const serialize::HeartbeatRequest& req) const {
  serialize::HeartbeatResponse resp;
  resp.nonce = req.nonce;
  resp.entries = stats().entries;
  {
    MutexLock lock(cluster_mu_);
    resp.cluster_epoch = cluster_.epoch;
  }
  resp.degraded = degraded();
  return resp;
}

serialize::PullResponse ResultStore::pull_trusted(
    const serialize::PullRequest& req) {
  // Census of tags past the cursor, one shard at a time (same point-in-time
  // discipline as sync_trusted), then fetch the first max_entries in tag
  // order. The lexicographic cursor makes the scan resumable: a rejoining
  // node that crashed mid-pull restarts from its last `next` and never
  // re-transfers what it already merged.
  std::vector<Tag> tags;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (const auto& [tag, meta] : shard->dict) {
      if (!req.resume || tag > req.after) tags.push_back(tag);
    }
  }
  std::sort(tags.begin(), tags.end());

  serialize::PullResponse resp;
  const std::size_t limit = std::min<std::size_t>(req.max_entries, tags.size());
  resp.entries.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    const Tag& tag = tags[i];
    Shard& shard = shard_for(tag);
    MutexLock lock(shard.mu);
    const auto it = shard.dict.find(tag);
    if (it == shard.dict.end()) continue;  // evicted between phases
    const MetaEntry& meta = it->second;
    std::optional<Bytes> blob = backend_->get_blob(meta.ref);
    if (!blob.has_value()) continue;
    SyncEntry e;
    e.tag = tag;
    e.entry.challenge = meta.challenge;
    e.entry.wrapped_key = meta.wrapped_key;
    e.entry.result_ct = std::move(*blob);
    e.hits = meta.hits;
    resp.entries.push_back(std::move(e));
    resp.next = tag;
  }
  resp.done = limit >= tags.size();
  pull_entries_served_.inc(resp.entries.size());
  return resp;
}

serialize::PushResponse ResultStore::push_trusted(
    const serialize::PushRequest& req) {
  serialize::PushResponse resp;
  resp.accepted =
      static_cast<std::uint32_t>(merge_entries_trusted(req.entries));
  push_accepted_.inc(resp.accepted);
  return resp;
}

serialize::MembershipAck ResultStore::membership_trusted(
    const serialize::MembershipUpdate& req) {
  MutexLock lock(cluster_mu_);
  serialize::MembershipAck ack;
  // Monotonic application: a reordered or replayed broadcast with a stale
  // epoch is acknowledged (the sender learns our epoch) but never rolls the
  // view back.
  if (req.epoch > cluster_.epoch) {
    cluster_.epoch = req.epoch;
    cluster_.members = req.members;
    ack.applied = true;
  }
  ack.epoch = cluster_.epoch;
  return ack;
}

ResultStore::ClusterView ResultStore::cluster_view() const {
  MutexLock lock(cluster_mu_);
  return cluster_;
}

void ResultStore::erase_locked(Shard& shard, const Tag& tag, bool log_wal) {
  const auto it = shard.dict.find(tag);
  if (it == shard.dict.end()) return;
  MetaEntry& meta = it->second;
  if (log_wal && backend_->durable() &&
      !degraded_.load(std::memory_order_relaxed)) {
    try {
      WalRecord rec;
      rec.op = WalRecord::Op::kErase;
      rec.tag = tag;
      wal_append_record(rec);
    } catch (const BackendWriteError&) {
      // The in-memory erase still proceeds. A recovered store may resurrect
      // the entry; if its blob is gone by then, note_blob() drops it.
      enter_degraded();
    }
  }
  backend_->delete_blob(meta.ref);
  shard.ciphertext_bytes.sub(static_cast<std::int64_t>(meta.blob_bytes));
  quota_.release(meta.owner, meta.blob_bytes);
  shard.trusted_bytes -= meta_bytes(meta.challenge, meta.wrapped_key);
  shard.lru.erase(meta.lru_it);
  shard.dict.erase(it);
  shard.entries.sub(1);
  shard.trusted_charge.resize(shard.trusted_bytes);
}

void ResultStore::evict_for_space_locked(Shard& shard,
                                         std::uint64_t incoming_bytes) {
  while (!shard.lru.empty() &&
         static_cast<std::uint64_t>(shard.ciphertext_bytes.value()) +
                 incoming_bytes >
             shard_capacity_bytes_) {
    Tag victim = shard.lru.back();
    if (config_.eviction == StoreConfig::Eviction::kLfu) {
      // Least frequently used, ties broken toward least recently used
      // (scan backward from the cold end of the recency list).
      std::uint64_t best_hits = ~0ull;
      for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
        const std::uint64_t hits = shard.dict.at(*it).hits;
        if (hits < best_hits) {
          best_hits = hits;
          victim = *it;
          if (hits == 0) break;  // cannot do better
        }
      }
    }
    erase_locked(shard, victim);
    shard.evictions.inc();
  }
}

void ResultStore::touch_lru_locked(Shard& shard, MetaEntry& entry,
                                   const Tag& tag) {
  shard.lru.erase(entry.lru_it);
  shard.lru.push_front(tag);
  entry.lru_it = shard.lru.begin();
}

// -------------------------------------------------------------- durability

void ResultStore::wal_append_record(const WalRecord& rec) {
  const Bytes plain = encode_wal_record(rec);
  MutexLock lock(wal_mu_);
  const Bytes aad = chain_aad(wal_seq_, wal_prev_);
  const Bytes sealed = enclave_->seal(aad, plain);
  backend_->wal_append(sealed);  // may throw BackendWriteError
  // Only an append the backend accepted extends the chain; a torn one leaves
  // (seq, prev) pointing at the last good record for the reopened store.
  wal_prev_ = chain_tag_of(sealed);
  ++wal_seq_;
}

void ResultStore::enter_degraded() {
  degraded_.store(true, std::memory_order_relaxed);
  backend_write_errors_.inc();
}

void ResultStore::recover_from_backend() {
  if (!backend_->durable()) return;
  const Stopwatch sw;
  bool torn = false;
  std::uint64_t truncate_at = 0;
  // One ECALL for the whole replay, mirroring the batched-transition style
  // of the paper's customized ECALLs.
  enclave_->ecall([&] {
    backend_->wal_replay([&](ByteView record, std::uint64_t offset) {
      const Bytes aad = chain_aad(wal_seq_, wal_prev_);
      const auto plain = enclave_->unseal(aad, record);
      if (!plain.has_value()) {
        // Torn, tampered, reordered, or spliced from another log: the chain
        // breaks here and everything from this record on is discarded.
        torn = true;
        truncate_at = offset;
        return false;
      }
      apply_recovered(decode_wal_record(*plain));
      wal_prev_ = chain_tag_of(record);
      ++wal_seq_;
      ++recovery_info_.replayed_records;
      return true;
    });
  });
  if (torn) {
    backend_->wal_truncate(truncate_at);
    recovery_info_.torn_tail = true;
    wal_torn_tails_.inc();
  }
  // Re-apply capacity limits: this store may be configured smaller than the
  // one that wrote the log. Evictions here append fresh erase records,
  // extending the (possibly truncated) chain.
  enclave_->ecall([&] {
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mu);
      evict_for_space_locked(*shard, 0);
      while (shard->dict.size() > shard_max_entries_ && !shard->lru.empty()) {
        erase_locked(*shard, shard->lru.back());
        shard->evictions.inc();
      }
    }
  });
  backend_->compact();
  recovery_info_.recovery_ms =
      static_cast<double>(sw.elapsed_ns()) / 1e6;
  recovery_ms_.set(static_cast<std::int64_t>(recovery_info_.recovery_ms));
}

void ResultStore::apply_recovered(const WalRecord& rec) {
  Shard& shard = shard_for(rec.tag);
  MutexLock lock(shard.mu);
  if (rec.op == WalRecord::Op::kErase) {
    erase_locked(shard, rec.tag, /*log_wal=*/false);
    ++recovery_info_.erases;
    return;
  }
  if (shard.dict.contains(rec.tag)) return;  // first write wins, as live
  if (!backend_->note_blob(rec.ref)) {
    // The record survived but its blob did not (compaction raced a lost
    // erase record): drop the entry rather than recover a guaranteed miss.
    ++recovery_info_.dropped_blobs;
    return;
  }
  MetaEntry meta;
  meta.challenge = rec.challenge;
  meta.wrapped_key = rec.wrapped_key;
  meta.blob_digest = rec.blob_digest;
  meta.blob_bytes = rec.blob_bytes;
  meta.ref = rec.ref;
  meta.owner = rec.owner;
  meta.hits = rec.hits;
  shard.lru.push_front(rec.tag);
  meta.lru_it = shard.lru.begin();
  quota_.charge(rec.owner, rec.blob_bytes);
  shard.trusted_bytes += meta_bytes(meta.challenge, meta.wrapped_key);
  shard.ciphertext_bytes.add(static_cast<std::int64_t>(rec.blob_bytes));
  shard.dict.emplace(rec.tag, std::move(meta));
  shard.entries.add(1);
  shard.trusted_charge.resize(shard.trusted_bytes);
  recovered_entries_.inc();
  ++recovery_info_.inserts;
}

void ResultStore::flush_backend() {
  if (!backend_->durable() || degraded()) return;
  try {
    backend_->wal_sync();
  } catch (const BackendWriteError&) {
    enter_degraded();
  }
}

std::uint64_t ResultStore::quota_used(const serialize::AppId& app) const {
  return quota_.used(app);
}

bool ResultStore::corrupt_blob_for_testing(const serialize::Tag& tag) {
  Shard& shard = shard_for(tag);
  MutexLock lock(shard.mu);
  const auto it = shard.dict.find(tag);
  if (it == shard.dict.end()) return false;
  return backend_->corrupt_blob(it->second.ref);
}

ResultStore::Stats ResultStore::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    s.get_requests += shard->get_requests.value();
    s.hits += shard->hits.value();
    s.put_requests += shard->put_requests.value();
    s.stored += shard->stored.value();
    s.duplicate_puts += shard->duplicate_puts.value();
    s.quota_rejections += shard->quota_rejections.value();
    s.evictions += shard->evictions.value();
    s.corrupt_blobs += shard->corrupt_blobs.value();
    s.entries += static_cast<std::uint64_t>(shard->entries.value());
    s.ciphertext_bytes +=
        static_cast<std::uint64_t>(shard->ciphertext_bytes.value());
  }
  s.backend_write_errors = backend_write_errors_.value();
  return s;
}

// ------------------------------------------------------------- persistence

Bytes ResultStore::seal_snapshot() {
  return enclave_->ecall([&] {
    // All shard locks, in index order (the only multi-lock path; single-tag
    // operations only ever hold one). Equal ranks admit no ordering rule, so
    // this is the one sanctioned MutexLockAll site for shard locks.
    const auto get_shard_mu = [&](std::size_t i) -> Mutex& {
      return shards_[i]->mu;
    };
    MutexLockAll<decltype(get_shard_mu)> locks(shards_.size(), get_shard_mu);
    for (const auto& shard : shards_) shard->mu.assert_held();

    serialize::Encoder enc;
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->dict.size();
    enc.u32(static_cast<std::uint32_t>(total));
    for (const auto& shard : shards_) {
      for (const auto& [tag, meta] : shard->dict) {
        enc.raw(ByteView(tag.data(), tag.size()));
        enc.var_bytes(meta.challenge);
        enc.var_bytes(meta.wrapped_key);
        enc.raw(ByteView(meta.owner.data(), meta.owner.size()));
        enc.u64(meta.hits);
        const auto blob = backend_->get_blob(meta.ref);
        enc.var_bytes(blob.has_value() ? *blob : Bytes{});
      }
    }
    return enclave_->seal(as_bytes("result-store-snapshot-v1"), enc.view());
  });
}

bool ResultStore::restore_snapshot(ByteView sealed) {
  return enclave_->ecall([&] {
    const auto plain =
        enclave_->unseal(as_bytes("result-store-snapshot-v1"), sealed);
    if (!plain.has_value()) return false;
    try {
      serialize::Decoder dec(*plain);
      const std::uint32_t n = dec.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        Tag tag;
        const ByteView tb = dec.raw(32);
        std::copy(tb.begin(), tb.end(), tag.begin());
        EntryPayload entry;
        entry.challenge = dec.var_bytes();
        entry.wrapped_key = dec.var_bytes();
        serialize::AppId owner;
        const ByteView ob = dec.raw(32);
        std::copy(ob.begin(), ob.end(), owner.begin());
        const std::uint64_t hits = dec.u64();
        entry.result_ct = dec.var_bytes();
        if (insert_trusted(tag, owner, entry, /*enforce_quota=*/false) ==
            PutStatus::kStored) {
          Shard& shard = shard_for(tag);
          MutexLock lock(shard.mu);
          shard.dict.at(tag).hits = hits;
        }
      }
      dec.expect_done();
    } catch (const SerializationError&) {
      return false;
    }
    return true;
  });
}

}  // namespace speed::store
