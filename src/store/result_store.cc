#include "store/result_store.h"

#include <algorithm>

#include "common/error.h"
#include "serialize/codec.h"

namespace speed::store {

using serialize::EntryPayload;
using serialize::GetRequest;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;
using serialize::SyncEntry;
using serialize::SyncRequest;
using serialize::SyncResponse;
using serialize::Tag;

namespace {

/// Approximate trusted bytes per dictionary entry: challenge + wrapped key +
/// digest + bookkeeping. Used for EPC accounting.
std::uint64_t meta_bytes(const Bytes& challenge, const Bytes& wrapped_key) {
  return challenge.size() + wrapped_key.size() + /*digest*/ 32 +
         /*tag key + bookkeeping*/ 96;
}

}  // namespace

ResultStore::ResultStore(sgx::Platform& platform, StoreConfig config)
    : platform_(platform),
      enclave_(platform.create_enclave("speed-result-store")),
      config_(config),
      trusted_charge_(*enclave_, 0) {}

Bytes ResultStore::handle(ByteView request) {
  // Host side: preliminary parse happens outside the enclave (only the type
  // byte is inspected), then one ECALL dispatches into the trusted body.
  const Message req = serialize::decode_message(request);
  const Message resp = enclave_->ecall([&] { return dispatch_trusted(req); });
  return serialize::encode_message(resp);
}

Message ResultStore::dispatch_trusted(const Message& request) {
  if (const auto* get_req = std::get_if<GetRequest>(&request)) {
    std::lock_guard<std::mutex> lock(mu_);
    return get_locked(*get_req);
  }
  if (const auto* put_req = std::get_if<PutRequest>(&request)) {
    std::lock_guard<std::mutex> lock(mu_);
    return put_locked(*put_req);
  }
  if (const auto* sync_req = std::get_if<SyncRequest>(&request)) {
    std::lock_guard<std::mutex> lock(mu_);
    return sync_locked(*sync_req);
  }
  throw ProtocolError("ResultStore: request must be GET, PUT, or SYNC");
}

GetResponse ResultStore::get(const GetRequest& req) {
  return enclave_->ecall([&] {
    std::lock_guard<std::mutex> lock(mu_);
    return get_locked(req);
  });
}

PutResponse ResultStore::put(const PutRequest& req) {
  return enclave_->ecall([&] {
    std::lock_guard<std::mutex> lock(mu_);
    return put_locked(req);
  });
}

SyncResponse ResultStore::sync(const SyncRequest& req) {
  return enclave_->ecall([&] {
    std::lock_guard<std::mutex> lock(mu_);
    return sync_locked(req);
  });
}

GetResponse ResultStore::get_locked(const GetRequest& req) {
  ++stats_.get_requests;
  GetResponse resp;
  const auto it = dict_.find(req.tag);
  if (it == dict_.end()) return resp;

  MetaEntry& meta = it->second;
  const auto blob_it = blobs_.find(req.tag);
  if (blob_it == blobs_.end()) {
    // Host deleted the ciphertext from under us: degrade to a miss and drop
    // the orphaned metadata.
    ++stats_.corrupt_blobs;
    erase_locked(req.tag);
    return resp;
  }
  // Verify the untrusted blob against the trusted digest before serving it
  // (the "authentication MAC" kept in the dictionary entry, §IV-B).
  const auto digest = crypto::Sha256::digest(blob_it->second);
  if (!ct_equal(ByteView(digest.data(), digest.size()),
                ByteView(meta.blob_digest.data(), meta.blob_digest.size()))) {
    ++stats_.corrupt_blobs;
    erase_locked(req.tag);
    return resp;
  }

  ++stats_.hits;
  ++meta.hits;
  touch_lru_locked(meta, req.tag);
  resp.found = true;
  resp.entry.challenge = meta.challenge;
  resp.entry.wrapped_key = meta.wrapped_key;
  resp.entry.result_ct = blob_it->second;
  return resp;
}

PutResponse ResultStore::put_locked(const PutRequest& req) {
  ++stats_.put_requests;
  return PutResponse{
      insert_locked(req.tag, req.requester, req.entry, /*enforce_quota=*/true)};
}

PutStatus ResultStore::insert_locked(const Tag& tag,
                                     const serialize::AppId& owner,
                                     const EntryPayload& entry,
                                     bool enforce_quota) {
  if (dict_.contains(tag)) {
    // Concurrent initial computations of the same tag: first write wins; the
    // stored ciphertext is decryptable by every eligible application anyway
    // (§IV-B Remark).
    ++stats_.duplicate_puts;
    return PutStatus::kAlreadyPresent;
  }
  const std::uint64_t blob_bytes = entry.result_ct.size();
  if (blob_bytes > config_.max_ciphertext_bytes ||
      dict_.size() >= config_.max_entries) {
    return PutStatus::kRejected;
  }
  if (enforce_quota) {
    const std::uint64_t used = quota_used_[owner];
    if (used + blob_bytes > config_.per_app_quota_bytes) {
      ++stats_.quota_rejections;
      return PutStatus::kQuotaExceeded;
    }
  }
  evict_for_space_locked(blob_bytes);

  MetaEntry meta;
  meta.challenge = entry.challenge;
  meta.wrapped_key = entry.wrapped_key;
  meta.blob_digest = crypto::Sha256::digest(entry.result_ct);
  meta.blob_bytes = blob_bytes;
  meta.owner = owner;
  lru_.push_front(tag);
  meta.lru_it = lru_.begin();

  blobs_[tag] = entry.result_ct;
  dict_.emplace(tag, std::move(meta));
  quota_used_[owner] += blob_bytes;
  ++stats_.stored;
  stats_.ciphertext_bytes += blob_bytes;
  recharge_trusted_locked();
  return PutStatus::kStored;
}

SyncResponse ResultStore::sync_locked(const SyncRequest& req) {
  // Serve the hottest entries (popularity = hit count), capped at
  // max_entries; this is what a master store replicates to peers.
  std::vector<std::pair<std::uint64_t, Tag>> ranked;
  ranked.reserve(dict_.size());
  for (const auto& [tag, meta] : dict_) ranked.emplace_back(meta.hits, tag);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  SyncResponse resp;
  const std::size_t limit =
      std::min<std::size_t>(req.max_entries, ranked.size());
  resp.entries.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    const Tag& tag = ranked[i].second;
    const auto blob_it = blobs_.find(tag);
    if (blob_it == blobs_.end()) continue;
    const MetaEntry& meta = dict_.at(tag);
    SyncEntry e;
    e.tag = tag;
    e.entry.challenge = meta.challenge;
    e.entry.wrapped_key = meta.wrapped_key;
    e.entry.result_ct = blob_it->second;
    e.hits = meta.hits;
    resp.entries.push_back(std::move(e));
  }
  return resp;
}

std::size_t ResultStore::merge_from_master(const SyncResponse& batch) {
  return enclave_->ecall([&] {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t inserted = 0;
    serialize::AppId master_owner{};
    master_owner.fill(0xee);  // synthetic owner for replicated entries
    for (const SyncEntry& e : batch.entries) {
      if (insert_locked(e.tag, master_owner, e.entry,
                        /*enforce_quota=*/false) == PutStatus::kStored) {
        ++inserted;
      }
    }
    return inserted;
  });
}

void ResultStore::erase_locked(const Tag& tag) {
  const auto it = dict_.find(tag);
  if (it == dict_.end()) return;
  MetaEntry& meta = it->second;
  stats_.ciphertext_bytes -= meta.blob_bytes;
  auto quota_it = quota_used_.find(meta.owner);
  if (quota_it != quota_used_.end()) {
    quota_it->second -= std::min(quota_it->second, meta.blob_bytes);
  }
  lru_.erase(meta.lru_it);
  blobs_.erase(tag);
  dict_.erase(it);
  recharge_trusted_locked();
}

void ResultStore::evict_for_space_locked(std::uint64_t incoming_bytes) {
  while (!lru_.empty() &&
         stats_.ciphertext_bytes + incoming_bytes > config_.max_ciphertext_bytes) {
    Tag victim = lru_.back();
    if (config_.eviction == StoreConfig::Eviction::kLfu) {
      // Least frequently used, ties broken toward least recently used
      // (scan backward from the cold end of the recency list).
      std::uint64_t best_hits = ~0ull;
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        const std::uint64_t hits = dict_.at(*it).hits;
        if (hits < best_hits) {
          best_hits = hits;
          victim = *it;
          if (hits == 0) break;  // cannot do better
        }
      }
    }
    erase_locked(victim);
    ++stats_.evictions;
  }
}

void ResultStore::touch_lru_locked(MetaEntry& entry, const Tag& tag) {
  lru_.erase(entry.lru_it);
  lru_.push_front(tag);
  entry.lru_it = lru_.begin();
}

std::uint64_t ResultStore::trusted_bytes_locked() const {
  std::uint64_t total = 0;
  for (const auto& [tag, meta] : dict_) {
    total += meta_bytes(meta.challenge, meta.wrapped_key);
  }
  return total;
}

void ResultStore::recharge_trusted_locked() {
  trusted_charge_.resize(trusted_bytes_locked());
}

bool ResultStore::corrupt_blob_for_testing(const serialize::Tag& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = blobs_.find(tag);
  if (it == blobs_.end() || it->second.empty()) return false;
  it->second[it->second.size() / 2] ^= 0x01;
  return true;
}

ResultStore::Stats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = dict_.size();
  return s;
}

// ------------------------------------------------------------- persistence

Bytes ResultStore::seal_snapshot() {
  return enclave_->ecall([&] {
    std::lock_guard<std::mutex> lock(mu_);
    serialize::Encoder enc;
    enc.u32(static_cast<std::uint32_t>(dict_.size()));
    for (const auto& [tag, meta] : dict_) {
      enc.raw(ByteView(tag.data(), tag.size()));
      enc.var_bytes(meta.challenge);
      enc.var_bytes(meta.wrapped_key);
      enc.raw(ByteView(meta.owner.data(), meta.owner.size()));
      enc.u64(meta.hits);
      const auto blob_it = blobs_.find(tag);
      enc.var_bytes(blob_it != blobs_.end() ? blob_it->second : Bytes{});
    }
    return enclave_->seal(as_bytes("result-store-snapshot-v1"), enc.view());
  });
}

bool ResultStore::restore_snapshot(ByteView sealed) {
  return enclave_->ecall([&] {
    const auto plain =
        enclave_->unseal(as_bytes("result-store-snapshot-v1"), sealed);
    if (!plain.has_value()) return false;
    std::lock_guard<std::mutex> lock(mu_);
    try {
      serialize::Decoder dec(*plain);
      const std::uint32_t n = dec.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        Tag tag;
        const ByteView tb = dec.raw(32);
        std::copy(tb.begin(), tb.end(), tag.begin());
        EntryPayload entry;
        entry.challenge = dec.var_bytes();
        entry.wrapped_key = dec.var_bytes();
        serialize::AppId owner;
        const ByteView ob = dec.raw(32);
        std::copy(ob.begin(), ob.end(), owner.begin());
        const std::uint64_t hits = dec.u64();
        entry.result_ct = dec.var_bytes();
        if (insert_locked(tag, owner, entry, /*enforce_quota=*/false) ==
            PutStatus::kStored) {
          dict_.at(tag).hits = hits;
        }
      }
      dec.expect_done();
    } catch (const SerializationError&) {
      return false;
    }
    return true;
  });
}

}  // namespace speed::store
