#include "store/file_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "serialize/codec.h"

namespace speed::store {

namespace {

namespace fs = std::filesystem;

// On-disk format constants. Bumping either version orphans existing
// directories loudly (the constructor refuses to open them).
constexpr char kWalMagic[5] = {'S', 'P', 'W', 'A', 'L'};
constexpr char kSegMagic[5] = {'S', 'P', 'S', 'E', 'G'};
constexpr std::uint8_t kFileFormatVersion = 1;
constexpr std::uint64_t kHeaderBytes = 8;  // magic[5] + version + 2 reserved
constexpr std::uint32_t kMaxWalRecordBytes = 1u << 20;

std::array<std::uint8_t, kHeaderBytes> make_header(const char magic[5]) {
  std::array<std::uint8_t, kHeaderBytes> h{};
  std::memcpy(h.data(), magic, 5);
  h[5] = kFileFormatVersion;
  return h;
}

/// Full write or BackendWriteError; a short write leaves a torn tail, which
/// is exactly what replay-side truncation handles.
void write_all(int fd, std::uint64_t offset, ByteView data,
               const char* what) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n =
        ::pwrite(fd, data.data() + done, data.size() - done,
                 static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw BackendWriteError(std::string(what) + ": pwrite: " +
                              std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

std::optional<Bytes> read_exact(int fd, std::uint64_t offset,
                                std::uint64_t length) {
  Bytes out(length);
  std::size_t done = 0;
  while (done < length) {
    const ssize_t n = ::pread(fd, out.data() + done, length - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // ref reaches past EOF: torn segment
    done += static_cast<std::size_t>(n);
  }
  return out;
}

void check_header(ByteView header, const char magic[5], const char* what) {
  if (std::memcmp(header.data(), magic, 5) != 0) {
    throw Error(std::string(what) + ": bad magic (not a SPEED store file)");
  }
  if (header[5] != kFileFormatVersion) {
    throw Error(std::string(what) + ": unsupported on-disk format version " +
                std::to_string(header[5]) + " (this build reads version " +
                std::to_string(kFileFormatVersion) + ")");
  }
}

}  // namespace

FileBackend::Segment::~Segment() {
  if (fd >= 0) ::close(fd);
}

FileBackend::FileBackend(std::string dir, FileBackendConfig config)
    : dir_(std::move(dir)), config_(config) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw Error("FileBackend: cannot create " + dir_ + ": " + ec.message());
  }

  // Adopt existing segments (sealed; liveness is rebuilt by the store's WAL
  // replay through note_blob).
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    unsigned id = 0;
    if (std::sscanf(name.c_str(), "seg-%08u.blob", &id) != 1) continue;
    auto seg = std::make_shared<Segment>();
    seg->fd = ::open(entry.path().c_str(), O_RDWR | O_CLOEXEC);
    if (seg->fd < 0) {
      throw Error("FileBackend: cannot open " + name + ": " +
                  std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(seg->fd, &st) != 0) {
      throw Error("FileBackend: fstat " + name + ": " + std::strerror(errno));
    }
    seg->size = static_cast<std::uint64_t>(st.st_size);
    if (seg->size >= kHeaderBytes) {
      const auto header = read_exact(seg->fd, 0, kHeaderBytes);
      if (header.has_value()) check_header(*header, kSegMagic, name.c_str());
    }
    segments_.emplace(static_cast<std::uint32_t>(id), std::move(seg));
    next_segment_id_ = std::max(next_segment_id_, id + 1);
  }

  const std::string wal_path = dir_ + "/wal.log";
  wal_fd_ = ::open(wal_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (wal_fd_ < 0) {
    throw Error("FileBackend: cannot open " + wal_path + ": " +
                std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(wal_fd_, &st) != 0) {
    throw Error("FileBackend: fstat wal.log: " + std::string(std::strerror(errno)));
  }
  wal_size_ = static_cast<std::uint64_t>(st.st_size);
  if (wal_size_ < kHeaderBytes) {
    // Fresh (or torn during creation, before anything could be
    // acknowledged): start the log over.
    const auto header = make_header(kWalMagic);
    if (::ftruncate(wal_fd_, 0) != 0) {
      throw Error("FileBackend: ftruncate wal.log: " + std::string(std::strerror(errno)));
    }
    write_all(wal_fd_, 0, ByteView(header.data(), header.size()), "wal.log");
    if (::fsync(wal_fd_) != 0) {
      throw Error("FileBackend: fsync wal.log: " + std::string(std::strerror(errno)));
    }
    wal_size_ = kHeaderBytes;
  } else {
    const auto header = read_exact(wal_fd_, 0, kHeaderBytes);
    if (!header.has_value()) {
      throw Error("FileBackend: cannot read wal.log header");
    }
    check_header(*header, kWalMagic, "wal.log");
  }
}

FileBackend::~FileBackend() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

std::string FileBackend::segment_path(std::uint32_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08u.blob", id);
  return dir_ + "/" + name;
}

std::shared_ptr<FileBackend::Segment> FileBackend::segment_for_locked(
    std::uint32_t id) const {
  const auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : it->second;
}

void FileBackend::roll_segment_locked() {
  const std::uint32_t id = next_segment_id_++;
  auto seg = std::make_shared<Segment>();
  const std::string path = segment_path(id);
  seg->fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (seg->fd < 0) {
    ++stats_.write_errors;
    throw BackendWriteError("FileBackend: cannot create " + path + ": " +
                            std::strerror(errno));
  }
  const auto header = make_header(kSegMagic);
  try {
    write_all(seg->fd, 0, ByteView(header.data(), header.size()),
              path.c_str());
  } catch (const BackendWriteError&) {
    ++stats_.write_errors;
    ::unlink(path.c_str());
    throw;
  }
  seg->size = kHeaderBytes;
  seg->dirty = true;
  segments_.emplace(id, std::move(seg));
  active_segment_ = id;
  ++stats_.segments_created;
}

BlobRef FileBackend::put_blob(ByteView blob) {
  MutexLock lock(mu_);
  if (active_segment_ == 0 ||
      segments_.at(active_segment_)->size + blob.size() >
          config_.segment_bytes + kHeaderBytes) {
    roll_segment_locked();
  }
  Segment& seg = *segments_.at(active_segment_);
  BlobRef ref;
  ref.segment = active_segment_;
  ref.offset = seg.size;
  ref.length = blob.size();
  try {
    write_all(seg.fd, seg.size, blob, "segment");
  } catch (const BackendWriteError&) {
    ++stats_.write_errors;
    throw;
  }
  seg.size += blob.size();
  seg.dirty = true;
  ++seg.live_blobs;
  seg.live_bytes += blob.size();
  stats_.live_blob_bytes += blob.size();
  return ref;
}

std::optional<Bytes> FileBackend::get_blob(const BlobRef& ref) const {
  std::shared_ptr<Segment> seg;
  {
    MutexLock lock(mu_);
    seg = segment_for_locked(ref.segment);
  }
  if (seg == nullptr || ref.offset + ref.length > seg->size) {
    return std::nullopt;
  }
  // pread outside the lock: sealed segment bytes are immutable, and the
  // shared_ptr keeps the fd alive even if compaction unlinks the file.
  return read_exact(seg->fd, ref.offset, ref.length);
}

void FileBackend::delete_blob(const BlobRef& ref) {
  MutexLock lock(mu_);
  const auto seg = segment_for_locked(ref.segment);
  if (seg == nullptr) return;
  if (seg->live_blobs > 0) --seg->live_blobs;
  seg->live_bytes -= std::min(seg->live_bytes, ref.length);
  seg->dead_bytes += ref.length;
  stats_.live_blob_bytes -= std::min(stats_.live_blob_bytes, ref.length);
  stats_.dead_blob_bytes += ref.length;
  if (config_.auto_compact) try_compact_locked(ref.segment);
}

bool FileBackend::note_blob(const BlobRef& ref) {
  MutexLock lock(mu_);
  const auto seg = segment_for_locked(ref.segment);
  if (seg == nullptr || ref.offset + ref.length > seg->size) return false;
  ++seg->live_blobs;
  seg->live_bytes += ref.length;
  stats_.live_blob_bytes += ref.length;
  return true;
}

bool FileBackend::try_compact_locked(std::uint32_t id) {
  const auto it = segments_.find(id);
  if (it == segments_.end()) return false;
  if (id == active_segment_ || it->second->live_blobs != 0) return false;
  stats_.dead_blob_bytes -=
      std::min(stats_.dead_blob_bytes, it->second->dead_bytes);
  ::unlink(segment_path(id).c_str());
  segments_.erase(it);  // fd closes once in-flight get_blob readers drop it
  ++stats_.segments_compacted;
  return true;
}

std::size_t FileBackend::compact() {
  MutexLock lock(mu_);
  std::size_t reclaimed = 0;
  std::vector<std::uint32_t> ids;
  ids.reserve(segments_.size());
  for (const auto& [id, seg] : segments_) ids.push_back(id);
  for (const std::uint32_t id : ids) {
    if (try_compact_locked(id)) ++reclaimed;
  }
  return reclaimed;
}

bool FileBackend::corrupt_blob(const BlobRef& ref) {
  std::shared_ptr<Segment> seg;
  {
    MutexLock lock(mu_);
    seg = segment_for_locked(ref.segment);
  }
  if (seg == nullptr || ref.length == 0 ||
      ref.offset + ref.length > seg->size) {
    return false;
  }
  const std::uint64_t at = ref.offset + ref.length / 2;
  std::uint8_t b = 0;
  if (::pread(seg->fd, &b, 1, static_cast<off_t>(at)) != 1) return false;
  b ^= 0x01;
  return ::pwrite(seg->fd, &b, 1, static_cast<off_t>(at)) == 1;
}

void FileBackend::wal_append(ByteView record) {
  MutexLock lock(mu_);
  if (record.size() > kMaxWalRecordBytes) {
    ++stats_.write_errors;
    throw BackendWriteError("FileBackend: wal record exceeds frame cap");
  }
  serialize::Encoder frame;
  frame.u32(static_cast<std::uint32_t>(record.size()));
  frame.raw(record);
  try {
    write_all(wal_fd_, wal_size_, frame.view(), "wal.log");
  } catch (const BackendWriteError&) {
    ++stats_.write_errors;
    throw;
  }
  wal_size_ += frame.size();
  ++stats_.wal_appends;
  stats_.wal_bytes += frame.size();
  if (++appends_since_sync_ >= config_.fsync_every) sync_locked();
}

void FileBackend::sync_locked() {
  // Order matters: blob bytes reach stable storage before the log records
  // that reference them, so a replayed record never points at torn data.
  for (auto& [id, seg] : segments_) {
    if (!seg->dirty) continue;
    if (::fsync(seg->fd) != 0) {
      ++stats_.write_errors;
      throw BackendWriteError("FileBackend: fsync segment: " +
                              std::string(std::strerror(errno)));
    }
    seg->dirty = false;
  }
  if (::fsync(wal_fd_) != 0) {
    ++stats_.write_errors;
    throw BackendWriteError("FileBackend: fsync wal.log: " +
                            std::string(std::strerror(errno)));
  }
  ++stats_.wal_fsyncs;
  appends_since_sync_ = 0;
}

void FileBackend::wal_sync() {
  MutexLock lock(mu_);
  sync_locked();
}

void FileBackend::wal_replay(
    const std::function<bool(ByteView, std::uint64_t)>& fn) {
  Bytes log;
  std::uint64_t size = 0;
  {
    MutexLock lock(mu_);
    size = wal_size_;
    const auto data = read_exact(wal_fd_, 0, size);
    if (!data.has_value()) {
      throw Error("FileBackend: cannot read wal.log for replay");
    }
    log = std::move(*data);
  }
  std::uint64_t pos = kHeaderBytes;
  while (pos < size) {
    // Frame = u32 length + payload; anything short of a full frame is a
    // torn tail and is truncated away right here.
    if (size - pos < 4) break;
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i) {
      len = (len << 8) | log[static_cast<std::size_t>(pos) + static_cast<std::size_t>(i)];
    }
    if (len > kMaxWalRecordBytes || size - pos - 4 < len) break;
    if (!fn(ByteView(log.data() + pos + 4, len), pos)) return;
    pos += 4 + len;
  }
  if (pos < size) wal_truncate(pos);
}

void FileBackend::wal_truncate(std::uint64_t offset) {
  MutexLock lock(mu_);
  if (offset >= wal_size_) return;
  if (::ftruncate(wal_fd_, static_cast<off_t>(offset)) != 0) {
    throw Error("FileBackend: ftruncate wal.log: " +
                std::string(std::strerror(errno)));
  }
  wal_size_ = offset;
}

BackendStats FileBackend::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::unique_ptr<ResultStore> open_result_store(sgx::Platform& platform,
                                               const std::string& dir,
                                               StoreConfig config,
                                               FileBackendConfig file_config) {
  config.backend = std::make_shared<FileBackend>(dir, file_config);
  return std::make_unique<ResultStore>(platform, std::move(config));
}

}  // namespace speed::store
