// Encrypted ResultStore (paper §IV-B).
//
// The store is split exactly like the prototype:
//
//   * a *trusted* metadata dictionary living in the store enclave, keyed by
//     the computation tag. Each entry is deliberately small — the challenge
//     message r, the wrapped key [k], an authentication digest of the
//     ciphertext, bookkeeping for LRU/quota — and is charged against the
//     simulated EPC;
//   * an *untrusted* ciphertext arena holding the actual [res] blobs, which
//     can grow without pressuring enclave memory. Blobs are AEAD envelopes
//     the store cannot read; their digest in the trusted entry lets the
//     store detect host-side corruption on GET and degrade to a miss.
//
// EPC-scale metadata (PR 10): the dictionary itself is two-tiered. The
// resident tier is a robin-hood open-addressed MetaIndex of fixed 32-byte
// slots (store/meta_index.h) — fingerprint, packed spill locator, recency
// clock, hit counter, quota bookkeeping. The full record (tag, owner,
// challenge, wrapped key, digest, result locator) is sealed with the store
// enclave's key (store/meta_codec.h) and written to the blob backend at
// insert time; a bounded per-shard cache (StoreConfig::resident_meta_bytes)
// keeps hot records decoded, and cold records are *faulted in* — read back,
// unsealed, verified against the full tag — on demand. The host can destroy
// a sealed spill record (that entry degrades to a miss, like a corrupted
// blob) but can never read or forge one. Resident cost per entry is one
// slot plus a share of the cache instead of hundreds of bytes of node-based
// map; bench/bench_metadata.cc measures entries per MB of EPC charge.
//
// Persistence: the untrusted half lives behind a BlobBackend
// (store/blob_backend.h). The default is the original in-RAM arena; a
// durable backend (store/file_backend.h) additionally receives, for every
// accepted mutation, a metadata WAL record the enclave has sealed and
// MAC-chained under its sealing key (store/wal_codec.h). A new ResultStore
// constructed over the same backend replays that log — verifying the chain,
// truncating any torn tail, and rebuilding the per-shard index, spill
// records, the QuotaLedger, and the EPC charges — so deduplicated
// computations survive a store restart without weakening the trust
// argument: the host only ever holds ciphertext blobs (already AEAD
// envelopes) and sealed metadata. After the first failed backend write the
// store goes *degraded*: GETs keep serving, PUTs are rejected (the on-disk
// log tail can no longer be extended safely), and
// speed_store_backend_write_errors_total increments. If a recovery-time
// spill rewrite fails (disk already full), the record is *pinned* resident
// instead — recovery never loses an acknowledged entry to ENOSPC.
//
// Concurrency: the index, caches, blob arena, and capacity accounting are
// partitioned into `StoreConfig::shards` tag-addressed shards,
// memcached-style. A tag maps to exactly one shard (an entry is never
// split), each shard has its own mutex and eviction state, and GET/PUT for
// different shards proceed in parallel — which is what lets the
// per-connection worker threads of StoreTcpServer scale. Per-application
// quotas stay globally exact through a lock-striped ledger keyed by AppId,
// and stats() aggregates per-shard atomic counters without taking any shard
// lock. `shards = 1` (the default) reproduces the original single-mutex
// store bit-for-bit, and is the baseline the Fig. 6 throughput bench
// compares against. WAL appends serialize on their own mutex (nested inside
// at most one shard lock) because the chain orders them anyway.
//
// The host-side body parses each framed request and dispatches one ECALL
// (GET or PUT) that marshals data at the boundary and touches the trusted
// dictionary, mirroring the paper's two customized ECALLs. DoS defence is a
// per-application byte quota (§III-D); capacity pressure is handled by LRU
// eviction. SYNC implements the master-store replication of the §IV-B
// Remark.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/annotated_lock.h"
#include "common/bytes.h"
#include "crypto/sha256.h"
#include "serialize/wire.h"
#include "sgx/enclave.h"
#include "store/blob_backend.h"
#include "store/meta_codec.h"
#include "store/meta_index.h"
#include "store/wal_codec.h"
#include "telemetry/registry.h"

namespace speed::store {

struct StoreConfig {
  /// Capacity of the untrusted ciphertext arena across all shards; each
  /// shard owns an equal slice and evicts within it.
  std::uint64_t max_ciphertext_bytes = 256ull * 1024 * 1024;
  /// Per-application stored-bytes quota (rate-limiting defence, §III-D).
  /// Enforced exactly across shards.
  std::uint64_t per_app_quota_bytes = 64ull * 1024 * 1024;
  /// Upper bound on dictionary entries (trusted memory guard), split across
  /// shards like the arena capacity.
  std::size_t max_entries = 1u << 20;

  /// Trusted-memory budget for the decoded-metadata cache, split across
  /// shards. Cold entries keep only their 32-byte index slot resident; their
  /// full record is faulted in from the sealed spill tier on access. 0
  /// disables the cache entirely (every access faults in — the spill-aware
  /// replication regression tests run in this mode).
  std::uint64_t resident_meta_bytes = 8ull * 1024 * 1024;

  /// Which entry to sacrifice when the arena is full. kLru suits shifting
  /// working sets; kLfu protects long-lived hot computations (the "popular
  /// results" the §IV-B master store replicates) from scan-like churn.
  enum class Eviction { kLru, kLfu };
  Eviction eviction = Eviction::kLru;

  /// Lock-striping factor. 1 (the default) is the original single-mutex
  /// store; concurrent deployments (StoreTcpServer) want a small power of
  /// two, e.g. 8. Real tags are SHA-256 outputs, so shard assignment (taken
  /// from tag bytes disjoint from the index's fingerprint bytes) is uniform.
  std::size_t shards = 1;

  /// Persistence backend for the untrusted half. Null (the default) gives
  /// the store a private, non-durable in-memory arena — the original
  /// behavior, with zero WAL work on the PUT path (spill records are still
  /// written: the memory arena never fails and the paging tier is what
  /// keeps the EPC footprint flat). A durable backend (FileBackend, or
  /// MemoryBackend(record_wal=true) for tests) turns on WAL logging, and
  /// the constructor replays whatever the backend already holds — see
  /// open_result_store() in store/file_backend.h for the one-call
  /// file-backed form.
  std::shared_ptr<BlobBackend> backend;
};

/// Who is on the far end of a dispatched request. Application sessions may
/// only GET, PUT, and heartbeat; the infra plane (peer stores, the host's
/// own plaintext path, cluster replication) additionally gets SYNC, the
/// anti-entropy PULL/PUSH pair, and membership updates. The split is a
/// quota defence: PUSH merges are quota-exempt, so an application allowed
/// to send one could store bytes it was never charged for.
enum class Peer : std::uint8_t {
  kInfra = 0,  ///< trusted infrastructure (default: preserves old callers)
  kApp = 1,    ///< attested application session (StoreSession)
};

class ResultStore {
 public:
  /// Creates the store enclave on `platform`; recovers from
  /// `config.backend` when it is durable and non-empty.
  ResultStore(sgx::Platform& platform, StoreConfig config = StoreConfig{});

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Host-side entry point for the plaintext protocol: decode one request,
  /// perform one ECALL, return the encoded response.
  Bytes handle(ByteView request);

  /// Trusted dispatch: must already execute in the store enclave's context
  /// (used by handle() and by StoreSession's secure-channel ECALL). Takes
  /// only the target shard's lock, so concurrent sessions proceed in
  /// parallel when their tags hash to different shards. Infra-plane
  /// messages on a Peer::kApp session throw ProtocolError.
  serialize::Message dispatch_trusted(const serialize::Message& request,
                                      Peer peer = Peer::kInfra);

  // Typed convenience API (each performs its own ECALL).
  serialize::GetResponse get(const serialize::GetRequest& req);
  serialize::PutResponse put(const serialize::PutRequest& req);
  serialize::SyncResponse sync(const serialize::SyncRequest& req);

  /// Replica side of master synchronization: merge entries pulled from a
  /// master store. Quota-exempt (the master is trusted infrastructure), but
  /// capacity eviction still applies. Returns the number of newly inserted
  /// entries.
  std::size_t merge_from_master(const serialize::SyncResponse& batch);

  // ----------------------------------------------------------- cluster view

  /// Membership this node has applied (docs/PROTOCOL.md §8). Epoch 0 with no
  /// members means "standalone": the node answers heartbeats and sync but
  /// holds no cluster state.
  struct ClusterView {
    std::uint64_t epoch = 0;
    std::vector<serialize::MemberInfo> members;
  };
  ClusterView cluster_view() const;

  /// Persistence: seal the full store state (metadata + blobs) to a blob
  /// only this store enclave (same measurement, same platform) can restore.
  /// Spill-aware: cold entries are faulted in, never skipped.
  Bytes seal_snapshot();
  bool restore_snapshot(ByteView sealed);

  // ------------------------------------------------------------ durability

  /// What the constructor's WAL replay found. All zeros for a non-durable
  /// or freshly initialized backend.
  struct RecoveryInfo {
    std::uint64_t replayed_records = 0;
    std::uint64_t inserts = 0;
    std::uint64_t erases = 0;
    /// Recovered entries dropped because their blob was not actually on
    /// the backend (e.g. a compaction raced a lost erase record).
    std::uint64_t dropped_blobs = 0;
    /// Recovered entries pinned resident because their spill rewrite failed
    /// (disk full at recovery time). Nothing acknowledged is lost.
    std::uint64_t pinned_records = 0;
    bool torn_tail = false;  ///< log ended in a torn/unverifiable record
    double recovery_ms = 0.0;
  };
  const RecoveryInfo& recovery_info() const { return recovery_info_; }

  /// True after any backend write failure (disk full, injected crash): the
  /// store stops accepting PUTs — the log tail may be torn, so appending
  /// past it would orphan records — but keeps serving GETs. Cleared only by
  /// constructing a fresh store over the backend.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  /// Force every acknowledged PUT onto stable storage (closes the group-
  /// commit window of FileBackendConfig::fsync_every > 1).
  void flush_backend();

  /// Reclaim backend storage whose blobs are all dead; returns segments
  /// reclaimed.
  std::size_t compact_backend() { return backend_->compact(); }

  BlobBackend& backend() { return *backend_; }

  /// Exact stored-bytes charge currently held against `app` (quota ledger
  /// introspection; the leak-check tests assert this returns to zero).
  std::uint64_t quota_used(const serialize::AppId& app) const;

  /// Test hook modelling a compromised host: flips one bit of a blob in the
  /// untrusted arena (the trusted dictionary is out of the adversary's
  /// reach). Returns false if the tag has no blob.
  bool corrupt_blob_for_testing(const serialize::Tag& tag);

  struct Stats {
    std::uint64_t get_requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t put_requests = 0;
    std::uint64_t stored = 0;
    std::uint64_t duplicate_puts = 0;
    std::uint64_t quota_rejections = 0;
    std::uint64_t evictions = 0;
    std::uint64_t corrupt_blobs = 0;
    std::uint64_t entries = 0;
    std::uint64_t ciphertext_bytes = 0;
    std::uint64_t backend_write_errors = 0;
    // Metadata paging tier (PR 10).
    std::uint64_t meta_spills = 0;     ///< sealed records written out
    std::uint64_t meta_fault_ins = 0;  ///< cold records read back in
    std::uint64_t meta_resident_bytes = 0;  ///< trusted bytes charged
    std::uint64_t meta_index_bytes = 0;     ///< slot-table share of the above
    std::uint64_t meta_pinned_records = 0;  ///< entries pinned (spill failed)
  };
  /// Aggregated over shards from atomic counters — never blocks a GET/PUT.
  Stats stats() const;

  sgx::Enclave& enclave() { return *enclave_; }
  const StoreConfig& config() const { return config_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  /// AppIds are enclave measurements, not SHA tags; they get their own
  /// hasher (FNV-1a over the full 32 bytes) instead of borrowing the tag
  /// fingerprint through the layout coincidence that both are 32-byte
  /// arrays.
  struct AppIdHash {
    std::size_t operator()(const serialize::AppId& a) const {
      std::uint64_t h = 14695981039346656037ull;
      for (const std::uint8_t b : a) {
        h ^= b;
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };

  /// A decoded metadata record held in the bounded per-shard cache, keyed
  /// by the entry's spill locator.
  struct CachedMeta {
    MetaRecord rec;
    std::list<std::uint64_t>::iterator lru_it;
  };

  /// Interned AppId (quota release must never need a fault-in, so owners
  /// stay resident, refcounted across the shard's entries).
  struct OwnerSlot {
    serialize::AppId id{};
    std::uint32_t refs = 0;
  };

  /// One lock's worth of store: resident slot index + decoded-record cache
  /// + pinned overflow + eviction state + its slice of the trusted-memory
  /// charge. The telemetry cells (lock-free relaxed atomics under the hood)
  /// feed both the lock-free stats() aggregate and the registry's per-shard
  /// speed_store_* series; everything else is guarded by mu.
  struct Shard {
    Shard(sgx::Enclave& enclave, std::uint64_t cache_budget_bytes)
        : cache_budget(cache_budget_bytes), trusted_charge(enclave, 0) {}

    // 600: one shard lock per request path; quota stripes (650) and the
    // WAL (700) nest inside it. seal_snapshot holds all shards at once via
    // MutexLockAll (the sanctioned equal-rank exception).
    mutable Mutex mu{LockRank::kStoreShard};
    MetaIndex index GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, CachedMeta> cache GUARDED_BY(mu);
    std::list<std::uint64_t> cache_lru GUARDED_BY(mu);  ///< front = hottest
    std::uint64_t cache_bytes GUARDED_BY(mu) = 0;
    const std::uint64_t cache_budget;  ///< immutable after construction
    /// Entries whose spill write failed (kPinnedLocBit locators): the full
    /// record stays resident so nothing acknowledged is ever lost to ENOSPC.
    std::unordered_map<std::uint64_t, MetaRecord> pinned GUARDED_BY(mu);
    std::uint64_t pinned_bytes GUARDED_BY(mu) = 0;
    std::uint64_t next_pin GUARDED_BY(mu) = 0;
    std::vector<OwnerSlot> owners GUARDED_BY(mu);
    std::unordered_map<serialize::AppId, std::uint32_t, AppIdHash> owner_lookup
        GUARDED_BY(mu);
    std::vector<std::uint32_t> owner_free GUARDED_BY(mu);
    /// Recency stamp handed to slots on insert/touch; exact LRU order.
    std::uint32_t clock GUARDED_BY(mu) = 0;
    /// Incrementally maintained trusted footprint: index capacity + cache +
    /// pinned records + interned owners.
    std::uint64_t trusted_bytes GUARDED_BY(mu) = 0;
    sgx::TrustedCharge trusted_charge GUARDED_BY(mu);

    telemetry::Counter get_requests;
    telemetry::Counter hits;
    telemetry::Counter put_requests;
    telemetry::Counter stored;
    telemetry::Counter duplicate_puts;
    telemetry::Counter quota_rejections;
    telemetry::Counter evictions;
    telemetry::Counter corrupt_blobs;
    telemetry::Counter meta_spills;
    telemetry::Counter meta_fault_ins;
    telemetry::Gauge entries;
    telemetry::Gauge ciphertext_bytes;
    telemetry::Gauge meta_resident_bytes;  ///< mirrors trusted_bytes
    telemetry::Gauge meta_index_bytes;
    telemetry::Gauge meta_pinned_records;
    telemetry::Histogram get_ns;  ///< in-enclave GET service latency
    telemetry::Histogram put_ns;  ///< in-enclave PUT/insert service latency
  };

  /// Globally exact per-application quota accounting, lock-striped by AppId
  /// so it never serializes two shards. Stripe locks nest inside shard locks
  /// and acquire nothing themselves.
  class QuotaLedger {
   public:
    QuotaLedger(std::uint64_t limit, std::size_t stripes);

    /// Atomically check-and-charge; false (and no charge) if `bytes` would
    /// push `app` past the limit.
    bool try_charge(const serialize::AppId& app, std::uint64_t bytes);
    /// Unchecked charge (quota-exempt inserts still account their usage).
    void charge(const serialize::AppId& app, std::uint64_t bytes);
    void release(const serialize::AppId& app, std::uint64_t bytes);
    std::uint64_t used(const serialize::AppId& app) const;

   private:
    struct Stripe {
      mutable Mutex mu{LockRank::kQuota};  // nests inside shard locks only
      std::unordered_map<serialize::AppId, std::uint64_t, AppIdHash> used
          GUARDED_BY(mu);
    };
    const Stripe& stripe_for(const serialize::AppId& app) const;
    Stripe& stripe_for(const serialize::AppId& app);

    std::uint64_t limit_;
    std::vector<std::unique_ptr<Stripe>> stripes_;
  };

  Shard& shard_for(const serialize::Tag& tag);

  serialize::GetResponse get_trusted(const serialize::GetRequest& req);
  serialize::PutResponse put_trusted(const serialize::PutRequest& req);
  serialize::SyncResponse sync_trusted(const serialize::SyncRequest& req);

  // Cluster plane (docs/PROTOCOL.md §8).
  serialize::HeartbeatResponse heartbeat_trusted(
      const serialize::HeartbeatRequest& req) const;
  serialize::PullResponse pull_trusted(const serialize::PullRequest& req);
  serialize::PushResponse push_trusted(const serialize::PushRequest& req);
  serialize::MembershipAck membership_trusted(
      const serialize::MembershipUpdate& req);

  /// Quota-exempt merge shared by master sync, anti-entropy push, and pull
  /// replies; preserves the sender's hit counts so popularity ranking
  /// survives replication. Must already run in the enclave.
  std::size_t merge_entries_trusted(
      const std::vector<serialize::SyncEntry>& entries);

  /// Insert helper shared by put and merge; takes `shard.mu` itself.
  /// `enforce_quota` distinguishes application PUTs from master-sync merges.
  serialize::PutStatus insert_trusted(const serialize::Tag& tag,
                                      const serialize::AppId& owner,
                                      const serialize::EntryPayload& entry,
                                      bool enforce_quota);

  /// Overwrites the stored hit count (replication carries popularity).
  void set_hits_trusted(const serialize::Tag& tag, std::uint64_t hits);

  // ----------------------------------------------- metadata two-tier paging

  /// Resident-memory cost model of one decoded record (cache/pinned tiers).
  static std::uint64_t record_bytes(const MetaRecord& rec);

  std::uint32_t next_clock_locked(Shard& shard) REQUIRES(shard.mu);

  std::uint32_t owner_intern_locked(Shard& shard,
                                    const serialize::AppId& app)
      REQUIRES(shard.mu);
  void owner_release_locked(Shard& shard, std::uint32_t ref)
      REQUIRES(shard.mu);

  void cache_put_locked(Shard& shard, std::uint64_t loc, MetaRecord rec)
      REQUIRES(shard.mu);
  const MetaRecord* cache_get_locked(Shard& shard, std::uint64_t loc)
      REQUIRES(shard.mu);
  void cache_erase_locked(Shard& shard, std::uint64_t loc) REQUIRES(shard.mu);

  /// Loads the full record behind a slot: pinned map, then cache, then
  /// fault-in from the sealed spill tier (verifying the seal). nullopt when
  /// the host destroyed or corrupted the spill record.
  std::optional<MetaRecord> load_record_locked(Shard& shard,
                                               const MetaSlot& slot)
      REQUIRES(shard.mu);

  struct Found {
    MetaSlot* slot;  ///< valid until the next index mutation
    MetaRecord rec;
  };
  /// Full-tag lookup: probes the index by fingerprint, confirming each
  /// candidate against its loaded record. Entries whose spill record is
  /// unreadable are dropped (accounting released) along the way.
  std::optional<Found> find_entry_locked(Shard& shard,
                                         const serialize::Tag& tag)
      REQUIRES(shard.mu);

  /// Drops an entry whose spill record cannot be read: releases quota and
  /// accounting from resident slot fields alone. The result blob's ref is
  /// inside the unreadable record, so the blob is left for compaction; a
  /// durable store's WAL still holds the insert, so recovery resurrects the
  /// entry with a fresh spill record.
  void drop_unreadable_locked(Shard& shard, std::uint64_t fp,
                              std::uint64_t loc) REQUIRES(shard.mu);

  /// Full erase with the record in hand (eviction, corruption, replay).
  /// `log_wal` is false only when the erase is *replaying* the log.
  void erase_entry_locked(Shard& shard, const MetaSlot& slot,
                          const MetaRecord& rec, bool log_wal)
      REQUIRES(shard.mu);

  /// Evicts the coldest entry (kLru: oldest clock; kLfu: fewest hits, ties
  /// toward oldest clock). False when the shard is empty.
  bool evict_one_locked(Shard& shard) REQUIRES(shard.mu);
  void evict_for_space_locked(Shard& shard, std::uint64_t incoming_bytes)
      REQUIRES(shard.mu);

  /// Seals `rec` and writes it to the spill tier; returns (packed locator,
  /// sealed length). Throws BackendWriteError on write failure or an
  /// unrepresentable locator (the written blob is deleted first).
  std::pair<std::uint64_t, std::uint16_t> spill_record(const MetaRecord& rec);

  /// Pins `rec` resident under a synthetic locator (spill tier refused it).
  std::uint64_t pin_record_locked(Shard& shard, MetaRecord rec)
      REQUIRES(shard.mu);

  /// Recomputes trusted_bytes from the tier sizes and resizes the EPC
  /// charge + gauges.
  void sync_trusted_charge_locked(Shard& shard) REQUIRES(shard.mu);

  // --------------------------------------------------------- WAL plumbing

  /// Seal `rec` into the chain and append it; throws BackendWriteError.
  /// No-op for non-durable backends; must not be called when degraded.
  void wal_append_record(const WalRecord& rec);
  void enter_degraded();

  /// Constructor-time replay: rebuild shards/quota/charges from the log,
  /// truncating at the first record that fails chain verification.
  void recover_from_backend();
  void apply_recovered(const WalRecord& rec);

  sgx::Platform& platform_;
  std::unique_ptr<sgx::Enclave> enclave_;
  StoreConfig config_;
  std::shared_ptr<BlobBackend> backend_;
  /// Per-shard slices of the global capacity limits.
  std::uint64_t shard_capacity_bytes_;
  std::size_t shard_max_entries_;

  std::vector<std::unique_ptr<Shard>> shards_;
  QuotaLedger quota_;

  /// WAL chain state; the lock (700) nests inside at most one shard lock
  /// and acquires nothing itself.
  Mutex wal_mu_{LockRank::kStoreWal};
  std::uint64_t wal_seq_ GUARDED_BY(wal_mu_) = 0;
  WalChainTag wal_prev_ GUARDED_BY(wal_mu_){};

  /// Cluster membership (docs/PROTOCOL.md §8), guarded by its own mutex
  /// (620) — it is read on the heartbeat path and written only by rare
  /// membership broadcasts, never while a shard lock is held.
  mutable Mutex cluster_mu_{LockRank::kStoreCluster};
  ClusterView cluster_ GUARDED_BY(cluster_mu_);

  /// Batched dispatch (docs/PROTOCOL.md §9): one BatchRequest executed per
  /// entry against the shards, replies index-aligned with the ops.
  serialize::BatchResponse batch_trusted(const serialize::BatchRequest& req,
                                         Peer peer);

  std::atomic<bool> degraded_{false};
  RecoveryInfo recovery_info_;
  telemetry::Histogram batch_ops_;  ///< ops per dispatched batch
  telemetry::Counter push_accepted_;
  telemetry::Counter pull_entries_served_;
  telemetry::Counter infra_rejections_;
  telemetry::Counter backend_write_errors_;
  telemetry::Counter recovered_entries_;
  telemetry::Counter wal_torn_tails_;
  telemetry::Gauge recovery_ms_;

  // Declared after shards_: the collector reads their cells, so it must
  // deregister before they are destroyed.
  telemetry::Registry::Handle telemetry_handle_;
};

}  // namespace speed::store
