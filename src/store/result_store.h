// Encrypted ResultStore (paper §IV-B).
//
// The store is split exactly like the prototype:
//
//   * a *trusted* metadata dictionary living in the store enclave, keyed by
//     the computation tag. Each entry is deliberately small — the challenge
//     message r, the wrapped key [k], an authentication digest of the
//     ciphertext, bookkeeping for LRU/quota — and is charged against the
//     simulated EPC;
//   * an *untrusted* ciphertext arena holding the actual [res] blobs, which
//     can grow without pressuring enclave memory. Blobs are AEAD envelopes
//     the store cannot read; their digest in the trusted entry lets the
//     store detect host-side corruption on GET and degrade to a miss.
//
// The host-side body parses each framed request and dispatches one ECALL
// (GET or PUT) that marshals data at the boundary and touches the trusted
// dictionary, mirroring the paper's two customized ECALLs. DoS defence is a
// per-application byte quota (§III-D); capacity pressure is handled by LRU
// eviction. SYNC implements the master-store replication of the §IV-B
// Remark.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "serialize/wire.h"
#include "sgx/enclave.h"

namespace speed::store {

struct StoreConfig {
  /// Capacity of the untrusted ciphertext arena; eviction beyond this.
  std::uint64_t max_ciphertext_bytes = 256ull * 1024 * 1024;
  /// Per-application stored-bytes quota (rate-limiting defence, §III-D).
  std::uint64_t per_app_quota_bytes = 64ull * 1024 * 1024;
  /// Upper bound on dictionary entries (trusted memory guard).
  std::size_t max_entries = 1u << 20;

  /// Which entry to sacrifice when the arena is full. kLru suits shifting
  /// working sets; kLfu protects long-lived hot computations (the "popular
  /// results" the §IV-B master store replicates) from scan-like churn.
  enum class Eviction { kLru, kLfu };
  Eviction eviction = Eviction::kLru;
};

class ResultStore {
 public:
  /// Creates the store enclave on `platform`.
  ResultStore(sgx::Platform& platform, StoreConfig config = StoreConfig{});

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Host-side entry point for the plaintext protocol: decode one request,
  /// perform one ECALL, return the encoded response.
  Bytes handle(ByteView request);

  /// Trusted dispatch: must already execute in the store enclave's context
  /// (used by handle() and by StoreSession's secure-channel ECALL).
  serialize::Message dispatch_trusted(const serialize::Message& request);

  // Typed convenience API (each performs its own ECALL).
  serialize::GetResponse get(const serialize::GetRequest& req);
  serialize::PutResponse put(const serialize::PutRequest& req);
  serialize::SyncResponse sync(const serialize::SyncRequest& req);

  /// Replica side of master synchronization: merge entries pulled from a
  /// master store. Quota-exempt (the master is trusted infrastructure), but
  /// capacity eviction still applies. Returns the number of newly inserted
  /// entries.
  std::size_t merge_from_master(const serialize::SyncResponse& batch);

  /// Persistence: seal the full store state (metadata + blobs) to a blob
  /// only this store enclave (same measurement, same platform) can restore.
  Bytes seal_snapshot();
  bool restore_snapshot(ByteView sealed);

  /// Test hook modelling a compromised host: flips one bit of a blob in the
  /// untrusted arena (the trusted dictionary is out of the adversary's
  /// reach). Returns false if the tag has no blob.
  bool corrupt_blob_for_testing(const serialize::Tag& tag);

  struct Stats {
    std::uint64_t get_requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t put_requests = 0;
    std::uint64_t stored = 0;
    std::uint64_t duplicate_puts = 0;
    std::uint64_t quota_rejections = 0;
    std::uint64_t evictions = 0;
    std::uint64_t corrupt_blobs = 0;
    std::uint64_t entries = 0;
    std::uint64_t ciphertext_bytes = 0;
  };
  Stats stats() const;

  sgx::Enclave& enclave() { return *enclave_; }
  const StoreConfig& config() const { return config_; }

 private:
  struct TagHash {
    std::size_t operator()(const serialize::Tag& t) const {
      std::size_t h;
      static_assert(sizeof(h) <= 32);
      __builtin_memcpy(&h, t.data(), sizeof(h));
      return h;
    }
  };

  /// Trusted dictionary entry: small metadata only; the ciphertext lives in
  /// the untrusted arena and is pinned by `blob_digest`.
  struct MetaEntry {
    Bytes challenge;                   ///< r
    Bytes wrapped_key;                 ///< [k]
    crypto::Sha256Digest blob_digest;  ///< integrity pin of [res]
    std::uint64_t blob_bytes = 0;
    serialize::AppId owner{};  ///< for quota accounting
    std::uint64_t hits = 0;
    std::list<serialize::Tag>::iterator lru_it;
  };

  serialize::GetResponse get_locked(const serialize::GetRequest& req);
  serialize::PutResponse put_locked(const serialize::PutRequest& req);
  serialize::SyncResponse sync_locked(const serialize::SyncRequest& req);

  /// Insert helper shared by put and merge. `enforce_quota` distinguishes
  /// application PUTs from master-sync merges.
  serialize::PutStatus insert_locked(const serialize::Tag& tag,
                                     const serialize::AppId& owner,
                                     const serialize::EntryPayload& entry,
                                     bool enforce_quota);

  void erase_locked(const serialize::Tag& tag);
  void evict_for_space_locked(std::uint64_t incoming_bytes);
  void touch_lru_locked(MetaEntry& entry, const serialize::Tag& tag);
  void recharge_trusted_locked();
  std::uint64_t trusted_bytes_locked() const;

  sgx::Platform& platform_;
  std::unique_ptr<sgx::Enclave> enclave_;
  StoreConfig config_;

  mutable std::mutex mu_;
  // ---- trusted state (conceptually inside the store enclave) ----
  std::unordered_map<serialize::Tag, MetaEntry, TagHash> dict_;
  std::list<serialize::Tag> lru_;  ///< front = most recently used
  std::unordered_map<serialize::AppId, std::uint64_t, TagHash> quota_used_;
  sgx::TrustedCharge trusted_charge_;
  // ---- untrusted state (outside the enclave) ----
  std::unordered_map<serialize::Tag, Bytes, TagHash> blobs_;

  Stats stats_;
};

}  // namespace speed::store
