// Encrypted ResultStore (paper §IV-B).
//
// The store is split exactly like the prototype:
//
//   * a *trusted* metadata dictionary living in the store enclave, keyed by
//     the computation tag. Each entry is deliberately small — the challenge
//     message r, the wrapped key [k], an authentication digest of the
//     ciphertext, bookkeeping for LRU/quota — and is charged against the
//     simulated EPC;
//   * an *untrusted* ciphertext arena holding the actual [res] blobs, which
//     can grow without pressuring enclave memory. Blobs are AEAD envelopes
//     the store cannot read; their digest in the trusted entry lets the
//     store detect host-side corruption on GET and degrade to a miss.
//
// Concurrency: the dictionary, recency/frequency lists, blob arena, and
// capacity accounting are partitioned into `StoreConfig::shards`
// tag-addressed shards, memcached-style. A tag maps to exactly one shard
// (an entry is never split), each shard has its own mutex and eviction
// state, and GET/PUT for different shards proceed in parallel — which is
// what lets the per-connection worker threads of StoreTcpServer scale.
// Per-application quotas stay globally exact through a lock-striped ledger
// keyed by AppId, and stats() aggregates per-shard atomic counters without
// taking any shard lock. `shards = 1` (the default) reproduces the original
// single-mutex store bit-for-bit, and is the baseline the Fig. 6 throughput
// bench compares against.
//
// The host-side body parses each framed request and dispatches one ECALL
// (GET or PUT) that marshals data at the boundary and touches the trusted
// dictionary, mirroring the paper's two customized ECALLs. DoS defence is a
// per-application byte quota (§III-D); capacity pressure is handled by LRU
// eviction. SYNC implements the master-store replication of the §IV-B
// Remark.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "serialize/wire.h"
#include "sgx/enclave.h"
#include "telemetry/registry.h"

namespace speed::store {

struct StoreConfig {
  /// Capacity of the untrusted ciphertext arena across all shards; each
  /// shard owns an equal slice and evicts within it.
  std::uint64_t max_ciphertext_bytes = 256ull * 1024 * 1024;
  /// Per-application stored-bytes quota (rate-limiting defence, §III-D).
  /// Enforced exactly across shards.
  std::uint64_t per_app_quota_bytes = 64ull * 1024 * 1024;
  /// Upper bound on dictionary entries (trusted memory guard), split across
  /// shards like the arena capacity.
  std::size_t max_entries = 1u << 20;

  /// Which entry to sacrifice when the arena is full. kLru suits shifting
  /// working sets; kLfu protects long-lived hot computations (the "popular
  /// results" the §IV-B master store replicates) from scan-like churn.
  enum class Eviction { kLru, kLfu };
  Eviction eviction = Eviction::kLru;

  /// Lock-striping factor. 1 (the default) is the original single-mutex
  /// store; concurrent deployments (StoreTcpServer) want a small power of
  /// two, e.g. 8. Real tags are SHA-256 outputs, so shard assignment (taken
  /// from tag bytes disjoint from the dictionary's hash bytes) is uniform.
  std::size_t shards = 1;
};

class ResultStore {
 public:
  /// Creates the store enclave on `platform`.
  ResultStore(sgx::Platform& platform, StoreConfig config = StoreConfig{});

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Host-side entry point for the plaintext protocol: decode one request,
  /// perform one ECALL, return the encoded response.
  Bytes handle(ByteView request);

  /// Trusted dispatch: must already execute in the store enclave's context
  /// (used by handle() and by StoreSession's secure-channel ECALL). Takes
  /// only the target shard's lock, so concurrent sessions proceed in
  /// parallel when their tags hash to different shards.
  serialize::Message dispatch_trusted(const serialize::Message& request);

  // Typed convenience API (each performs its own ECALL).
  serialize::GetResponse get(const serialize::GetRequest& req);
  serialize::PutResponse put(const serialize::PutRequest& req);
  serialize::SyncResponse sync(const serialize::SyncRequest& req);

  /// Replica side of master synchronization: merge entries pulled from a
  /// master store. Quota-exempt (the master is trusted infrastructure), but
  /// capacity eviction still applies. Returns the number of newly inserted
  /// entries.
  std::size_t merge_from_master(const serialize::SyncResponse& batch);

  /// Persistence: seal the full store state (metadata + blobs) to a blob
  /// only this store enclave (same measurement, same platform) can restore.
  Bytes seal_snapshot();
  bool restore_snapshot(ByteView sealed);

  /// Test hook modelling a compromised host: flips one bit of a blob in the
  /// untrusted arena (the trusted dictionary is out of the adversary's
  /// reach). Returns false if the tag has no blob.
  bool corrupt_blob_for_testing(const serialize::Tag& tag);

  struct Stats {
    std::uint64_t get_requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t put_requests = 0;
    std::uint64_t stored = 0;
    std::uint64_t duplicate_puts = 0;
    std::uint64_t quota_rejections = 0;
    std::uint64_t evictions = 0;
    std::uint64_t corrupt_blobs = 0;
    std::uint64_t entries = 0;
    std::uint64_t ciphertext_bytes = 0;
  };
  /// Aggregated over shards from atomic counters — never blocks a GET/PUT.
  Stats stats() const;

  sgx::Enclave& enclave() { return *enclave_; }
  const StoreConfig& config() const { return config_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct TagHash {
    std::size_t operator()(const serialize::Tag& t) const {
      std::size_t h;
      static_assert(sizeof(h) <= 32);
      __builtin_memcpy(&h, t.data(), sizeof(h));
      return h;
    }
  };

  /// AppIds are enclave measurements, not SHA tags; they get their own
  /// hasher (FNV-1a over the full 32 bytes) instead of borrowing TagHash
  /// through the layout coincidence that both are 32-byte arrays.
  struct AppIdHash {
    std::size_t operator()(const serialize::AppId& a) const {
      std::uint64_t h = 14695981039346656037ull;
      for (const std::uint8_t b : a) {
        h ^= b;
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };

  /// Trusted dictionary entry: small metadata only; the ciphertext lives in
  /// the untrusted arena and is pinned by `blob_digest`.
  struct MetaEntry {
    Bytes challenge;                   ///< r
    Bytes wrapped_key;                 ///< [k]
    crypto::Sha256Digest blob_digest;  ///< integrity pin of [res]
    std::uint64_t blob_bytes = 0;
    serialize::AppId owner{};  ///< for quota accounting
    std::uint64_t hits = 0;
    std::list<serialize::Tag>::iterator lru_it;
  };

  /// One lock's worth of store: dictionary + recency list + blob arena +
  /// eviction state + its slice of the trusted-memory charge. The telemetry
  /// cells (lock-free relaxed atomics under the hood) feed both the
  /// lock-free stats() aggregate and the registry's per-shard speed_store_*
  /// series; everything else is guarded by mu.
  struct Shard {
    explicit Shard(sgx::Enclave& enclave) : trusted_charge(enclave, 0) {}

    mutable std::mutex mu;
    std::unordered_map<serialize::Tag, MetaEntry, TagHash> dict;
    std::list<serialize::Tag> lru;  ///< front = most recently used
    std::unordered_map<serialize::Tag, Bytes, TagHash> blobs;
    /// Incrementally maintained metadata footprint (the old store re-walked
    /// the whole dictionary on every insert/erase to recompute it).
    std::uint64_t trusted_bytes = 0;
    sgx::TrustedCharge trusted_charge;

    telemetry::Counter get_requests;
    telemetry::Counter hits;
    telemetry::Counter put_requests;
    telemetry::Counter stored;
    telemetry::Counter duplicate_puts;
    telemetry::Counter quota_rejections;
    telemetry::Counter evictions;
    telemetry::Counter corrupt_blobs;
    telemetry::Gauge entries;
    telemetry::Gauge ciphertext_bytes;
    telemetry::Histogram get_ns;  ///< in-enclave GET service latency
    telemetry::Histogram put_ns;  ///< in-enclave PUT/insert service latency
  };

  /// Globally exact per-application quota accounting, lock-striped by AppId
  /// so it never serializes two shards. Stripe locks nest inside shard locks
  /// and acquire nothing themselves.
  class QuotaLedger {
   public:
    QuotaLedger(std::uint64_t limit, std::size_t stripes);

    /// Atomically check-and-charge; false (and no charge) if `bytes` would
    /// push `app` past the limit.
    bool try_charge(const serialize::AppId& app, std::uint64_t bytes);
    /// Unchecked charge (quota-exempt inserts still account their usage).
    void charge(const serialize::AppId& app, std::uint64_t bytes);
    void release(const serialize::AppId& app, std::uint64_t bytes);

   private:
    struct Stripe {
      std::mutex mu;
      std::unordered_map<serialize::AppId, std::uint64_t, AppIdHash> used;
    };
    Stripe& stripe_for(const serialize::AppId& app);

    std::uint64_t limit_;
    std::vector<std::unique_ptr<Stripe>> stripes_;
  };

  Shard& shard_for(const serialize::Tag& tag);

  serialize::GetResponse get_trusted(const serialize::GetRequest& req);
  serialize::PutResponse put_trusted(const serialize::PutRequest& req);
  serialize::SyncResponse sync_trusted(const serialize::SyncRequest& req);

  /// Insert helper shared by put and merge; takes `shard.mu` itself.
  /// `enforce_quota` distinguishes application PUTs from master-sync merges.
  serialize::PutStatus insert_trusted(const serialize::Tag& tag,
                                      const serialize::AppId& owner,
                                      const serialize::EntryPayload& entry,
                                      bool enforce_quota);

  void erase_locked(Shard& shard, const serialize::Tag& tag);
  void evict_for_space_locked(Shard& shard, std::uint64_t incoming_bytes);
  void touch_lru_locked(Shard& shard, MetaEntry& entry,
                        const serialize::Tag& tag);

  sgx::Platform& platform_;
  std::unique_ptr<sgx::Enclave> enclave_;
  StoreConfig config_;
  /// Per-shard slices of the global capacity limits.
  std::uint64_t shard_capacity_bytes_;
  std::size_t shard_max_entries_;

  std::vector<std::unique_ptr<Shard>> shards_;
  QuotaLedger quota_;
  // Declared after shards_: the collector reads their cells, so it must
  // deregister before they are destroyed.
  telemetry::Registry::Handle telemetry_handle_;
};

}  // namespace speed::store
