// In-process replicated store cluster: N ResultStore nodes, one simulated
// platform, with the chaos hooks the fault-tolerance suite needs
// (tests/chaos_cluster_test.cc).
//
// Node model:
//   * kill(i): the node stops answering (both the application plane and the
//     infra plane throw StoreUnavailableError). The dead store object stays
//     alive until restart so an in-flight request races the kill safely —
//     exactly the "node acked, then died" case replication must tolerate.
//   * restart(i): a FRESH store enclave with an empty dictionary (memory
//     backends lose state, like a machine that lost power). The node's
//     incarnation counter bumps, which invalidates every connection dialed
//     against the old incarnation: clients observe StoreUnavailableError,
//     their ResilientTransport re-dials, and the dial runs a fresh attested
//     handshake against the NEW store enclave. Before admission the fresh
//     enclave mutually re-attests with a live peer (replication.h).
//   * partition(i): blackholes the node without killing it — requests fail,
//     state survives, heal by partition(i, false).
//
// The application plane goes through GuardedTransport (a Transport a
// ClusterTransport's per-node ResilientTransport wraps); the infra plane
// goes through ClusterReplicator peers calling ResultStore::handle.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotated_lock.h"
#include "net/cluster.h"
#include "store/replication.h"
#include "store/store_session.h"

namespace speed::store {

struct InprocClusterConfig {
  std::size_t nodes = 3;
  /// Per-node store settings. `backend` must stay null: every node owns a
  /// private in-memory backend (a restarted node loses its state).
  StoreConfig store;
  /// Client-side routing/failover settings (replicas, hedging, probes).
  net::ClusterConfig cluster;
  ReplicationConfig replication;
};

class InprocCluster {
 public:
  InprocCluster(sgx::Platform& platform, InprocClusterConfig config)
      : platform_(platform), config_(std::move(config)) {
    if (config_.nodes == 0) {
      throw ProtocolError("InprocCluster: need at least one node");
    }
    if (config_.store.backend != nullptr) {
      throw ProtocolError(
          "InprocCluster: nodes own private backends; set store.backend=null");
    }
    // Copies the client routes and the replicator places must agree.
    config_.replication.copies = config_.cluster.replicas + 1;
    nodes_.reserve(config_.nodes);
    std::vector<PeerStore> peers;
    for (std::size_t i = 0; i < config_.nodes; ++i) {
      auto node = std::make_unique<Node>();
      node->name = "store-" + std::to_string(i);
      // Built BEFORE taking node->mu: the store constructor registers
      // telemetry collectors (rank 450), which must not nest under 530.
      auto store = std::make_shared<ResultStore>(platform_, config_.store);
      {
        MutexLock lock(node->mu);  // uncontended; satisfies the analysis
        node->store = std::move(store);
      }
      nodes_.push_back(std::move(node));
      peers.push_back({nodes_.back()->name, infra_call(i)});
    }
    replicator_.emplace(std::move(peers), config_.replication);
  }

  std::size_t node_count() const { return nodes_.size(); }
  bool alive(std::size_t i) const {
    return nodes_[i]->alive.load(std::memory_order_acquire);
  }
  std::uint64_t incarnation(std::size_t i) const {
    return nodes_[i]->incarnation.load(std::memory_order_acquire);
  }

  /// The node's live store; throws StoreUnavailableError when killed.
  ResultStore& store(std::size_t i) {
    Node& node = *nodes_[i];
    MutexLock lock(node.mu);
    if (!node.alive.load(std::memory_order_acquire)) {
      throw net::StoreUnavailableError("InprocCluster: node " + node.name +
                                       " is down");
    }
    return *node.store;
  }

  // ------------------------------------------------------------ chaos hooks

  void kill(std::size_t i) {
    nodes_[i]->alive.store(false, std::memory_order_release);
  }

  void partition(std::size_t i, bool on) {
    nodes_[i]->partitioned.store(on, std::memory_order_release);
  }

  /// Fresh empty store under a new incarnation; mutually re-attests with the
  /// first live peer before admission. Returns false (node stays down) if
  /// attestation fails — with the simulated platform that only happens when
  /// the fresh enclave is not a genuine store enclave.
  bool restart(std::size_t i) {
    Node& node = *nodes_[i];
    auto fresh = std::make_shared<ResultStore>(platform_, config_.store);
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (j == i || !alive(j)) continue;
      MutexLock lock(nodes_[j]->mu);
      if (!attest_peers(fresh->enclave(), nodes_[j]->store->enclave())) {
        return false;
      }
      break;  // one live witness suffices
    }
    // Displaced BEFORE the lock declaration so the dead store (whose
    // destructor deregisters telemetry collectors, rank 450) is destroyed
    // only after node.mu (530) is released.
    std::shared_ptr<ResultStore> retired;
    {
      MutexLock lock(node.mu);
      retired = std::move(node.store);
      node.store = std::move(fresh);
      node.incarnation.fetch_add(1, std::memory_order_acq_rel);
      node.partitioned.store(false, std::memory_order_release);
      node.alive.store(true, std::memory_order_release);
    }
    return true;
  }

  // -------------------------------------------------------- application plane

  /// Dial closures for a client-side ClusterTransport owned by `app`. Each
  /// dial attests against the node's CURRENT store enclave, so a client
  /// reconnecting after a restart lands on the new incarnation.
  std::vector<net::ClusterNode> dial_list(sgx::Enclave& app) {
    std::vector<net::ClusterNode> out;
    out.reserve(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      out.push_back({nodes_[i]->name, dial(i, app)});
    }
    return out;
  }

  std::shared_ptr<net::ClusterTransport> connect(sgx::Enclave& app) {
    return std::make_shared<net::ClusterTransport>(app, dial_list(app),
                                                   config_.cluster);
  }

  // -------------------------------------------------------------- infra plane

  ClusterReplicator& replicator() { return *replicator_; }

  /// Convenience: one anti-entropy round — every live node pushes its hot
  /// entries to their ring owners. Returns entries accepted cluster-wide.
  std::size_t anti_entropy_round() {
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (alive(i)) accepted += replicator_->push_hot_entries(i);
    }
    return accepted;
  }

  /// Rejoin protocol for a restarted node: membership refresh + ring-share
  /// bulk pull from every live peer (see ClusterReplicator::rejoin).
  std::size_t rejoin(std::size_t i) {
    std::vector<std::size_t> still_down;
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (!alive(j)) still_down.push_back(j);
    }
    return replicator_->rejoin(i, still_down);
  }

 private:
  struct Node {
    std::string name;
    /// Guards store swaps; shared_ptr keeps a killed store alive for
    /// requests that raced the kill. 530: dialed under a ClusterTransport
    /// link (510) and a ResilientTransport breaker (500), above both.
    Mutex mu{LockRank::kClusterNode};
    std::shared_ptr<ResultStore> store GUARDED_BY(mu);
    std::atomic<std::uint64_t> incarnation{1};
    std::atomic<bool> alive{true};
    std::atomic<bool> partitioned{false};
  };

  /// Application-plane transport bound to one dialed connection: rejects
  /// traffic the moment the node dies, partitions, or restarts under a new
  /// incarnation (the session key would no longer match the live enclave).
  class GuardedTransport : public net::Transport {
   public:
    GuardedTransport(Node& node, std::shared_ptr<ResultStore> store,
                     std::unique_ptr<StoreSession> session,
                     std::uint64_t incarnation)
        : node_(node),
          store_(std::move(store)),
          session_(std::move(session)),
          incarnation_(incarnation) {}

    Bytes round_trip(ByteView frame) override {
      if (!node_.alive.load(std::memory_order_acquire) ||
          node_.partitioned.load(std::memory_order_acquire) ||
          node_.incarnation.load(std::memory_order_acquire) != incarnation_) {
        throw net::StoreUnavailableError(
            "InprocCluster: node " + node_.name +
            " unreachable (down, partitioned, or restarted)");
      }
      return session_->handle_frame(frame);
    }

   private:
    Node& node_;
    std::shared_ptr<ResultStore> store_;  ///< pins the dialed incarnation
    std::unique_ptr<StoreSession> session_;
    std::uint64_t incarnation_;
  };

  net::ResilientTransport::ReconnectFn dial(std::size_t i, sgx::Enclave& app) {
    return [this, i, &app]() -> net::ResilientTransport::Connection {
      Node& node = *nodes_[i];
      std::shared_ptr<ResultStore> store;
      std::uint64_t incarnation;
      {
        MutexLock lock(node.mu);
        if (!node.alive.load(std::memory_order_acquire) ||
            node.partitioned.load(std::memory_order_acquire)) {
          throw net::StoreUnavailableError("InprocCluster: node " +
                                           node.name + " refused dial");
        }
        store = node.store;
        incarnation = node.incarnation.load(std::memory_order_acquire);
      }
      // Attested handshake against this incarnation's store enclave.
      AppConnection conn = connect_app(*store, app);
      net::ResilientTransport::Connection out;
      out.session_key = std::move(conn.session_key);
      out.transport = std::make_unique<GuardedTransport>(
          node, std::move(store), std::move(conn.session), incarnation);
      return out;
    };
  }

  std::function<Bytes(ByteView)> infra_call(std::size_t i) {
    return [this, i](ByteView frame) -> Bytes {
      Node& node = *nodes_[i];
      std::shared_ptr<ResultStore> store;
      {
        MutexLock lock(node.mu);
        if (!node.alive.load(std::memory_order_acquire) ||
            node.partitioned.load(std::memory_order_acquire)) {
          throw net::StoreUnavailableError("InprocCluster: node " +
                                           node.name + " unreachable");
        }
        store = node.store;
      }
      return store->handle(frame);
    };
  }

  sgx::Platform& platform_;
  InprocClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::optional<ClusterReplicator> replicator_;
};

}  // namespace speed::store
