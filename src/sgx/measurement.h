// Enclave and trusted-library measurements.
//
// A measurement is the SHA-256 of a code identity, standing in for SGX's
// MRENCLAVE. The simulator derives it from a canonical identity string (or
// real code bytes when available); what matters for SPEED is that identical
// code yields identical measurements across enclaves and platforms, and that
// sealing/attestation are bound to it.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace speed::sgx {

using Measurement = crypto::Sha256Digest;

/// Measurement of an enclave identified by a canonical name (the simulator's
/// stand-in for hashing the enclave image).
inline Measurement measure_identity(std::string_view identity) {
  return crypto::Sha256::digest_parts({as_bytes("sgx-enclave:"), as_bytes(identity)});
}

/// Measurement of a trusted library's code: family + version + code bytes.
/// DedupRuntime folds this into computation tags so that "same function"
/// means same *code*, not just same name (paper §IV-B).
inline Measurement measure_library(std::string_view family,
                                   std::string_view version,
                                   ByteView code) {
  return crypto::Sha256::digest_parts(
      {as_bytes("sgx-trusted-lib:"), as_bytes(family), as_bytes("/"),
       as_bytes(version), as_bytes(":"), code});
}

inline std::string measurement_hex(const Measurement& m) {
  return hex_encode(ByteView(m.data(), m.size()));
}

}  // namespace speed::sgx
