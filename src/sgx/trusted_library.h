// Registry of trusted libraries ported into an enclave.
//
// The paper's DedupRuntime does not hash raw executable bytes for function
// identity (the same source compiles to different binaries across tool
// chains, §IV-B). Instead the developer supplies a *description* — library
// family, version, function signature — and the runtime "verifies that the
// application indeed owns the actual code of the function by scanning the
// underlying trusted library" before deriving a universally unique value.
//
// This registry is that scan target: each application enclave registers the
// trusted libraries linked into it, keyed by (family, version), each with a
// code measurement. Tag derivation then folds the *code measurement* (not
// the name alone) into the computation tag, so two applications only
// deduplicate against each other when they carry identical library code.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "sgx/measurement.h"

namespace speed::sgx {

class TrustedLibraryRegistry {
 public:
  /// Register a library by its actual code bytes.
  void register_library(std::string_view family, std::string_view version,
                        ByteView code) {
    libraries_[key(family, version)] = measure_library(family, version, code);
  }

  /// Register with a precomputed measurement (e.g. shipped by a vendor).
  void register_measurement(std::string_view family, std::string_view version,
                            const Measurement& m) {
    libraries_[key(family, version)] = m;
  }

  /// Measurement of (family, version) if the enclave owns that library.
  std::optional<Measurement> lookup(std::string_view family,
                                    std::string_view version) const {
    const auto it = libraries_.find(key(family, version));
    if (it == libraries_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const { return libraries_.size(); }

 private:
  static std::string key(std::string_view family, std::string_view version) {
    std::string k(family);
    k.push_back('\x1f');  // unit separator: family/version cannot collide
    k.append(version);
    return k;
  }

  std::map<std::string, Measurement> libraries_;
};

}  // namespace speed::sgx
