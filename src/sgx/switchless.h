// Switchless enclave calls: a shared submission ring drained inside one
// ECALL per burst.
//
// The per-call transition tax (two world switches per request, CostModel's
// ecall_ns/ocall_ns) is the dominant cost for small store operations — the
// problem HotCalls and "Speeding up enclave transitions for IO-intensive
// applications" attack by keeping a trusted worker polling a shared ring
// instead of re-entering the enclave per call. This models that design on
// the simulated platform: untrusted threads submit closures; a single
// poller thread swaps the whole queue out and executes the burst inside ONE
// ecall()/EEXIT pair, so the transition cost is charged once per drain and
// amortizes across every call in the burst (and across *connections* — the
// ring is shared by all sessions of a store server).
//
// Accounting is honest: Enclave::ecall_count() advances once per drain, and
// `transitions_saved` counts exactly the crossings a per-call design would
// have paid on top (burst_size - 1 per drain). The occupancy histogram
// feeds the speed_switchless_* registry series.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <utility>

#include "common/annotated_lock.h"
#include "common/bytes.h"
#include "sgx/enclave.h"
#include "telemetry/registry.h"

namespace speed::sgx {

class SwitchlessRing {
 public:
  struct Config {
    /// Submission-slot bound: callers block (backpressure) when this many
    /// calls are already queued, so a stalled poller cannot grow memory.
    std::size_t capacity = 1024;
    /// Largest burst executed inside one enclave crossing. Bounds how long
    /// one drain holds the enclave context.
    std::size_t max_burst = 64;
  };

  explicit SwitchlessRing(Enclave& enclave) : SwitchlessRing(enclave, Config{}) {}

  SwitchlessRing(Enclave& enclave, Config config)
      : enclave_(enclave), config_(config) {
    if (config_.capacity == 0) config_.capacity = 1;
    if (config_.max_burst == 0) config_.max_burst = 1;
    poller_ = std::thread([this] { poll_loop(); });
    telemetry_handle_ = telemetry::Registry::global().add_collector(
        [this](telemetry::SampleSink& sink) {
          sink.counter("speed_switchless_calls_total",
                       "Trusted calls executed through the switchless ring",
                       {}, calls_.value());
          sink.counter("speed_switchless_drains_total",
                       "Ring drains (one enclave crossing each)", {},
                       drains_.value());
          sink.counter(
              "speed_switchless_transitions_saved_total",
              "Enclave crossings avoided vs one-ECALL-per-call dispatch", {},
              transitions_saved_.value());
          sink.histogram("speed_switchless_occupancy",
                         "Calls executed per ring drain", {}, occupancy_);
        });
  }

  ~SwitchlessRing() { stop(); }

  SwitchlessRing(const SwitchlessRing&) = delete;
  SwitchlessRing& operator=(const SwitchlessRing&) = delete;

  /// Execute `fn` inside the store enclave via the ring: blocks until the
  /// poller has run it, then returns its result (or rethrows its exception).
  /// `fn` runs in enclave context but must NOT call Enclave::ecall itself —
  /// the drain already did.
  // mu_ is only held for queue bookkeeping; the waits release it, so this
  // blocks without holding anything — not an LD004 case.
  Bytes call(std::function<Bytes()> fn) {
    Slot slot;
    slot.fn = std::move(fn);
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.size() >= config_.capacity) {
        space_cv_.wait(mu_);
      }
      if (stopping_) throw EnclaveError("SwitchlessRing: stopped");
      queue_.push_back(&slot);
    }
    submit_cv_.notify_one();
    {
      MutexLock lock(mu_);
      while (!slot.done) done_cv_.wait(mu_);
    }
    if (slot.error != nullptr) std::rethrow_exception(slot.error);
    return std::move(slot.result);
  }

  /// Join the poller; in-flight calls finish, later call()s throw. Idempotent.
  void stop() {
    {
      MutexLock lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    submit_cv_.notify_all();
    space_cv_.notify_all();
    if (poller_.joinable()) poller_.join();
  }

  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t drains = 0;              ///< enclave crossings paid
    std::uint64_t transitions_saved = 0;   ///< crossings a per-call design pays
  };
  Stats stats() const {
    return Stats{calls_.value(), drains_.value(), transitions_saved_.value()};
  }

 private:
  struct Slot {
    std::function<Bytes()> fn;
    Bytes result;
    std::exception_ptr error;
    bool done = false;
  };

  void poll_loop() {
    std::deque<Slot*> burst;
    for (;;) {
      {
        MutexLock lock(mu_);
        while (!stopping_ && queue_.empty()) submit_cv_.wait(mu_);
        if (queue_.empty() && stopping_) return;
        // Swap out up to max_burst submissions: everything waiting shares
        // one enclave crossing.
        const std::size_t take = std::min(queue_.size(), config_.max_burst);
        for (std::size_t i = 0; i < take; ++i) {
          burst.push_back(queue_.front());
          queue_.pop_front();
        }
      }
      space_cv_.notify_all();

      occupancy_.record(burst.size());
      calls_.inc(burst.size());
      drains_.inc();
      transitions_saved_.inc(burst.size() - 1);
      // ONE transition pair for the whole burst; per-call exceptions stay
      // confined to their slot (a poisoned session must not fail its
      // neighbors' calls).
      enclave_.ecall([&] {
        for (Slot* slot : burst) {
          try {
            slot->result = slot->fn();
          } catch (...) {
            slot->error = std::current_exception();
          }
        }
      });
      {
        MutexLock lock(mu_);
        for (Slot* slot : burst) slot->done = true;
      }
      done_cv_.notify_all();
      burst.clear();
    }
  }

  Enclave& enclave_;
  Config config_;

  // 580: submitters may already hold a session lock (560) when they call().
  Mutex mu_{LockRank::kSwitchless};
  CondVar submit_cv_;  ///< poller waits for work
  CondVar space_cv_;   ///< callers wait for capacity
  CondVar done_cv_;    ///< callers wait for completion
  std::deque<Slot*> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  std::thread poller_;

  telemetry::Counter calls_;
  telemetry::Counter drains_;
  telemetry::Counter transitions_saved_;
  telemetry::Histogram occupancy_;
  // Declared after the cells it reads (deregistered first).
  telemetry::Registry::Handle telemetry_handle_;
};

}  // namespace speed::sgx
