// Simulated Enclave Page Cache.
//
// All enclaves on a platform share one EPC. Trusted allocations are tracked
// here; once usage crosses the usable limit, further allocation (and touches
// of paged-out ranges) pay a per-page swap penalty, modelling SGX's
// encrypted EWB/ELD eviction path. This is what makes "keep only small
// metadata inside the enclave, ciphertexts outside" (paper §III-A) a
// measurable design decision rather than a convention.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "sgx/cost_model.h"

namespace speed::sgx {

inline constexpr std::uint64_t kEpcPageSize = 4096;

class EpcAllocator {
 public:
  explicit EpcAllocator(const CostModel& model) : model_(model) {}

  /// Charge `bytes` of trusted allocation; blocks for the simulated paging
  /// cost when the allocation pushes usage past the usable EPC.
  void allocate(std::uint64_t bytes) {
    const std::uint64_t before = used_.fetch_add(bytes);
    const std::uint64_t after = before + bytes;
    std::uint64_t peak = peak_.load();
    while (after > peak && !peak_.compare_exchange_weak(peak, after)) {
    }
    if (!model_.enabled) return;
    if (after > model_.epc_usable_bytes) {
      const std::uint64_t overflow_begin =
          before > model_.epc_usable_bytes ? before : model_.epc_usable_bytes;
      const std::uint64_t overflow_bytes = after - overflow_begin;
      const std::uint64_t pages =
          (overflow_bytes + kEpcPageSize - 1) / kEpcPageSize;
      swapped_pages_.fetch_add(pages);
      charge_wait(model_, pages * model_.epc_page_swap_ns);
    }
  }

  void release(std::uint64_t bytes) {
    // Saturating subtract: release of untracked memory is a caller bug but
    // must not wrap the gauge.
    std::uint64_t cur = used_.load();
    while (true) {
      const std::uint64_t next = cur >= bytes ? cur - bytes : 0;
      if (used_.compare_exchange_weak(cur, next)) return;
    }
  }

  std::uint64_t used_bytes() const { return used_.load(); }
  /// High-water mark of used_bytes() over the allocator's lifetime (the
  /// metadata-footprint bench reports peak charge, not the instantaneous
  /// value a release could shrink).
  std::uint64_t peak_bytes() const { return peak_.load(); }
  std::uint64_t swapped_pages() const { return swapped_pages_.load(); }
  std::uint64_t usable_bytes() const { return model_.epc_usable_bytes; }

 private:
  const CostModel& model_;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> swapped_pages_{0};
};

}  // namespace speed::sgx
