// Cost model for the simulated SGX runtime.
//
// We do not have SGX hardware, so the simulator charges the latency classes
// that dominate real enclave execution with calibrated busy-waits:
//
//   * ECALL/OCALL world switches (~8,000-14,000 cycles on Skylake; HotCalls
//     and Eleos [paper refs 9,10,51] measure 8-17 us round trips including
//     marshalling). Default 4 us per one-way transition.
//   * EPC paging (EWB/ELD) once the 90 MB usable Enclave Page Cache is
//     exceeded — hundreds of thousands of cycles per 4 KB page.
//
// Charging wall-clock time (rather than bookkeeping counters alone) lets the
// benchmark harnesses reproduce the *shape* of the paper's Fig. 6, where
// small-payload store operations are dominated by transition overhead and the
// SGX/no-SGX gap narrows as payloads grow. All constants are configurable so
// the ablation bench can sweep them.
#pragma once

#include <cstdint>

namespace speed::sgx {

struct CostModel {
  /// Master switch; false = charge nothing (the "w/o SGX" series in Fig. 6).
  bool enabled = true;

  /// One-way transition costs.
  std::uint64_t ecall_ns = 4000;
  std::uint64_t ocall_ns = 4000;

  /// Extra EPC pressure cost per 4 KB page swapped once usage exceeds the
  /// usable EPC (models EWB/ELD integrity-protected eviction).
  std::uint64_t epc_page_swap_ns = 40000;

  /// Usable EPC bytes (the paper's machines: 128 MB EPC, ~90 MB usable).
  std::uint64_t epc_usable_bytes = 90ull * 1024 * 1024;

  static CostModel disabled() {
    CostModel m;
    m.enabled = false;
    return m;
  }
};

}  // namespace speed::sgx
