// Cost model for the simulated SGX runtime.
//
// We do not have SGX hardware, so the simulator charges the latency classes
// that dominate real enclave execution with calibrated busy-waits:
//
//   * ECALL/OCALL world switches (~8,000-14,000 cycles on Skylake; HotCalls
//     and Eleos [paper refs 9,10,51] measure 8-17 us round trips including
//     marshalling). Default 4 us per one-way transition.
//   * EPC paging (EWB/ELD) once the 90 MB usable Enclave Page Cache is
//     exceeded — hundreds of thousands of cycles per 4 KB page.
//
// Charging wall-clock time (rather than bookkeeping counters alone) lets the
// benchmark harnesses reproduce the *shape* of the paper's Fig. 6, where
// small-payload store operations are dominated by transition overhead and the
// SGX/no-SGX gap narrows as payloads grow. All constants are configurable so
// the ablation bench can sweep them.
#pragma once

#include <cstdint>
#include <thread>

#include "common/clock.h"

namespace speed::sgx {

struct CostModel {
  /// Master switch; false = charge nothing (the "w/o SGX" series in Fig. 6).
  bool enabled = true;

  /// How simulated latency is charged. kSpin burns the charging core — the
  /// latency-faithful choice when the harness has a core per thread, and how
  /// real transitions behave. kSleep parks the thread instead, so a harness
  /// with fewer physical cores than client threads can emulate a store whose
  /// enclave workers run on dedicated cores: simulated waits then overlap
  /// exactly where the lock structure allows, which is what the sharding
  /// throughput bench measures. Accounting is identical either way.
  enum class Wait { kSpin, kSleep };
  Wait wait = Wait::kSpin;

  /// One-way transition costs.
  std::uint64_t ecall_ns = 4000;
  std::uint64_t ocall_ns = 4000;

  /// Extra EPC pressure cost per 4 KB page swapped once usage exceeds the
  /// usable EPC (models EWB/ELD integrity-protected eviction).
  std::uint64_t epc_page_swap_ns = 40000;

  /// Usable EPC bytes (the paper's machines: 128 MB EPC, ~90 MB usable).
  std::uint64_t epc_usable_bytes = 90ull * 1024 * 1024;

  /// Simulated per-request service time inside the store's trusted
  /// dictionary critical section (0 = off, the default). Throughput benches
  /// set this (together with Wait::kSleep) to model the in-enclave
  /// marshalling + verification work of a loaded store, making lock
  /// granularity — one global mutex vs per-shard locks — the measured
  /// variable rather than the harness machine's core count.
  std::uint64_t store_service_ns = 0;

  static CostModel disabled() {
    CostModel m;
    m.enabled = false;
    return m;
  }
};

/// Charge `ns` of simulated latency per the model's wait mode.
inline void charge_wait(const CostModel& model, std::uint64_t ns) {
  if (!model.enabled || ns == 0) return;
  if (model.wait == CostModel::Wait::kSleep) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  } else {
    busy_wait_ns(ns);
  }
}

}  // namespace speed::sgx
