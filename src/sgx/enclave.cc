#include "sgx/enclave.h"

#include <cstring>

#include "crypto/gcm.h"
#include "crypto/hmac.h"

namespace speed::sgx {

namespace {

/// Process-wide transition counters. Enclaves come and go (per runtime, per
/// store), so totals live here rather than in any one instance; per-enclave
/// counts stay on the Enclave for the tests that assert them exactly.
struct TransitionMetrics {
  telemetry::Counter ecalls;
  telemetry::Counter ocalls;
  telemetry::Registry::Handle handle;
};

TransitionMetrics& transition_metrics() {
  // Heap-allocated and never freed: collectors must outlive any scrape that
  // could still run during static destruction.
  static TransitionMetrics* m = [] {
    auto* t = new TransitionMetrics;
    t->handle = telemetry::Registry::global().add_collector(
        [t](telemetry::SampleSink& sink) {
          constexpr auto kKind = telemetry::LabelKey::of("kind");
          sink.counter("speed_enclave_transitions_total",
                       "Simulated SGX world switches (EENTER / OCALL exits)",
                       {{kKind, telemetry::LabelValue::lit("ecall")}},
                       t->ecalls.value());
          sink.counter("speed_enclave_transitions_total",
                       "Simulated SGX world switches (EENTER / OCALL exits)",
                       {{kKind, telemetry::LabelValue::lit("ocall")}},
                       t->ocalls.value());
        });
    return t;
  }();
  return *m;
}

// Registered during static initialization: the first ECALL can happen under
// a transport lock, and taking the registry lock there would invert the
// lock-rank order (docs/LOCK_ORDER.md).
[[maybe_unused]] const TransitionMetrics& kEagerTransitionMetrics =
    transition_metrics();

}  // namespace

Platform::Platform(CostModel model)
    : model_(model),
      epc_(model_),
      hardware_key_(
          secret::Buffer::absorb(crypto::Drbg::system_bytes(32))) {
  register_telemetry();
}

Platform::Platform(CostModel model, ByteView stable_key_seed)
    : model_(model),
      epc_(model_),
      hardware_key_(secret::Buffer::absorb([&] {
        const auto digest = crypto::Sha256::digest(stable_key_seed);
        return Bytes(digest.begin(), digest.end());
      }())) {
  register_telemetry();
}

void Platform::register_telemetry() {
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        sink.gauge("speed_epc_used_bytes",
                   "Trusted memory charged against the EPC (all platforms)", {},
                   static_cast<std::int64_t>(epc_.used_bytes()));
        sink.gauge("speed_epc_usable_bytes",
                   "EPC capacity before paging kicks in (all platforms)", {},
                   static_cast<std::int64_t>(epc_.usable_bytes()));
        sink.counter("speed_epc_swapped_pages_total",
                     "Simulated EPC page swaps (EWB/ELD round trips)", {},
                     epc_.swapped_pages());
      });
}

std::unique_ptr<Enclave> Platform::create_enclave(std::string identity) {
  return std::make_unique<Enclave>(*this, std::move(identity));
}

secret::Buffer Platform::seal_key_for(const Measurement& m) const {
  return crypto::derive_key(hardware_key_, "seal-key",
                            ByteView(m.data(), m.size()), 32);
}

secret::Buffer Platform::report_key_for(const Measurement& target) const {
  return crypto::derive_key(hardware_key_, "report-key",
                            ByteView(target.data(), target.size()), 32);
}

Enclave::Enclave(Platform& platform, std::string identity)
    : platform_(platform),
      identity_(std::move(identity)),
      measurement_(measure_identity(identity_)),
      seal_key_(platform.seal_key_for(measurement_)),
      drbg_() {
  // A freshly created enclave occupies a minimal trusted footprint (SECS,
  // TCS, initial heap); charge a token amount so EPC accounting reflects
  // enclave count.
  platform_.epc().allocate(kEpcPageSize * 16);
}

Enclave::~Enclave() { platform_.epc().release(kEpcPageSize * 16); }

void Enclave::begin_ecall() {
  ecalls_.fetch_add(1, std::memory_order_relaxed);
  transition_metrics().ecalls.inc();
  charge_wait(platform_.cost_model(), platform_.cost_model().ecall_ns);
}

void Enclave::end_ecall() {
  charge_wait(platform_.cost_model(), platform_.cost_model().ecall_ns);
}

void Enclave::begin_ocall() {
  ocalls_.fetch_add(1, std::memory_order_relaxed);
  transition_metrics().ocalls.inc();
  charge_wait(platform_.cost_model(), platform_.cost_model().ocall_ns);
}

void Enclave::end_ocall() {
  charge_wait(platform_.cost_model(), platform_.cost_model().ocall_ns);
}

Bytes Enclave::seal(ByteView aad, ByteView plaintext) {
  MutexLock lock(drbg_mu_);
  return crypto::gcm_encrypt(seal_key_, aad, plaintext, drbg_);
}

std::optional<Bytes> Enclave::unseal(ByteView aad, ByteView sealed) {
  return crypto::gcm_decrypt(seal_key_, aad, sealed);
}

Report Enclave::create_report(const Measurement& target_measurement,
                              ByteView user_data) const {
  if (user_data.size() > 64) {
    throw EnclaveError("create_report: user_data exceeds 64 bytes");
  }
  Report r;
  r.source_measurement = measurement_;
  if (!user_data.empty()) {
    std::memcpy(r.user_data.data(), user_data.data(), user_data.size());
  }
  const secret::Buffer key = platform_.report_key_for(target_measurement);
  crypto::HmacSha256 mac(key);
  mac.update(ByteView(r.source_measurement.data(), r.source_measurement.size()));
  mac.update(ByteView(r.user_data.data(), r.user_data.size()));
  const auto digest = mac.finish();
  std::memcpy(r.mac.data(), digest.data(), digest.size());
  return r;
}

bool Enclave::verify_report(const Report& report) const {
  const secret::Buffer key = platform_.report_key_for(measurement_);
  crypto::HmacSha256 mac(key);
  mac.update(ByteView(report.source_measurement.data(),
                      report.source_measurement.size()));
  mac.update(ByteView(report.user_data.data(), report.user_data.size()));
  const auto digest = mac.finish();
  return ct_equal(ByteView(digest.data(), digest.size()),
                  ByteView(report.mac.data(), report.mac.size()));
}

Bytes Enclave::random_bytes(std::size_t n) {
  MutexLock lock(drbg_mu_);
  return drbg_.bytes(n);
}

}  // namespace speed::sgx
