// Simulated SGX platform and enclaves.
//
// A Platform models one SGX-capable machine: it owns the hardware root key,
// the shared Enclave Page Cache, and the cost model. Enclaves are created
// from it and provide the SGX primitives SPEED relies on:
//
//   * ECALL/OCALL transition accounting (with simulated latency),
//   * trusted-memory accounting against the shared EPC,
//   * sealing (AES-GCM-256 under a measurement-bound key),
//   * local attestation reports (HMAC bound to the target's measurement).
//
// The isolation boundary is enforced by API discipline rather than hardware:
// code that wants to be "inside" an enclave runs under ecall()/EnclaveScope,
// and trusted state charges the EPC. Functionally the security properties
// (sealed data unreadable off-platform, reports unforgeable without the
// platform key, measurements binding code identity) hold against the
// simulated adversary, which is what the SPEED protocol tests exercise.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/annotated_lock.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/secret.h"
#include "crypto/drbg.h"
#include "sgx/cost_model.h"
#include "sgx/epc.h"
#include "sgx/measurement.h"
#include "telemetry/registry.h"

namespace speed::sgx {

class Enclave;

/// Local attestation report (EREPORT analogue): proves to a *target* enclave
/// on the same platform that `source` with `source_measurement` produced
/// `user_data`. The MAC is keyed to the target's measurement, so only the
/// target (via its platform) can verify it — and nothing off-platform can.
struct Report {
  Measurement source_measurement{};
  std::array<std::uint8_t, 64> user_data{};
  std::array<std::uint8_t, 32> mac{};
};

class Platform {
 public:
  explicit Platform(CostModel model = CostModel{});

  /// Like the default constructor, but the hardware root key is derived
  /// deterministically from `stable_key_seed` instead of fresh randomness.
  /// This models the *same physical machine* across simulated process
  /// restarts: data sealed before a restart (the ResultStore's metadata WAL,
  /// sealed snapshots) stays unsealable after it — on real SGX the fused
  /// hardware key provides this for free. The seed is hashed into the key,
  /// never stored.
  Platform(CostModel model, ByteView stable_key_seed);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  const CostModel& cost_model() const { return model_; }
  EpcAllocator& epc() { return epc_; }

  /// Create an enclave whose measurement derives from `identity`.
  std::unique_ptr<Enclave> create_enclave(std::string identity);

  /// Hardware-derived keys; private to the platform (enclaves reach them
  /// through their own seal()/report APIs, the untrusted world cannot).
  /// Returned in the secret domain — they never cross the trusted boundary.
  secret::Buffer seal_key_for(const Measurement& m) const;
  secret::Buffer report_key_for(const Measurement& target) const;

 private:
  void register_telemetry();

  CostModel model_;
  EpcAllocator epc_;
  secret::Buffer hardware_key_;
  // Declared after epc_: deregistration must precede the allocator's death.
  telemetry::Registry::Handle telemetry_handle_;
};

class Enclave {
 public:
  Enclave(Platform& platform, std::string identity);
  ~Enclave();

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  Platform& platform() { return platform_; }
  const std::string& identity() const { return identity_; }
  const Measurement& measurement() const { return measurement_; }

  // ------------------------------------------------------------ Transitions

  /// Host -> enclave call: charges EENTER on the way in and EEXIT on the way
  /// out, runs `f` "inside" the enclave.
  template <typename F>
  decltype(auto) ecall(F&& f) {
    begin_ecall();
    struct Exit {
      Enclave* e;
      ~Exit() { e->end_ecall(); }
    } exit_guard{this};
    return std::forward<F>(f)();
  }

  /// Enclave -> host call: charges the exit and the re-entry, runs `f`
  /// "outside".
  template <typename F>
  decltype(auto) ocall(F&& f) {
    begin_ocall();
    struct Exit {
      Enclave* e;
      ~Exit() { e->end_ocall(); }
    } exit_guard{this};
    return std::forward<F>(f)();
  }

  std::uint64_t ecall_count() const { return ecalls_.load(); }
  std::uint64_t ocall_count() const { return ocalls_.load(); }

  // --------------------------------------------------------------- Sealing

  /// Seal `plaintext` to this enclave's measurement (MRENCLAVE policy):
  /// only an enclave with the same measurement on the same platform unseals.
  Bytes seal(ByteView aad, ByteView plaintext);
  std::optional<Bytes> unseal(ByteView aad, ByteView sealed);

  // ----------------------------------------------------------- Attestation

  /// Produce a report for `target_measurement` carrying up to 64 bytes of
  /// `user_data` (longer inputs are rejected).
  Report create_report(const Measurement& target_measurement,
                       ByteView user_data) const;

  /// Verify a report addressed to *this* enclave.
  bool verify_report(const Report& report) const;

  // -------------------------------------------------------- Trusted memory

  /// Adjust this enclave's trusted-heap charge; paging costs apply once the
  /// platform EPC is over-committed.
  void charge_trusted(std::uint64_t bytes) { platform_.epc().allocate(bytes); }
  void release_trusted(std::uint64_t bytes) { platform_.epc().release(bytes); }

  /// Trusted randomness (sgx_read_rand analogue). Thread-safe.
  Bytes random_bytes(std::size_t n);

 private:
  void begin_ecall();
  void end_ecall();
  void begin_ocall();
  void end_ocall();

  Platform& platform_;
  std::string identity_;
  Measurement measurement_;
  secret::Buffer seal_key_;

  std::atomic<std::uint64_t> ecalls_{0};
  std::atomic<std::uint64_t> ocalls_{0};

  Mutex drbg_mu_{LockRank::kCryptoDrbg};  // leaf: drawn from any context
  crypto::Drbg drbg_ GUARDED_BY(drbg_mu_);
};

/// RAII trusted-memory charge for containers living in enclave memory.
class TrustedCharge {
 public:
  TrustedCharge(Enclave& enclave, std::uint64_t bytes = 0)
      : enclave_(&enclave), bytes_(bytes) {
    if (bytes_ > 0) enclave_->charge_trusted(bytes_);
  }
  ~TrustedCharge() {
    if (bytes_ > 0) enclave_->release_trusted(bytes_);
  }

  TrustedCharge(const TrustedCharge&) = delete;
  TrustedCharge& operator=(const TrustedCharge&) = delete;

  /// Re-account to a new size (e.g. after a dictionary grows).
  void resize(std::uint64_t bytes) {
    if (bytes > bytes_) {
      enclave_->charge_trusted(bytes - bytes_);
    } else if (bytes < bytes_) {
      enclave_->release_trusted(bytes_ - bytes);
    }
    bytes_ = bytes;
  }

  std::uint64_t bytes() const { return bytes_; }

 private:
  Enclave* enclave_;
  std::uint64_t bytes_;
};

}  // namespace speed::sgx
