#include "net/secure_channel.h"

#include "common/error.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "serialize/codec.h"
#include "telemetry/registry.h"

namespace speed::net {

namespace {

/// Process-wide secure-channel frame accounting. Channels are short-lived
/// value types (one per peer/direction, replaced on rekey), so the totals
/// live here; per-channel sequence numbers stay on the channel.
struct ChannelMetrics {
  telemetry::Counter frames_sent;
  telemetry::Counter frames_received;
  telemetry::Counter unwrap_failures;
  telemetry::Counter bytes_sealed;
  telemetry::Counter bytes_opened;
  telemetry::Registry::Handle handle;
};

ChannelMetrics& channel_metrics() {
  static ChannelMetrics* m = [] {
    auto* t = new ChannelMetrics;
    t->handle = telemetry::Registry::global().add_collector(
        [t](telemetry::SampleSink& sink) {
          constexpr auto kDir = telemetry::LabelKey::of("direction");
          sink.counter("speed_channel_frames_total",
                       "Secure-channel frames wrapped/unwrapped",
                       {{kDir, telemetry::LabelValue::lit("sent")}},
                       t->frames_sent.value());
          sink.counter("speed_channel_frames_total",
                       "Secure-channel frames wrapped/unwrapped",
                       {{kDir, telemetry::LabelValue::lit("received")}},
                       t->frames_received.value());
          sink.counter("speed_channel_unwrap_failures_total",
                       "Frames rejected for tampering, replay, or reordering",
                       {}, t->unwrap_failures.value());
          sink.counter("speed_channel_bytes_total",
                       "Plaintext bytes through the secure channel",
                       {{kDir, telemetry::LabelValue::lit("sent")}},
                       t->bytes_sealed.value());
          sink.counter("speed_channel_bytes_total",
                       "Plaintext bytes through the secure channel",
                       {{kDir, telemetry::LabelValue::lit("received")}},
                       t->bytes_opened.value());
        });
    return t;
  }();
  return *m;
}

/// Deterministic 12-byte nonce: 4-byte direction ‖ 8-byte sequence number.
/// Unique per key because each direction owns its own counter.
Bytes make_nonce(bool initiator_to_responder, std::uint64_t seq) {
  Bytes nonce(12, 0);
  nonce[0] = initiator_to_responder ? 0x01 : 0x02;
  for (int i = 0; i < 8; ++i) {
    nonce[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return nonce;
}

// Register the collector during static initialization, before any thread
// can hold a lock: first-use registration could otherwise take the registry
// lock under a transport lock — a rank inversion (docs/LOCK_ORDER.md) and a
// potential deadlock against an in-flight scrape.
[[maybe_unused]] const ChannelMetrics& kEagerChannelMetrics = channel_metrics();

}  // namespace

secret::Buffer derive_channel_key(sgx::Enclave& self,
                                  const sgx::Measurement& peer) {
  const auto& a = self.measurement();
  // Order-independent: hash the lexicographically sorted measurement pair.
  ByteView first(a.data(), a.size());
  ByteView second(peer.data(), peer.size());
  if (std::lexicographical_compare(second.begin(), second.end(), first.begin(),
                                   first.end())) {
    std::swap(first, second);
  }
  const Bytes context = concat(first, second);
  // Both endpoints must derive the identical key, so root it in the platform
  // report-key facility applied to a pseudo-measurement of the *pair* —
  // modelling the attested key-exchange outcome (shared secret bound to both
  // measurements, rooted in the platform).
  const sgx::Measurement pair_id = crypto::Sha256::digest(context);
  // AES-GCM-128 session keys, like the SGX SDK crypto the paper uses.
  return crypto::derive_key(self.platform().report_key_for(pair_id),
                            "channel-key", context, 16);
}

SecureChannel::SecureChannel(secret::Buffer session_key, bool is_initiator)
    : key_(std::move(session_key)), is_initiator_(is_initiator) {
  if (key_.size() != 16 && key_.size() != 32) {
    throw CryptoError("SecureChannel: session key must be 16 or 32 bytes");
  }
}

SecureChannel::SecureChannel(Bytes session_key, bool is_initiator)
    : SecureChannel(secret::Buffer::absorb(std::move(session_key)),
                    is_initiator) {}

Bytes SecureChannel::wrap(ByteView plaintext) {
  const std::uint64_t seq = send_seq_++;
  const Bytes nonce = make_nonce(is_initiator_, seq);
  const crypto::AesGcm gcm(key_);

  serialize::Encoder aad;
  aad.u8(is_initiator_ ? 1 : 2);
  aad.u64(seq);
  const Bytes sealed = gcm.seal(nonce, aad.view(), plaintext);

  serialize::Encoder frame;
  frame.u64(seq);
  frame.var_bytes(sealed);
  ChannelMetrics& cm = channel_metrics();
  cm.frames_sent.inc();
  cm.bytes_sealed.inc(plaintext.size());
  return frame.take();
}

std::optional<Bytes> SecureChannel::unwrap(ByteView frame) {
  std::uint64_t seq;
  Bytes sealed;
  ChannelMetrics& cm = channel_metrics();
  try {
    serialize::Decoder dec(frame);
    seq = dec.u64();
    sealed = dec.var_bytes();
    dec.expect_done();
  } catch (const SerializationError&) {
    cm.unwrap_failures.inc();
    return std::nullopt;
  }
  // Strict ordering: the peer's next frame must carry exactly recv_seq_.
  if (seq != recv_seq_) {
    cm.unwrap_failures.inc();
    return std::nullopt;
  }

  const Bytes nonce = make_nonce(!is_initiator_, seq);
  serialize::Encoder aad;
  aad.u8(is_initiator_ ? 2 : 1);
  aad.u64(seq);
  const crypto::AesGcm gcm(key_);
  auto plain = gcm.open(nonce, aad.view(), sealed);
  if (!plain.has_value()) {
    cm.unwrap_failures.inc();
    return std::nullopt;
  }
  ++recv_seq_;
  cm.frames_received.inc();
  cm.bytes_opened.inc(plain->size());
  return plain;
}

}  // namespace speed::net
