// TCP transport: length-prefixed frames over POSIX sockets.
//
// The paper deploys the ResultStore as a separate process reachable over
// the network (and a master store on a dedicated server). This module
// provides the socket plumbing: a framed connection, a blocking listener,
// and a Transport implementation the DedupRuntime can use unchanged —
// everything above the socket (handshake, secure channel, wire protocol)
// is identical to the in-process deployment.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <mutex>
#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "net/channel.h"

namespace speed::net {

class TcpError : public Error {
 public:
  explicit TcpError(const std::string& what) : Error(what) {}
};

/// A connected socket speaking u32-length-prefixed frames. Closes on
/// destruction. Frames are capped at 256 MB to bound allocation.
class FramedSocket {
 public:
  explicit FramedSocket(int fd) : fd_(fd) {}
  ~FramedSocket();

  FramedSocket(FramedSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FramedSocket& operator=(FramedSocket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FramedSocket(const FramedSocket&) = delete;
  FramedSocket& operator=(const FramedSocket&) = delete;

  void send_frame(ByteView payload);
  /// Blocks for one frame; throws TcpError on EOF or malformed length.
  Bytes recv_frame();
  /// Like recv_frame but returns nullopt on orderly EOF before any byte.
  std::optional<Bytes> try_recv_frame();

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Half-close both directions without releasing the fd: unblocks a peer
  /// (or our own other thread) sitting in recv(). Safe to call from a
  /// different thread than the one using the socket.
  void shutdown();

 private:
  int fd_;
};

/// Connect to host:port (IPv4 dotted or "localhost").
FramedSocket tcp_connect(const std::string& host, std::uint16_t port);

/// Blocking accept loop owner. Binds to 127.0.0.1.
class TcpListener {
 public:
  /// `port` 0 picks an ephemeral port (see port()).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection; throws TcpError once closed.
  FramedSocket accept();

  /// Unblocks pending accept() calls.
  void close();

 private:
  int fd_;
  std::uint16_t port_;
};

/// Transport over a framed TCP connection: one in-flight request at a time,
/// like the prototype's synchronous OCALL-driven exchange.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(FramedSocket socket) : socket_(std::move(socket)) {}

  Bytes round_trip(ByteView request) override {
    std::lock_guard<std::mutex> lock(mu_);
    socket_.send_frame(request);
    return socket_.recv_frame();
  }

  FramedSocket& socket() { return socket_; }

 private:
  FramedSocket socket_;
  std::mutex mu_;
};

}  // namespace speed::net
