// TCP transport: length-prefixed frames over POSIX sockets.
//
// The paper deploys the ResultStore as a separate process reachable over
// the network (and a master store on a dedicated server). This module
// provides the socket plumbing: a framed connection, a blocking listener,
// and a Transport implementation the DedupRuntime can use unchanged —
// everything above the socket (handshake, secure channel, wire protocol)
// is identical to the in-process deployment.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/annotated_lock.h"
#include "common/bytes.h"
#include "common/error.h"
#include "net/channel.h"

namespace speed::net {

class TcpError : public Error {
 public:
  explicit TcpError(const std::string& what) : Error(what) {}
};

/// A send or receive deadline expired. After a timeout the byte stream is in
/// an unknown state (a late response would misalign every following frame),
/// so callers must treat the connection as dead and reconnect.
class TcpTimeout : public TcpError {
 public:
  explicit TcpTimeout(const std::string& what) : TcpError(what) {}
};

/// A connected socket speaking u32-length-prefixed frames. Closes on
/// destruction. Frames are capped at 256 MB to bound allocation.
///
/// Deadlines: every frame operation polls the fd before each syscall, so a
/// peer that stops draining (send) or stops talking (recv) raises TcpTimeout
/// instead of parking the thread forever. Timeouts apply per frame; -1
/// blocks indefinitely (the historical behavior and the default).
class FramedSocket {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit FramedSocket(int fd) : fd_(fd) {}
  ~FramedSocket();

  FramedSocket(FramedSocket&& other) noexcept
      : fd_(other.fd_),
        send_timeout_ms_(other.send_timeout_ms_),
        recv_timeout_ms_(other.recv_timeout_ms_) {
    other.fd_ = -1;
  }
  FramedSocket& operator=(FramedSocket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      send_timeout_ms_ = other.send_timeout_ms_;
      recv_timeout_ms_ = other.recv_timeout_ms_;
      other.fd_ = -1;
    }
    return *this;
  }
  FramedSocket(const FramedSocket&) = delete;
  FramedSocket& operator=(const FramedSocket&) = delete;

  /// Per-frame timeouts in milliseconds; -1 = block forever.
  void set_timeouts(std::int64_t send_ms, std::int64_t recv_ms) {
    send_timeout_ms_ = send_ms;
    recv_timeout_ms_ = recv_ms;
  }
  std::int64_t send_timeout_ms() const { return send_timeout_ms_; }
  std::int64_t recv_timeout_ms() const { return recv_timeout_ms_; }

  void send_frame(ByteView payload);
  /// Blocks for one frame; throws TcpError on EOF or malformed length.
  Bytes recv_frame();
  /// Like recv_frame but returns nullopt on orderly EOF before any byte.
  std::optional<Bytes> try_recv_frame();

  /// Deadline-bound variants sharing one absolute budget across the header
  /// and payload (used by TcpTransport's per-round-trip deadline).
  void send_frame(ByteView payload, TimePoint deadline);
  Bytes recv_frame(TimePoint deadline);
  std::optional<Bytes> try_recv_frame(TimePoint deadline);

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Underlying descriptor (-1 when closed). For event-loop servers that
  /// multiplex many sockets; frame helpers above stay usable alongside.
  int fd() const { return fd_; }

  /// Give up ownership of the descriptor (the event loop takes over its
  /// lifecycle); this socket becomes invalid without closing the fd.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Half-close both directions without releasing the fd: unblocks a peer
  /// (or our own other thread) sitting in recv(). Safe to call from a
  /// different thread than the one using the socket.
  void shutdown();

 private:
  void send_frame_impl(ByteView payload,
                       const std::optional<TimePoint>& deadline);
  std::optional<Bytes> try_recv_frame_impl(
      const std::optional<TimePoint>& deadline);

  int fd_;
  std::int64_t send_timeout_ms_ = -1;
  std::int64_t recv_timeout_ms_ = -1;
};

/// Connect to host:port (IPv4 dotted or "localhost").
FramedSocket tcp_connect(const std::string& host, std::uint16_t port);

/// Blocking accept loop owner. Binds to 127.0.0.1.
class TcpListener {
 public:
  /// `port` 0 picks an ephemeral port (see port()).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection; throws TcpError once closed. Retries
  /// EINTR and transient per-connection failures (ECONNABORTED) internally —
  /// a signal or an aborted dial never kills the accept loop.
  FramedSocket accept();

  /// Nonblocking accept for event-loop servers (call set_nonblocking()
  /// first): returns nullopt when no connection is pending (EAGAIN) or the
  /// attempt was retriable (EINTR/ECONNABORTED); throws TcpError only once
  /// the listener is closed or genuinely broken.
  std::optional<FramedSocket> try_accept();

  /// Switch the listening socket to O_NONBLOCK (for try_accept + epoll).
  void set_nonblocking();

  /// Listening descriptor for epoll registration (-1 once closed).
  int fd() const { return fd_.load(); }

  /// Unblocks pending accept() calls. Safe to call from another thread
  /// while accept() is blocked (the usual server-shutdown shape).
  void close();

 private:
  std::atomic<int> fd_;
  std::uint16_t port_;
};

/// Transport over a framed TCP connection: one in-flight request at a time,
/// like the prototype's synchronous OCALL-driven exchange.
///
/// `deadline_ms` bounds one whole round trip (request out + response in);
/// -1 keeps the historical block-forever behavior. A round trip that blows
/// its deadline throws TcpTimeout, and the connection must then be
/// abandoned: the response may still arrive later and would misalign the
/// frame stream (wrap in ResilientTransport to get reconnection).
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(FramedSocket socket, std::int64_t deadline_ms = -1)
      : socket_(std::move(socket)), deadline_ms_(deadline_ms) {}

  void set_deadline_ms(std::int64_t ms) {
    MutexLock lock(mu_);
    deadline_ms_ = ms;
  }

  // Holding mu_ across the socket I/O is the point: one in-flight round
  // trip per connection, so a second caller queues rather than interleaving
  // frames.
  // lockdiscipline-allow: LD004 the lock IS the wire serialization
  Bytes round_trip(ByteView request) override {
    MutexLock lock(mu_);
    if (deadline_ms_ < 0) {
      socket_.send_frame(request);
      return socket_.recv_frame();
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms_);
    socket_.send_frame(request, deadline);
    return socket_.recv_frame(deadline);
  }

  /// Raw socket escape hatch for tests that corrupt the byte stream
  /// deliberately. Bypasses mu_ — never use it while round trips are in
  /// flight on another thread.
  FramedSocket& socket() { return socket_; }

 private:
  FramedSocket socket_;  // serialized by mu_ on the round-trip path
  std::int64_t deadline_ms_ GUARDED_BY(mu_);
  Mutex mu_{LockRank::kTransportLink};  // innermost transport (510)
};

}  // namespace speed::net
