// Deterministic fault injection for resilience testing.
//
// FaultInjectingTransport wraps any Transport and consults a schedule on
// every round trip: the schedule maps the (0-based) call index to a fault.
// Faults model the store failure modes a deployment actually sees:
//
//   kTimeout    — the deadline expired (throws TcpTimeout); the response
//                 may still be in flight, so the connection is unusable;
//   kDisconnect — the peer died / the socket broke (throws TcpError);
//   kGarbage    — the host answered bytes that are not a channel frame
//                 (returned verbatim; the caller's unwrap fails);
//   kTruncate   — the real response, cut in half mid-frame.
//
// Schedules are plain functions, so tests compose them freely; the helpers
// cover the common "always" and "fail a window of calls, then recover"
// shapes. The injector is thread-safe and counts every decision.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/annotated_lock.h"
#include "common/bytes.h"
#include "net/channel.h"
#include "net/tcp.h"

namespace speed::net {

class FaultInjectingTransport : public Transport {
 public:
  enum class Fault { kNone, kTimeout, kDisconnect, kGarbage, kTruncate };

  using Schedule = std::function<Fault(std::uint64_t call_index)>;

  explicit FaultInjectingTransport(std::unique_ptr<Transport> inner,
                                   Schedule schedule = Schedule{})
      : inner_(std::move(inner)), schedule_(std::move(schedule)) {}

  /// Every call gets the same fault.
  static Schedule always(Fault f) {
    return [f](std::uint64_t) { return f; };
  }

  /// Calls in [from, to) fail with `f`; everything else is healthy — the
  /// "store dies after K calls, later recovers" shape.
  static Schedule fail_window(std::uint64_t from, std::uint64_t to, Fault f) {
    return [from, to, f](std::uint64_t i) {
      return (i >= from && i < to) ? f : Fault::kNone;
    };
  }

  /// Replace the schedule mid-test (e.g. to clear a fault).
  void set_schedule(Schedule schedule) {
    MutexLock lock(mu_);
    schedule_ = std::move(schedule);
  }

  Bytes round_trip(ByteView request) override {
    // The schedule decision is taken under mu_; the lock is released before
    // forwarding to the inner transport.
    Fault fault = Fault::kNone;
    {
      MutexLock lock(mu_);
      const std::uint64_t index = calls_++;
      if (schedule_) fault = schedule_(index);
      if (fault != Fault::kNone) ++injected_;
    }
    switch (fault) {
      case Fault::kNone:
        return inner_->round_trip(request);
      case Fault::kTimeout:
        throw TcpTimeout("injected: round-trip deadline exceeded");
      case Fault::kDisconnect:
        throw TcpError("injected: connection reset by peer");
      case Fault::kGarbage: {
        // Not forwarded: the "response" never saw the store. Deterministic
        // junk that cannot authenticate under any channel key.
        Bytes junk(48);
        for (std::size_t i = 0; i < junk.size(); ++i) {
          junk[i] = static_cast<std::uint8_t>(0xa5u ^ (i * 7));
        }
        return junk;
      }
      case Fault::kTruncate: {
        Bytes real = inner_->round_trip(request);
        real.resize(real.size() / 2);
        return real;
      }
    }
    throw TcpError("unreachable fault kind");
  }

  std::uint64_t calls() const { return calls_; }
  std::uint64_t injected() const { return injected_; }

 private:
  std::unique_ptr<Transport> inner_;
  // 505: stacked between ResilientTransport (500) and the wire (510).
  Mutex mu_{LockRank::kTransportInject};
  Schedule schedule_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace speed::net
