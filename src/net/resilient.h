// Fault-tolerant Transport decorator: reconnect, backoff, circuit breaker.
//
// SPEED's dedup store is an accelerator, never a correctness dependency, so
// the transport to it must fail fast and recover quietly instead of
// propagating socket errors into application calls. ResilientTransport wraps
// any Transport with the three standard resilience mechanisms:
//
//   * bounded reconnection with exponential backoff + deterministic jitter —
//     the reconnect hook re-runs the attested handshake, so every recovered
//     connection carries a *fresh* channel key (stale sequence numbers from
//     the dead connection can never collide with the new channel);
//   * a circuit breaker: after `breaker_threshold` consecutive failures the
//     store is bypassed entirely (round_trip/recover fail immediately,
//     letting the runtime go straight to local compute) until
//     `breaker_cooldown_ms` elapses, when one half-open probe is admitted;
//   * failure classification: all underlying errors surface as
//     StoreUnavailableError, the single degrade-to-compute signal.
//
// Division of labor with DedupRuntime: the runtime wraps frames under its
// SecureChannel key *before* they reach the transport, so a frame in flight
// is bound to the connection that existed when it was wrapped. A failed
// round trip therefore fails the *current* call (the runtime degrades to
// local compute and poisons its channel); recovery happens on the *next*
// call, when the runtime sees the poisoned channel and asks the transport to
// recover() — which reconnects, re-handshakes, and stages the fresh session
// key through the rekey callback.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/annotated_lock.h"
#include "common/bytes.h"
#include "net/channel.h"
#include "telemetry/registry.h"

namespace speed::net {

struct ResilienceConfig {
  /// Reconnect attempts per recovery before reporting failure.
  int reconnect_attempts = 3;
  /// Backoff between reconnect attempts: initial delay, doubled per attempt
  /// up to the max, with +/- `backoff_jitter` fractional jitter.
  std::uint64_t backoff_initial_ms = 2;
  std::uint64_t backoff_max_ms = 100;
  double backoff_jitter = 0.2;
  /// Consecutive failed round trips / recoveries that open the breaker.
  int breaker_threshold = 5;
  /// How long an open breaker rejects immediately before half-opening.
  std::uint64_t breaker_cooldown_ms = 250;
  /// Fractional +/- jitter applied to the cooldown each time the breaker
  /// opens. A fleet of clients that tripped on the same store failure would
  /// otherwise half-open in lockstep and thundering-herd the recovering
  /// node; jitter spreads their probes across the window.
  double breaker_cooldown_jitter = 0.2;
  /// Seed for the deterministic jitter stream (reproducible tests).
  std::uint64_t jitter_seed = 0x5eedu;
};

class ResilientTransport : public Transport {
 public:
  /// What a successful reconnect yields: a live transport and the fresh
  /// session key from the re-run attested handshake.
  struct Connection {
    std::unique_ptr<Transport> transport;
    secret::Buffer session_key;
  };
  /// Re-establishes the connection (e.g. re-runs store::connect_tcp_app).
  /// Throws or returns a null transport on failure.
  using ReconnectFn = std::function<Connection()>;

  ResilientTransport(std::unique_ptr<Transport> initial, ReconnectFn reconnect,
                     ResilienceConfig config = ResilienceConfig{});

  Bytes round_trip(ByteView request) override;
  bool recover() override;
  void set_rekey_callback(RekeyCallback cb) override;

  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  BreakerState breaker_state() const;

  /// Point-in-time view over this instance's telemetry cells (the cells are
  /// also exported process-wide as speed_transport_* via the registry).
  struct Stats {
    std::uint64_t round_trips = 0;        ///< successful round trips
    std::uint64_t failures = 0;           ///< failed round trips + recoveries
    std::uint64_t short_circuits = 0;     ///< rejected by an open breaker
    std::uint64_t reconnects = 0;         ///< successful reconnections
    std::uint64_t reconnect_failures = 0; ///< individual failed attempts
    std::uint64_t breaker_opens = 0;
  };
  Stats stats() const;

  const ResilienceConfig& config() const { return config_; }

  /// The jittered cooldown chosen when the breaker last opened (test hook
  /// for the anti-thundering-herd behavior). 0 if it never opened.
  std::uint64_t current_cooldown_ms() const;

 private:
  /// True if the breaker admits traffic now (may flip open -> half-open).
  bool admit_locked() REQUIRES(mu_);
  /// One bounded reconnect cycle; on success swaps in the new transport,
  /// stages the fresh key, closes the breaker. The displaced transport is
  /// moved into `retired`, NOT destroyed here: its teardown can deregister
  /// telemetry collectors (Registry::mu_, rank 450 — below this lock), and a
  /// concurrent scrape holding the registry lock may be calling our breaker
  /// collector, which needs mu_ — destroying under mu_ would deadlock.
  /// Callers declare `retired` before their MutexLock so it dies after
  /// mu_ is released.
  bool try_reconnect_locked(std::unique_ptr<Transport>& retired) REQUIRES(mu_);
  void on_failure_locked() REQUIRES(mu_);
  std::uint64_t jittered_locked(std::uint64_t ms, double fraction) REQUIRES(mu_);

  // 500: held across the inner transport's round trip (that serialization
  // makes breaker accounting exact) and across reconnect backoff — the
  // documented LD004 exception (docs/LOCK_ORDER.md).
  mutable Mutex mu_{LockRank::kTransport};
  std::unique_ptr<Transport> inner_ GUARDED_BY(mu_);
  bool inner_healthy_ GUARDED_BY(mu_) = true;
  ReconnectFn reconnect_;
  RekeyCallback rekey_ GUARDED_BY(mu_);
  ResilienceConfig config_;
  int consecutive_failures_ GUARDED_BY(mu_) = 0;
  BreakerState state_ GUARDED_BY(mu_) = BreakerState::kClosed;
  std::chrono::steady_clock::time_point opened_at_ GUARDED_BY(mu_){};
  std::uint64_t current_cooldown_ms_ GUARDED_BY(mu_) = 0;  ///< jittered, set per open
  std::uint64_t jitter_state_ GUARDED_BY(mu_);

  telemetry::Counter round_trips_;
  telemetry::Counter failures_;
  telemetry::Counter short_circuits_;
  telemetry::Counter reconnects_;
  telemetry::Counter reconnect_failures_;
  telemetry::Counter breaker_opens_;
  telemetry::Histogram rtt_ns_;
  // Declared after the cells it reads (destroyed, i.e. deregistered, first).
  telemetry::Registry::Handle telemetry_handle_;
};

}  // namespace speed::net
