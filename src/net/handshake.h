// Attested channel establishment: local attestation + X25519.
//
// This is the full version of the "secure channel" setup the paper assumes
// between DedupRuntime and ResultStore. Each endpoint generates an
// ephemeral X25519 key pair and sends a HandshakeMessage: a local
// attestation report *addressed to the peer* whose user_data carries the
// ephemeral public key. Verifying the report proves (a) the sender runs on
// the same platform, (b) its enclave measurement, and (c) that the public
// key was produced inside that enclave — so the derived session key is
// bound to both code identities and immune to host-in-the-middle attacks.
//
// derive_channel_key() in secure_channel.h remains available as a
// pre-provisioned-key mode (and as the simpler simulation documented in
// DESIGN.md); production paths use this handshake.
#pragma once

#include <optional>

#include "crypto/x25519.h"
#include "net/secure_channel.h"
#include "serialize/codec.h"
#include "sgx/enclave.h"

namespace speed::net {

/// Wire-protocol versions advertised inside the handshake. The version byte
/// rides in report.user_data[32] — inside the attested report, so its MAC
/// covers it and the untrusted host cannot strip it to force a downgrade.
/// Legacy endpoints zero-pad user_data past the public key, which decodes as
/// "no version byte" = v1; the negotiated version is the minimum of both
/// advertisements, so a v1 peer always gets the v1 single-frame protocol.
inline constexpr std::uint8_t kProtocolVersionLegacy = 1;
/// v2: batch framing (kBatchRequest/kBatchResponse, docs/PROTOCOL.md §9).
inline constexpr std::uint8_t kProtocolVersionBatch = 2;
inline constexpr std::uint8_t kProtocolVersionCurrent = kProtocolVersionBatch;

struct HandshakeMessage {
  sgx::Report report;             ///< addressed to the receiving enclave
  crypto::X25519Key public_key{}; ///< copy of report.user_data[0..32)
};

Bytes encode_handshake(const HandshakeMessage& msg);
HandshakeMessage decode_handshake(ByteView data);  ///< throws SerializationError

/// Protocol version a peer advertised in its hello. 0 in the version slot
/// (every pre-versioning endpoint) reads as kProtocolVersionLegacy.
inline std::uint8_t handshake_version(const HandshakeMessage& msg) {
  const std::uint8_t v = msg.report.user_data[32];
  return v == 0 ? kProtocolVersionLegacy : v;
}

/// Both sides run min(mine, theirs) over the authenticated advertisements
/// and land on the same answer without an extra round trip.
inline std::uint8_t negotiate_version(std::uint8_t mine, std::uint8_t theirs) {
  return mine < theirs ? mine : theirs;
}

class ChannelKeyExchange {
 public:
  /// Generates an ephemeral key pair from the enclave's trusted randomness.
  explicit ChannelKeyExchange(sgx::Enclave& self);

  /// Hello addressed to an enclave with measurement `peer` on this platform,
  /// advertising `version`. kProtocolVersionLegacy produces a hello
  /// bit-identical to pre-versioning builds (32-byte user_data); later
  /// versions append the version byte at user_data[32].
  HandshakeMessage hello(
      const sgx::Measurement& peer,
      std::uint8_t version = kProtocolVersionCurrent) const;

  /// Verify the peer's hello (which must be addressed to *this* enclave) and
  /// derive the 16-byte session key (kept in the secret domain). Returns
  /// nullopt on report forgery, user-data/public-key mismatch, or a
  /// low-order peer point. When `expected_peer` is set, the peer's
  /// measurement is pinned too.
  std::optional<secret::Buffer> derive(
      const HandshakeMessage& peer_msg,
      const std::optional<sgx::Measurement>& expected_peer = std::nullopt) const;

  const crypto::X25519Key& public_key() const { return pair_.public_key; }

 private:
  sgx::Enclave& self_;
  crypto::X25519KeyPair pair_;
};

}  // namespace speed::net
