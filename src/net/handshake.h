// Attested channel establishment: local attestation + X25519.
//
// This is the full version of the "secure channel" setup the paper assumes
// between DedupRuntime and ResultStore. Each endpoint generates an
// ephemeral X25519 key pair and sends a HandshakeMessage: a local
// attestation report *addressed to the peer* whose user_data carries the
// ephemeral public key. Verifying the report proves (a) the sender runs on
// the same platform, (b) its enclave measurement, and (c) that the public
// key was produced inside that enclave — so the derived session key is
// bound to both code identities and immune to host-in-the-middle attacks.
//
// derive_channel_key() in secure_channel.h remains available as a
// pre-provisioned-key mode (and as the simpler simulation documented in
// DESIGN.md); production paths use this handshake.
#pragma once

#include <optional>

#include "crypto/x25519.h"
#include "net/secure_channel.h"
#include "serialize/codec.h"
#include "sgx/enclave.h"

namespace speed::net {

struct HandshakeMessage {
  sgx::Report report;             ///< addressed to the receiving enclave
  crypto::X25519Key public_key{}; ///< copy of report.user_data[0..32)
};

Bytes encode_handshake(const HandshakeMessage& msg);
HandshakeMessage decode_handshake(ByteView data);  ///< throws SerializationError

class ChannelKeyExchange {
 public:
  /// Generates an ephemeral key pair from the enclave's trusted randomness.
  explicit ChannelKeyExchange(sgx::Enclave& self);

  /// Hello addressed to an enclave with measurement `peer` on this platform.
  HandshakeMessage hello(const sgx::Measurement& peer) const;

  /// Verify the peer's hello (which must be addressed to *this* enclave) and
  /// derive the 16-byte session key (kept in the secret domain). Returns
  /// nullopt on report forgery, user-data/public-key mismatch, or a
  /// low-order peer point. When `expected_peer` is set, the peer's
  /// measurement is pinned too.
  std::optional<secret::Buffer> derive(
      const HandshakeMessage& peer_msg,
      const std::optional<sgx::Measurement>& expected_peer = std::nullopt) const;

  const crypto::X25519Key& public_key() const { return pair_.public_key; }

 private:
  sgx::Enclave& self_;
  crypto::X25519KeyPair pair_;
};

}  // namespace speed::net
