// Client-side replicated ResultStore cluster (docs/PROTOCOL.md §8).
//
// ClusterTransport routes each GET/PUT across N store nodes by rendezvous-
// hashing the computation tag (serialize/rendezvous.h): element 0 of the
// preference order is the tag's primary owner, the next `replicas` elements
// its replicas. Unlike the single-node Transport it operates on decoded
// messages, not opaque frames — routing needs the tag, and the tag is
// inside the frame — so every node link owns its *own* attested
// SecureChannel (sequence numbers are per-connection) wrapped around its
// own ResilientTransport (reconnect + breaker, net/resilient.h).
//
// Failure semantics, chaos-tested (tests/chaos_cluster_test.cc):
//
//   * PUT is a sloppy-quorum walk: the preference order is walked until
//     min(replicas+1, N) nodes accepted the entry; node failures extend the
//     walk to the next candidate. The PUT is acknowledged (kStored /
//     kAlreadyPresent) ONLY at full quorum — anything less returns
//     kRejected, so an acked result provably survives any single node loss.
//   * GET walks the same order until an entry is found or a quorum of
//     *definitive* answers (found / not-found) accumulates; failures extend
//     the walk, which also finds sloppily-placed entries. Zero definitive
//     answers means the cluster is unreachable: StoreUnavailableError, the
//     runtime's degrade-to-compute signal.
//   * Read-repair: when a replica serves a hit after the tag's owner
//     definitively missed, the entry is pushed back to the owner as an
//     ordinary quota-charged PUT (the infra-only PUSH plane is not reachable
//     from application credentials).
//   * Health: per-node up/suspect/down states driven by the requests
//     themselves plus explicit heartbeat probes; a down node is skipped
//     without I/O until `probe_interval_ms` elapses, when one request is
//     admitted as the probe.
//   * Hedged GETs: when the primary is slower than `hedge_delay_ms`, the
//     walk continues to a replica while the primary leg finishes on a
//     helper thread; whichever leg finds the entry serves the call.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotated_lock.h"
#include "net/resilient.h"
#include "net/secure_channel.h"
#include "serialize/rendezvous.h"
#include "serialize/wire.h"
#include "sgx/enclave.h"
#include "telemetry/registry.h"

namespace speed::net {

/// One member endpoint. `dial` establishes a fresh connection: transport
/// plus the session key from the attested handshake with that node's store
/// enclave (e.g. a store::connect_tcp_app or connect_app closure). It is
/// invoked for the initial connection and for every reconnect, so a
/// restarted node is automatically re-attested.
struct ClusterNode {
  std::string name;
  ResilientTransport::ReconnectFn dial;
};

struct ClusterConfig {
  /// Additional copies beyond the primary; effective copy count per tag is
  /// min(replicas + 1, N).
  std::size_t replicas = 1;
  /// Hedge a GET to the next candidate when the primary has not answered
  /// within this budget. 0 disables hedging.
  std::uint64_t hedge_delay_ms = 0;
  /// A down node is skipped without I/O until this much time has passed
  /// since the last attempt; then one request is admitted as the probe.
  std::uint64_t probe_interval_ms = 50;
  /// Consecutive failures that take a node from suspect to down.
  int down_threshold = 2;
  /// Push a replica-served entry back to the owner that missed it.
  bool read_repair = true;
  /// Per-link reconnect/breaker settings.
  ResilienceConfig resilience;
};

class ClusterTransport {
 public:
  enum class NodeHealth : std::uint8_t { kUp = 0, kSuspect = 1, kDown = 2 };

  /// Dials every node eagerly; nodes that cannot be reached start out down
  /// and are re-dialed on demand. Throws if `nodes` is empty.
  ClusterTransport(sgx::Enclave& app_enclave, std::vector<ClusterNode> nodes,
                   ClusterConfig config = ClusterConfig{});

  ClusterTransport(const ClusterTransport&) = delete;
  ClusterTransport& operator=(const ClusterTransport&) = delete;

  /// Route one application request (GET or PUT) across the cluster. Must be
  /// called from inside the application enclave (it performs its own OCALLs
  /// per node leg, mirroring DedupRuntime::secure_round_trip). Throws
  /// StoreUnavailableError when no node can serve — the degrade-to-compute
  /// signal.
  serialize::Message round_trip_message(const serialize::Message& request);

  /// Heartbeat one node (by index); updates its health state. Returns the
  /// response when the node answered.
  std::optional<serialize::HeartbeatResponse> probe(std::size_t node);
  /// Heartbeat every node; returns how many answered.
  std::size_t probe_all();

  NodeHealth node_health(std::size_t node) const;
  std::size_t node_count() const { return links_.size(); }
  const std::vector<serialize::MemberInfo>& members() const {
    return members_;
  }
  const ClusterConfig& config() const { return config_; }

  /// Preference order for a tag (test/bench introspection).
  std::vector<std::size_t> preference_order(const serialize::Tag& tag) const {
    return serialize::rendezvous_order(members_, tag);
  }

  struct Stats {
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t failovers = 0;       ///< node legs that failed mid-walk
    std::uint64_t hedged_gets = 0;     ///< GETs that opened a hedge leg
    std::uint64_t read_repairs = 0;    ///< entries pushed back to an owner
    std::uint64_t partial_puts = 0;    ///< PUTs below quorum (not acked)
    std::uint64_t unavailable = 0;     ///< walks with zero definitive answers
    std::uint64_t probes = 0;
  };
  Stats stats() const;

 private:
  struct Link {
    std::string name;
    ResilientTransport::ReconnectFn dial;

    /// Serializes channel + transport use for this node (sequence numbers
    /// must match delivery order, exactly like DedupRuntime's channel_mu_).
    /// Rank 400: held across the leg's round trip AND across transport
    /// (re)construction, which registers/removes telemetry collectors — the
    /// reason kTelemetryRegistry ranks above it (docs/LOCK_ORDER.md).
    Mutex mu{LockRank::kClusterLink};
    std::unique_ptr<ResilientTransport> transport GUARDED_BY(mu);  ///< null until dialed
    std::optional<SecureChannel> channel GUARDED_BY(mu);
    bool poisoned GUARDED_BY(mu) = false;

    /// Fresh key staged by the transport's rekey callback (own lock: the
    /// callback fires while mu is held by the recovering thread).
    Mutex rekey_mu{LockRank::kRekeyStaging};
    std::optional<secret::Buffer> pending_rekey GUARDED_BY(rekey_mu);

    std::atomic<std::uint8_t> health{
        static_cast<std::uint8_t>(NodeHealth::kUp)};
    std::atomic<int> consecutive_failures{0};
    /// steady_clock ns of the last attempt (for down-node probe gating).
    std::atomic<std::int64_t> last_attempt_ns{0};
  };

  /// One request/response over `link`'s secure channel; throws on any
  /// failure after updating health. Established lazily.
  serialize::Message link_round_trip(Link& link,
                                     const serialize::Message& request);
  /// link_round_trip plus one inline retry: the first failure may only mean
  /// the connection was stale (node restarted under a new incarnation), and
  /// the retry goes through recover() — re-dial, re-attest, fresh key — so
  /// a walk right after a node restart succeeds instead of failing over.
  serialize::Message link_round_trip_retry(Link& link,
                                           const serialize::Message& request);
  /// Dial + build transport/channel; caller holds link.mu.
  void establish_locked(Link& link) REQUIRES(link.mu);
  void install_rekey_locked(Link& link) REQUIRES(link.mu);
  void note_success(Link& link);
  void note_failure(Link& link);
  /// True when the walk should skip this node without attempting I/O.
  bool skip_down(Link& link) const;

  serialize::Message cluster_get(const serialize::GetRequest& req);
  serialize::Message cluster_put(const serialize::PutRequest& req);
  /// Batched routing: ops are grouped by rendezvous primary and forwarded as
  /// one BatchRequest per node. A batched sub-answer is authoritative when a
  /// single leg settles it (found GETs always; everything when the quorum is
  /// 1); anything else — quorum PUTs, definitive misses with replicas, node
  /// failures, per-op errors — falls back to the op's normal quorum walk, so
  /// batching never weakens the chaos-tested ack/read-repair guarantees. An
  /// op whose walk also fails yields ErrorResponse{kUnavailable}; the call
  /// itself always returns a full BatchResponse.
  serialize::Message cluster_batch(const serialize::BatchRequest& req);
  void read_repair(std::size_t owner, const serialize::GetRequest& req,
                   const serialize::GetResponse& found);

  sgx::Enclave& enclave_;
  ClusterConfig config_;
  std::vector<serialize::MemberInfo> members_;
  std::vector<std::unique_ptr<Link>> links_;

  telemetry::Counter gets_;
  telemetry::Counter puts_;
  telemetry::Counter failovers_;
  telemetry::Counter hedged_gets_;
  telemetry::Counter read_repairs_;
  telemetry::Counter partial_puts_;
  telemetry::Counter unavailable_;
  telemetry::Counter probes_;
  telemetry::Histogram walk_ns_;
  // Declared after the cells it reads (deregistered first).
  telemetry::Registry::Handle telemetry_handle_;
};

}  // namespace speed::net
