#include "net/cluster.h"

#include <algorithm>
#include <future>
#include <unordered_map>

#include "common/clock.h"

namespace speed::net {

using serialize::GetRequest;
using serialize::GetResponse;
using serialize::HeartbeatRequest;
using serialize::HeartbeatResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ClusterTransport::ClusterTransport(sgx::Enclave& app_enclave,
                                   std::vector<ClusterNode> nodes,
                                   ClusterConfig config)
    : enclave_(app_enclave), config_(config) {
  if (nodes.empty()) {
    throw StoreUnavailableError("ClusterTransport: no member nodes");
  }
  members_.reserve(nodes.size());
  links_.reserve(nodes.size());
  for (ClusterNode& node : nodes) {
    members_.push_back(
        {node.name, serialize::MemberStatus::kUp});
    auto link = std::make_unique<Link>();
    link->name = std::move(node.name);
    link->dial = std::move(node.dial);
    links_.push_back(std::move(link));
  }
  // Eager dial: a node that cannot be reached now starts out down and is
  // re-dialed by the first walk that probes it.
  for (const auto& link : links_) {
    MutexLock lock(link->mu);
    try {
      establish_locked(*link);
    } catch (const Error&) {
      note_failure(*link);
      link->health.store(static_cast<std::uint8_t>(NodeHealth::kDown),
                         std::memory_order_relaxed);
    }
  }
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        constexpr auto kNode = telemetry::LabelKey::of("node");
        for (std::size_t i = 0; i < links_.size(); ++i) {
          const telemetry::LabelSet labels{
              {kNode, telemetry::LabelValue::index(i)}};
          sink.gauge("speed_cluster_node_up",
                     "1 while the node serves requests (0 = suspect/down)",
                     labels,
                     node_health(i) == NodeHealth::kUp ? 1 : 0);
        }
        sink.counter("speed_cluster_gets_total",
                     "GET walks routed across the cluster", {}, gets_.value());
        sink.counter("speed_cluster_puts_total",
                     "PUT walks routed across the cluster", {}, puts_.value());
        sink.counter("speed_cluster_failovers_total",
                     "Node legs that failed and extended a walk", {},
                     failovers_.value());
        sink.counter("speed_cluster_hedged_gets_total",
                     "GETs that opened a hedge leg to a replica", {},
                     hedged_gets_.value());
        sink.counter("speed_cluster_read_repairs_total",
                     "Entries pushed back to an owner that missed", {},
                     read_repairs_.value());
        sink.counter("speed_cluster_partial_puts_total",
                     "PUT walks that ended below quorum (not acked)", {},
                     partial_puts_.value());
        sink.counter("speed_cluster_unavailable_total",
                     "Walks with zero definitive answers", {},
                     unavailable_.value());
        sink.counter("speed_cluster_probes_total",
                     "Heartbeat probes issued", {}, probes_.value());
        sink.histogram("speed_cluster_walk_ns",
                       "Whole-walk latency of routed requests", {}, walk_ns_);
      });
}

ClusterTransport::NodeHealth ClusterTransport::node_health(
    std::size_t node) const {
  return static_cast<NodeHealth>(
      links_[node]->health.load(std::memory_order_relaxed));
}

ClusterTransport::Stats ClusterTransport::stats() const {
  Stats s;
  s.gets = gets_.value();
  s.puts = puts_.value();
  s.failovers = failovers_.value();
  s.hedged_gets = hedged_gets_.value();
  s.read_repairs = read_repairs_.value();
  s.partial_puts = partial_puts_.value();
  s.unavailable = unavailable_.value();
  s.probes = probes_.value();
  return s;
}

Message ClusterTransport::round_trip_message(const Message& request) {
  const Stopwatch sw;
  struct Record {
    telemetry::Histogram& hist;
    const Stopwatch& sw;
    ~Record() { hist.record(sw.elapsed_ns()); }
  } record{walk_ns_, sw};
  if (const auto* get_req = std::get_if<GetRequest>(&request)) {
    return cluster_get(*get_req);
  }
  if (const auto* put_req = std::get_if<PutRequest>(&request)) {
    return cluster_put(*put_req);
  }
  if (const auto* batch_req = std::get_if<serialize::BatchRequest>(&request)) {
    return cluster_batch(*batch_req);
  }
  throw ProtocolError("ClusterTransport: only GET and PUT are routable");
}

Message ClusterTransport::cluster_batch(const serialize::BatchRequest& req) {
  serialize::BatchResponse resp;
  resp.replies.resize(req.ops.size());
  const std::size_t quorum = std::min(config_.replicas + 1, members_.size());

  // Group ops by their rendezvous primary: one forwarded BatchRequest per
  // node keeps the transition-amortization win while every op still lands
  // on its tag's owner first.
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_primary;
  for (std::size_t i = 0; i < req.ops.size(); ++i) {
    const serialize::Tag& tag = std::visit(
        [](const auto& op) -> const serialize::Tag& { return op.tag; },
        req.ops[i]);
    const auto order = serialize::rendezvous_order(members_, tag);
    by_primary[order.front()].push_back(i);
  }

  for (auto& [node, indices] : by_primary) {
    Link& link = *links_[node];
    std::optional<serialize::BatchResponse> node_resp;
    if (!skip_down(link)) {
      serialize::BatchRequest forward;
      forward.ops.reserve(indices.size());
      for (const std::size_t i : indices) forward.ops.push_back(req.ops[i]);
      try {
        Message answer = link_round_trip_retry(link, Message(forward));
        if (auto* batch_resp = std::get_if<serialize::BatchResponse>(&answer);
            batch_resp != nullptr &&
            batch_resp->replies.size() == indices.size()) {
          node_resp = std::move(*batch_resp);
        }
      } catch (const Error&) {
        failovers_.inc();  // the per-op walks below pick up the slack
      }
    }
    for (std::size_t j = 0; j < indices.size(); ++j) {
      const std::size_t i = indices[j];
      bool settled = false;
      if (node_resp.has_value()) {
        const serialize::BatchReply& reply = node_resp->replies[j];
        if (const auto* get_resp = std::get_if<GetResponse>(&reply)) {
          // A hit from the owner is always authoritative; a definitive miss
          // only is when there are no replicas left to consult.
          if (get_resp->found || quorum == 1) {
            gets_.inc();
            resp.replies[i] = *get_resp;
            settled = true;
          }
        } else if (const auto* put_resp = std::get_if<PutResponse>(&reply)) {
          // With replicas, an ack requires the full sloppy-quorum walk.
          if (quorum == 1) {
            puts_.inc();
            resp.replies[i] = *put_resp;
            settled = true;
          }
        }
        // ErrorResponse (or an unexpected kind): fall through to the walk.
      }
      if (settled) continue;
      try {
        Message walked;
        if (const auto* get_req = std::get_if<GetRequest>(&req.ops[i])) {
          walked = cluster_get(*get_req);
        } else {
          walked = cluster_put(std::get<PutRequest>(req.ops[i]));
        }
        if (auto* get_resp = std::get_if<GetResponse>(&walked)) {
          resp.replies[i] = std::move(*get_resp);
        } else if (const auto* put_resp = std::get_if<PutResponse>(&walked)) {
          resp.replies[i] = *put_resp;
        } else {
          resp.replies[i] = serialize::ErrorResponse{
              serialize::ErrorCode::kBadRequest, "unexpected reply type"};
        }
      } catch (const Error& e) {
        // Only this op degrades; its neighbors keep their answers.
        resp.replies[i] =
            serialize::ErrorResponse{serialize::ErrorCode::kUnavailable,
                                     e.what()};
      }
    }
  }
  return Message(std::move(resp));
}

// ------------------------------------------------------------------- walks

Message ClusterTransport::cluster_get(const GetRequest& req) {
  gets_.inc();
  const auto order = serialize::rendezvous_order(members_, req.tag);
  const std::size_t quorum = std::min(config_.replicas + 1, order.size());
  const Message request(req);

  std::size_t definitive = 0;
  std::optional<GetResponse> found;
  std::optional<std::size_t> first_missing;  ///< earliest definitive miss
  std::vector<std::size_t> skipped;          ///< down nodes bypassed w/o I/O
  // Hedge leg: the primary finishing on a helper thread while the walk
  // continues. Joined before every return (it references `request`).
  std::optional<std::future<Message>> hedge;
  std::size_t hedge_node = 0;
  bool first_attempt = true;

  // Interpret one node's answer; returns true when the walk can stop.
  const auto process = [&](std::size_t idx, const Message& m) {
    const auto* gr = std::get_if<GetResponse>(&m);
    if (gr == nullptr) {
      failovers_.inc();
      return false;
    }
    if (gr->found) {
      found = *gr;
      return true;
    }
    ++definitive;
    if (!first_missing.has_value()) first_missing = idx;
    return definitive >= quorum;
  };

  for (const std::size_t idx : order) {
    Link& link = *links_[idx];
    if (skip_down(link)) {
      skipped.push_back(idx);
      continue;
    }
    const bool can_hedge = first_attempt && config_.hedge_delay_ms > 0 &&
                           idx != order.back() && !hedge.has_value();
    first_attempt = false;
    if (can_hedge) {
      auto leg = std::async(std::launch::async, [this, &link, &request] {
        return link_round_trip(link, request);
      });
      if (leg.wait_for(std::chrono::milliseconds(config_.hedge_delay_ms)) ==
          std::future_status::ready) {
        try {
          if (process(idx, leg.get())) break;
        } catch (const Error&) {
          failovers_.inc();
        }
        continue;
      }
      // Primary is slow: keep its leg running, walk on to a replica.
      hedged_gets_.inc();
      hedge = std::move(leg);
      hedge_node = idx;
      continue;
    }
    try {
      if (process(idx, link_round_trip_retry(link, request))) break;
    } catch (const Error&) {
      failovers_.inc();
    }
  }

  if (hedge.has_value()) {
    // Join the slow primary; its answer still counts (it may even be the
    // only copy if every replica failed).
    try {
      const Message m = hedge->get();
      if (!found.has_value()) process(hedge_node, m);
    } catch (const Error&) {
      failovers_.inc();
    }
    hedge.reset();
  }

  // Last-chance pass: a node the walk skipped as down (its probe window has
  // not expired) may hold the only live copy — e.g. it just restarted and
  // rejoined while a different node died. Never report a miss or
  // unavailability the skipped nodes could contradict; the extra I/O only
  // happens on walks that would otherwise come back negative.
  if (!found.has_value()) {
    for (const std::size_t idx : skipped) {
      try {
        if (process(idx, link_round_trip_retry(*links_[idx], request))) break;
      } catch (const Error&) {
        failovers_.inc();
      }
    }
  }

  if (found.has_value()) {
    if (config_.read_repair && first_missing.has_value()) {
      read_repair(*first_missing, req, *found);
    }
    return *found;
  }
  if (definitive > 0) return GetResponse{};  // a real miss: degrade to compute
  unavailable_.inc();
  throw StoreUnavailableError("ClusterTransport: no node answered GET");
}

Message ClusterTransport::cluster_put(const PutRequest& req) {
  puts_.inc();
  const auto order = serialize::rendezvous_order(members_, req.tag);
  const std::size_t target = std::min(config_.replicas + 1, order.size());
  const Message request(req);

  std::size_t successes = 0;
  std::size_t definitive = 0;
  bool any_stored = false;
  bool any_quota = false;
  std::vector<std::size_t> skipped;
  const auto attempt = [&](std::size_t idx) {
    try {
      const Message m = link_round_trip_retry(*links_[idx], request);
      const auto* pr = std::get_if<PutResponse>(&m);
      if (pr == nullptr) {
        failovers_.inc();
        return;
      }
      ++definitive;
      switch (pr->status) {
        case PutStatus::kStored:
          ++successes;
          any_stored = true;
          break;
        case PutStatus::kAlreadyPresent:
          ++successes;
          break;
        case PutStatus::kQuotaExceeded:
          any_quota = true;
          break;
        case PutStatus::kRejected:
          break;  // degraded node: definitive, but not a copy
      }
    } catch (const Error&) {
      failovers_.inc();
    }
  };
  // Sloppy quorum: walk past failed owners so the entry still lands on
  // `target` live nodes; the rendezvous walk on GET finds it there.
  for (const std::size_t idx : order) {
    if (successes >= target) break;
    if (skip_down(*links_[idx])) {
      skipped.push_back(idx);
      continue;
    }
    attempt(idx);
  }
  // Same last-chance pass as cluster_get: a skipped node may be back up and
  // able to lift this PUT to full quorum — try before refusing to ack.
  for (const std::size_t idx : skipped) {
    if (successes >= target) break;
    attempt(idx);
  }

  if (successes >= target) {
    // Full quorum: the ack provably survives any single node loss.
    return PutResponse{any_stored ? PutStatus::kStored
                                  : PutStatus::kAlreadyPresent};
  }
  if (definitive == 0) {
    unavailable_.inc();
    throw StoreUnavailableError("ClusterTransport: no node answered PUT");
  }
  // Below quorum: never acknowledge — the caller treats this like any
  // rejected PUT (the result was computed anyway; only future dedup is lost).
  partial_puts_.inc();
  return PutResponse{any_quota ? PutStatus::kQuotaExceeded
                               : PutStatus::kRejected};
}

void ClusterTransport::read_repair(std::size_t owner, const GetRequest& req,
                                   const GetResponse& found) {
  // Best-effort, quota-charged PUT back to the owner that missed: repairs
  // go through the application plane, so a client cannot use them to store
  // bytes its quota never sees.
  try {
    PutRequest put;
    put.tag = req.tag;
    put.requester = req.requester;
    put.entry = found.entry;
    const Message m = link_round_trip(*links_[owner], Message(put));
    if (const auto* pr = std::get_if<PutResponse>(&m);
        pr != nullptr && pr->status == PutStatus::kStored) {
      read_repairs_.inc();
    }
  } catch (const Error&) {
    // The owner is still unhealthy; anti-entropy will converge it later.
  }
}

// ------------------------------------------------------------------ probes

std::optional<HeartbeatResponse> ClusterTransport::probe(std::size_t node) {
  probes_.inc();
  static std::atomic<std::uint64_t> nonce_source{1};
  const std::uint64_t nonce =
      nonce_source.fetch_add(1, std::memory_order_relaxed);
  try {
    const Message m =
        link_round_trip(*links_[node], Message(HeartbeatRequest{nonce}));
    const auto* hr = std::get_if<HeartbeatResponse>(&m);
    if (hr == nullptr || hr->nonce != nonce) return std::nullopt;
    return *hr;
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::size_t ClusterTransport::probe_all() {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (probe(i).has_value()) ++alive;
  }
  return alive;
}

// ------------------------------------------------------------- link plumbing

void ClusterTransport::establish_locked(Link& link) {
  ResilientTransport::Connection conn =
      enclave_.ocall([&] { return link.dial(); });
  if (conn.transport == nullptr) {
    throw StoreUnavailableError("ClusterTransport: dial failed for node " +
                                link.name);
  }
  auto transport = std::make_unique<ResilientTransport>(
      std::move(conn.transport), link.dial, config_.resilience);
  Link* link_ptr = &link;
  transport->set_rekey_callback([link_ptr](secret::Buffer key) {
    MutexLock lock(link_ptr->rekey_mu);
    link_ptr->pending_rekey = std::move(key);
  });
  link.transport = std::move(transport);
  link.channel.emplace(std::move(conn.session_key), /*is_initiator=*/true);
  link.poisoned = false;
}

void ClusterTransport::install_rekey_locked(Link& link) {
  MutexLock lock(link.rekey_mu);
  if (!link.pending_rekey.has_value()) return;
  link.channel.emplace(std::move(*link.pending_rekey), /*is_initiator=*/true);
  link.pending_rekey.reset();
  link.poisoned = false;
}

// link.mu is the per-node strand: the attested channel's sequence numbers
// require strictly ordered frames, so the lock spans the whole leg.
// lockdiscipline-allow: LD004 per-link strand orders channel sequence numbers
Message ClusterTransport::link_round_trip(Link& link, const Message& request) {
  MutexLock lock(link.mu);
  link.last_attempt_ns.store(steady_now_ns(), std::memory_order_relaxed);
  try {
    if (link.transport == nullptr) establish_locked(link);
    install_rekey_locked(link);
    if (link.poisoned) {
      // The old key must never wrap another frame (same invariant as
      // DedupRuntime::secure_round_trip): recover re-dials + re-attests.
      enclave_.ocall([&] { return link.transport->recover(); });
      install_rekey_locked(link);
      if (link.poisoned) {
        throw StoreUnavailableError("ClusterTransport: node " + link.name +
                                    " poisoned and cannot rekey");
      }
    }
    const Bytes frame = link.channel->wrap(serialize::encode_message(request));
    Bytes response_frame;
    try {
      response_frame =
          enclave_.ocall([&] { return link.transport->round_trip(frame); });
    } catch (...) {
      // Request possibly consumed, response never seen: sequence numbers on
      // this link are out of sync for good.
      link.poisoned = true;
      throw;
    }
    const auto plain = link.channel->unwrap(response_frame);
    if (!plain.has_value()) {
      link.poisoned = true;
      throw ProtocolError("ClusterTransport: node " + link.name +
                          " response failed channel check");
    }
    Message out = serialize::decode_message(*plain);
    note_success(link);
    return out;
  } catch (...) {
    note_failure(link);
    throw;
  }
}

Message ClusterTransport::link_round_trip_retry(Link& link,
                                                const Message& request) {
  try {
    return link_round_trip(link, request);
  } catch (const Error&) {
    // The failure poisoned the link; the retry re-enters link_round_trip,
    // which sees the poison, recovers (re-dial + re-attest + rekey), and
    // wraps the frame under the fresh channel key. A genuinely dead node
    // fails again quickly (bounded reconnect attempts or an open breaker).
    return link_round_trip(link, request);
  }
}

void ClusterTransport::note_success(Link& link) {
  link.consecutive_failures.store(0, std::memory_order_relaxed);
  link.health.store(static_cast<std::uint8_t>(NodeHealth::kUp),
                    std::memory_order_relaxed);
}

void ClusterTransport::note_failure(Link& link) {
  const int failures =
      link.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  link.health.store(static_cast<std::uint8_t>(failures >= config_.down_threshold
                                                  ? NodeHealth::kDown
                                                  : NodeHealth::kSuspect),
                    std::memory_order_relaxed);
}

bool ClusterTransport::skip_down(Link& link) const {
  if (static_cast<NodeHealth>(link.health.load(std::memory_order_relaxed)) !=
      NodeHealth::kDown) {
    return false;
  }
  // One request per probe interval is admitted as the probe; inside the
  // window the walk skips the node without I/O.
  const std::int64_t since =
      steady_now_ns() - link.last_attempt_ns.load(std::memory_order_relaxed);
  return since <
         static_cast<std::int64_t>(config_.probe_interval_ms) * 1'000'000;
}

}  // namespace speed::net
