// Authenticated, replay-protected channel between two enclaves.
//
// The paper sends tags and entries "via a secure channel" between the
// application's DedupRuntime and the ResultStore enclave. On real SGX this
// channel comes from local attestation plus a key exchange bound to the
// reports. The simulator reaches the same end state — a shared secret bound
// to both enclaves' measurements and rooted in the platform — by deriving
// the session key from the platform hardware key over the sorted pair of
// measurements (see DESIGN.md substitutions; the DH mechanics are elided,
// the resulting key distribution is the one the protocol needs).
//
// Frames are AES-GCM-128 with deterministic per-direction nonces and strictly
// increasing sequence numbers, so tampering, reordering, and replay are all
// rejected. Each endpoint owns one SecureChannel per peer and direction pair.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/secret.h"
#include "sgx/enclave.h"

namespace speed::net {

/// Derive the session key shared by `self` and an enclave with measurement
/// `peer` on the same platform (order-independent). Session keys are key
/// material, so they are born secret.
secret::Buffer derive_channel_key(sgx::Enclave& self,
                                  const sgx::Measurement& peer);

class SecureChannel {
 public:
  /// `is_initiator` picks which of the two directional nonce spaces this
  /// endpoint sends on; the two endpoints must disagree on it.
  SecureChannel(secret::Buffer session_key, bool is_initiator);
  /// Convenience for callers holding a plain key (tests, fixed vectors):
  /// absorbs it into the secret domain, emptying the source.
  SecureChannel(Bytes session_key, bool is_initiator);

  /// Seal a message for the peer. Frames carry an explicit sequence number.
  Bytes wrap(ByteView plaintext);

  /// Verify + decrypt a frame from the peer. Returns nullopt on tampering,
  /// replay, or out-of-order delivery.
  std::optional<Bytes> unwrap(ByteView frame);

  std::uint64_t sent() const { return send_seq_; }
  std::uint64_t received() const { return recv_seq_; }

 private:
  secret::Buffer key_;
  bool is_initiator_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace speed::net
