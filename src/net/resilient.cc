#include "net/resilient.h"

#include <thread>

#include "common/clock.h"

namespace speed::net {

ResilientTransport::ResilientTransport(std::unique_ptr<Transport> initial,
                                       ReconnectFn reconnect,
                                       ResilienceConfig config)
    : inner_(std::move(initial)),
      reconnect_(std::move(reconnect)),
      config_(config),
      jitter_state_(config.jitter_seed | 1u) {
  if (inner_ == nullptr) {
    throw StoreUnavailableError("ResilientTransport: initial transport is null");
  }
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        sink.counter("speed_transport_round_trips_total",
                     "Successful store round trips", {}, round_trips_.value());
        sink.counter("speed_transport_failures_total",
                     "Failed round trips and recoveries", {},
                     failures_.value());
        sink.counter("speed_transport_short_circuits_total",
                     "Calls rejected immediately by an open breaker", {},
                     short_circuits_.value());
        sink.counter("speed_transport_reconnects_total",
                     "Successful reconnect + re-handshake cycles", {},
                     reconnects_.value());
        sink.counter("speed_transport_reconnect_failures_total",
                     "Individual failed reconnect attempts", {},
                     reconnect_failures_.value());
        sink.counter("speed_transport_breaker_opens_total",
                     "Closed/half-open to open breaker transitions", {},
                     breaker_opens_.value());
        sink.gauge("speed_transport_breaker_open",
                   "Transports whose circuit breaker is currently open", {},
                   breaker_state() == BreakerState::kOpen ? 1 : 0);
        sink.histogram("speed_transport_round_trip_ns",
                       "Latency of successful store round trips", {}, rtt_ns_);
      });
}

void ResilientTransport::set_rekey_callback(RekeyCallback cb) {
  MutexLock lock(mu_);
  rekey_ = std::move(cb);
}

ResilientTransport::BreakerState ResilientTransport::breaker_state() const {
  MutexLock lock(mu_);
  return state_;
}

ResilientTransport::Stats ResilientTransport::stats() const {
  Stats s;
  s.round_trips = round_trips_.value();
  s.failures = failures_.value();
  s.short_circuits = short_circuits_.value();
  s.reconnects = reconnects_.value();
  s.reconnect_failures = reconnect_failures_.value();
  s.breaker_opens = breaker_opens_.value();
  return s;
}

// mu_ is deliberately held across the inner round trip and the reconnect
// cycle: breaker state transitions must be atomic with the attempt outcome.
// lockdiscipline-allow: LD004 breaker state must be atomic with the attempt
Bytes ResilientTransport::round_trip(ByteView request) {
  // Declared before the lock: a transport displaced by reconnection is
  // destroyed only after mu_ is released (see try_reconnect_locked).
  std::unique_ptr<Transport> retired;
  MutexLock lock(mu_);
  if (!admit_locked()) {
    short_circuits_.inc();
    throw StoreUnavailableError("ResilientTransport: circuit breaker open");
  }
  if (!inner_healthy_) {
    // The frame was wrapped for a connection that has since died; a fresh
    // connection carries a fresh key, so this frame can never be delivered.
    // Still spend this admission on a reconnect: a half-open probe that
    // insta-failed here would re-open the breaker without ever dialing, and
    // steady round_trip traffic would then burn every probe window and hold
    // the breaker open forever — even after the store came back. Recovering
    // now closes the breaker and stages the fresh key for the NEXT frame;
    // this one still fails (it is bound to the stale channel).
    if (!try_reconnect_locked(retired)) on_failure_locked();
    throw StoreUnavailableError(
        "ResilientTransport: connection dead, frame bound to stale channel");
  }
  try {
    Stopwatch sw;
    Bytes response = inner_->round_trip(request);
    rtt_ns_.record(sw.elapsed_ns());
    round_trips_.inc();
    consecutive_failures_ = 0;
    state_ = BreakerState::kClosed;
    return response;
  } catch (const Error& e) {
    inner_healthy_ = false;
    on_failure_locked();
    throw StoreUnavailableError(std::string("ResilientTransport: ") + e.what());
  }
}

bool ResilientTransport::recover() {
  std::unique_ptr<Transport> retired;  // destroyed after mu_ is released
  MutexLock lock(mu_);
  if (!admit_locked()) {
    short_circuits_.inc();
    return false;
  }
  // The caller's channel is unusable even if the socket still looks alive
  // (e.g. the store answered garbage): only a re-handshake restores service.
  inner_healthy_ = false;
  if (try_reconnect_locked(retired)) return true;
  on_failure_locked();
  return false;
}

bool ResilientTransport::admit_locked() {
  if (state_ != BreakerState::kOpen) return true;
  const auto cooldown = std::chrono::milliseconds(current_cooldown_ms_);
  if (std::chrono::steady_clock::now() - opened_at_ < cooldown) return false;
  state_ = BreakerState::kHalfOpen;
  return true;
}

// Backoff sleeps and the dial both run under mu_: reconnection is part of
// the guarded breaker state machine, and concurrent callers must observe
// either the dead transport or the fully swapped-in fresh one.
// lockdiscipline-allow: LD004 reconnect is part of the breaker state machine
bool ResilientTransport::try_reconnect_locked(
    std::unique_ptr<Transport>& retired) {
  if (!reconnect_) return false;
  std::uint64_t delay_ms = config_.backoff_initial_ms;
  for (int attempt = 0; attempt < config_.reconnect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          jittered_locked(delay_ms, config_.backoff_jitter)));
      delay_ms = std::min(delay_ms * 2, config_.backoff_max_ms);
    }
    try {
      Connection fresh = reconnect_();
      if (fresh.transport == nullptr) {
        reconnect_failures_.inc();
        continue;
      }
      retired = std::move(inner_);  // destroyed by the caller, outside mu_
      inner_ = std::move(fresh.transport);
      inner_healthy_ = true;
      consecutive_failures_ = 0;
      state_ = BreakerState::kClosed;
      reconnects_.inc();
      if (rekey_ && !fresh.session_key.empty()) {
        rekey_(std::move(fresh.session_key));
      }
      return true;
    } catch (const Error&) {
      reconnect_failures_.inc();
    }
  }
  return false;
}

void ResilientTransport::on_failure_locked() {
  failures_.inc();
  ++consecutive_failures_;
  const bool trip = state_ == BreakerState::kHalfOpen ||
                    consecutive_failures_ >= config_.breaker_threshold;
  if (trip) {
    if (state_ != BreakerState::kOpen) breaker_opens_.inc();
    state_ = BreakerState::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
    // Draw a fresh jittered cooldown per open: clients that tripped on the
    // same store failure half-open at different times instead of
    // thundering-herd probing the recovering node in lockstep.
    current_cooldown_ms_ = jittered_locked(config_.breaker_cooldown_ms,
                                           config_.breaker_cooldown_jitter);
  }
}

std::uint64_t ResilientTransport::current_cooldown_ms() const {
  MutexLock lock(mu_);
  return current_cooldown_ms_;
}

std::uint64_t ResilientTransport::jittered_locked(std::uint64_t ms,
                                                  double fraction) {
  // xorshift64: deterministic jitter, reproducible across runs.
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  if (ms == 0 || fraction <= 0.0) return ms;
  const auto span =
      static_cast<std::uint64_t>(static_cast<double>(ms) * fraction);
  if (span == 0) return ms;
  // ms +/- span, never below zero.
  const std::uint64_t offset = jitter_state_ % (2 * span + 1);
  return ms - span + offset;
}

}  // namespace speed::net
