#include "net/handshake.h"

#include <cstring>

#include "crypto/drbg.h"
#include "crypto/hmac.h"

namespace speed::net {

Bytes encode_handshake(const HandshakeMessage& msg) {
  serialize::Encoder enc;
  enc.raw(ByteView(msg.report.source_measurement.data(), 32));
  enc.raw(ByteView(msg.report.user_data.data(), 64));
  enc.raw(ByteView(msg.report.mac.data(), 32));
  enc.raw(ByteView(msg.public_key.data(), 32));
  return enc.take();
}

HandshakeMessage decode_handshake(ByteView data) {
  serialize::Decoder dec(data);
  HandshakeMessage msg;
  auto copy = [&dec](auto& field, std::size_t n) {
    const ByteView b = dec.raw(n);
    std::copy(b.begin(), b.end(), field.begin());
  };
  copy(msg.report.source_measurement, 32);
  copy(msg.report.user_data, 64);
  copy(msg.report.mac, 32);
  copy(msg.public_key, 32);
  dec.expect_done();
  return msg;
}

ChannelKeyExchange::ChannelKeyExchange(sgx::Enclave& self) : self_(self) {
  crypto::Drbg seeded(self.random_bytes(32));
  pair_ = crypto::x25519_generate(seeded);
}

HandshakeMessage ChannelKeyExchange::hello(const sgx::Measurement& peer,
                                           std::uint8_t version) const {
  HandshakeMessage msg;
  msg.public_key = pair_.public_key;
  // The report's user_data carries the ephemeral public key, binding it to
  // this enclave's measurement for the addressee. v2+ hellos append the
  // protocol-version byte so it is covered by the report MAC (downgrade
  // resistance); a legacy hello stays bit-identical to pre-versioning builds.
  Bytes user_data(pair_.public_key.begin(), pair_.public_key.end());
  if (version > kProtocolVersionLegacy) user_data.push_back(version);
  msg.report = self_.create_report(peer, user_data);
  return msg;
}

std::optional<secret::Buffer> ChannelKeyExchange::derive(
    const HandshakeMessage& peer_msg,
    const std::optional<sgx::Measurement>& expected_peer) const {
  if (!self_.verify_report(peer_msg.report)) return std::nullopt;
  if (expected_peer.has_value() &&
      peer_msg.report.source_measurement != *expected_peer) {
    return std::nullopt;
  }
  // The advertised public key must be the one the report attested.
  if (!ct_equal(ByteView(peer_msg.public_key.data(), 32),
                ByteView(peer_msg.report.user_data.data(), 32))) {
    return std::nullopt;
  }

  // The shared secret lives in the secret domain and wipes itself on every
  // exit path (including the low-order-point early return below).
  secret::Bytes<crypto::kX25519KeySize> shared;
  if (!crypto::x25519_shared(pair_.private_key, peer_msg.public_key, shared)) {
    return std::nullopt;  // low-order point
  }

  // Session key bound to the shared secret and the (order-independent)
  // public-key pair.
  ByteView first(pair_.public_key.data(), 32);
  ByteView second(peer_msg.public_key.data(), 32);
  if (std::lexicographical_compare(second.begin(), second.end(), first.begin(),
                                   first.end())) {
    std::swap(first, second);
  }
  return crypto::derive_key(
      shared.reveal_for(secret::Purpose::of("channel_kdf_input")),
      "speed-channel-v1", concat(first, second), 16);
}

}  // namespace speed::net
