// Transport between DedupRuntime and ResultStore.
//
// The paper deploys the store on the same machine as the applications and
// speaks a synchronous request/response protocol through OCALLs (§IV-B).
// Transport is that abstraction: round_trip() sends one framed request and
// blocks for the response. LoopbackTransport is the in-process deployment
// (with optional injected latency to model a socket hop); it serializes
// concurrent callers like a single connection would.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "common/bytes.h"
#include "common/clock.h"

namespace speed::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Send `request`, block until the peer's response arrives.
  virtual Bytes round_trip(ByteView request) = 0;
};

/// In-process transport delivering requests to a handler function.
class LoopbackTransport : public Transport {
 public:
  using Handler = std::function<Bytes(ByteView)>;

  explicit LoopbackTransport(Handler handler, std::uint64_t one_way_ns = 0)
      : handler_(std::move(handler)), one_way_ns_(one_way_ns) {}

  Bytes round_trip(ByteView request) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (one_way_ns_ > 0) busy_wait_ns(one_way_ns_);
    Bytes response = handler_(request);
    if (one_way_ns_ > 0) busy_wait_ns(one_way_ns_);
    return response;
  }

 private:
  Handler handler_;
  std::uint64_t one_way_ns_;
  std::mutex mu_;
};

}  // namespace speed::net
