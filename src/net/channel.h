// Transport between DedupRuntime and ResultStore.
//
// The paper deploys the store on the same machine as the applications and
// speaks a synchronous request/response protocol through OCALLs (§IV-B).
// Transport is that abstraction: round_trip() sends one framed request and
// blocks for the response. LoopbackTransport is the in-process deployment
// (with optional injected latency to model a socket hop); it serializes
// concurrent callers like a single connection would.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/annotated_lock.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/secret.h"

namespace speed::net {

/// The transport cannot currently reach the store: connection dead, circuit
/// breaker open, or reconnection failed. The DedupRuntime treats this as a
/// degrade-to-compute signal, never as an application error.
class StoreUnavailableError : public Error {
 public:
  explicit StoreUnavailableError(const std::string& what) : Error(what) {}
};

class Transport {
 public:
  /// Invoked with the fresh session key after a transport re-ran the
  /// attested handshake, so the client can rebuild its SecureChannel. The
  /// key stays in the secret domain end to end.
  using RekeyCallback = std::function<void(secret::Buffer session_key)>;

  virtual ~Transport() = default;

  /// Send `request`, block until the peer's response arrives.
  virtual Bytes round_trip(ByteView request) = 0;

  /// Called by a client whose secure channel over this transport has become
  /// unusable (failed round trip, MAC failure, stale sequence numbers).
  /// A recovering transport re-establishes the connection, re-runs the
  /// attested handshake, reports the new key through the rekey callback, and
  /// returns true. The default transport cannot recover.
  virtual bool recover() { return false; }

  /// Register the rekey callback (no-op for transports that never rekey).
  virtual void set_rekey_callback(RekeyCallback) {}
};

/// In-process transport delivering requests to a handler function.
class LoopbackTransport : public Transport {
 public:
  using Handler = std::function<Bytes(ByteView)>;

  explicit LoopbackTransport(Handler handler, std::uint64_t one_way_ns = 0)
      : handler_(std::move(handler)), one_way_ns_(one_way_ns) {}

  // The handler call runs under mu_ on purpose: one frame in flight at a
  // time, exactly like a single connection.
  // lockdiscipline-allow: LD004 the lock IS the wire serialization
  Bytes round_trip(ByteView request) override {
    round_trips_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(mu_);
    if (one_way_ns_ > 0) busy_wait_ns(one_way_ns_);
    Bytes response = handler_(request);
    if (one_way_ns_ > 0) busy_wait_ns(one_way_ns_);
    return response;
  }

  /// Frames that actually crossed this transport — the runtime's local
  /// result cache is asserted against this staying flat on repeated calls.
  std::uint64_t round_trips() const {
    return round_trips_.load(std::memory_order_relaxed);
  }

 private:
  Handler handler_ GUARDED_BY(mu_);
  std::uint64_t one_way_ns_;
  Mutex mu_{LockRank::kTransportLink};  // ranks with TcpTransport (510)
  std::atomic<std::uint64_t> round_trips_{0};
};

}  // namespace speed::net
