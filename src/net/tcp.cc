#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

namespace speed::net {

namespace {

constexpr std::size_t kMaxFrame = 256u * 1024 * 1024;

using OptDeadline = std::optional<FramedSocket::TimePoint>;

/// Poll `fd` for `events` until ready or `deadline` passes.
void wait_ready(int fd, short events, const OptDeadline& deadline,
                const char* op) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline.has_value()) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          *deadline - std::chrono::steady_clock::now());
      // An expired deadline still gets one zero-timeout poll: data that is
      // already buffered is delivered (this also makes a 0 ms timeout a
      // clean non-blocking check).
      timeout_ms = remaining.count() > 0 ? static_cast<int>(remaining.count()) : 0;
    }
    pollfd p{fd, events, 0};
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw TcpError(std::string("poll: ") + std::strerror(errno));
    }
    if (r == 0) throw TcpTimeout(std::string(op) + ": deadline exceeded");
    return;  // readable/writable — or HUP/ERR, which the syscall will report
  }
}

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const OptDeadline& deadline) {
  while (len > 0) {
    if (deadline.has_value()) wait_ready(fd, POLLOUT, deadline, "send");
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TcpError(std::string("send: ") + std::strerror(errno));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Returns bytes read; 0 only on immediate EOF.
std::size_t read_all(int fd, std::uint8_t* data, std::size_t len,
                     const OptDeadline& deadline) {
  std::size_t got = 0;
  while (got < len) {
    if (deadline.has_value()) wait_ready(fd, POLLIN, deadline, "recv");
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TcpError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return 0;
      throw TcpError("recv: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

OptDeadline deadline_from_ms(std::int64_t ms) {
  if (ms < 0) return std::nullopt;
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

}  // namespace

FramedSocket::~FramedSocket() { close(); }

void FramedSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FramedSocket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void FramedSocket::send_frame(ByteView payload) {
  send_frame_impl(payload, deadline_from_ms(send_timeout_ms_));
}

void FramedSocket::send_frame(ByteView payload, TimePoint deadline) {
  send_frame_impl(payload, deadline);
}

void FramedSocket::send_frame_impl(ByteView payload,
                                   const std::optional<TimePoint>& deadline) {
  if (fd_ < 0) throw TcpError("send_frame: socket closed");
  std::uint8_t header[4];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  write_all(fd_, header, 4, deadline);
  write_all(fd_, payload.data(), payload.size(), deadline);
}

std::optional<Bytes> FramedSocket::try_recv_frame() {
  return try_recv_frame_impl(deadline_from_ms(recv_timeout_ms_));
}

std::optional<Bytes> FramedSocket::try_recv_frame(TimePoint deadline) {
  return try_recv_frame_impl(deadline);
}

std::optional<Bytes> FramedSocket::try_recv_frame_impl(
    const std::optional<TimePoint>& deadline) {
  if (fd_ < 0) throw TcpError("recv_frame: socket closed");
  std::uint8_t header[4];
  if (read_all(fd_, header, 4, deadline) == 0) return std::nullopt;  // orderly EOF
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | header[i];
  if (len > kMaxFrame) throw TcpError("recv_frame: oversized frame");
  Bytes payload(len);
  if (len > 0 && read_all(fd_, payload.data(), len, deadline) == 0) {
    throw TcpError("recv_frame: connection closed mid-frame");
  }
  return payload;
}

Bytes FramedSocket::recv_frame() {
  auto frame = try_recv_frame();
  if (!frame.has_value()) throw TcpError("recv_frame: connection closed");
  return std::move(*frame);
}

Bytes FramedSocket::recv_frame(TimePoint deadline) {
  auto frame = try_recv_frame(deadline);
  if (!frame.has_value()) throw TcpError("recv_frame: connection closed");
  return std::move(*frame);
}

FramedSocket tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TcpError(std::string("socket: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TcpError("tcp_connect: bad IPv4 address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw TcpError(std::string("connect: ") + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FramedSocket(fd);
}

TcpListener::TcpListener(std::uint16_t port) : fd_(-1), port_(0) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw TcpError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 16) != 0) {
    const int err = errno;
    ::close(fd_);
    throw TcpError(std::string("bind/listen: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  // close() races with a blocked accept() by design: claim the fd exactly
  // once, then shutdown() to kick the accepting thread out of the syscall.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

FramedSocket TcpListener::accept() {
  for (;;) {
    const int listen_fd = fd_.load();
    if (listen_fd < 0) throw TcpError("accept: listener closed");
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // EINTR (a signal) and ECONNABORTED (the dialer hung up while queued)
      // are per-attempt accidents, not listener failures: retry instead of
      // surfacing a spurious error to the accept loop.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw TcpError(std::string("accept: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return FramedSocket(fd);
  }
}

std::optional<FramedSocket> TcpListener::try_accept() {
  const int listen_fd = fd_.load();
  if (listen_fd < 0) throw TcpError("accept: listener closed");
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return std::nullopt;  // retriable: nothing pending right now
    }
    if (fd_.load() < 0) throw TcpError("accept: listener closed");
    throw TcpError(std::string("accept: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FramedSocket(fd);
}

void TcpListener::set_nonblocking() {
  const int listen_fd = fd_.load();
  if (listen_fd < 0) return;
  const int flags = ::fcntl(listen_fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(listen_fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace speed::net
