#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>

namespace speed::net {

namespace {

constexpr std::size_t kMaxFrame = 256u * 1024 * 1024;

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TcpError(std::string("send: ") + std::strerror(errno));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Returns bytes read; 0 only on immediate EOF.
std::size_t read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TcpError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return 0;
      throw TcpError("recv: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

FramedSocket::~FramedSocket() { close(); }

void FramedSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FramedSocket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void FramedSocket::send_frame(ByteView payload) {
  if (fd_ < 0) throw TcpError("send_frame: socket closed");
  std::uint8_t header[4];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  write_all(fd_, header, 4);
  write_all(fd_, payload.data(), payload.size());
}

std::optional<Bytes> FramedSocket::try_recv_frame() {
  if (fd_ < 0) throw TcpError("recv_frame: socket closed");
  std::uint8_t header[4];
  if (read_all(fd_, header, 4) == 0) return std::nullopt;  // orderly EOF
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | header[i];
  if (len > kMaxFrame) throw TcpError("recv_frame: oversized frame");
  Bytes payload(len);
  if (len > 0 && read_all(fd_, payload.data(), len) == 0) {
    throw TcpError("recv_frame: connection closed mid-frame");
  }
  return payload;
}

Bytes FramedSocket::recv_frame() {
  auto frame = try_recv_frame();
  if (!frame.has_value()) throw TcpError("recv_frame: connection closed");
  return std::move(*frame);
}

FramedSocket tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TcpError(std::string("socket: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TcpError("tcp_connect: bad IPv4 address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw TcpError(std::string("connect: ") + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FramedSocket(fd);
}

TcpListener::TcpListener(std::uint16_t port) : fd_(-1), port_(0) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw TcpError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 16) != 0) {
    const int err = errno;
    ::close(fd_);
    throw TcpError(std::string("bind/listen: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

FramedSocket TcpListener::accept() {
  if (fd_ < 0) throw TcpError("accept: listener closed");
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw TcpError(std::string("accept: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FramedSocket(fd);
}

}  // namespace speed::net
