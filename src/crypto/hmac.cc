#include "crypto/hmac.h"

#include <cstring>

namespace speed::crypto {

HmacSha256::HmacSha256(ByteView key) {
  std::uint8_t block_key[64] = {0};
  if (key.size() > 64) {
    const Sha256Digest kd = Sha256::digest(key);
    std::memcpy(block_key, kd.data(), kd.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }
  std::uint8_t ipad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad_key_[i] = block_key[i] ^ 0x5c;
  }
  inner_.update(ByteView(ipad, 64));
  secure_zero(block_key, sizeof(block_key));
  secure_zero(ipad, sizeof(ipad));
}

void HmacSha256::update(ByteView data) { inner_.update(data); }

Sha256Digest HmacSha256::finish() {
  const Sha256Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(ByteView(opad_key_, 64));
  outer.update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Sha256Digest HmacSha256::mac(ByteView key, ByteView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

bool HmacSha256::verify(ByteView key, ByteView data, ByteView expected_mac) {
  const Sha256Digest m = mac(key, data);
  return ct_equal(ByteView(m.data(), m.size()), expected_mac);
}

Bytes derive_key(ByteView key, std::string_view label, ByteView context,
                 std::size_t out_len) {
  Bytes out;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    HmacSha256 h(key);
    h.update(ByteView(&counter, 1));
    h.update(as_bytes(label));
    const std::uint8_t zero = 0;
    h.update(ByteView(&zero, 1));
    h.update(context);
    const Sha256Digest block = h.finish();
    const std::size_t take = std::min<std::size_t>(out_len - out.size(), block.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<long>(take));
    ++counter;
  }
  return out;
}

}  // namespace speed::crypto
