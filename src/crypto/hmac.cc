#include "crypto/hmac.h"

#include <cstring>

namespace speed::crypto {

HmacSha256::HmacSha256(ByteView key) {
  std::uint8_t block_key[64] = {0};
  if (key.size() > 64) {
    const Sha256Digest kd = Sha256::digest(key);
    std::memcpy(block_key, kd.data(), kd.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }
  std::uint8_t ipad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad_key_[i] = block_key[i] ^ 0x5c;
  }
  inner_.update(ByteView(ipad, 64));
  secure_zero(block_key, sizeof(block_key));
  secure_zero(ipad, sizeof(ipad));
}

HmacSha256::HmacSha256(const secret::Buffer& key)
    : HmacSha256(key.reveal_for(secret::Purpose::of("hmac_key_schedule"))) {}

HmacSha256::~HmacSha256() { secure_zero(opad_key_, sizeof(opad_key_)); }

void HmacSha256::update(ByteView data) { inner_.update(data); }

Sha256Digest HmacSha256::finish() {
  const Sha256Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(ByteView(opad_key_, 64));
  outer.update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Sha256Digest HmacSha256::mac(ByteView key, ByteView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

Sha256Digest HmacSha256::mac(const secret::Buffer& key, ByteView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finish();
}

bool HmacSha256::verify(ByteView key, ByteView data, ByteView expected_mac) {
  Sha256Digest m = mac(key, data);
  const bool ok = ct_equal(ByteView(m.data(), m.size()), expected_mac);
  secure_zero(m.data(), m.size());
  return ok;
}

bool HmacSha256::verify(const secret::Buffer& key, ByteView data,
                        ByteView expected_mac) {
  return verify(key.reveal_for(secret::Purpose::of("hmac_key_schedule")), data,
                expected_mac);
}

secret::Buffer derive_key(ByteView key, std::string_view label,
                          ByteView context, std::size_t out_len) {
  secret::Buffer out(out_len);
  const std::span<std::uint8_t> dst = out.writable();
  std::size_t produced = 0;
  std::uint8_t counter = 1;
  while (produced < out_len) {
    HmacSha256 h(key);
    h.update(ByteView(&counter, 1));
    h.update(as_bytes(label));
    const std::uint8_t zero = 0;
    h.update(ByteView(&zero, 1));
    h.update(context);
    Sha256Digest block = h.finish();
    const std::size_t take =
        std::min<std::size_t>(out_len - produced, block.size());
    std::memcpy(dst.data() + produced, block.data(), take);
    secure_zero(block.data(), block.size());
    produced += take;
    ++counter;
  }
  return out;
}

secret::Buffer derive_key(const secret::Buffer& key, std::string_view label,
                          ByteView context, std::size_t out_len) {
  return derive_key(key.reveal_for(secret::Purpose::of("hkdf_input")), label,
                    context, out_len);
}

}  // namespace speed::crypto
