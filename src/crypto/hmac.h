// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// Used by the SGX simulator for sealing-key derivation and local-attestation
// report MACs, and by the secure channel for key confirmation.
#pragma once

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/sha256.h"

namespace speed::crypto {

class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);
  /// MAC keys live in the secret domain; this overload keeps the reveal
  /// inside the crypto core (audited in hmac.cc).
  explicit HmacSha256(const secret::Buffer& key);

  /// Wipes the opad key schedule.
  ~HmacSha256();

  void update(ByteView data);
  Sha256Digest finish();

  static Sha256Digest mac(ByteView key, ByteView data);
  static Sha256Digest mac(const secret::Buffer& key, ByteView data);

  /// Constant-time verification of a MAC over `data`.
  static bool verify(ByteView key, ByteView data, ByteView expected_mac);
  static bool verify(const secret::Buffer& key, ByteView data,
                     ByteView expected_mac);

 private:
  Sha256 inner_;
  std::uint8_t opad_key_[64];
};

/// HKDF-style two-step derivation used for labeled subkeys:
/// derive(key, label, context) = HMAC(key, label ‖ 0x00 ‖ context).
/// Derived keys are key material by definition, so they are born secret.
secret::Buffer derive_key(ByteView key, std::string_view label,
                          ByteView context, std::size_t out_len = 16);
secret::Buffer derive_key(const secret::Buffer& key, std::string_view label,
                          ByteView context, std::size_t out_len = 16);

}  // namespace speed::crypto
