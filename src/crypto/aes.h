// AES block cipher (FIPS 197), forward direction.
//
// SPEED encrypts results with AES-GCM-128 (§II-D); GCM and CTR need only the
// forward cipher, so the inverse cipher is deliberately omitted to keep the
// trusted code base small. AES-256 is supported for the sealing keys of the
// SGX simulator.
//
// This is a straightforward byte-oriented implementation. It uses S-box
// lookups and is therefore not cache-timing hardened; the paper's threat
// model explicitly excludes side channels (§II-B), and real deployments
// would use AES-NI via the SGX SDK crypto library.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace speed::crypto {

inline constexpr std::size_t kAesBlockSize = 16;

class Aes {
 public:
  /// `key` must be 16, 24, or 32 bytes; throws CryptoError otherwise.
  explicit Aes(ByteView key);
  ~Aes();

  Aes(const Aes&) = delete;
  Aes& operator=(const Aes&) = delete;

  /// Encrypt one 16-byte block, in-place-safe (`in` may equal `out`).
  void encrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;

 private:
  std::uint8_t round_keys_[15 * kAesBlockSize];
  int rounds_;
};

}  // namespace speed::crypto
