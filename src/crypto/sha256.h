// SHA-256 (FIPS 180-4), implemented from scratch.
//
// SPEED derives computation tags t = H(func, m) and RCE secondary keys
// h = H(func, m, r) from SHA-256; it is the collision-resistant hash the
// paper selects (§III-B). Streaming interface so multi-part tag inputs
// (descriptor ‖ input ‖ challenge) hash without concatenation copies.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace speed::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

// Copying a Sha256 forks its midstate: absorb a common prefix once, then
// copy the object and finish each copy with a different suffix (see
// mle::ComputationContext, which derives the tag and the RCE secondary key
// from one pass over the input).
class Sha256 {
 public:
  Sha256() { reset(); }

  /// Reset to the initial state; allows object reuse.
  void reset();

  /// Absorb more input.
  void update(ByteView data);

  /// Finalize and return the digest. The object must be reset() before reuse.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest digest(ByteView data);

  /// One-shot over multiple segments, equivalent to hashing their
  /// concatenation. (Callers that need unambiguous multi-field hashing must
  /// length-prefix the fields themselves; see mle/tag.cc.)
  static Sha256Digest digest_parts(std::initializer_list<ByteView> parts);

 private:
  void compress(const std::uint8_t block[64]);

  std::uint32_t state_[8];
  std::uint64_t bit_count_;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
};

/// Owned-buffer view of a digest (for APIs traveling in Bytes).
inline Bytes to_bytes(const Sha256Digest& d) { return Bytes(d.begin(), d.end()); }

// Re-expose the speed:: byte helpers so this overload does not hide them for
// code living inside speed::crypto.
using speed::to_bytes;

}  // namespace speed::crypto
