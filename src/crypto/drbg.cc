#include "crypto/drbg.h"

#include <cstring>
#include <random>

#include "common/annotated_lock.h"
#include "crypto/sha256.h"

namespace speed::crypto {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

/// RFC 8439 ChaCha20 block function; nonce fixed to zero, 64-bit counter
/// split across words 12-13 (the DRBG never reuses a counter per key).
void chacha20_block(const std::uint32_t key[8], std::uint64_t counter,
                    std::uint8_t out[64]) {
  std::uint32_t s[16];
  s[0] = 0x61707865; s[1] = 0x3320646e; s[2] = 0x79622d32; s[3] = 0x6b206574;
  std::memcpy(s + 4, key, 32);
  s[12] = static_cast<std::uint32_t>(counter);
  s[13] = static_cast<std::uint32_t>(counter >> 32);
  s[14] = 0;
  s[15] = 0;

  std::uint32_t w[16];
  std::memcpy(w, s, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + s[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

Drbg::Drbg() {
  std::random_device rd;
  std::uint8_t entropy[48];
  for (auto& b : entropy) b = static_cast<std::uint8_t>(rd());
  Sha256Digest seed = Sha256::digest(ByteView(entropy, sizeof(entropy)));
  std::memcpy(key_, seed.data(), 32);
  secure_zero(entropy, sizeof(entropy));
  secure_zero(seed.data(), seed.size());
}

Drbg::Drbg(ByteView seed) {
  Sha256Digest k = Sha256::digest(seed);
  std::memcpy(key_, k.data(), 32);
  secure_zero(k.data(), k.size());
}

void Drbg::refill() {
  chacha20_block(key_, counter_++, buffer_);
  buffer_pos_ = 0;
}

void Drbg::fill(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (buffer_pos_ == 64) refill();
    const std::size_t take = std::min(out.size() - off, 64 - buffer_pos_);
    std::memcpy(out.data() + off, buffer_ + buffer_pos_, take);
    buffer_pos_ += take;
    off += take;
  }
}

Drbg::~Drbg() {
  secure_zero(key_, sizeof(key_));
  secure_zero(buffer_, sizeof(buffer_));
}

Bytes Drbg::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

secret::Buffer Drbg::secret_bytes(std::size_t n) {
  secret::Buffer out(n);
  fill(out.writable());
  return out;
}

Bytes Drbg::system_bytes(std::size_t n) {
  static Mutex mu{LockRank::kCryptoDrbg};
  static Drbg instance;
  // Allocate outside the lock; only the keystream fill needs serialization.
  Bytes out(n);
  {
    MutexLock lock(mu);
    instance.fill(out);
  }
  return out;
}

}  // namespace speed::crypto
