// Hardware AES-GCM-128 using AES-NI and PCLMULQDQ.
//
// This translation unit is compiled with -maes -mpclmul -mssse3; callers must
// gate on hw::gcm128_available() before invoking the gcm128_* functions.
// The GHASH multiply follows Intel's "Carry-Less Multiplication and Its Usage
// for Computing the GCM Mode" white paper (shift-left-by-1 variant on
// byte-reflected operands). Correctness is pinned by NIST vectors and by a
// property test cross-checking against the portable scalar implementation.
#include "crypto/gcm.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#include <wmmintrin.h>

#include <cstring>

namespace speed::crypto::hw {

namespace {

const __m128i kByteReverse =
    _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);

inline __m128i reflect(__m128i x) { return _mm_shuffle_epi8(x, kByteReverse); }

struct RoundKeys {
  __m128i rk[11];
};

template <int Rcon>
inline __m128i expand_step(__m128i key) {
  __m128i kga = _mm_aeskeygenassist_si128(key, Rcon);
  kga = _mm_shuffle_epi32(kga, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, kga);
}

RoundKeys expand_key(const std::uint8_t key[16]) {
  RoundKeys k;
  k.rk[0] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  k.rk[1] = expand_step<0x01>(k.rk[0]);
  k.rk[2] = expand_step<0x02>(k.rk[1]);
  k.rk[3] = expand_step<0x04>(k.rk[2]);
  k.rk[4] = expand_step<0x08>(k.rk[3]);
  k.rk[5] = expand_step<0x10>(k.rk[4]);
  k.rk[6] = expand_step<0x20>(k.rk[5]);
  k.rk[7] = expand_step<0x40>(k.rk[6]);
  k.rk[8] = expand_step<0x80>(k.rk[7]);
  k.rk[9] = expand_step<0x1b>(k.rk[8]);
  k.rk[10] = expand_step<0x36>(k.rk[9]);
  return k;
}

inline __m128i encrypt_block(const RoundKeys& k, __m128i block) {
  block = _mm_xor_si128(block, k.rk[0]);
  for (int r = 1; r < 10; ++r) block = _mm_aesenc_si128(block, k.rk[r]);
  return _mm_aesenclast_si128(block, k.rk[10]);
}

/// GF(2^128) multiply on byte-reflected operands (Intel white paper, Fig. 8).
inline __m128i gfmul(__m128i a, __m128i b) {
  __m128i tmp2, tmp3, tmp4, tmp5, tmp6, tmp7, tmp8, tmp9;
  tmp3 = _mm_clmulepi64_si128(a, b, 0x00);
  tmp4 = _mm_clmulepi64_si128(a, b, 0x10);
  tmp5 = _mm_clmulepi64_si128(a, b, 0x01);
  tmp6 = _mm_clmulepi64_si128(a, b, 0x11);

  tmp4 = _mm_xor_si128(tmp4, tmp5);
  tmp5 = _mm_slli_si128(tmp4, 8);
  tmp4 = _mm_srli_si128(tmp4, 8);
  tmp3 = _mm_xor_si128(tmp3, tmp5);
  tmp6 = _mm_xor_si128(tmp6, tmp4);

  // Shift the 256-bit product left by one bit (the operands are reflected,
  // so the carry-less product is off by a factor of x).
  tmp7 = _mm_srli_epi32(tmp3, 31);
  tmp8 = _mm_srli_epi32(tmp6, 31);
  tmp3 = _mm_slli_epi32(tmp3, 1);
  tmp6 = _mm_slli_epi32(tmp6, 1);

  tmp9 = _mm_srli_si128(tmp7, 12);
  tmp8 = _mm_slli_si128(tmp8, 4);
  tmp7 = _mm_slli_si128(tmp7, 4);
  tmp3 = _mm_or_si128(tmp3, tmp7);
  tmp6 = _mm_or_si128(tmp6, tmp8);
  tmp6 = _mm_or_si128(tmp6, tmp9);

  // Reduce modulo x^128 + x^7 + x^2 + x + 1.
  tmp7 = _mm_slli_epi32(tmp3, 31);
  tmp8 = _mm_slli_epi32(tmp3, 30);
  tmp9 = _mm_slli_epi32(tmp3, 25);

  tmp7 = _mm_xor_si128(tmp7, tmp8);
  tmp7 = _mm_xor_si128(tmp7, tmp9);
  tmp8 = _mm_srli_si128(tmp7, 4);
  tmp7 = _mm_slli_si128(tmp7, 12);
  tmp3 = _mm_xor_si128(tmp3, tmp7);

  tmp2 = _mm_srli_epi32(tmp3, 1);
  tmp4 = _mm_srli_epi32(tmp3, 2);
  tmp5 = _mm_srli_epi32(tmp3, 7);
  tmp2 = _mm_xor_si128(tmp2, tmp4);
  tmp2 = _mm_xor_si128(tmp2, tmp5);
  tmp2 = _mm_xor_si128(tmp2, tmp8);
  tmp3 = _mm_xor_si128(tmp3, tmp2);
  tmp6 = _mm_xor_si128(tmp6, tmp3);
  return tmp6;
}

class GhashHw {
 public:
  explicit GhashHw(__m128i h) : h_(reflect(h)), y_(_mm_setzero_si128()) {}

  void absorb_padded(ByteView data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t take = std::min<std::size_t>(16, data.size() - off);
      __m128i block;
      if (take == 16) {
        block = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(data.data() + off));
      } else {
        std::uint8_t padded[16] = {0};
        std::memcpy(padded, data.data() + off, take);
        block = _mm_loadu_si128(reinterpret_cast<const __m128i*>(padded));
      }
      absorb(block);
      off += take;
    }
  }

  void absorb_lengths(std::uint64_t aad_len, std::uint64_t data_len) {
    // The length block is big-endian: aad bits in bytes 0-7, data bits in
    // bytes 8-15. _mm_set_epi64x takes (high=bytes 8-15, low=bytes 0-7).
    const __m128i block =
        _mm_set_epi64x(static_cast<long long>(__builtin_bswap64(data_len * 8)),
                       static_cast<long long>(__builtin_bswap64(aad_len * 8)));
    absorb(block);
  }

  __m128i digest() const { return reflect(y_); }

 private:
  void absorb(__m128i block) {
    y_ = _mm_xor_si128(y_, reflect(block));
    y_ = gfmul(y_, h_);
  }

  __m128i h_;
  __m128i y_;
};

inline __m128i make_counter(const std::uint8_t iv[12], std::uint32_t ctr) {
  std::uint8_t block[16];
  std::memcpy(block, iv, 12);
  block[12] = static_cast<std::uint8_t>(ctr >> 24);
  block[13] = static_cast<std::uint8_t>(ctr >> 16);
  block[14] = static_cast<std::uint8_t>(ctr >> 8);
  block[15] = static_cast<std::uint8_t>(ctr);
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
}

void ctr_crypt(const RoundKeys& k, const std::uint8_t iv[12], ByteView in,
               std::uint8_t* out) {
  std::uint32_t ctr = 2;  // data starts at inc32(J0)
  std::size_t off = 0;
  // Four blocks at a time to keep the AES-NI pipeline busy.
  while (off + 64 <= in.size()) {
    __m128i b0 = make_counter(iv, ctr);
    __m128i b1 = make_counter(iv, ctr + 1);
    __m128i b2 = make_counter(iv, ctr + 2);
    __m128i b3 = make_counter(iv, ctr + 3);
    ctr += 4;
    b0 = _mm_xor_si128(b0, k.rk[0]);
    b1 = _mm_xor_si128(b1, k.rk[0]);
    b2 = _mm_xor_si128(b2, k.rk[0]);
    b3 = _mm_xor_si128(b3, k.rk[0]);
    for (int r = 1; r < 10; ++r) {
      b0 = _mm_aesenc_si128(b0, k.rk[r]);
      b1 = _mm_aesenc_si128(b1, k.rk[r]);
      b2 = _mm_aesenc_si128(b2, k.rk[r]);
      b3 = _mm_aesenc_si128(b3, k.rk[r]);
    }
    b0 = _mm_aesenclast_si128(b0, k.rk[10]);
    b1 = _mm_aesenclast_si128(b1, k.rk[10]);
    b2 = _mm_aesenclast_si128(b2, k.rk[10]);
    b3 = _mm_aesenclast_si128(b3, k.rk[10]);
    const __m128i* src = reinterpret_cast<const __m128i*>(in.data() + off);
    __m128i* dst = reinterpret_cast<__m128i*>(out + off);
    _mm_storeu_si128(dst + 0, _mm_xor_si128(_mm_loadu_si128(src + 0), b0));
    _mm_storeu_si128(dst + 1, _mm_xor_si128(_mm_loadu_si128(src + 1), b1));
    _mm_storeu_si128(dst + 2, _mm_xor_si128(_mm_loadu_si128(src + 2), b2));
    _mm_storeu_si128(dst + 3, _mm_xor_si128(_mm_loadu_si128(src + 3), b3));
    off += 64;
  }
  while (off < in.size()) {
    const __m128i ks = encrypt_block(k, make_counter(iv, ctr++));
    std::uint8_t ks_bytes[16];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ks_bytes), ks);
    const std::size_t take = std::min<std::size_t>(16, in.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] = in[off + i] ^ ks_bytes[i];
    off += take;
  }
}

__m128i compute_tag(const RoundKeys& k, const std::uint8_t iv[12],
                    ByteView aad, ByteView ct) {
  const __m128i h = encrypt_block(k, _mm_setzero_si128());
  GhashHw ghash(h);
  ghash.absorb_padded(aad);
  ghash.absorb_padded(ct);
  ghash.absorb_lengths(aad.size(), ct.size());
  const __m128i ej0 = encrypt_block(k, make_counter(iv, 1));
  return _mm_xor_si128(ghash.digest(), ej0);
}

}  // namespace

bool gcm128_available() {
  static const bool ok = __builtin_cpu_supports("aes") &&
                         __builtin_cpu_supports("pclmul") &&
                         __builtin_cpu_supports("ssse3");
  return ok;
}

void gcm128_encrypt(const std::uint8_t key[16], const std::uint8_t iv[12],
                    ByteView aad, ByteView pt, std::uint8_t* ct,
                    std::uint8_t tag[16]) {
  const RoundKeys k = expand_key(key);
  ctr_crypt(k, iv, pt, ct);
  const __m128i t = compute_tag(k, iv, aad, ByteView(ct, pt.size()));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(tag), t);
}

bool gcm128_decrypt(const std::uint8_t key[16], const std::uint8_t iv[12],
                    ByteView aad, ByteView ct, const std::uint8_t tag[16],
                    std::uint8_t* pt) {
  const RoundKeys k = expand_key(key);
  const __m128i t = compute_tag(k, iv, aad, ct);
  std::uint8_t expected[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(expected), t);
  if (!ct_equal(ByteView(expected, 16), ByteView(tag, 16))) return false;
  ctr_crypt(k, iv, ct, pt);
  return true;
}

}  // namespace speed::crypto::hw

#else  // non-x86 fallback

namespace speed::crypto::hw {
bool gcm128_available() { return false; }
void gcm128_encrypt(const std::uint8_t*, const std::uint8_t*, ByteView,
                    ByteView, std::uint8_t*, std::uint8_t*) {}
bool gcm128_decrypt(const std::uint8_t*, const std::uint8_t*, ByteView,
                    ByteView, const std::uint8_t*, std::uint8_t*) {
  return false;
}
}  // namespace speed::crypto::hw

#endif
