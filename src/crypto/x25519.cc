#include "crypto/x25519.h"

#include <cstring>

#include "crypto/drbg.h"

namespace speed::crypto {

namespace {

// ----- GF(2^255 - 19), radix 2^51 (curve25519-donna-c64 style) -----------

struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (1ull << 51) - 1;

Fe fe_load(const std::uint8_t in[32]) {
  std::uint64_t w[4];
  for (int i = 0; i < 4; ++i) {
    w[i] = 0;
    for (int b = 7; b >= 0; --b) w[i] = (w[i] << 8) | in[8 * i + b];
  }
  Fe out;
  out.v[0] = w[0] & kMask51;
  out.v[1] = ((w[0] >> 51) | (w[1] << 13)) & kMask51;
  out.v[2] = ((w[1] >> 38) | (w[2] << 26)) & kMask51;
  out.v[3] = ((w[2] >> 25) | (w[3] << 39)) & kMask51;
  out.v[4] = (w[3] >> 12) & kMask51;  // also drops the top bit, per RFC 7748
  return out;
}

/// Full reduction mod p, then little-endian serialization.
void fe_store(const Fe& a, std::uint8_t out[32]) {
  std::uint64_t t[5];
  std::memcpy(t, a.v, sizeof(t));

  // Three carry passes guarantee every limb is strictly below 2^51.
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 4; ++i) {
      t[i + 1] += t[i] >> 51;
      t[i] &= kMask51;
    }
    t[0] += 19 * (t[4] >> 51);
    t[4] &= kMask51;
  }
  // Now 0 <= value < 2p; subtract p once if needed, constant-time.
  std::uint64_t u[5];
  u[0] = t[0] + 19;
  for (int i = 1; i < 5; ++i) u[i] = t[i];
  for (int i = 0; i < 4; ++i) {
    u[i + 1] += u[i] >> 51;
    u[i] &= kMask51;
  }
  // borrow-free representative of value + 19 - p  == value - (p - 19)
  const std::uint64_t carry = u[4] >> 51;
  u[4] &= kMask51;
  // carry == 1 iff value >= p.
  const std::uint64_t select = 0 - carry;  // all-ones if subtract
  for (int i = 0; i < 5; ++i) {
    t[i] = (u[i] & select) | (t[i] & ~select);
  }

  std::uint64_t w0 = t[0] | (t[1] << 51);
  std::uint64_t w1 = (t[1] >> 13) | (t[2] << 38);
  std::uint64_t w2 = (t[2] >> 26) | (t[3] << 25);
  std::uint64_t w3 = (t[3] >> 39) | (t[4] << 12);
  const std::uint64_t words[4] = {w0, w1, w2, w3};
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 8; ++b) {
      out[8 * i + b] = static_cast<std::uint8_t>(words[i] >> (8 * b));
    }
  }
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe out;
  for (int i = 0; i < 5; ++i) out.v[i] = a.v[i] + b.v[i];
  return out;
}

/// a - b with a 2p bias so limbs stay non-negative.
Fe fe_sub(const Fe& a, const Fe& b) {
  constexpr std::uint64_t kTwoP0 = 0xfffffffffffdaull << 1;  // 2*(2^51-19)... see below
  constexpr std::uint64_t kTwoPi = 0xffffffffffffeull << 1;
  Fe out;
  out.v[0] = a.v[0] + kTwoP0 - b.v[0];
  for (int i = 1; i < 5; ++i) out.v[i] = a.v[i] + kTwoPi - b.v[i];
  return out;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 + (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 + (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 + (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 + (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 + (u128)a4 * b0;

  Fe out;
  std::uint64_t c;
  out.v[0] = static_cast<std::uint64_t>(t0) & kMask51; c = static_cast<std::uint64_t>(t0 >> 51);
  t1 += c;
  out.v[1] = static_cast<std::uint64_t>(t1) & kMask51; c = static_cast<std::uint64_t>(t1 >> 51);
  t2 += c;
  out.v[2] = static_cast<std::uint64_t>(t2) & kMask51; c = static_cast<std::uint64_t>(t2 >> 51);
  t3 += c;
  out.v[3] = static_cast<std::uint64_t>(t3) & kMask51; c = static_cast<std::uint64_t>(t3 >> 51);
  t4 += c;
  out.v[4] = static_cast<std::uint64_t>(t4) & kMask51; c = static_cast<std::uint64_t>(t4 >> 51);
  out.v[0] += c * 19;
  c = out.v[0] >> 51; out.v[0] &= kMask51;
  out.v[1] += c;
  return out;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, std::uint64_t s) {
  using u128 = unsigned __int128;
  u128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = (u128)a.v[i] * s;
  Fe out;
  std::uint64_t c;
  out.v[0] = static_cast<std::uint64_t>(t[0]) & kMask51; c = static_cast<std::uint64_t>(t[0] >> 51);
  for (int i = 1; i < 5; ++i) {
    t[i] += c;
    out.v[i] = static_cast<std::uint64_t>(t[i]) & kMask51;
    c = static_cast<std::uint64_t>(t[i] >> 51);
  }
  out.v[0] += c * 19;
  c = out.v[0] >> 51; out.v[0] &= kMask51;
  out.v[1] += c;
  return out;
}

/// z^(p-2) = z^(2^255 - 21): the standard Curve25519 inversion chain.
Fe fe_invert(const Fe& z) {
  Fe z2 = fe_sq(z);                    // 2
  Fe t = fe_sq(z2);                    // 4
  t = fe_sq(t);                        // 8
  Fe z9 = fe_mul(t, z);                // 9
  Fe z11 = fe_mul(z9, z2);             // 11
  t = fe_sq(z11);                      // 22
  Fe z2_5_0 = fe_mul(t, z9);           // 2^5 - 2^0 = 31

  t = fe_sq(z2_5_0);
  for (int i = 0; i < 4; ++i) t = fe_sq(t);
  Fe z2_10_0 = fe_mul(t, z2_5_0);      // 2^10 - 2^0

  t = fe_sq(z2_10_0);
  for (int i = 0; i < 9; ++i) t = fe_sq(t);
  Fe z2_20_0 = fe_mul(t, z2_10_0);     // 2^20 - 2^0

  t = fe_sq(z2_20_0);
  for (int i = 0; i < 19; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_20_0);              // 2^40 - 2^0
  t = fe_sq(t);
  for (int i = 0; i < 9; ++i) t = fe_sq(t);
  Fe z2_50_0 = fe_mul(t, z2_10_0);     // 2^50 - 2^0

  t = fe_sq(z2_50_0);
  for (int i = 0; i < 49; ++i) t = fe_sq(t);
  Fe z2_100_0 = fe_mul(t, z2_50_0);    // 2^100 - 2^0

  t = fe_sq(z2_100_0);
  for (int i = 0; i < 99; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_100_0);             // 2^200 - 2^0
  t = fe_sq(t);
  for (int i = 0; i < 49; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_50_0);              // 2^250 - 2^0

  t = fe_sq(t);                        // 2^251 - 2^1
  t = fe_sq(t);                        // 2^252 - 2^2
  t = fe_sq(t);                        // 2^253 - 2^3
  t = fe_sq(t);                        // 2^254 - 2^4
  t = fe_sq(t);                        // 2^255 - 2^5
  return fe_mul(t, z11);               // 2^255 - 21
}

void fe_cswap(std::uint64_t swap, Fe& a, Fe& b) {
  const std::uint64_t mask = 0 - swap;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  // Clamp the scalar (RFC 7748 §5).
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  const Fe x1 = fe_load(point.data());
  Fe x2{{1, 0, 0, 0, 0}};
  Fe z2{{0, 0, 0, 0, 0}};
  Fe x3 = x1;
  Fe z3{{1, 0, 0, 0, 0}};

  std::uint64_t swap = 0;
  for (int t = 254; t >= 0; --t) {
    const std::uint64_t bit = (e[t >> 3] >> (t & 7)) & 1;
    swap ^= bit;
    fe_cswap(swap, x2, x3);
    fe_cswap(swap, z2, z3);
    swap = bit;

    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe e_ = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e_, fe_add(aa, fe_mul_small(e_, 121665)));
  }
  fe_cswap(swap, x2, x3);
  fe_cswap(swap, z2, z3);

  const Fe out = fe_mul(x2, fe_invert(z2));
  X25519Key result;
  fe_store(out, result.data());
  return result;
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

namespace {

/// Bridge a secret scalar into the raw ladder; the only reveal sites for
/// X25519 private material live here.
const X25519Key& as_raw_scalar(const secret::Bytes<kX25519KeySize>& scalar,
                               X25519Key& storage) {
  const ByteView raw =
      scalar.reveal_for(secret::Purpose::of("x25519_scalarmult"));
  std::memcpy(storage.data(), raw.data(), raw.size());
  return storage;
}

}  // namespace

X25519KeyPair x25519_generate(Drbg& drbg) {
  X25519KeyPair pair;
  drbg.fill(pair.private_key.writable());
  X25519Key raw;
  pair.public_key = x25519_base(as_raw_scalar(pair.private_key, raw));
  secure_zero(raw.data(), raw.size());
  return pair;
}

bool x25519_shared(const secret::Bytes<kX25519KeySize>& own_private,
                   const X25519Key& peer_public,
                   secret::Bytes<kX25519KeySize>& shared_out) {
  X25519Key raw;
  X25519Key shared = x25519(as_raw_scalar(own_private, raw), peer_public);
  secure_zero(raw.data(), raw.size());
  std::memcpy(shared_out.writable().data(), shared.data(), shared.size());
  std::uint8_t acc = 0;
  for (const std::uint8_t b : shared) acc |= b;
  secure_zero(shared.data(), shared.size());
  return acc != 0;
}

}  // namespace speed::crypto
