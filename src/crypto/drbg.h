// ChaCha20-based deterministic random bit generator.
//
// This is the cryptographic randomness source of SPEED: AES keys
// (AES.KeyGen(1^λ) in Algorithm 1), RCE challenge messages r, GCM IVs, and
// secure-channel nonces all come from here. The generator runs the ChaCha20
// block function (RFC 8439) in counter mode over a 256-bit seed; production
// instances seed from std::random_device, tests can seed deterministically.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "common/secret.h"

namespace speed::crypto {

class Drbg {
 public:
  /// Seed from std::random_device (non-deterministic).
  Drbg();

  /// Deterministic seeding for reproducible tests. `seed` may be any length;
  /// it is hashed into the 256-bit ChaCha20 key.
  explicit Drbg(ByteView seed);

  /// Wipes the ChaCha20 key and any buffered keystream.
  ~Drbg();

  Drbg(const Drbg&) = delete;
  Drbg& operator=(const Drbg&) = delete;

  void fill(std::span<std::uint8_t> out);

  Bytes bytes(std::size_t n);

  /// Draw `n` bytes directly into the secret domain (keys, challenges);
  /// the result only escapes through an audited reveal.
  secret::Buffer secret_bytes(std::size_t n);

  /// Process-wide generator for callers without an injected Drbg.
  /// Thread-safe via an internal mutex.
  static Bytes system_bytes(std::size_t n);

 private:
  void refill();

  std::uint32_t key_[8];
  std::uint64_t counter_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_pos_ = 64;  // empty
};

}  // namespace speed::crypto
