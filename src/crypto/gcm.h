// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// SPEED protects every result ciphertext [res] with AES-GCM-128 (§II-D): the
// GCM tag is what makes the Fig. 3 verification protocol work — decrypting
// with a wrongly recovered key fails authentication (⊥) instead of yielding
// garbage. AES-GCM-256 is used by the SGX simulator's sealing facility.
//
// Two implementations are provided and selected at runtime:
//   * a hardware path (AES-NI + PCLMULQDQ) for 128-bit keys, matching the
//     SGX SDK crypto library the paper used;
//   * a portable scalar path for any key size.
// Both are validated against NIST vectors and against each other in tests.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/aes.h"

namespace speed::crypto {

inline constexpr std::size_t kGcmIvSize = 12;
inline constexpr std::size_t kGcmTagSize = 16;
inline constexpr std::size_t kAes128KeySize = 16;
inline constexpr std::size_t kAes256KeySize = 32;

class AesGcm {
 public:
  /// Implementation selection. kAuto picks the hardware path when the CPU
  /// supports it; kPortable forces the scalar path (used by the cross-check
  /// tests and on machines without AES-NI).
  enum class Impl { kAuto, kPortable };

  /// `key` must be 16 or 32 bytes.
  explicit AesGcm(ByteView key, Impl impl = Impl::kAuto);
  /// GCM keys are key material; this overload keeps the reveal inside the
  /// crypto core (audited in gcm.cc) and wipes the copy on destruction.
  explicit AesGcm(const secret::Buffer& key, Impl impl = Impl::kAuto);

  /// Encrypt + authenticate. `iv` must be 12 bytes and unique per key.
  /// Returns ciphertext ‖ 16-byte tag.
  Bytes seal(ByteView iv, ByteView aad, ByteView plaintext) const;

  /// Verify + decrypt `ciphertext ‖ tag`. Returns nullopt on authentication
  /// failure (the ⊥ of the paper's verification protocol).
  std::optional<Bytes> open(ByteView iv, ByteView aad,
                            ByteView ciphertext_and_tag) const;

 private:
  secret::Buffer key_;
  bool use_hw_;
};

/// Envelope helpers used throughout SPEED: encrypt with a fresh random IV and
/// return iv ‖ ciphertext ‖ tag (what the paper denotes [res], "covering its
/// authentication code and initialization vector", §III-B).
class Drbg;  // fwd
Bytes gcm_encrypt(ByteView key, ByteView aad, ByteView plaintext, Drbg& drbg);
Bytes gcm_encrypt(const secret::Buffer& key, ByteView aad, ByteView plaintext,
                  Drbg& drbg);
std::optional<Bytes> gcm_decrypt(ByteView key, ByteView aad, ByteView envelope);
std::optional<Bytes> gcm_decrypt(const secret::Buffer& key, ByteView aad,
                                 ByteView envelope);

/// Size of gcm_encrypt's envelope for a given plaintext length.
inline constexpr std::size_t gcm_envelope_size(std::size_t plaintext_len) {
  return kGcmIvSize + plaintext_len + kGcmTagSize;
}

namespace hw {
/// True when AES-NI + PCLMULQDQ are usable on this CPU.
bool gcm128_available();
/// One-shot hardware GCM-128. `ct` must hold pt.size() bytes.
void gcm128_encrypt(const std::uint8_t key[16], const std::uint8_t iv[12],
                    ByteView aad, ByteView pt, std::uint8_t* ct,
                    std::uint8_t tag[16]);
/// Returns false on tag mismatch; `pt` holds ct.size() bytes on success.
bool gcm128_decrypt(const std::uint8_t key[16], const std::uint8_t iv[12],
                    ByteView aad, ByteView ct, const std::uint8_t tag[16],
                    std::uint8_t* pt);
}  // namespace hw

}  // namespace speed::crypto
