// X25519 Diffie-Hellman (RFC 7748), implemented from scratch.
//
// Used by the attested channel establishment (net/handshake.h): each
// endpoint binds an ephemeral X25519 public key into a local-attestation
// report, and the session key is derived from the shared secret — the
// standard SGX local-attestation key-exchange pattern the paper's "secure
// channel" relies on.
//
// Field arithmetic is radix-2^51 (five 51-bit limbs) over 2^255 - 19 with a
// constant-time Montgomery ladder.
#pragma once

#include <array>

#include "common/bytes.h"
#include "common/secret.h"

namespace speed::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// scalar * point (u-coordinate form). Implements RFC 7748 §5 including
/// scalar clamping.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// scalar * base point (9).
X25519Key x25519_base(const X25519Key& scalar);

/// The private scalar lives in the secret domain: it only reaches the ladder
/// through the audited reveal inside x25519.cc, and is wiped when the pair
/// goes out of scope. The struct is therefore move-only.
struct X25519KeyPair {
  secret::Bytes<kX25519KeySize> private_key;
  X25519Key public_key;
};

class Drbg;
/// Fresh ephemeral key pair from `drbg`.
X25519KeyPair x25519_generate(Drbg& drbg);

/// Shared secret = x25519(own_private, peer_public), written into the secret
/// domain. Returns false for the all-zero output (low-order peer point),
/// which callers must reject.
bool x25519_shared(const secret::Bytes<kX25519KeySize>& own_private,
                   const X25519Key& peer_public,
                   secret::Bytes<kX25519KeySize>& shared_out);

}  // namespace speed::crypto
