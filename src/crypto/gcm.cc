#include "crypto/gcm.h"

#include <cstring>

#include "common/error.h"
#include "crypto/drbg.h"

namespace speed::crypto {

namespace {

// ---- Portable scalar GHASH (SP 800-38D, right-shift bitwise method) ----
//
// Values are 128-bit GF(2^128) elements in the GCM "reflected" polynomial
// basis, held as two big-endian 64-bit halves.
struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

U128 load_u128(const std::uint8_t b[16]) {
  U128 v;
  for (int i = 0; i < 8; ++i) v.hi = (v.hi << 8) | b[i];
  for (int i = 8; i < 16; ++i) v.lo = (v.lo << 8) | b[i];
  return v;
}

void store_u128(const U128& v, std::uint8_t b[16]) {
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v.hi >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i) b[8 + i] = static_cast<std::uint8_t>(v.lo >> (56 - 8 * i));
}

U128 gf_mult(const U128& x, const U128& h) {
  U128 z;
  U128 v = h;
  for (int i = 0; i < 128; ++i) {
    const std::uint64_t bit =
        (i < 64) ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    if (bit) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    const std::uint64_t lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xe100000000000000ULL;  // x^128 + x^7 + x^2 + x + 1
  }
  return z;
}

class Ghash {
 public:
  explicit Ghash(const std::uint8_t h[16]) : h_(load_u128(h)) {}

  /// Absorb data, zero-padding the final partial block of this segment
  /// (GCM pads AAD and ciphertext segments independently).
  void absorb_padded(ByteView data) {
    std::size_t off = 0;
    while (off < data.size()) {
      std::uint8_t block[16] = {0};
      const std::size_t take = std::min<std::size_t>(16, data.size() - off);
      std::memcpy(block, data.data() + off, take);
      absorb_block(block);
      off += take;
    }
  }

  void absorb_lengths(std::uint64_t aad_len, std::uint64_t data_len) {
    std::uint8_t block[16];
    const std::uint64_t aad_bits = aad_len * 8;
    const std::uint64_t data_bits = data_len * 8;
    for (int i = 0; i < 8; ++i) {
      block[i] = static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
      block[8 + i] = static_cast<std::uint8_t>(data_bits >> (56 - 8 * i));
    }
    absorb_block(block);
  }

  void digest(std::uint8_t out[16]) const { store_u128(y_, out); }

 private:
  void absorb_block(const std::uint8_t block[16]) {
    const U128 b = load_u128(block);
    y_.hi ^= b.hi;
    y_.lo ^= b.lo;
    y_ = gf_mult(y_, h_);
  }

  U128 h_;
  U128 y_;
};

void inc32(std::uint8_t block[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++block[i] != 0) break;
  }
}

/// CTR-mode keystream application starting from counter block `ctr`
/// (which is advanced past the processed blocks).
void ctr_crypt(const Aes& cipher, std::uint8_t ctr[16], ByteView in,
               std::uint8_t* out) {
  std::size_t off = 0;
  std::uint8_t keystream[16];
  while (off < in.size()) {
    cipher.encrypt_block(ctr, keystream);
    inc32(ctr);
    const std::size_t take = std::min<std::size_t>(16, in.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] = in[off + i] ^ keystream[i];
    off += take;
  }
  secure_zero(keystream, sizeof(keystream));
}

void make_j0(ByteView iv, std::uint8_t j0[16]) {
  if (iv.size() != kGcmIvSize) throw CryptoError("AesGcm: IV must be 12 bytes");
  std::memcpy(j0, iv.data(), kGcmIvSize);
  j0[12] = j0[13] = j0[14] = 0;
  j0[15] = 1;
}

void scalar_gcm(ByteView key, ByteView iv, ByteView aad, ByteView data,
                bool encrypting, std::uint8_t* out, std::uint8_t tag[16]) {
  const Aes cipher(key);

  std::uint8_t h[16];
  const std::uint8_t zero[16] = {0};
  cipher.encrypt_block(zero, h);

  std::uint8_t j0[16];
  make_j0(iv, j0);
  std::uint8_t ej0[16];
  cipher.encrypt_block(j0, ej0);

  std::uint8_t ctr[16];
  std::memcpy(ctr, j0, 16);
  inc32(ctr);
  ctr_crypt(cipher, ctr, data, out);

  // GHASH runs over the *ciphertext*: what we just produced when encrypting,
  // the input when decrypting.
  const ByteView ct = encrypting ? ByteView(out, data.size()) : data;
  Ghash ghash(h);
  ghash.absorb_padded(aad);
  ghash.absorb_padded(ct);
  ghash.absorb_lengths(aad.size(), ct.size());
  ghash.digest(tag);
  for (int i = 0; i < 16; ++i) tag[i] ^= ej0[i];

  // h, E(j0), and the counter chain are all key-derived; scrub them.
  secure_zero(h, sizeof(h));
  secure_zero(j0, sizeof(j0));
  secure_zero(ej0, sizeof(ej0));
  secure_zero(ctr, sizeof(ctr));
}

}  // namespace

AesGcm::AesGcm(ByteView key, Impl impl) : key_(secret::Buffer::copy_of(key)) {
  if (key.size() != kAes128KeySize && key.size() != kAes256KeySize) {
    throw CryptoError("AesGcm: key must be 16 or 32 bytes");
  }
  use_hw_ = impl == Impl::kAuto && key.size() == kAes128KeySize &&
            hw::gcm128_available();
}

AesGcm::AesGcm(const secret::Buffer& key, Impl impl)
    : AesGcm(key.reveal_for(secret::Purpose::of("aes_key_schedule")), impl) {}

Bytes AesGcm::seal(ByteView iv, ByteView aad, ByteView plaintext) const {
  const ByteView key = key_.reveal_for(secret::Purpose::of("aes_key_schedule"));
  Bytes out(plaintext.size() + kGcmTagSize);
  if (use_hw_) {
    if (iv.size() != kGcmIvSize) throw CryptoError("AesGcm: IV must be 12 bytes");
    hw::gcm128_encrypt(key.data(), iv.data(), aad, plaintext, out.data(),
                       out.data() + plaintext.size());
  } else {
    scalar_gcm(key, iv, aad, plaintext, /*encrypting=*/true, out.data(),
               out.data() + plaintext.size());
  }
  return out;
}

std::optional<Bytes> AesGcm::open(ByteView iv, ByteView aad,
                                  ByteView ciphertext_and_tag) const {
  if (ciphertext_and_tag.size() < kGcmTagSize) return std::nullopt;
  const ByteView ct = ciphertext_and_tag.first(ciphertext_and_tag.size() - kGcmTagSize);
  const ByteView tag = ciphertext_and_tag.last(kGcmTagSize);

  const ByteView key = key_.reveal_for(secret::Purpose::of("aes_key_schedule"));
  Bytes pt(ct.size());
  if (use_hw_) {
    if (iv.size() != kGcmIvSize) throw CryptoError("AesGcm: IV must be 12 bytes");
    if (!hw::gcm128_decrypt(key.data(), iv.data(), aad, ct, tag.data(),
                            pt.data())) {
      secure_zero(pt.data(), pt.size());
      return std::nullopt;
    }
    return pt;
  }
  std::uint8_t expected_tag[16];
  scalar_gcm(key, iv, aad, ct, /*encrypting=*/false, pt.data(), expected_tag);
  if (!ct_equal(ByteView(expected_tag, 16), tag)) {
    secure_zero(pt.data(), pt.size());
    return std::nullopt;
  }
  return pt;
}

Bytes gcm_encrypt(ByteView key, ByteView aad, ByteView plaintext, Drbg& drbg) {
  const AesGcm gcm(key);
  Bytes envelope = drbg.bytes(kGcmIvSize);
  Bytes ct = gcm.seal(envelope, aad, plaintext);
  envelope.insert(envelope.end(), ct.begin(), ct.end());
  return envelope;
}

std::optional<Bytes> gcm_decrypt(ByteView key, ByteView aad, ByteView envelope) {
  if (envelope.size() < kGcmIvSize + kGcmTagSize) return std::nullopt;
  const AesGcm gcm(key);
  return gcm.open(envelope.first(kGcmIvSize), aad,
                  envelope.subspan(kGcmIvSize));
}

Bytes gcm_encrypt(const secret::Buffer& key, ByteView aad, ByteView plaintext,
                  Drbg& drbg) {
  const AesGcm gcm(key);
  Bytes envelope = drbg.bytes(kGcmIvSize);
  Bytes ct = gcm.seal(envelope, aad, plaintext);
  envelope.insert(envelope.end(), ct.begin(), ct.end());
  return envelope;
}

std::optional<Bytes> gcm_decrypt(const secret::Buffer& key, ByteView aad,
                                 ByteView envelope) {
  if (envelope.size() < kGcmIvSize + kGcmTagSize) return std::nullopt;
  const AesGcm gcm(key);
  return gcm.open(envelope.first(kGcmIvSize), aad,
                  envelope.subspan(kGcmIvSize));
}

}  // namespace speed::crypto
