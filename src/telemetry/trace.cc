#include "telemetry/trace.h"

namespace speed::telemetry {

const char* call_outcome_name(CallOutcome o) {
  switch (o) {
    case CallOutcome::kLocalHit: return "local_hit";
    case CallOutcome::kStoreHit: return "store_hit";
    case CallOutcome::kMiss: return "miss";
    case CallOutcome::kFailedRecovery: return "failed_recovery";
    case CallOutcome::kDegraded: return "degraded";
    case CallOutcome::kCount: break;
  }
  return "unknown";
}

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kTagDerive: return "tag_derive";
    case Stage::kCacheLookup: return "cache_lookup";
    case Stage::kStoreGet: return "store_get";
    case Stage::kRecover: return "recover";
    case Stage::kCompute: return "compute";
    case Stage::kPutEnqueue: return "put_enqueue";
    case Stage::kCount: break;
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

TraceRing& TraceRing::global() {
  static TraceRing ring;
  return ring;
}

void TraceRing::push(TraceRecord record) {
  MutexLock lock(mu_);
  const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
  record.id = n;
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[n % capacity_] = record;
  }
  pushed_.store(n + 1, std::memory_order_relaxed);
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  MutexLock lock(mu_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(n + i) % capacity_]);
    }
  }
  return out;
}

TraceSpan::~TraceSpan() {
  if (ring_ == nullptr) return;
  record_.total_ns = sw_.elapsed_ns();
  ring_->push(record_);
}

}  // namespace speed::telemetry
