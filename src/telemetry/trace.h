// Lightweight per-call request tracing.
//
// A TraceSpan follows one marked call through the runtime's pipeline —
// tag derivation, in-enclave cache lookup, the secure GET round trip,
// recovery/decryption, local compute, PUT enqueue — and records stage
// wall-clock timings plus the call's outcome. Completed spans land in a
// bounded in-memory ring of recent traces (oldest evicted first), exported
// as JSON by the admin endpoint (/traces.json).
//
// Redaction: a trace carries ONLY stage durations, the outcome enum, and
// the result size. No tag, key, input, or identity bytes exist in the
// record type, so the ring cannot leak them (see telemetry/label.h for the
// matching label-side guarantee).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/annotated_lock.h"
#include "common/clock.h"

namespace speed::telemetry {

/// How a marked call was ultimately served (app-visible classification).
enum class CallOutcome : std::uint8_t {
  kLocalHit = 0,       ///< served from the in-enclave result cache
  kStoreHit,           ///< served from the dedup store
  kMiss,               ///< store had no entry; computed + PUT
  kFailedRecovery,     ///< entry present but not decryptable; recomputed
  kDegraded,           ///< store unreachable; computed locally
  kCount,
};

const char* call_outcome_name(CallOutcome o);

/// Pipeline stages a span can time.
enum class Stage : std::uint8_t {
  kTagDerive = 0,
  kCacheLookup,
  kStoreGet,     ///< the secure GET round trip
  kRecover,      ///< unwrap + decrypt of a store hit
  kCompute,      ///< local computation (miss/degrade/failed-recovery)
  kPutEnqueue,
  kCount,
};

const char* stage_name(Stage s);

struct TraceRecord {
  std::uint64_t id = 0;  ///< monotonically increasing per ring
  CallOutcome outcome = CallOutcome::kMiss;
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(Stage::kCount)> stage_ns{};
  std::uint64_t result_bytes = 0;
};

/// Bounded ring of recent traces. push() is one short mutex hold per
/// completed call; snapshot() copies out oldest-to-newest.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 512);

  /// The process-wide ring the runtime feeds by default.
  static TraceRing& global();

  void push(TraceRecord record);
  std::vector<TraceRecord> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Total spans ever pushed (ring position of the newest record).
  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }

 private:
  const std::size_t capacity_;
  // Rank 900 (leaf-1): spans are pushed from arbitrary contexts, including
  // under shard/WAL/server locks, so nothing below kCryptoDrbg nests inside.
  mutable Mutex mu_{LockRank::kTrace};
  /// ring_[pushed_ % capacity_] = next slot
  std::vector<TraceRecord> ring_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> pushed_{0};
};

/// RAII span: construct at call entry, stamp stages/outcome along the way;
/// the destructor finalizes the total and pushes into the ring. A null ring
/// disables the span (no clock reads beyond construction).
class TraceSpan {
 public:
  explicit TraceSpan(TraceRing* ring) : ring_(ring) {}
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool enabled() const { return ring_ != nullptr; }
  void add_stage_ns(Stage stage, std::uint64_t ns) {
    record_.stage_ns[static_cast<std::size_t>(stage)] += ns;
  }
  void set_outcome(CallOutcome outcome) { record_.outcome = outcome; }
  void set_result_bytes(std::uint64_t bytes) { record_.result_bytes = bytes; }

  /// Times one stage over its scope (no-op when the span is disabled).
  class StageTimer {
   public:
    StageTimer(TraceSpan& span, Stage stage) : span_(span), stage_(stage) {}
    ~StageTimer() {
      if (span_.enabled()) span_.add_stage_ns(stage_, sw_.elapsed_ns());
    }
    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;

   private:
    TraceSpan& span_;
    Stage stage_;
    Stopwatch sw_;
  };

 private:
  TraceRing* ring_;
  TraceRecord record_;
  Stopwatch sw_;
};

}  // namespace speed::telemetry
