#include "telemetry/registry.h"

#include <algorithm>

namespace speed::telemetry {

namespace {

/// Canonical key for sample merging: rendered labels in emission order.
/// Collectors emit a given metric with a fixed label ordering, so this is
/// stable without sorting.
std::string label_fingerprint(const LabelSet& labels) {
  std::string key;
  for (const Label& l : labels) {
    key += l.key.str();
    key += '=';
    key += l.value.str();
    key += ';';
  }
  return key;
}

}  // namespace

Sample& SampleSink::upsert(MetricName name, const char* help, MetricType type,
                           LabelSet&& labels) {
  const auto [it, inserted] = index_.try_emplace(name.str(), families_.size());
  if (inserted) {
    Family f;
    f.name = name.str();
    f.help = help;
    f.type = type;
    families_.push_back(std::move(f));
  }
  Family& family = families_[it->second];
  const std::string fp = label_fingerprint(labels);
  for (Sample& s : family.samples) {
    if (label_fingerprint(s.labels) == fp) return s;
  }
  Sample s;
  s.labels = std::move(labels);
  family.samples.push_back(std::move(s));
  return family.samples.back();
}

void SampleSink::counter(MetricName name, const char* help, LabelSet labels,
                         std::uint64_t value) {
  upsert(name, help, MetricType::kCounter, std::move(labels)).value +=
      static_cast<std::int64_t>(value);
}

void SampleSink::gauge(MetricName name, const char* help, LabelSet labels,
                       std::int64_t value) {
  upsert(name, help, MetricType::kGauge, std::move(labels)).value += value;
}

void SampleSink::histogram(MetricName name, const char* help, LabelSet labels,
                           const Histogram& h) {
  upsert(name, help, MetricType::kHistogram, std::move(labels))
      .hist.merge(h.snapshot());
}

std::vector<Family> SampleSink::take_families() {
  std::sort(families_.begin(), families_.end(),
            [](const Family& a, const Family& b) { return a.name < b.name; });
  index_.clear();
  return std::move(families_);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Handle& Registry::Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void Registry::Handle::reset() {
  if (registry_ != nullptr) {
    registry_->remove_collector(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

Registry::Handle Registry::add_collector(Collector collector) {
  MutexLock lock(mu_);
  const std::uint64_t id = next_id_++;
  collectors_.emplace(id, std::move(collector));
  return Handle(this, id);
}

void Registry::remove_collector(std::uint64_t id) {
  MutexLock lock(mu_);
  collectors_.erase(id);
}

std::vector<Family> Registry::collect() const {
  MutexLock lock(mu_);
  SampleSink sink;
  for (const auto& [id, collector] : collectors_) collector(sink);
  return sink.take_families();
}

}  // namespace speed::telemetry
