// Admin exposition endpoint.
//
// A tiny HTTP/1.0 server (one short-lived connection at a time, loopback by
// default) serving the telemetry surface:
//
//   GET /metrics        Prometheus text format 0.0.4
//   GET /snapshot.json  full registry snapshot (buckets summarized)
//   GET /traces.json    the recent-trace ring
//   GET /healthz        "ok"
//
// Deliberately self-contained over raw POSIX sockets rather than reusing
// src/net: the secure channel stack is itself instrumented, so telemetry
// must sit below it in the dependency order. The admin port speaks
// plaintext and therefore must never expose anything beyond the redacted
// registry/trace surface (telemetry/label.h, telemetry/trace.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace speed::telemetry {

/// Starts serving on construction, joins its thread on destruction.
/// Port 0 binds an ephemeral port; read it back with port().
class AdminServer {
 public:
  explicit AdminServer(std::uint16_t port = 0,
                       const Registry* registry = &Registry::global(),
                       const TraceRing* traces = &TraceRing::global());
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);
  std::string respond(const std::string& request_line) const;

  const Registry* registry_;
  const TraceRing* traces_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace speed::telemetry
