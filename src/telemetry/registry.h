// Process-wide metrics registry.
//
// The registry is a rendezvous, not a datastore: components (a ResultStore,
// a DedupRuntime, a ResilientTransport, the SGX platform) own their metric
// cells (telemetry/metrics.h) and register a *collector* — a callback that
// emits the cells' current values as named, labelled samples. A scrape runs
// every collector and merges samples that share (name, labels): counters
// and gauges add, histograms merge bucket-wise. Two stores in one process
// therefore export one `speed_store_*` series per shard index, exactly the
// Prometheus process-wide model, while each component keeps its private
// cells for the exact per-instance Stats views the tests assert on.
//
// Collectors deregister via RAII handles; a component must declare its
// Handle after the cells it reads so deregistration (which waits out any
// in-flight scrape) happens before the cells are destroyed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/annotated_lock.h"
#include "telemetry/label.h"
#include "telemetry/metrics.h"

namespace speed::telemetry {

enum class MetricType { kCounter, kGauge, kHistogram };

/// One exported time series at scrape time.
struct Sample {
  LabelSet labels;
  std::int64_t value = 0;   ///< counters / gauges
  HistogramSnapshot hist;   ///< histograms
};

/// All samples sharing a metric name.
struct Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<Sample> samples;
};

/// What a collector writes into. Merging by (name, labels) happens here.
class SampleSink {
 public:
  void counter(MetricName name, const char* help, LabelSet labels,
               std::uint64_t value);
  void gauge(MetricName name, const char* help, LabelSet labels,
             std::int64_t value);
  void histogram(MetricName name, const char* help, LabelSet labels,
                 const Histogram& h);

  std::vector<Family> take_families();

 private:
  Sample& upsert(MetricName name, const char* help, MetricType type,
                 LabelSet&& labels);

  std::vector<Family> families_;
  std::map<std::string, std::size_t> index_;  ///< name -> families_ slot
};

class Registry {
 public:
  using Collector = std::function<void(SampleSink&)>;

  /// The process-wide registry every component registers with by default.
  static Registry& global();

  /// RAII deregistration. Destroying the handle blocks until any in-flight
  /// scrape finishes, so a collector never runs against a dead component.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { reset(); }

    void reset();

   private:
    friend class Registry;
    Handle(Registry* registry, std::uint64_t id)
        : registry_(registry), id_(id) {}
    Registry* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };

  [[nodiscard]] Handle add_collector(Collector collector);

  /// Run all collectors and return the merged families, sorted by name.
  std::vector<Family> collect() const;

 private:
  friend class Handle;
  void remove_collector(std::uint64_t id);

  // Rank 450: acquired under ClusterTransport::Link::mu (ResilientTransport
  // construction registers its breaker collector) and held across collector
  // callbacks that take the runtime cache/queue locks — see docs/LOCK_ORDER.md.
  mutable Mutex mu_{LockRank::kTelemetryRegistry};
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, Collector> collectors_ GUARDED_BY(mu_);
};

}  // namespace speed::telemetry
