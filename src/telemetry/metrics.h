// Lock-free metric primitives: counters, gauges, log-linear histograms.
//
// These are the storage cells components own directly (one per shard, per
// runtime, per transport); the Registry never stores values itself, it only
// gathers snapshots at scrape time. Everything here is a relaxed atomic —
// safe to bump from any thread, including inside simulated-enclave hot
// paths, without taking a lock or fencing the caller.
//
// The histogram uses log-linear buckets (HdrHistogram-style: 2^kSubBits
// linear sub-buckets per power-of-two octave), which buys three properties
// the latency-summary use case needs:
//
//   * bounded relative error (<= 1/2^kSubBits, ~6%) at every magnitude from
//     1 ns to ~18 minutes;
//   * O(1) record with no allocation;
//   * EXACT mergeability: bucket assignment is a pure function of the
//     value, so merging per-thread or per-shard histograms bucket-wise
//     yields bit-identical counts/sums to having recorded everything into
//     one histogram (property-tested in tests/telemetry_test.cc).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace speed::telemetry {

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Up/down gauge (bytes in use, queue depth, open breakers).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time copy of a histogram; mergeable and queryable.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  /// Bucket-wise addition; exact (see header comment).
  void merge(const HistogramSnapshot& other);

  /// Upper bound of the bucket containing the q-quantile observation
  /// (clamped to the recorded max). q in [0, 1]; returns 0 when empty.
  std::uint64_t quantile(double q) const;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Lock-free log-linear histogram of non-negative integer observations
/// (latencies in nanoseconds, sizes in bytes).
class Histogram {
 public:
  static constexpr int kSubBits = 4;            ///< 16 sub-buckets per octave
  static constexpr std::uint64_t kSub = 1ull << kSubBits;
  static constexpr int kOctaves = 36;           ///< covers up to 2^40 (~18 min in ns)
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kOctaves + 1) * kSub;

  /// Deterministic bucket for a value (the merge-exactness anchor).
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int e = std::bit_width(v) - kSubBits;
    if (e > kOctaves) return kBuckets - 1;
    const std::uint64_t sub = (v >> (e - 1)) - kSub;
    return static_cast<std::size_t>(e) * kSub + static_cast<std::size_t>(sub);
  }

  /// Largest value mapping to bucket `i` (quantile read-out point).
  static std::uint64_t bucket_upper_bound(std::size_t i) {
    if (i < kSub) return i;
    const std::uint64_t e = i / kSub;
    const std::uint64_t sub = i % kSub;
    const std::uint64_t lower = (kSub + sub) << (e - 1);
    return lower + ((1ull << (e - 1)) - 1);
  }

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace speed::telemetry
