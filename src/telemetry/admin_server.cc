#include "telemetry/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "telemetry/exposition.h"

namespace speed::telemetry {

namespace {

void send_all(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing to do
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

AdminServer::AdminServer(std::uint16_t port, const Registry* registry,
                         const TraceRing* traces)
    : registry_(registry), traces_(traces) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("admin socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Loopback only: the page is redacted, but there is no reason to serve
  // plaintext metrics off-host by default.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("admin bind/listen: ") +
                             std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  thread_ = std::thread([this] { serve_loop(); });
}

AdminServer::~AdminServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or unrecoverable) — exit the loop
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void AdminServer::handle_connection(int fd) {
  // A scrape request fits comfortably in one read; don't linger on clients
  // that trickle bytes.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  char buf[2048];
  std::string request;
  while (request.find("\r\n") == std::string::npos &&
         request.size() < sizeof(buf)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t eol = request.find("\r\n");
  if (eol == std::string::npos) return;  // no request line — drop silently

  requests_.fetch_add(1, std::memory_order_relaxed);
  send_all(fd, respond(request.substr(0, eol)));
  ::shutdown(fd, SHUT_WR);
}

std::string AdminServer::respond(const std::string& request_line) const {
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request_line.substr(0, sp1) != "GET") {
    return http_response("405 Method Not Allowed", "text/plain",
                         "only GET is supported\n");
  }
  const std::string path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (path == "/metrics") {
    return http_response("200 OK", "text/plain; version=0.0.4",
                         render_prometheus(*registry_));
  }
  if (path == "/snapshot.json") {
    return http_response("200 OK", "application/json",
                         snapshot_json(*registry_));
  }
  if (path == "/traces.json") {
    return http_response("200 OK", "application/json", traces_json(*traces_));
  }
  if (path == "/healthz" || path == "/") {
    return http_response("200 OK", "text/plain", "ok\n");
  }
  return http_response("404 Not Found", "text/plain", "not found\n");
}

}  // namespace speed::telemetry
