#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

namespace speed::telemetry {

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) {
      return std::min(Histogram::bucket_upper_bound(i), max);
    }
  }
  return max;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace speed::telemetry
