// Telemetry labels with a compile-time redaction whitelist.
//
// SPEED's security argument (PROTOCOL.md §5) depends on nothing derived
// from tags, wrapped keys, or application inputs ever leaving the trust
// boundary except as AEAD ciphertext. An observability layer is the easiest
// place to violate that by accident — one `labels({"tag", hex(tag)})` and a
// /metrics scrape leaks the dedup index to anyone on the admin port.
//
// The whitelist is therefore structural, not reviewed-by-convention:
//
//   * label KEYS and literal VALUES can only be built through consteval
//     factories, so they must be compile-time string constants drawn from a
//     restricted charset — runtime bytes (tags, keys, inputs, peer data)
//     cannot reach them by construction;
//   * the only runtime-valued labels are small unsigned integers
//     (LabelValue::index — shard numbers, thread counts), which cannot
//     encode a 32-byte secret.
//
// A scrape-side test (tests/telemetry_test.cc) re-checks the rendered page
// against the same charset, so even a future bypass of these types would be
// caught at the boundary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace speed::telemetry {

namespace detail {
/// Charset for exported names and literal label values. Deliberately has no
/// room for hex blobs of secrets to look "normal": reviewers see any
/// whitelisted literal in the source next to its consteval call site.
consteval bool whitelisted_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '.';
}

consteval const char* checked_literal(const char* s) {
  if (s == nullptr || *s == '\0') throw "telemetry label: empty literal";
  for (const char* p = s; *p != '\0'; ++p) {
    if (!whitelisted_char(*p)) {
      throw "telemetry label: character outside [a-z0-9_.]";
    }
  }
  return s;
}
}  // namespace detail

/// A label key. Only constructible from a compile-time literal.
class LabelKey {
 public:
  static consteval LabelKey of(const char* key) {
    return LabelKey(detail::checked_literal(key));
  }
  const char* str() const { return key_; }

 private:
  constexpr explicit LabelKey(const char* key) : key_(key) {}
  const char* key_;
};

/// A label value: either a compile-time literal (app-visible enum names,
/// outcome names, scheme names) or a small runtime integer (shard index).
class LabelValue {
 public:
  static consteval LabelValue lit(const char* value) {
    return LabelValue(detail::checked_literal(value), 0);
  }
  static constexpr LabelValue index(std::uint64_t value) {
    return LabelValue(nullptr, value);
  }

  std::string str() const {
    return literal_ != nullptr ? std::string(literal_)
                               : std::to_string(index_);
  }

 private:
  constexpr LabelValue(const char* literal, std::uint64_t index)
      : literal_(literal), index_(index) {}
  const char* literal_;
  std::uint64_t index_;
};

struct Label {
  LabelKey key;
  LabelValue value;
};

using LabelSet = std::vector<Label>;

/// Metric (family) name; same compile-time charset guarantee as labels.
class MetricName {
 public:
  consteval MetricName(const char* name)  // NOLINT: implicit by design
      : name_(detail::checked_literal(name)) {}
  const char* str() const { return name_; }

 private:
  const char* name_;
};

}  // namespace speed::telemetry
