// Rendering the registry and trace ring for export.
//
//   * render_prometheus — Prometheus text exposition format 0.0.4.
//     Counters and gauges render as-is; histograms render as summaries
//     (p50/p95/p99 quantile series + _sum/_count) plus a companion
//     `<name>_max` gauge family, which keeps the page compact while the
//     full log-linear buckets stay available through snapshot_json.
//   * snapshot_json — machine-readable snapshot for benches and tooling
//     (bench/run_benches.sh drops one next to each BENCH_*.json).
//   * traces_json — the recent-trace ring for /traces.json.
//
// Everything rendered here has passed the label whitelist (telemetry/
// label.h); these functions add no data of their own.
#pragma once

#include <string>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace speed::telemetry {

std::string render_prometheus(const Registry& registry = Registry::global());

std::string snapshot_json(const Registry& registry = Registry::global());

std::string traces_json(const TraceRing& ring = TraceRing::global());

}  // namespace speed::telemetry
