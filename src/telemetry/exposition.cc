#include "telemetry/exposition.h"

#include <cstdio>

namespace speed::telemetry {

namespace {

constexpr double kQuantiles[] = {0.5, 0.95, 0.99};
constexpr const char* kQuantileNames[] = {"0.5", "0.95", "0.99"};

/// Label values are whitelisted to [a-z0-9_.] so escaping is a formality,
/// but render defensively anyway.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string prom_labels(const LabelSet& labels, const char* extra_key = nullptr,
                        const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key.str();
    out += "=\"";
    out += escape_label_value(l.value.str());
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

void append_line(std::string& out, const std::string& name,
                 const std::string& labels, std::int64_t value) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_prometheus(const Registry& registry) {
  const std::vector<Family> families = registry.collect();
  std::string out;
  for (const Family& f : families) {
    out += "# HELP " + f.name + " " + f.help + "\n";
    switch (f.type) {
      case MetricType::kCounter:
        out += "# TYPE " + f.name + " counter\n";
        for (const Sample& s : f.samples) {
          append_line(out, f.name, prom_labels(s.labels), s.value);
        }
        break;
      case MetricType::kGauge:
        out += "# TYPE " + f.name + " gauge\n";
        for (const Sample& s : f.samples) {
          append_line(out, f.name, prom_labels(s.labels), s.value);
        }
        break;
      case MetricType::kHistogram: {
        out += "# TYPE " + f.name + " summary\n";
        for (const Sample& s : f.samples) {
          for (std::size_t q = 0; q < std::size(kQuantiles); ++q) {
            append_line(out, f.name,
                        prom_labels(s.labels, "quantile", kQuantileNames[q]),
                        static_cast<std::int64_t>(s.hist.quantile(kQuantiles[q])));
          }
          append_line(out, f.name + "_sum", prom_labels(s.labels),
                      static_cast<std::int64_t>(s.hist.sum));
          append_line(out, f.name + "_count", prom_labels(s.labels),
                      static_cast<std::int64_t>(s.hist.count));
        }
        out += "# HELP " + f.name + "_max " + f.help + " (max)\n";
        out += "# TYPE " + f.name + "_max gauge\n";
        for (const Sample& s : f.samples) {
          append_line(out, f.name + "_max", prom_labels(s.labels),
                      static_cast<std::int64_t>(s.hist.max));
        }
        break;
      }
    }
  }
  return out;
}

std::string snapshot_json(const Registry& registry) {
  const std::vector<Family> families = registry.collect();
  std::string out = "{\"families\": [";
  bool first_family = true;
  for (const Family& f : families) {
    if (!first_family) out += ", ";
    first_family = false;
    const char* type = f.type == MetricType::kCounter   ? "counter"
                       : f.type == MetricType::kGauge   ? "gauge"
                                                        : "histogram";
    out += "{\"name\": \"" + json_escape(f.name) + "\", \"type\": \"" + type +
           "\", \"help\": \"" + json_escape(f.help) + "\", \"samples\": [";
    bool first_sample = true;
    for (const Sample& s : f.samples) {
      if (!first_sample) out += ", ";
      first_sample = false;
      out += "{\"labels\": {";
      bool first_label = true;
      for (const Label& l : s.labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += '"';
        out += json_escape(l.key.str());
        out += "\": \"";
        out += json_escape(l.value.str());
        out += '"';
      }
      out += "}";
      if (f.type == MetricType::kHistogram) {
        out += ", \"count\": " + std::to_string(s.hist.count);
        out += ", \"sum\": " + std::to_string(s.hist.sum);
        out += ", \"max\": " + std::to_string(s.hist.max);
        out += ", \"p50\": " + std::to_string(s.hist.quantile(0.5));
        out += ", \"p95\": " + std::to_string(s.hist.quantile(0.95));
        out += ", \"p99\": " + std::to_string(s.hist.quantile(0.99));
      } else {
        out += ", \"value\": " + std::to_string(s.value);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string traces_json(const TraceRing& ring) {
  const std::vector<TraceRecord> records = ring.snapshot();
  std::string out = "{\"capacity\": " + std::to_string(ring.capacity()) +
                    ", \"pushed\": " + std::to_string(ring.pushed()) +
                    ", \"traces\": [";
  bool first = true;
  for (const TraceRecord& r : records) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": " + std::to_string(r.id);
    out += ", \"outcome\": \"";
    out += call_outcome_name(r.outcome);
    out += "\", \"total_ns\": " + std::to_string(r.total_ns);
    out += ", \"result_bytes\": " + std::to_string(r.result_bytes);
    out += ", \"stages\": {";
    bool first_stage = true;
    for (std::size_t s = 0; s < r.stage_ns.size(); ++s) {
      if (r.stage_ns[s] == 0) continue;  // only stages the call went through
      if (!first_stage) out += ", ";
      first_stage = false;
      out += "\"";
      out += stage_name(static_cast<Stage>(s));
      out += "\": " + std::to_string(r.stage_ns[s]);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace speed::telemetry
