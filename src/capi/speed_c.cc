#include "capi/speed_c.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "runtime/speed.h"
#include "store/file_backend.h"
#include "telemetry/exposition.h"

namespace {

using namespace speed;

}  // namespace

struct speed_deployment {
  speed_deployment() = default;
  /// Durable form: a hardware root key derived from `seed` (the store
  /// directory), so sealed WAL records written before a process restart
  /// stay readable after it.
  explicit speed_deployment(ByteView seed)
      : platform(sgx::CostModel{}, seed) {}

  sgx::Platform platform;
  std::unique_ptr<store::ResultStore> store;
  std::unique_ptr<store::InprocCluster> cluster;  // cluster deployments only
  std::unique_ptr<sgx::Enclave> enclave;
  std::unique_ptr<store::StoreSession> session;  // server side of the channel
  std::shared_ptr<net::ClusterTransport> cluster_transport;
  // Declared after the store/cluster/session it talks to: destroyed first.
  std::unique_ptr<runtime::DedupRuntime> rt;
  std::string last_error;
};

struct speed_function {
  speed_deployment* dep;
  mle::FunctionIdentity identity;
  speed_compute_fn fn;
  void* user_data;
  bool last_deduplicated = false;
};

struct speed_stream {
  speed_deployment* dep;
  runtime::StreamSession session;
};

namespace {

int fail(speed_deployment* dep, int code, const std::string& what) {
  if (dep != nullptr) dep->last_error = what;
  return code;
}

/// malloc-copy `data` into (*out, *out_len); empty data still allocates one
/// byte so callers always get a freeable pointer.
int copy_out(speed_deployment* dep, ByteView data, uint8_t** out,
             size_t* out_len) {
  uint8_t* buffer =
      static_cast<uint8_t*>(std::malloc(data.empty() ? 1 : data.size()));
  if (buffer == nullptr) return fail(dep, SPEED_ERR_INTERNAL, "out of memory");
  if (!data.empty()) std::memcpy(buffer, data.data(), data.size());
  *out = buffer;
  *out_len = data.size();
  return SPEED_OK;
}

/// Shared tail of both deployment constructors: application enclave,
/// attested channel, runtime.
void wire_runtime(speed_deployment& dep, const char* app_identity) {
  dep.enclave = dep.platform.create_enclave(app_identity);
  auto conn = store::connect_app(*dep.store, *dep.enclave);
  // The server session must outlive the runtime (declaration order in
  // speed_deployment guarantees destruction order).
  dep.session = std::move(conn.session);
  dep.rt = std::make_unique<runtime::DedupRuntime>(
      *dep.enclave, std::move(conn.session_key), std::move(conn.transport));
}

}  // namespace

extern "C" {

speed_deployment* speed_deployment_create(const char* app_identity) {
  if (app_identity == nullptr) return nullptr;
  try {
    auto dep = std::make_unique<speed_deployment>();
    dep->store = std::make_unique<store::ResultStore>(dep->platform);
    wire_runtime(*dep, app_identity);
    return dep.release();
  } catch (const std::exception&) {
    return nullptr;
  }
}

speed_deployment* speed_deployment_create_durable(const char* app_identity,
                                                  const char* store_dir,
                                                  size_t fsync_every) {
  if (app_identity == nullptr || store_dir == nullptr ||
      store_dir[0] == '\0') {
    return nullptr;
  }
  try {
    const std::string dir(store_dir);
    auto dep = std::make_unique<speed_deployment>(
        ByteView(reinterpret_cast<const std::uint8_t*>(dir.data()),
                 dir.size()));
    store::FileBackendConfig file_config;
    file_config.fsync_every = fsync_every == 0 ? 1 : fsync_every;
    dep->store = store::open_result_store(dep->platform, dir,
                                          store::StoreConfig{}, file_config);
    wire_runtime(*dep, app_identity);
    return dep.release();
  } catch (const std::exception&) {
    return nullptr;
  }
}

int speed_store_degraded(const speed_deployment* dep) {
  return (dep != nullptr && dep->store != nullptr && dep->store->degraded())
             ? 1
             : 0;
}

speed_deployment* speed_deployment_create_cluster(const char* app_identity,
                                                  size_t nodes,
                                                  size_t replicas) {
  if (app_identity == nullptr || nodes == 0) return nullptr;
  try {
    auto dep = std::make_unique<speed_deployment>();
    store::InprocClusterConfig cluster_config;
    cluster_config.nodes = nodes;
    cluster_config.cluster.replicas = std::min(replicas, nodes - 1);
    dep->cluster = std::make_unique<store::InprocCluster>(dep->platform,
                                                          cluster_config);
    dep->enclave = dep->platform.create_enclave(app_identity);
    dep->cluster_transport = dep->cluster->connect(*dep->enclave);
    dep->rt = std::make_unique<runtime::DedupRuntime>(*dep->enclave,
                                                      dep->cluster_transport);
    return dep.release();
  } catch (const std::exception&) {
    return nullptr;
  }
}

size_t speed_cluster_node_count(const speed_deployment* dep) {
  return (dep != nullptr && dep->cluster != nullptr)
             ? dep->cluster->node_count()
             : 0;
}

size_t speed_cluster_nodes_up(const speed_deployment* dep) {
  if (dep == nullptr || dep->cluster == nullptr) return 0;
  size_t up = 0;
  for (size_t i = 0; i < dep->cluster->node_count(); ++i) {
    if (dep->cluster->alive(i)) ++up;
  }
  return up;
}

int speed_cluster_kill(speed_deployment* dep, size_t node) {
  if (dep == nullptr || dep->cluster == nullptr ||
      node >= dep->cluster->node_count()) {
    return fail(dep, SPEED_ERR_INVALID_ARGUMENT, "no such cluster node");
  }
  dep->cluster->kill(node);
  return SPEED_OK;
}

int speed_cluster_restart(speed_deployment* dep, size_t node) {
  if (dep == nullptr || dep->cluster == nullptr ||
      node >= dep->cluster->node_count()) {
    return fail(dep, SPEED_ERR_INVALID_ARGUMENT, "no such cluster node");
  }
  try {
    if (!dep->cluster->restart(node)) {
      return fail(dep, SPEED_ERR_INTERNAL,
                  "restarted node failed re-attestation");
    }
    dep->cluster->rejoin(node);
    return SPEED_OK;
  } catch (const std::exception& e) {
    return fail(dep, SPEED_ERR_INTERNAL, e.what());
  }
}

void speed_deployment_destroy(speed_deployment* dep) { delete dep; }

int speed_register_library(speed_deployment* dep, const char* family,
                           const char* version, const uint8_t* code,
                           size_t code_len) {
  if (dep == nullptr || family == nullptr || version == nullptr ||
      (code == nullptr && code_len > 0)) {
    return fail(dep, SPEED_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    dep->rt->libraries().register_library(family, version,
                                          ByteView(code, code_len));
    return SPEED_OK;
  } catch (const std::exception& e) {
    return fail(dep, SPEED_ERR_INTERNAL, e.what());
  }
}

int speed_flush(speed_deployment* dep) {
  if (dep == nullptr) return SPEED_ERR_INVALID_ARGUMENT;
  try {
    dep->rt->flush();
    if (dep->store != nullptr) dep->store->flush_backend();
    return SPEED_OK;
  } catch (const std::exception& e) {
    return fail(dep, SPEED_ERR_INTERNAL, e.what());
  }
}

const char* speed_last_error(const speed_deployment* dep) {
  return dep == nullptr ? "null deployment" : dep->last_error.c_str();
}

speed_function* speed_function_create(speed_deployment* dep,
                                      const char* family, const char* version,
                                      const char* signature,
                                      speed_compute_fn fn, void* user_data) {
  if (dep == nullptr || family == nullptr || version == nullptr ||
      signature == nullptr || fn == nullptr) {
    if (dep != nullptr) dep->last_error = "null argument";
    return nullptr;
  }
  try {
    auto f = std::make_unique<speed_function>();
    f->dep = dep;
    f->identity = dep->rt->resolve({family, version, signature});
    f->fn = fn;
    f->user_data = user_data;
    return f.release();
  } catch (const std::exception& e) {
    dep->last_error = e.what();
    return nullptr;
  }
}

void speed_function_destroy(speed_function* f) { delete f; }

int speed_call(speed_function* f, const uint8_t* input, size_t input_len,
               uint8_t** output, size_t* output_len) {
  if (f == nullptr || output == nullptr || output_len == nullptr ||
      (input == nullptr && input_len > 0)) {
    return fail(f != nullptr ? f->dep : nullptr, SPEED_ERR_INVALID_ARGUMENT,
                "null argument");
  }
  try {
    const ByteView in(input, input_len);
    const auto outcome = f->dep->rt->execute(f->identity, in, [&]() -> Bytes {
      uint8_t* cb_out = nullptr;
      size_t cb_len = 0;
      if (f->fn(input, input_len, &cb_out, &cb_len, f->user_data) != 0 ||
          (cb_out == nullptr && cb_len > 0)) {
        std::free(cb_out);
        throw Error("compute callback failed");
      }
      Bytes result(cb_out, cb_out + cb_len);
      std::free(cb_out);
      return result;
    });
    f->last_deduplicated = outcome.deduplicated;
    return copy_out(f->dep, outcome.result, output, output_len);
  } catch (const std::exception& e) {
    const bool compute_failed =
        std::string(e.what()).find("compute callback failed") != std::string::npos;
    return fail(f->dep,
                compute_failed ? SPEED_ERR_COMPUTE_FAILED : SPEED_ERR_INTERNAL,
                e.what());
  }
}

int speed_last_was_deduplicated(const speed_function* f) {
  return (f != nullptr && f->last_deduplicated) ? 1 : 0;
}

void speed_buffer_free(uint8_t* buffer) { std::free(buffer); }

speed_stream* speed_stream_create(speed_deployment* dep, const char* family,
                                  const char* version, const char* signature,
                                  size_t min_chunk, size_t avg_chunk,
                                  size_t max_chunk) {
  if (dep == nullptr || family == nullptr || version == nullptr ||
      signature == nullptr) {
    if (dep != nullptr) dep->last_error = "null argument";
    return nullptr;
  }
  try {
    runtime::StreamConfig config;
    if (min_chunk != 0) config.chunker.min_size = min_chunk;
    if (avg_chunk != 0) config.chunker.avg_size = avg_chunk;
    if (max_chunk != 0) config.chunker.max_size = max_chunk;
    mle::FunctionIdentity identity =
        dep->rt->resolve({family, version, signature});
    // speed_stream is an aggregate: the session is constructed in place.
    return new speed_stream{
        dep, runtime::StreamSession(*dep->rt, std::move(identity), config)};
  } catch (const std::exception& e) {
    dep->last_error = e.what();
    return nullptr;
  }
}

void speed_stream_destroy(speed_stream* s) { delete s; }

int speed_put_stream(speed_stream* s, const uint8_t* data, size_t data_len,
                     uint8_t** handle, size_t* handle_len) {
  if (s == nullptr || handle == nullptr || handle_len == nullptr ||
      (data == nullptr && data_len > 0)) {
    return fail(s != nullptr ? s->dep : nullptr, SPEED_ERR_INVALID_ARGUMENT,
                "null argument");
  }
  try {
    const runtime::StreamHandle h = s->session.put(ByteView(data, data_len));
    return copy_out(s->dep, h.serialize(), handle, handle_len);
  } catch (const std::exception& e) {
    return fail(s->dep, SPEED_ERR_INTERNAL, e.what());
  }
}

int speed_get_stream(speed_stream* s, const uint8_t* handle,
                     size_t handle_len, uint8_t** data, size_t* data_len) {
  if (s == nullptr || data == nullptr || data_len == nullptr ||
      handle == nullptr) {
    return fail(s != nullptr ? s->dep : nullptr, SPEED_ERR_INVALID_ARGUMENT,
                "null argument");
  }
  runtime::StreamHandle parsed;
  try {
    parsed = runtime::StreamHandle::deserialize(ByteView(handle, handle_len));
  } catch (const std::exception& e) {
    return fail(s->dep, SPEED_ERR_INVALID_ARGUMENT, e.what());
  }
  try {
    const Bytes plain = s->session.get(parsed);
    return copy_out(s->dep, plain, data, data_len);
  } catch (const std::exception& e) {
    return fail(s->dep, SPEED_ERR_INTERNAL, e.what());
  }
}

int speed_stream_stats_read(const speed_deployment* dep,
                            speed_stream_stats* out) {
  if (dep == nullptr || out == nullptr || dep->rt == nullptr) {
    return SPEED_ERR_INVALID_ARGUMENT;
  }
  const auto stats = dep->rt->stats();
  out->puts = stats.stream_puts;
  out->gets = stats.stream_gets;
  out->whole_hits = stats.stream_whole_hits;
  out->chunks = stats.stream_chunks;
  out->chunk_hits = stats.stream_chunk_hits;
  out->bytes_deduped = stats.stream_bytes_deduped;
  out->inline_chunks = stats.stream_inline_chunks;
  out->degraded = stats.stream_degraded;
  return SPEED_OK;
}

int speed_meta_stats_read(const speed_deployment* dep, speed_meta_stats* out) {
  if (dep == nullptr || out == nullptr || dep->store == nullptr) {
    return SPEED_ERR_INVALID_ARGUMENT;
  }
  const auto stats = dep->store->stats();
  out->entries = stats.entries;
  out->spills = stats.meta_spills;
  out->fault_ins = stats.meta_fault_ins;
  out->resident_bytes = stats.meta_resident_bytes;
  out->index_bytes = stats.meta_index_bytes;
  out->pinned_records = stats.meta_pinned_records;
  return SPEED_OK;
}

char* speed_metrics_snapshot(void) {
  try {
    const std::string json = telemetry::snapshot_json();
    char* out = static_cast<char*>(std::malloc(json.size() + 1));
    if (out == nullptr) return nullptr;
    std::memcpy(out, json.c_str(), json.size() + 1);
    return out;
  } catch (const std::exception&) {
    return nullptr;
  }
}

}  // extern "C"
