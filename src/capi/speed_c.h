/*
 * C API for SPEED (paper footnote 3: "While the current API is in C++,
 * SPEED can support C language as well via function pointers. We leave
 * this feature to future work." — implemented here).
 *
 * The C surface exposes byte-oriented deduplicable functions: a compute
 * callback receives the input buffer and returns a malloc'd output buffer;
 * speed_call() runs the full Algorithm 1/2 routine around it. A
 * speed_deployment bundles a simulated platform, an encrypted ResultStore,
 * one application enclave, and its DedupRuntime (attested channel included).
 *
 * All functions return 0 on success and a negative error code on failure;
 * speed_last_error() describes the most recent failure on the deployment.
 */
#ifndef SPEED_CAPI_SPEED_C_H_
#define SPEED_CAPI_SPEED_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct speed_deployment speed_deployment;
typedef struct speed_function speed_function;
typedef struct speed_stream speed_stream;

enum {
  SPEED_OK = 0,
  SPEED_ERR_INVALID_ARGUMENT = -1,
  SPEED_ERR_UNKNOWN_LIBRARY = -2,
  SPEED_ERR_COMPUTE_FAILED = -3,
  SPEED_ERR_INTERNAL = -4,
};

/*
 * Compute callback. Must write a malloc(3)-allocated buffer to *output and
 * its size to *output_len, and return 0. A non-zero return aborts the call
 * with SPEED_ERR_COMPUTE_FAILED. Must be deterministic (same input bytes =>
 * same output bytes), like every computation SPEED deduplicates.
 */
typedef int (*speed_compute_fn)(const uint8_t* input, size_t input_len,
                                uint8_t** output, size_t* output_len,
                                void* user_data);

/* ---- deployment lifecycle ---------------------------------------------- */

/* One platform + store + application enclave named `app_identity`. */
speed_deployment* speed_deployment_create(const char* app_identity);
void speed_deployment_destroy(speed_deployment* dep);

/*
 * Like speed_deployment_create, but the store persists to `store_dir`
 * (created if missing): ciphertext blobs in append-only segments plus a
 * sealed, MAC-chained metadata log, replayed on create so deduplicated
 * results survive a restart. The platform's sealing root is derived
 * deterministically from `store_dir`, modelling the same machine reopening
 * its store (real SGX gets this from the fused hardware key).
 * `fsync_every` batches group commits: 0 or 1 syncs before every PUT
 * acknowledgment, N > 1 trades a window of N-1 acknowledged-but-unsynced
 * PUTs for throughput (speed_flush closes the window).
 */
speed_deployment* speed_deployment_create_durable(const char* app_identity,
                                                  const char* store_dir,
                                                  size_t fsync_every);

/*
 * 1 once the deployment's store has rejected writes after a storage
 * failure (disk full, I/O error): reads keep working, new results stop
 * being shared. Recreate the deployment to leave degraded mode.
 */
int speed_store_degraded(const speed_deployment* dep);

/* ---- replicated cluster deployments ------------------------------------ */

/*
 * Like speed_deployment_create, but the results live on a replicated
 * cluster of `nodes` in-process store nodes, each result placed on a
 * primary plus `replicas` additional nodes by rendezvous-hashing its tag
 * (replicas is capped at nodes - 1). GETs and PUTs fail over across nodes;
 * a PUT is acknowledged only once every copy is placed, so killing any
 * single node loses no acknowledged result. Requires nodes >= 1.
 */
speed_deployment* speed_deployment_create_cluster(const char* app_identity,
                                                  size_t nodes,
                                                  size_t replicas);

/* Store nodes in the deployment's cluster; 0 for single-store deployments. */
size_t speed_cluster_node_count(const speed_deployment* dep);

/* Cluster nodes currently accepting traffic. */
size_t speed_cluster_nodes_up(const speed_deployment* dep);

/*
 * Chaos hooks. speed_cluster_kill stops node `node` (its unsynchronized
 * state is lost, as if the machine lost power). speed_cluster_restart
 * brings it back empty under a new identity: the fresh store enclave
 * re-attests with a live peer, rejoins, and pulls its share of the
 * dictionary back from the cluster.
 */
int speed_cluster_kill(speed_deployment* dep, size_t node);
int speed_cluster_restart(speed_deployment* dep, size_t node);

/* Register a trusted library the application owns. */
int speed_register_library(speed_deployment* dep, const char* family,
                           const char* version, const uint8_t* code,
                           size_t code_len);

/* Block until all queued asynchronous PUTs reached the store — and, for a
 * durable deployment, stable storage. */
int speed_flush(speed_deployment* dep);

/* Human-readable description of the last error on this deployment. */
const char* speed_last_error(const speed_deployment* dep);

/* ---- deduplicable functions -------------------------------------------- */

/*
 * The C analogue of the 2-line Deduplicable conversion. (family, version)
 * must have been registered. Returns NULL on error (see speed_last_error).
 */
speed_function* speed_function_create(speed_deployment* dep,
                                      const char* family, const char* version,
                                      const char* signature,
                                      speed_compute_fn fn, void* user_data);
void speed_function_destroy(speed_function* f);

/*
 * Run the deduplication routine. On success *output is a malloc'd buffer
 * (free with speed_buffer_free) and *output_len its size.
 */
int speed_call(speed_function* f, const uint8_t* input, size_t input_len,
               uint8_t** output, size_t* output_len);

/* 1 if the most recent speed_call was served from the store, else 0. */
int speed_last_was_deduplicated(const speed_function* f);

void speed_buffer_free(uint8_t* buffer);

/* ---- streaming put/get (chunk-level dedup) ------------------------------ */

/*
 * A stream session stores opaque byte streams with chunk-level
 * deduplication: inputs are split by a content-defined chunker, each chunk
 * becomes its own encrypted store entry, and an edited re-upload only
 * transfers the chunks the edit touched. (family, version) must have been
 * registered (the identity namespaces the chunk tags — distinct services
 * never cross-dedup). Chunk sizes of 0 select the defaults (2 KiB min /
 * 8 KiB avg / 64 KiB max); avg must be a power of two with
 * min <= avg <= max. Returns NULL on error (see speed_last_error).
 */
speed_stream* speed_stream_create(speed_deployment* dep, const char* family,
                                  const char* version, const char* signature,
                                  size_t min_chunk, size_t avg_chunk,
                                  size_t max_chunk);
void speed_stream_destroy(speed_stream* s);

/*
 * Store a stream. On success *handle is a malloc'd serialized capability
 * (free with speed_buffer_free) and *handle_len its size. The handle IS the
 * data: any session on the same deployment can speed_get_stream() with it,
 * and losing the handle bytes loses access. Inputs below the minimum chunk
 * size take the exact per-call dedup path (no streaming overhead).
 */
int speed_put_stream(speed_stream* s, const uint8_t* data, size_t data_len,
                     uint8_t** handle, size_t* handle_len);

/*
 * Retrieve the exact bytes behind a handle. On success *data is a malloc'd
 * buffer (free with speed_buffer_free) and *data_len its size. Fails with
 * SPEED_ERR_INVALID_ARGUMENT on a malformed handle and SPEED_ERR_INTERNAL
 * if a referenced store entry is missing or fails authentication.
 */
int speed_get_stream(speed_stream* s, const uint8_t* handle,
                     size_t handle_len, uint8_t** data, size_t* data_len);

/* Deployment-wide streaming counters (all sessions, monotonic). */
typedef struct {
  uint64_t puts;          /* speed_put_stream calls */
  uint64_t gets;          /* speed_get_stream calls */
  uint64_t whole_hits;    /* puts satisfied by one whole-stream hit */
  uint64_t chunks;        /* chunks planned across all puts */
  uint64_t chunk_hits;    /* chunks served by referencing existing entries */
  uint64_t bytes_deduped; /* plaintext bytes that were not re-uploaded */
  uint64_t inline_chunks; /* chunks carried inside manifests (degraded) */
  uint64_t degraded;      /* puts that hit any degradation path */
} speed_stream_stats;

int speed_stream_stats_read(const speed_deployment* dep,
                            speed_stream_stats* out);

/* ---- store metadata paging --------------------------------------------- */

/*
 * Two-tier metadata counters of the deployment's local store: the dictionary
 * keeps a 32-byte slot per entry resident in enclave memory and pages the
 * full record to a sealed cold tier (PROTOCOL.md section 11). Operators
 * watch spills/fault_ins to size the resident cache and resident_bytes to
 * size the EPC budget.
 */
typedef struct {
  uint64_t entries;        /* live dictionary entries */
  uint64_t spills;         /* sealed records written to the cold tier */
  uint64_t fault_ins;      /* cold records decoded back in on access */
  uint64_t resident_bytes; /* trusted bytes charged for metadata */
  uint64_t index_bytes;    /* slot-table share of resident_bytes */
  uint64_t pinned_records; /* records pinned resident (spill write failed) */
} speed_meta_stats;

/*
 * Fails with SPEED_ERR_INVALID_ARGUMENT on cluster deployments, which have
 * no single local store (scrape each node's metrics instead).
 */
int speed_meta_stats_read(const speed_deployment* dep, speed_meta_stats* out);

/* ---- telemetry --------------------------------------------------------- */

/*
 * JSON snapshot of the process-wide telemetry registry (the same document
 * the admin endpoint serves at /snapshot.json): every metric family with
 * its samples, labels, and histogram quantiles. Returns a NUL-terminated
 * malloc'd string to free with speed_buffer_free, or NULL on allocation
 * failure.
 */
char* speed_metrics_snapshot(void);

#ifdef __cplusplus
}  /* extern "C" */
#endif

#endif  /* SPEED_CAPI_SPEED_C_H_ */
