// Uniform value-serialization interface — the paper's "function parsers".
//
// Deduplicable<> needs to (a) canonically encode a function's input to hash
// it into the tag, and (b) encode/decode the result for encrypted storage.
// Serde<T> is that uniform interface: modules specialize it for their own
// types (images, keypoints, match results, word histograms) and the runtime
// stays function-agnostic. Built-in specializations cover byte strings,
// strings, arithmetic types, pairs, vectors, and ordered maps.
#pragma once

#include <concepts>
#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "serialize/codec.h"

namespace speed::serialize {

template <typename T>
struct Serde;  // specialize: static void encode(Encoder&, const T&);
               //             static T decode(Decoder&);

/// A type is Serializable when Serde<T> provides the encode/decode pair.
template <typename T>
concept Serializable = requires(Encoder& enc, Decoder& dec, const T& value) {
  { Serde<T>::encode(enc, value) };
  { Serde<T>::decode(dec) } -> std::same_as<T>;
};

/// One-shot helpers.
template <Serializable T>
Bytes serialize(const T& value) {
  Encoder enc;
  Serde<T>::encode(enc, value);
  return enc.take();
}

template <Serializable T>
T deserialize(ByteView data) {
  Decoder dec(data);
  T value = Serde<T>::decode(dec);
  dec.expect_done();
  return value;
}

// ------------------------------------------------------- specializations

template <>
struct Serde<Bytes> {
  static void encode(Encoder& enc, const Bytes& v) { enc.var_bytes(v); }
  static Bytes decode(Decoder& dec) { return dec.var_bytes(); }
};

template <>
struct Serde<std::string> {
  static void encode(Encoder& enc, const std::string& v) { enc.str(v); }
  static std::string decode(Decoder& dec) { return dec.str(); }
};

template <>
struct Serde<bool> {
  static void encode(Encoder& enc, bool v) { enc.boolean(v); }
  static bool decode(Decoder& dec) { return dec.boolean(); }
};

template <std::integral T>
  requires(!std::same_as<T, bool>)
struct Serde<T> {
  static void encode(Encoder& enc, T v) {
    enc.u64(static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v)));
  }
  static T decode(Decoder& dec) {
    return static_cast<T>(static_cast<std::make_unsigned_t<T>>(dec.u64()));
  }
};

template <std::floating_point T>
struct Serde<T> {
  static void encode(Encoder& enc, T v) { enc.f64(static_cast<double>(v)); }
  static T decode(Decoder& dec) { return static_cast<T>(dec.f64()); }
};

template <Serializable A, Serializable B>
struct Serde<std::pair<A, B>> {
  static void encode(Encoder& enc, const std::pair<A, B>& v) {
    Serde<A>::encode(enc, v.first);
    Serde<B>::encode(enc, v.second);
  }
  static std::pair<A, B> decode(Decoder& dec) {
    A a = Serde<A>::decode(dec);
    B b = Serde<B>::decode(dec);
    return {std::move(a), std::move(b)};
  }
};

template <Serializable T>
struct Serde<std::vector<T>> {
  static void encode(Encoder& enc, const std::vector<T>& v) {
    enc.u32(static_cast<std::uint32_t>(v.size()));
    for (const T& item : v) Serde<T>::encode(enc, item);
  }
  static std::vector<T> decode(Decoder& dec) {
    const std::uint32_t n = dec.u32();
    std::vector<T> out;
    // Cap the speculative reservation: a hostile count must not allocate
    // ahead of the data that backs it (decode throws on truncation anyway).
    out.reserve(std::min<std::size_t>(n, dec.remaining()));
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(Serde<T>::decode(dec));
    return out;
  }
};

template <Serializable K, Serializable V>
struct Serde<std::map<K, V>> {
  static void encode(Encoder& enc, const std::map<K, V>& v) {
    enc.u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& [key, value] : v) {
      Serde<K>::encode(enc, key);
      Serde<V>::encode(enc, value);
    }
  }
  static std::map<K, V> decode(Decoder& dec) {
    const std::uint32_t n = dec.u32();
    std::map<K, V> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      K key = Serde<K>::decode(dec);
      V value = Serde<V>::decode(dec);
      out.emplace(std::move(key), std::move(value));
    }
    return out;
  }
};

}  // namespace speed::serialize
