#include "serialize/wire.h"

namespace speed::serialize {

namespace {

void put_array32(Encoder& enc, const std::array<std::uint8_t, 32>& a) {
  enc.raw(ByteView(a.data(), a.size()));
}

std::array<std::uint8_t, 32> take_array32(Decoder& dec) {
  const ByteView b = dec.raw(32);
  std::array<std::uint8_t, 32> out;
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

void put_entry(Encoder& enc, const EntryPayload& e) {
  enc.var_bytes(e.challenge);
  enc.var_bytes(e.wrapped_key);
  enc.var_bytes(e.result_ct);
}

EntryPayload take_entry(Decoder& dec) {
  EntryPayload e;
  e.challenge = dec.var_bytes();
  e.wrapped_key = dec.var_bytes();
  e.result_ct = dec.var_bytes();
  return e;
}

// Every SyncEntry occupies at least tag + three length prefixes + hits on
// the wire; a count beyond that is hostile — reject before allocating.
constexpr std::size_t kMinSyncEntryWire = 32 + 4 + 4 + 4 + 8;

void put_sync_entries(Encoder& enc, const std::vector<SyncEntry>& entries) {
  enc.u32(static_cast<std::uint32_t>(entries.size()));
  for (const SyncEntry& s : entries) {
    put_array32(enc, s.tag);
    put_entry(enc, s.entry);
    enc.u64(s.hits);
  }
}

std::vector<SyncEntry> take_sync_entries(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining() / kMinSyncEntryWire) {
    throw SerializationError("decode_message: implausible sync count");
  }
  std::vector<SyncEntry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SyncEntry s;
    s.tag = take_array32(dec);
    s.entry = take_entry(dec);
    s.hits = dec.u64();
    entries.push_back(std::move(s));
  }
  return entries;
}

void put_error(Encoder& enc, const ErrorResponse& e) {
  enc.u8(static_cast<std::uint8_t>(e.code));
  enc.str(e.detail);
}

ErrorResponse take_error(Decoder& dec) {
  ErrorResponse e;
  const std::uint8_t code = dec.u8();
  if (code > static_cast<std::uint8_t>(ErrorCode::kUnavailable)) {
    throw SerializationError("decode_message: invalid ErrorCode");
  }
  e.code = static_cast<ErrorCode>(code);
  e.detail = dec.str();
  return e;
}

// The smallest batch op is a GetRequest: kind byte + tag + requester. A
// count implying less than that per entry is hostile — reject before
// allocating.
constexpr std::size_t kMinBatchOpWire = 1 + 32 + 32;
// The smallest reply is a not-found GetResponse or a PutResponse: kind byte
// + one status/flag byte.
constexpr std::size_t kMinBatchReplyWire = 1 + 1;

void put_batch_ops(Encoder& enc, const std::vector<BatchOp>& ops) {
  enc.u32(static_cast<std::uint32_t>(ops.size()));
  for (const BatchOp& op : ops) {
    std::visit(
        [&enc](const auto& o) {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, GetRequest>) {
            enc.u8(static_cast<std::uint8_t>(MessageType::kGetRequest));
            put_array32(enc, o.tag);
            put_array32(enc, o.requester);
          } else {
            enc.u8(static_cast<std::uint8_t>(MessageType::kPutRequest));
            put_array32(enc, o.tag);
            put_array32(enc, o.requester);
            put_entry(enc, o.entry);
          }
        },
        op);
  }
}

std::vector<BatchOp> take_batch_ops(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining() / kMinBatchOpWire) {
    throw SerializationError("decode_message: implausible batch op count");
  }
  std::vector<BatchOp> ops;
  ops.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto kind = static_cast<MessageType>(dec.u8());
    if (kind == MessageType::kGetRequest) {
      GetRequest g;
      g.tag = take_array32(dec);
      g.requester = take_array32(dec);
      ops.emplace_back(g);
    } else if (kind == MessageType::kPutRequest) {
      PutRequest p;
      p.tag = take_array32(dec);
      p.requester = take_array32(dec);
      p.entry = take_entry(dec);
      ops.emplace_back(std::move(p));
    } else {
      throw SerializationError("decode_message: batch op is not GET/PUT");
    }
  }
  return ops;
}

void put_batch_replies(Encoder& enc, const std::vector<BatchReply>& replies) {
  enc.u32(static_cast<std::uint32_t>(replies.size()));
  for (const BatchReply& reply : replies) {
    std::visit(
        [&enc](const auto& r) {
          using T = std::decay_t<decltype(r)>;
          if constexpr (std::is_same_v<T, GetResponse>) {
            enc.u8(static_cast<std::uint8_t>(MessageType::kGetResponse));
            enc.boolean(r.found);
            if (r.found) put_entry(enc, r.entry);
          } else if constexpr (std::is_same_v<T, PutResponse>) {
            enc.u8(static_cast<std::uint8_t>(MessageType::kPutResponse));
            enc.u8(static_cast<std::uint8_t>(r.status));
          } else {
            enc.u8(static_cast<std::uint8_t>(MessageType::kErrorResponse));
            put_error(enc, r);
          }
        },
        reply);
  }
}

std::vector<BatchReply> take_batch_replies(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining() / kMinBatchReplyWire) {
    throw SerializationError("decode_message: implausible batch reply count");
  }
  std::vector<BatchReply> replies;
  replies.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto kind = static_cast<MessageType>(dec.u8());
    if (kind == MessageType::kGetResponse) {
      GetResponse g;
      g.found = dec.boolean();
      if (g.found) g.entry = take_entry(dec);
      replies.emplace_back(std::move(g));
    } else if (kind == MessageType::kPutResponse) {
      PutResponse p;
      const std::uint8_t status = dec.u8();
      if (status > static_cast<std::uint8_t>(PutStatus::kRejected)) {
        throw SerializationError("decode_message: invalid PutStatus");
      }
      p.status = static_cast<PutStatus>(status);
      replies.emplace_back(p);
    } else if (kind == MessageType::kErrorResponse) {
      replies.emplace_back(take_error(dec));
    } else {
      throw SerializationError("decode_message: unknown batch reply kind");
    }
  }
  return replies;
}

}  // namespace

Bytes encode_message(const Message& msg) {
  Encoder enc;
  std::visit(
      [&enc](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, GetRequest>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kGetRequest));
          put_array32(enc, m.tag);
          put_array32(enc, m.requester);
        } else if constexpr (std::is_same_v<T, GetResponse>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kGetResponse));
          enc.boolean(m.found);
          if (m.found) put_entry(enc, m.entry);
        } else if constexpr (std::is_same_v<T, PutRequest>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kPutRequest));
          put_array32(enc, m.tag);
          put_array32(enc, m.requester);
          put_entry(enc, m.entry);
        } else if constexpr (std::is_same_v<T, PutResponse>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kPutResponse));
          enc.u8(static_cast<std::uint8_t>(m.status));
        } else if constexpr (std::is_same_v<T, SyncRequest>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kSyncRequest));
          enc.u32(m.max_entries);
        } else if constexpr (std::is_same_v<T, SyncResponse>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kSyncResponse));
          put_sync_entries(enc, m.entries);
        } else if constexpr (std::is_same_v<T, HeartbeatRequest>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kHeartbeatRequest));
          enc.u64(m.nonce);
        } else if constexpr (std::is_same_v<T, HeartbeatResponse>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kHeartbeatResponse));
          enc.u64(m.nonce);
          enc.u64(m.entries);
          enc.u64(m.cluster_epoch);
          enc.boolean(m.degraded);
        } else if constexpr (std::is_same_v<T, PullRequest>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kPullRequest));
          put_array32(enc, m.after);
          enc.u32(m.max_entries);
          enc.boolean(m.resume);
        } else if constexpr (std::is_same_v<T, PullResponse>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kPullResponse));
          put_sync_entries(enc, m.entries);
          put_array32(enc, m.next);
          enc.boolean(m.done);
        } else if constexpr (std::is_same_v<T, PushRequest>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kPushRequest));
          put_sync_entries(enc, m.entries);
        } else if constexpr (std::is_same_v<T, PushResponse>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kPushResponse));
          enc.u32(m.accepted);
        } else if constexpr (std::is_same_v<T, MembershipUpdate>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kMembershipUpdate));
          enc.u64(m.epoch);
          enc.u32(static_cast<std::uint32_t>(m.members.size()));
          for (const MemberInfo& mi : m.members) {
            enc.str(mi.name);
            enc.u8(static_cast<std::uint8_t>(mi.status));
          }
        } else if constexpr (std::is_same_v<T, MembershipAck>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kMembershipAck));
          enc.u64(m.epoch);
          enc.boolean(m.applied);
        } else if constexpr (std::is_same_v<T, BatchRequest>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kBatchRequest));
          put_batch_ops(enc, m.ops);
        } else if constexpr (std::is_same_v<T, BatchResponse>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kBatchResponse));
          put_batch_replies(enc, m.replies);
        } else if constexpr (std::is_same_v<T, ErrorResponse>) {
          enc.u8(static_cast<std::uint8_t>(MessageType::kErrorResponse));
          put_error(enc, m);
        }
      },
      msg);
  return enc.take();
}

Message decode_message(ByteView data) {
  Decoder dec(data);
  const auto type = static_cast<MessageType>(dec.u8());
  Message out;
  switch (type) {
    case MessageType::kGetRequest: {
      GetRequest m;
      m.tag = take_array32(dec);
      m.requester = take_array32(dec);
      out = m;
      break;
    }
    case MessageType::kGetResponse: {
      GetResponse m;
      m.found = dec.boolean();
      if (m.found) m.entry = take_entry(dec);
      out = m;
      break;
    }
    case MessageType::kPutRequest: {
      PutRequest m;
      m.tag = take_array32(dec);
      m.requester = take_array32(dec);
      m.entry = take_entry(dec);
      out = m;
      break;
    }
    case MessageType::kPutResponse: {
      PutResponse m;
      const std::uint8_t status = dec.u8();
      if (status > static_cast<std::uint8_t>(PutStatus::kRejected)) {
        throw SerializationError("decode_message: invalid PutStatus");
      }
      m.status = static_cast<PutStatus>(status);
      out = m;
      break;
    }
    case MessageType::kSyncRequest: {
      SyncRequest m;
      m.max_entries = dec.u32();
      out = m;
      break;
    }
    case MessageType::kSyncResponse: {
      SyncResponse m;
      m.entries = take_sync_entries(dec);
      out = std::move(m);
      break;
    }
    case MessageType::kHeartbeatRequest: {
      HeartbeatRequest m;
      m.nonce = dec.u64();
      out = m;
      break;
    }
    case MessageType::kHeartbeatResponse: {
      HeartbeatResponse m;
      m.nonce = dec.u64();
      m.entries = dec.u64();
      m.cluster_epoch = dec.u64();
      m.degraded = dec.boolean();
      out = m;
      break;
    }
    case MessageType::kPullRequest: {
      PullRequest m;
      m.after = take_array32(dec);
      m.max_entries = dec.u32();
      m.resume = dec.boolean();
      out = m;
      break;
    }
    case MessageType::kPullResponse: {
      PullResponse m;
      m.entries = take_sync_entries(dec);
      m.next = take_array32(dec);
      m.done = dec.boolean();
      out = std::move(m);
      break;
    }
    case MessageType::kPushRequest: {
      PushRequest m;
      m.entries = take_sync_entries(dec);
      out = std::move(m);
      break;
    }
    case MessageType::kPushResponse: {
      PushResponse m;
      m.accepted = dec.u32();
      out = m;
      break;
    }
    case MessageType::kMembershipUpdate: {
      MembershipUpdate m;
      m.epoch = dec.u64();
      const std::uint32_t n = dec.u32();
      // Each member costs at least a name length prefix + status byte.
      constexpr std::size_t kMinMemberWire = 4 + 1;
      if (n > dec.remaining() / kMinMemberWire) {
        throw SerializationError("decode_message: implausible member count");
      }
      m.members.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        MemberInfo mi;
        mi.name = dec.str();
        const std::uint8_t status = dec.u8();
        if (status > static_cast<std::uint8_t>(MemberStatus::kUp)) {
          throw SerializationError("decode_message: invalid MemberStatus");
        }
        mi.status = static_cast<MemberStatus>(status);
        m.members.push_back(std::move(mi));
      }
      out = std::move(m);
      break;
    }
    case MessageType::kMembershipAck: {
      MembershipAck m;
      m.epoch = dec.u64();
      m.applied = dec.boolean();
      out = m;
      break;
    }
    case MessageType::kBatchRequest: {
      BatchRequest m;
      m.ops = take_batch_ops(dec);
      out = std::move(m);
      break;
    }
    case MessageType::kBatchResponse: {
      BatchResponse m;
      m.replies = take_batch_replies(dec);
      out = std::move(m);
      break;
    }
    case MessageType::kErrorResponse: {
      out = take_error(dec);
      break;
    }
    default:
      throw SerializationError("decode_message: unknown message type");
  }
  dec.expect_done();
  return out;
}

MessageType peek_type(ByteView data) {
  if (data.empty()) throw SerializationError("peek_type: empty message");
  const std::uint8_t t = data[0];
  if (t < 1 || t > 17) throw SerializationError("peek_type: unknown type");
  return static_cast<MessageType>(t);
}

}  // namespace speed::serialize
