// Function descriptors: the developer-supplied identity of a deduplicable
// computation (paper §IV-B, Fig. 4).
//
// A descriptor names the library family, version, and function signature,
// e.g. ("zlib", "1.2.11", "int deflate(...)"). The DedupRuntime resolves the
// descriptor against the enclave's TrustedLibraryRegistry to obtain the
// library's *code measurement*, and the tag is derived from that measurement
// plus the signature plus the input — so "same computation" means same code,
// not same name.
#pragma once

#include <string>
#include <string_view>

#include "serialize/codec.h"

namespace speed::serialize {

struct FunctionDescriptor {
  std::string family;     ///< library family, e.g. "zlib"
  std::string version;    ///< library version, e.g. "1.2.11"
  std::string signature;  ///< function signature, e.g. "int deflate(bytes)"

  /// Injective canonical encoding, suitable for hashing.
  Bytes canonical() const {
    Encoder enc;
    enc.str(family);
    enc.str(version);
    enc.str(signature);
    return enc.take();
  }

  friend bool operator==(const FunctionDescriptor&,
                         const FunctionDescriptor&) = default;
};

}  // namespace speed::serialize
