// Rendezvous (highest-random-weight) placement of tags onto cluster nodes.
//
// Each (node, tag) pair gets a pseudo-random score; the preference order for
// a tag is the member list sorted by descending score. The property that
// matters for the cluster (docs/PROTOCOL.md §8): removing a node only
// reassigns the tags that node owned — every other tag keeps its exact
// preference prefix, so failover and rebalance churn is minimal.
//
// Tags are SHA-256 outputs, so bytes are uniform; the score mixes tag bytes
// [16, 24) — the dictionary hash consumes [0, 8) and the store's shard
// selector consumes [8, 16), keeping the three derivations independent.
// Placement is not secret (an observer of routed traffic learns it anyway);
// determinism across every node and client is what's required, which is why
// this lives next to the wire codec rather than behind a keyed hash.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string_view>
#include <vector>

#include "serialize/wire.h"

namespace speed::serialize {

namespace detail {

/// FNV-1a over the node name: stable across platforms, good enough as a
/// per-node salt (the splitmix64 finalizer below supplies the avalanche).
inline std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Score of placing `tag` on the node named `member`. Higher wins.
inline std::uint64_t rendezvous_score(std::string_view member,
                                      const Tag& tag) {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    t = (t << 8) | tag[16 + i];
  }
  return detail::splitmix64(detail::fnv1a(member) ^ t);
}

/// Indices into `members` sorted by descending score for `tag`: element 0
/// is the tag's primary owner, elements 1..r its replicas. Ties (only
/// possible with duplicate names) break toward the lower index, keeping the
/// order total and identical on every caller.
inline std::vector<std::size_t> rendezvous_order(
    const std::vector<MemberInfo>& members, const Tag& tag) {
  std::vector<std::size_t> order(members.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::uint64_t> score(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    score[i] = rendezvous_score(members[i].name, tag);
  }
  std::sort(order.begin(), order.end(),
            [&score](std::size_t a, std::size_t b) {
              if (score[a] != score[b]) return score[a] > score[b];
              return a < b;
            });
  return order;
}

}  // namespace speed::serialize
