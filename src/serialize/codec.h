// Canonical binary encoding used everywhere SPEED hashes or ships bytes:
// computation tags, wire messages, sealed store snapshots, function inputs.
//
// Format: little-endian fixed-width integers; byte strings are u32
// length-prefixed. The encoding of a field sequence is injective (no two
// distinct field sequences encode to the same bytes), which is what makes
// Hash(func, m) collision-resistant at the *field* level as well as the byte
// level — "zlib"+"1.2.11" can never collide with "zli"+"b1.2.11".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"

namespace speed::serialize {

class Encoder {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// u32 length-prefixed byte string.
  void var_bytes(ByteView data) {
    u32(static_cast<std::uint32_t>(data.size()));
    append(out_, data);
  }

  void str(std::string_view s) { var_bytes(as_bytes(s)); }

  /// Raw bytes without a length prefix (caller guarantees framing).
  void raw(ByteView data) { append(out_, data); }

  const Bytes& view() const { return out_; }
  Bytes take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class Decoder {
 public:
  explicit Decoder(ByteView data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint16_t u16() {
    const ByteView b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }

  std::uint32_t u32() {
    const ByteView b = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }

  std::uint64_t u64() {
    const ByteView b = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw SerializationError("Decoder: invalid boolean");
    return v == 1;
  }

  Bytes var_bytes() {
    const std::uint32_t len = u32();
    const ByteView b = take(len);
    return Bytes(b.begin(), b.end());
  }

  std::string str() {
    const Bytes b = var_bytes();
    return std::string(b.begin(), b.end());
  }

  ByteView raw(std::size_t n) { return take(n); }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  /// Assert the message was fully consumed (catches trailing garbage).
  void expect_done() const {
    if (!done()) throw SerializationError("Decoder: trailing bytes in message");
  }

 private:
  ByteView take(std::size_t n) {
    if (remaining() < n) {
      throw SerializationError("Decoder: truncated input");
    }
    const ByteView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace speed::serialize
