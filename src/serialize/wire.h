// Wire protocol between DedupRuntime and the encrypted ResultStore.
//
// The paper's prototype exchanges GET_REQUEST/GET_RESPONSE and
// PUT_REQUEST/PUT_RESPONSE messages through OCALLs and a socket (§IV-B);
// SYNC messages implement the master-store replication discussed in the
// §IV-B Remark. Every message is encoded with the canonical codec and
// carried over a Channel (src/net), optionally inside a secure channel.
//
// Key sizes: the result key k is an AES-128 key (16 bytes). The RCE wrap
// mask is the first 16 bytes of h = SHA-256(func, m, r), so |[k]| = 16.
#pragma once

#include <array>
#include <cstdint>
#include <variant>
#include <vector>

#include "serialize/codec.h"

namespace speed::serialize {

/// Computation tag t = Hash(func, m); 32 bytes of SHA-256.
using Tag = std::array<std::uint8_t, 32>;

/// Application identity: the requesting enclave's measurement. Used by the
/// store for quota accounting (DoS mitigation, §III-D), not for secrecy.
using AppId = std::array<std::uint8_t, 32>;

enum class MessageType : std::uint8_t {
  kGetRequest = 1,
  kGetResponse = 2,
  kPutRequest = 3,
  kPutResponse = 4,
  kSyncRequest = 5,
  kSyncResponse = 6,
};

/// The stored triple (r, [k], [res]) of Algorithm 1.
struct EntryPayload {
  Bytes challenge;    ///< r — the RCE challenge message
  Bytes wrapped_key;  ///< [k] = k XOR h[0..16)
  Bytes result_ct;    ///< [res] — AES-GCM envelope (iv ‖ ct ‖ tag)

  friend bool operator==(const EntryPayload&, const EntryPayload&) = default;
};

struct GetRequest {
  Tag tag{};
  AppId requester{};
};

struct GetResponse {
  bool found = false;
  EntryPayload entry;  ///< valid only when found
};

struct PutRequest {
  Tag tag{};
  AppId requester{};
  EntryPayload entry;
};

enum class PutStatus : std::uint8_t {
  kStored = 0,
  kAlreadyPresent = 1,  ///< concurrent initial computations; first write wins
  kQuotaExceeded = 2,   ///< rate-limiting defence of §III-D
  kRejected = 3,
};

struct PutResponse {
  PutStatus status = PutStatus::kRejected;
};

/// Master-store synchronization (§IV-B Remark): a replica asks the master
/// for its hottest entries; the master replies with (tag, entry, hits).
struct SyncRequest {
  std::uint32_t max_entries = 0;
};

struct SyncEntry {
  Tag tag{};
  EntryPayload entry;
  std::uint64_t hits = 0;
};

struct SyncResponse {
  std::vector<SyncEntry> entries;
};

using Message = std::variant<GetRequest, GetResponse, PutRequest, PutResponse,
                             SyncRequest, SyncResponse>;

/// Encode any protocol message with its type byte.
Bytes encode_message(const Message& msg);

/// Decode a message; throws SerializationError on malformed input.
Message decode_message(ByteView data);

/// Type of an encoded message without full decoding.
MessageType peek_type(ByteView data);

}  // namespace speed::serialize
