// Wire protocol between DedupRuntime and the encrypted ResultStore.
//
// The paper's prototype exchanges GET_REQUEST/GET_RESPONSE and
// PUT_REQUEST/PUT_RESPONSE messages through OCALLs and a socket (§IV-B);
// SYNC messages implement the master-store replication discussed in the
// §IV-B Remark. Every message is encoded with the canonical codec and
// carried over a Channel (src/net), optionally inside a secure channel.
//
// Key sizes: the result key k is an AES-128 key (16 bytes). The RCE wrap
// mask is the first 16 bytes of h = SHA-256(func, m, r), so |[k]| = 16.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "serialize/codec.h"

namespace speed::serialize {

/// Computation tag t = Hash(func, m); 32 bytes of SHA-256.
using Tag = std::array<std::uint8_t, 32>;

/// Application identity: the requesting enclave's measurement. Used by the
/// store for quota accounting (DoS mitigation, §III-D), not for secrecy.
using AppId = std::array<std::uint8_t, 32>;

enum class MessageType : std::uint8_t {
  kGetRequest = 1,
  kGetResponse = 2,
  kPutRequest = 3,
  kPutResponse = 4,
  kSyncRequest = 5,
  kSyncResponse = 6,
  // Cluster plane (docs/PROTOCOL.md §8): health probes, anti-entropy bulk
  // sync with resumable cursors, hot-entry push, and membership broadcast.
  kHeartbeatRequest = 7,
  kHeartbeatResponse = 8,
  kPullRequest = 9,
  kPullResponse = 10,
  kPushRequest = 11,
  kPushResponse = 12,
  kMembershipUpdate = 13,
  kMembershipAck = 14,
  // Batched framing (docs/PROTOCOL.md §9): many GET/PUT sub-requests in one
  // frame, one enclave crossing per batch. Negotiated in the handshake
  // (net/handshake.h); v1 peers never see these types.
  kBatchRequest = 15,
  kBatchResponse = 16,
  kErrorResponse = 17,
};

/// The stored triple (r, [k], [res]) of Algorithm 1.
struct EntryPayload {
  Bytes challenge;    ///< r — the RCE challenge message
  Bytes wrapped_key;  ///< [k] = k XOR h[0..16)
  Bytes result_ct;    ///< [res] — AES-GCM envelope (iv ‖ ct ‖ tag)

  friend bool operator==(const EntryPayload&, const EntryPayload&) = default;
};

struct GetRequest {
  Tag tag{};
  AppId requester{};
};

struct GetResponse {
  bool found = false;
  EntryPayload entry;  ///< valid only when found
};

struct PutRequest {
  Tag tag{};
  AppId requester{};
  EntryPayload entry;
};

enum class PutStatus : std::uint8_t {
  kStored = 0,
  kAlreadyPresent = 1,  ///< concurrent initial computations; first write wins
  kQuotaExceeded = 2,   ///< rate-limiting defence of §III-D
  kRejected = 3,
};

struct PutResponse {
  PutStatus status = PutStatus::kRejected;
};

/// Master-store synchronization (§IV-B Remark): a replica asks the master
/// for its hottest entries; the master replies with (tag, entry, hits).
struct SyncRequest {
  std::uint32_t max_entries = 0;
};

struct SyncEntry {
  Tag tag{};
  EntryPayload entry;
  std::uint64_t hits = 0;
};

struct SyncResponse {
  std::vector<SyncEntry> entries;
};

/// Liveness probe. Cheap enough to ride an application's secure channel (the
/// client-side failover layer probes suspect nodes with it) and informative
/// enough for the cluster fabric: the reply carries the node's size, its
/// degraded flag, and the membership epoch it believes in.
struct HeartbeatRequest {
  std::uint64_t nonce = 0;
};

struct HeartbeatResponse {
  std::uint64_t nonce = 0;          ///< echo of the request nonce
  std::uint64_t entries = 0;        ///< dictionary entries held
  std::uint64_t cluster_epoch = 0;  ///< membership view the node has applied
  bool degraded = false;            ///< backend write failure; PUTs rejected
};

/// Bulk anti-entropy page (infra plane): entries in ascending tag order,
/// resumable through the cursor. A rejoining node pulls every entry the ring
/// assigns it, page by page, surviving interruptions mid-sync.
struct PullRequest {
  Tag after{};                    ///< resume cursor (strictly-greater tags)
  std::uint32_t max_entries = 0;  ///< page size
  bool resume = false;            ///< false = first page, `after` ignored
};

struct PullResponse {
  std::vector<SyncEntry> entries;  ///< ascending tag order
  Tag next{};                      ///< pass back as `after` to continue
  bool done = false;               ///< no tags remain beyond `next`
};

/// Popularity-driven hot-entry push (infra plane): a node offers its hottest
/// entries to the peers the ring makes responsible for them. Quota-exempt on
/// the receiver, like every master-sync merge.
struct PushRequest {
  std::vector<SyncEntry> entries;
};

struct PushResponse {
  std::uint32_t accepted = 0;  ///< entries newly inserted
};

enum class MemberStatus : std::uint8_t {
  kDown = 0,
  kUp = 1,
};

struct MemberInfo {
  std::string name;  ///< endpoint label; feeds the rendezvous ring
  MemberStatus status = MemberStatus::kUp;

  friend bool operator==(const MemberInfo&, const MemberInfo&) = default;
};

/// Membership broadcast (infra plane): the cluster view at `epoch`. Nodes
/// apply monotonically — an update with a stale epoch is acknowledged but
/// ignored, so reordered broadcasts cannot roll the view back.
struct MembershipUpdate {
  std::uint64_t epoch = 0;
  std::vector<MemberInfo> members;
};

struct MembershipAck {
  std::uint64_t epoch = 0;  ///< epoch in effect at the node after the update
  bool applied = false;     ///< false = the update was stale
};

/// Machine-readable failure for one batch entry (or a whole frame when the
/// server refuses to process it, e.g. an oversized batch). `detail` is a
/// short operator-facing string — never tags, keys, or payload bytes.
enum class ErrorCode : std::uint8_t {
  kBadRequest = 0,     ///< malformed or non-routable sub-request
  kFrameTooLarge = 1,  ///< frame exceeded the server's max_frame_bytes
  kBatchTooLarge = 2,  ///< batch exceeded the server's max_batch_entries
  kUnavailable = 3,    ///< no store node could serve this entry
};

struct ErrorResponse {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string detail;

  friend bool operator==(const ErrorResponse&, const ErrorResponse&) = default;
};

/// One sub-request of a batch. Only the application-plane data operations
/// are batchable — the type system keeps infra messages out by construction.
using BatchOp = std::variant<GetRequest, PutRequest>;

/// Per-entry reply, index-aligned with the request's ops. A failed entry
/// carries an ErrorResponse without disturbing its neighbors.
using BatchReply = std::variant<GetResponse, PutResponse, ErrorResponse>;

/// Envelope carrying many GET/PUT sub-requests; the store executes them in
/// order inside a single enclave crossing and replies entry-for-entry.
struct BatchRequest {
  std::vector<BatchOp> ops;
};

struct BatchResponse {
  std::vector<BatchReply> replies;
};

using Message =
    std::variant<GetRequest, GetResponse, PutRequest, PutResponse, SyncRequest,
                 SyncResponse, HeartbeatRequest, HeartbeatResponse, PullRequest,
                 PullResponse, PushRequest, PushResponse, MembershipUpdate,
                 MembershipAck, BatchRequest, BatchResponse, ErrorResponse>;

/// Encode any protocol message with its type byte.
Bytes encode_message(const Message& msg);

/// Decode a message; throws SerializationError on malformed input.
Message decode_message(ByteView data);

/// Type of an encoded message without full decoding.
MessageType peek_type(ByteView data);

}  // namespace speed::serialize
