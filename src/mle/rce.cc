#include "mle/rce.h"

#include "common/error.h"
#include "crypto/gcm.h"

namespace speed::mle {

namespace {

/// The result ciphertext is AEAD-bound to the computation tag, so a
/// malicious store cannot transplant a payload from one tag onto another
/// without tripping authentication (cache-poisoning defence, §III-D).
ByteView tag_aad(const Tag& tag) { return ByteView(tag.data(), tag.size()); }

/// [k] = k XOR h[0..16): the wrap mask is the first |k| bytes of the
/// 32-byte secondary key h.
Bytes wrap_key(ByteView key, const crypto::Sha256Digest& h) {
  return xor_bytes(key, ByteView(h.data(), key.size()));
}

}  // namespace

ResultCipher::WrappedKey ResultCipher::generate_key(const FunctionIdentity& fn,
                                                    ByteView input,
                                                    crypto::Drbg& drbg) {
  WrappedKey out;
  out.key = drbg.bytes(kResultKeySize);                 // k <- KeyGen(1^λ)
  out.challenge = drbg.bytes(kChallengeSize);           // r <-R- {0,1}*
  const auto h = derive_secondary_key(fn, input, out.challenge);
  out.wrapped_key = wrap_key(out.key, h);               // [k] = k ⊕ h
  return out;
}

Bytes ResultCipher::recover_key(const FunctionIdentity& fn, ByteView input,
                                ByteView challenge, ByteView wrapped_key) {
  if (wrapped_key.size() != kResultKeySize) {
    throw CryptoError("recover_key: wrapped key must be 16 bytes");
  }
  const auto h = derive_secondary_key(fn, input, challenge);
  return wrap_key(wrapped_key, h);                      // k = [k] ⊕ h
}

Bytes ResultCipher::encrypt_result(const Tag& tag, ByteView key,
                                   ByteView result, crypto::Drbg& drbg) {
  return crypto::gcm_encrypt(key, tag_aad(tag), result, drbg);
}

std::optional<Bytes> ResultCipher::decrypt_result(const Tag& tag, ByteView key,
                                                  ByteView result_ct) {
  return crypto::gcm_decrypt(key, tag_aad(tag), result_ct);
}

serialize::EntryPayload ResultCipher::protect(const FunctionIdentity& fn,
                                              ByteView input, ByteView result,
                                              crypto::Drbg& drbg) {
  return protect(derive_tag(fn, input), fn, input, result, drbg);
}

serialize::EntryPayload ResultCipher::protect(const Tag& tag,
                                              const FunctionIdentity& fn,
                                              ByteView input, ByteView result,
                                              crypto::Drbg& drbg) {
  WrappedKey wk = generate_key(fn, input, drbg);
  serialize::EntryPayload entry;
  entry.challenge = std::move(wk.challenge);
  entry.wrapped_key = std::move(wk.wrapped_key);
  entry.result_ct = encrypt_result(tag, wk.key, result, drbg);
  secure_zero(wk.key.data(), wk.key.size());
  return entry;
}

serialize::EntryPayload ResultCipher::protect(const ComputationContext& ctx,
                                              ByteView result,
                                              crypto::Drbg& drbg) {
  Bytes key = drbg.bytes(kResultKeySize);         // k <- KeyGen(1^λ)
  Bytes challenge = drbg.bytes(kChallengeSize);   // r <-R- {0,1}*
  const auto h = ctx.secondary_key(challenge);    // midstate + r: m not rehashed
  serialize::EntryPayload entry;
  entry.wrapped_key = wrap_key(key, h);           // [k] = k ⊕ h
  entry.result_ct = encrypt_result(ctx.tag(), key, result, drbg);
  entry.challenge = std::move(challenge);
  secure_zero(key.data(), key.size());
  return entry;
}

std::optional<Bytes> ResultCipher::recover(const ComputationContext& ctx,
                                           const serialize::EntryPayload& entry) {
  if (entry.wrapped_key.size() != kResultKeySize) return std::nullopt;
  const auto h = ctx.secondary_key(entry.challenge);
  Bytes key = wrap_key(entry.wrapped_key, h);     // k = [k] ⊕ h
  auto result = decrypt_result(ctx.tag(), key, entry.result_ct);
  secure_zero(key.data(), key.size());
  return result;
}

std::optional<Bytes> ResultCipher::recover(const FunctionIdentity& fn,
                                           ByteView input,
                                           const serialize::EntryPayload& entry) {
  return recover(derive_tag(fn, input), fn, input, entry);
}

std::optional<Bytes> ResultCipher::recover(const Tag& tag,
                                           const FunctionIdentity& fn,
                                           ByteView input,
                                           const serialize::EntryPayload& entry) {
  if (entry.wrapped_key.size() != kResultKeySize) return std::nullopt;
  Bytes key = recover_key(fn, input, entry.challenge, entry.wrapped_key);
  auto result = decrypt_result(tag, key, entry.result_ct);
  secure_zero(key.data(), key.size());
  return result;
}

BasicResultCipher::BasicResultCipher(Bytes system_key)
    : system_key_(std::move(system_key)) {
  if (system_key_.size() != kResultKeySize &&
      system_key_.size() != crypto::kAes256KeySize) {
    throw CryptoError("BasicResultCipher: key must be 16 or 32 bytes");
  }
}

serialize::EntryPayload BasicResultCipher::protect(const FunctionIdentity& fn,
                                                   ByteView input,
                                                   ByteView result,
                                                   crypto::Drbg& drbg) const {
  serialize::EntryPayload entry;
  // No challenge / wrapped key in the basic design: the key is implicit.
  entry.result_ct = crypto::gcm_encrypt(
      system_key_, tag_aad(derive_tag(fn, input)), result, drbg);
  return entry;
}

std::optional<Bytes> BasicResultCipher::recover(
    const FunctionIdentity& fn, ByteView input,
    const serialize::EntryPayload& entry) const {
  if (!entry.challenge.empty() || !entry.wrapped_key.empty()) {
    return std::nullopt;  // not a basic-scheme payload
  }
  return crypto::gcm_decrypt(system_key_, tag_aad(derive_tag(fn, input)),
                             entry.result_ct);
}

}  // namespace speed::mle
