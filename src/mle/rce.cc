#include "mle/rce.h"

#include "common/error.h"
#include "crypto/gcm.h"

namespace speed::mle {

namespace {

using SecondaryKey = secret::Bytes<crypto::kSha256DigestSize>;

/// The result ciphertext is AEAD-bound to the computation tag, so a
/// malicious store cannot transplant a payload from one tag onto another
/// without tripping authentication (cache-poisoning defence, §III-D).
ByteView tag_aad(const Tag& tag) { return ByteView(tag.data(), tag.size()); }

/// [k] = k XOR h[0..16): the wrap mask is the first |k| bytes of the
/// 32-byte secondary key h. Both operands are secret; the XOR itself is the
/// deliberate protocol step that makes [k] publishable, hence the audited
/// reveals.
Bytes wrap_key(const secret::Buffer& key, const SecondaryKey& h) {
  const ByteView k = key.reveal_for(secret::Purpose::of("rce_key_wrap"));
  const ByteView mask = h.reveal_for(secret::Purpose::of("rce_key_wrap"));
  return xor_bytes(k, mask.first(k.size()));
}

/// k = [k] XOR h[0..16): the unwrap direction lands back in the secret
/// domain without an intermediate plain copy surviving (absorb moves the
/// vector).
secret::Buffer unwrap_key(ByteView wrapped_key, const SecondaryKey& h) {
  const ByteView mask = h.reveal_for(secret::Purpose::of("rce_key_wrap"));
  return secret::Buffer::absorb(
      xor_bytes(wrapped_key, mask.first(wrapped_key.size())));
}

/// r feeds h = Hash(func, m, r); r itself is published alongside the payload
/// (§III-C), so exposing it to the hash is a deliberate protocol step.
ByteView challenge_view(const secret::Buffer& challenge) {
  return challenge.reveal_for(secret::Purpose::of("rce_skey_input"));
}

}  // namespace

ResultCipher::WrappedKey ResultCipher::generate_key(const FunctionIdentity& fn,
                                                    ByteView input,
                                                    crypto::Drbg& drbg) {
  WrappedKey out;
  out.key = drbg.secret_bytes(kResultKeySize);        // k <- KeyGen(1^λ)
  out.challenge = drbg.secret_bytes(kChallengeSize);  // r <-R- {0,1}*
  const auto h = derive_secondary_key(fn, input, challenge_view(out.challenge));
  out.wrapped_key = wrap_key(out.key, h);             // [k] = k ⊕ h
  return out;
}

secret::Buffer ResultCipher::recover_key(const FunctionIdentity& fn,
                                         ByteView input, ByteView challenge,
                                         ByteView wrapped_key) {
  if (wrapped_key.size() != kResultKeySize) {
    throw CryptoError("recover_key: wrapped key must be 16 bytes");
  }
  const auto h = derive_secondary_key(fn, input, challenge);
  return unwrap_key(wrapped_key, h);                  // k = [k] ⊕ h
}

ResultCipher::WrappedKey ResultCipher::generate_key(
    const ComputationContext& ctx, crypto::Drbg& drbg) {
  WrappedKey out;
  out.key = drbg.secret_bytes(kResultKeySize);        // k <- KeyGen(1^λ)
  out.challenge = drbg.secret_bytes(kChallengeSize);  // r <-R- {0,1}*
  const auto h = ctx.secondary_key(challenge_view(out.challenge));
  out.wrapped_key = wrap_key(out.key, h);             // [k] = k ⊕ h
  return out;
}

secret::Buffer ResultCipher::recover_key(const ComputationContext& ctx,
                                         ByteView challenge,
                                         ByteView wrapped_key) {
  if (wrapped_key.size() != kResultKeySize) {
    throw CryptoError("recover_key: wrapped key must be 16 bytes");
  }
  const auto h = ctx.secondary_key(challenge);
  return unwrap_key(wrapped_key, h);                  // k = [k] ⊕ h
}

Bytes ResultCipher::encrypt_result(const Tag& tag, const secret::Buffer& key,
                                   ByteView result, crypto::Drbg& drbg) {
  return crypto::gcm_encrypt(key, tag_aad(tag), result, drbg);
}

std::optional<secret::Buffer> ResultCipher::decrypt_result(
    const Tag& tag, const secret::Buffer& key, ByteView result_ct) {
  auto pt = crypto::gcm_decrypt(key, tag_aad(tag), result_ct);
  if (!pt) return std::nullopt;
  return secret::Buffer::absorb(std::move(*pt));
}

serialize::EntryPayload ResultCipher::protect(const FunctionIdentity& fn,
                                              ByteView input, ByteView result,
                                              crypto::Drbg& drbg) {
  return protect(derive_tag(fn, input), fn, input, result, drbg);
}

serialize::EntryPayload ResultCipher::protect(const Tag& tag,
                                              const FunctionIdentity& fn,
                                              ByteView input, ByteView result,
                                              crypto::Drbg& drbg) {
  WrappedKey wk = generate_key(fn, input, drbg);
  serialize::EntryPayload entry;
  entry.wrapped_key = std::move(wk.wrapped_key);
  entry.result_ct = encrypt_result(tag, wk.key, result, drbg);
  entry.challenge = std::move(wk.challenge)
                        .release_for(secret::Purpose::of("rce_challenge_publish"));
  return entry;  // wk.key wipes itself on scope exit
}

serialize::EntryPayload ResultCipher::protect(const ComputationContext& ctx,
                                              ByteView result,
                                              crypto::Drbg& drbg) {
  secret::Buffer key = drbg.secret_bytes(kResultKeySize);        // k
  secret::Buffer challenge = drbg.secret_bytes(kChallengeSize);  // r
  const auto h = ctx.secondary_key(challenge_view(challenge));
  serialize::EntryPayload entry;
  entry.wrapped_key = wrap_key(key, h);           // [k] = k ⊕ h
  entry.result_ct = encrypt_result(ctx.tag(), key, result, drbg);
  entry.challenge = std::move(challenge).release_for(
      secret::Purpose::of("rce_challenge_publish"));
  return entry;  // key wipes itself on scope exit
}

std::optional<secret::Buffer> ResultCipher::recover(
    const ComputationContext& ctx, const serialize::EntryPayload& entry) {
  if (entry.wrapped_key.size() != kResultKeySize) return std::nullopt;
  const auto h = ctx.secondary_key(entry.challenge);
  const secret::Buffer key = unwrap_key(entry.wrapped_key, h);  // k = [k] ⊕ h
  return decrypt_result(ctx.tag(), key, entry.result_ct);
}

std::optional<secret::Buffer> ResultCipher::recover(
    const FunctionIdentity& fn, ByteView input,
    const serialize::EntryPayload& entry) {
  return recover(derive_tag(fn, input), fn, input, entry);
}

std::optional<secret::Buffer> ResultCipher::recover(
    const Tag& tag, const FunctionIdentity& fn, ByteView input,
    const serialize::EntryPayload& entry) {
  if (entry.wrapped_key.size() != kResultKeySize) return std::nullopt;
  const secret::Buffer key =
      recover_key(fn, input, entry.challenge, entry.wrapped_key);
  return decrypt_result(tag, key, entry.result_ct);
}

BasicResultCipher::BasicResultCipher(Bytes system_key)
    : system_key_(secret::Buffer::absorb(std::move(system_key))) {
  if (system_key_.size() != kResultKeySize &&
      system_key_.size() != crypto::kAes256KeySize) {
    throw CryptoError("BasicResultCipher: key must be 16 or 32 bytes");
  }
}

serialize::EntryPayload BasicResultCipher::protect(const FunctionIdentity& fn,
                                                   ByteView input,
                                                   ByteView result,
                                                   crypto::Drbg& drbg) const {
  serialize::EntryPayload entry;
  // No challenge / wrapped key in the basic design: the key is implicit.
  entry.result_ct = crypto::gcm_encrypt(
      system_key_, tag_aad(derive_tag(fn, input)), result, drbg);
  return entry;
}

std::optional<secret::Buffer> BasicResultCipher::recover(
    const FunctionIdentity& fn, ByteView input,
    const serialize::EntryPayload& entry) const {
  if (!entry.challenge.empty() || !entry.wrapped_key.empty()) {
    return std::nullopt;  // not a basic-scheme payload
  }
  auto pt = crypto::gcm_decrypt(system_key_, tag_aad(derive_tag(fn, input)),
                                entry.result_ct);
  if (!pt) return std::nullopt;
  return secret::Buffer::absorb(std::move(*pt));
}

}  // namespace speed::mle
