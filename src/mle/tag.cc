#include "mle/tag.h"

namespace speed::mle {

namespace {

/// Injective multi-part hash: every part is length-prefixed, plus a domain
/// separation label so tags and secondary keys can never collide.
crypto::Sha256Digest hash_labeled(std::string_view label,
                                  std::initializer_list<ByteView> parts) {
  crypto::Sha256 h;
  h.update(as_bytes(label));
  for (ByteView p : parts) {
    std::uint8_t len[4];
    const std::uint32_t n = static_cast<std::uint32_t>(p.size());
    for (int i = 0; i < 4; ++i) len[i] = static_cast<std::uint8_t>(n >> (8 * i));
    h.update(ByteView(len, 4));
    h.update(p);
  }
  return h.finish();
}

}  // namespace

Tag derive_tag(const FunctionIdentity& fn, ByteView input) {
  return hash_labeled("speed-tag-v1", {fn.unique_value(), input});
}

crypto::Sha256Digest derive_secondary_key(const FunctionIdentity& fn,
                                          ByteView input, ByteView challenge) {
  return hash_labeled("speed-skey-v1", {fn.unique_value(), input, challenge});
}

}  // namespace speed::mle
