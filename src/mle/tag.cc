#include "mle/tag.h"

#include <limits>

#include "common/error.h"

namespace speed::mle {

namespace {

void absorb_len(crypto::Sha256& h, std::uint32_t n) {
  std::uint8_t len[4];
  for (int i = 0; i < 4; ++i) len[i] = static_cast<std::uint8_t>(n >> (8 * i));
  h.update(ByteView(len, 4));
}

/// Absorb one length-prefixed part, keeping the multi-part encoding
/// injective regardless of how the parts are split.
void absorb_part(crypto::Sha256& h, ByteView part) {
  absorb_len(h, static_cast<std::uint32_t>(part.size()));
  h.update(part);
}

/// Raw (unprefixed) leading label; the three labels diverge at their eighth
/// byte ("speed-co" / "speed-ch" / "speed-st"), so no label is a prefix of
/// another and the overall encoding stays injective across domains.
ByteView domain_label(Domain domain) {
  switch (domain) {
    case Domain::kCall:
      return as_bytes("speed-comp-v2");
    case Domain::kChunk:
      return as_bytes("speed-chunk-v1");
    case Domain::kStream:
      return as_bytes("speed-stream-v1");
  }
  throw CryptoError("unknown tag domain");
}

}  // namespace

ComputationContext::ComputationContext(const FunctionIdentity& fn,
                                       ByteView input, Domain domain) {
  // Shared prefix of both derivations. Domain separation between the tag and
  // the secondary key happens in the (length-prefixed) suffix labels below,
  // so the expensive part — hashing a potentially huge m — runs once.
  midstate_.update(domain_label(domain));
  absorb_part(midstate_, fn.unique_value());
  absorb_part(midstate_, input);
}

ChunkTagger::ChunkTagger(const FunctionIdentity& fn, Domain domain) {
  prefix_.update(domain_label(domain));
  absorb_part(prefix_, fn.unique_value());
}

ComputationContext ChunkTagger::context(ByteView chunk) const {
  crypto::Sha256 h = prefix_;  // fork; the member prefix stays reusable
  absorb_part(h, chunk);
  return ComputationContext(ComputationContext::FromMidstate{}, h);
}

ContextBuilder::ContextBuilder(const FunctionIdentity& fn,
                               std::uint64_t total_bytes, Domain domain)
    : remaining_(total_bytes) {
  if (total_bytes > std::numeric_limits<std::uint32_t>::max()) {
    throw CryptoError("ContextBuilder: input exceeds the u32 codec limit");
  }
  midstate_.update(domain_label(domain));
  absorb_part(midstate_, fn.unique_value());
  // Commit the input's length prefix now; update() streams the raw bytes.
  absorb_len(midstate_, static_cast<std::uint32_t>(total_bytes));
}

void ContextBuilder::update(ByteView part) {
  if (part.size() > remaining_) {
    throw CryptoError("ContextBuilder: more bytes than declared");
  }
  midstate_.update(part);
  remaining_ -= part.size();
}

ComputationContext ContextBuilder::finish() && {
  if (remaining_ != 0) {
    throw CryptoError("ContextBuilder: fewer bytes than declared");
  }
  return ComputationContext(ComputationContext::FromMidstate{}, midstate_);
}

Tag ComputationContext::tag() const {
  crypto::Sha256 h = midstate_;  // fork the midstate; the member stays reusable
  absorb_part(h, as_bytes("tag"));
  return h.finish();
}

secret::Bytes<crypto::kSha256DigestSize> ComputationContext::secondary_key(
    ByteView challenge) const {
  crypto::Sha256 h = midstate_;
  absorb_part(h, as_bytes("skey"));
  absorb_part(h, challenge);
  crypto::Sha256Digest d = h.finish();
  auto out = secret::Bytes<crypto::kSha256DigestSize>::copy_of(
      ByteView(d.data(), d.size()));
  secure_zero(d.data(), d.size());
  return out;
}

Tag derive_tag(const FunctionIdentity& fn, ByteView input) {
  return ComputationContext(fn, input).tag();
}

secret::Bytes<crypto::kSha256DigestSize> derive_secondary_key(
    const FunctionIdentity& fn, ByteView input, ByteView challenge) {
  return ComputationContext(fn, input).secondary_key(challenge);
}

}  // namespace speed::mle
