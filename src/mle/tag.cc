#include "mle/tag.h"

namespace speed::mle {

namespace {

/// Absorb one length-prefixed part, keeping the multi-part encoding
/// injective regardless of how the parts are split.
void absorb_part(crypto::Sha256& h, ByteView part) {
  std::uint8_t len[4];
  const std::uint32_t n = static_cast<std::uint32_t>(part.size());
  for (int i = 0; i < 4; ++i) len[i] = static_cast<std::uint8_t>(n >> (8 * i));
  h.update(ByteView(len, 4));
  h.update(part);
}

}  // namespace

ComputationContext::ComputationContext(const FunctionIdentity& fn,
                                       ByteView input) {
  // Shared prefix of both derivations. Domain separation between the tag and
  // the secondary key happens in the (length-prefixed) suffix labels below,
  // so the expensive part — hashing a potentially huge m — runs once.
  midstate_.update(as_bytes("speed-comp-v2"));
  absorb_part(midstate_, fn.unique_value());
  absorb_part(midstate_, input);
}

Tag ComputationContext::tag() const {
  crypto::Sha256 h = midstate_;  // fork the midstate; the member stays reusable
  absorb_part(h, as_bytes("tag"));
  return h.finish();
}

secret::Bytes<crypto::kSha256DigestSize> ComputationContext::secondary_key(
    ByteView challenge) const {
  crypto::Sha256 h = midstate_;
  absorb_part(h, as_bytes("skey"));
  absorb_part(h, challenge);
  crypto::Sha256Digest d = h.finish();
  auto out = secret::Bytes<crypto::kSha256DigestSize>::copy_of(
      ByteView(d.data(), d.size()));
  secure_zero(d.data(), d.size());
  return out;
}

Tag derive_tag(const FunctionIdentity& fn, ByteView input) {
  return ComputationContext(fn, input).tag();
}

secret::Bytes<crypto::kSha256DigestSize> derive_secondary_key(
    const FunctionIdentity& fn, ByteView input, ByteView challenge) {
  return ComputationContext(fn, input).secondary_key(challenge);
}

}  // namespace speed::mle
