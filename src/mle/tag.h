// Computation tags and key material derivation (paper §III-B/C).
//
// A computation is the pair (function, input). Its *tag* t = Hash(func, m)
// identifies duplicates; its *secondary key* h = Hash(func, m, r) protects
// the per-result random key in the RCE wrap. "func" is represented by a
// FunctionIdentity: the developer-supplied descriptor plus the code
// measurement of the trusted library that provides the function — resolved
// by DedupRuntime against the enclave's TrustedLibraryRegistry, so that the
// tag binds actual code, not just a name (§IV-B).
//
// All hash inputs go through the canonical length-prefixed codec, making the
// (descriptor, measurement, input[, challenge]) -> digest mapping injective.
//
// Both digests share the prefix (func, m); ComputationContext absorbs that
// prefix into a SHA-256 midstate once, then forks the midstate per
// derivation (domain separation moves to a length-prefixed *suffix* label),
// so a large input m is hashed exactly once per call instead of once for t
// and again for h.
#pragma once

#include <string_view>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/sha256.h"
#include "serialize/function_descriptor.h"
#include "serialize/wire.h"
#include "sgx/measurement.h"

namespace speed::mle {

using serialize::Tag;

struct FunctionIdentity {
  serialize::FunctionDescriptor descriptor;
  sgx::Measurement code_measurement{};

  /// The "universally unique value for function identification" of §IV-B.
  Bytes unique_value() const {
    serialize::Encoder enc;
    enc.var_bytes(descriptor.canonical());
    enc.raw(ByteView(code_measurement.data(), code_measurement.size()));
    return enc.take();
  }

  friend bool operator==(const FunctionIdentity&,
                         const FunctionIdentity&) = default;
};

/// SHA-256 midstate over the common (func, m) prefix of both derivations.
/// The runtime builds one context per call and derives the tag plus any
/// number of secondary keys from it; each derivation copies the midstate
/// and absorbs only its own small suffix. The secondary key still requires
/// knowing (func, m) — the midstate never leaves the enclave, and the tag
/// alone (which the store learns) does not determine it.
class ComputationContext {
 public:
  ComputationContext(const FunctionIdentity& fn, ByteView input);

  /// t <- Hash(func, m). Algorithm 1/2, line 1.
  Tag tag() const;

  /// h <- Hash(func, m, r). Algorithm 1 line 6 / Algorithm 2 line 4.
  /// h wraps the per-result key k, so it is born secret and only meets k
  /// inside the audited RCE XOR (mle/rce.cc).
  secret::Bytes<crypto::kSha256DigestSize> secondary_key(
      ByteView challenge) const;

 private:
  crypto::Sha256 midstate_;  ///< absorbed: label ‖ len(uv) ‖ uv ‖ len(m) ‖ m
};

/// t <- Hash(func, m). Algorithm 1/2, line 1.
Tag derive_tag(const FunctionIdentity& fn, ByteView input);

/// h <- Hash(func, m, r). Algorithm 1 line 6 / Algorithm 2 line 4.
secret::Bytes<crypto::kSha256DigestSize> derive_secondary_key(
    const FunctionIdentity& fn, ByteView input, ByteView challenge);

}  // namespace speed::mle
