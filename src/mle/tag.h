// Computation tags and key material derivation (paper §III-B/C).
//
// A computation is the pair (function, input). Its *tag* t = Hash(func, m)
// identifies duplicates; its *secondary key* h = Hash(func, m, r) protects
// the per-result random key in the RCE wrap. "func" is represented by a
// FunctionIdentity: the developer-supplied descriptor plus the code
// measurement of the trusted library that provides the function — resolved
// by DedupRuntime against the enclave's TrustedLibraryRegistry, so that the
// tag binds actual code, not just a name (§IV-B).
//
// All hash inputs go through the canonical length-prefixed codec, making the
// (descriptor, measurement, input[, challenge]) -> digest mapping injective.
//
// Both digests share the prefix (func, m); ComputationContext absorbs that
// prefix into a SHA-256 midstate once, then forks the midstate per
// derivation (domain separation moves to a length-prefixed *suffix* label),
// so a large input m is hashed exactly once per call instead of once for t
// and again for h.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/sha256.h"
#include "serialize/function_descriptor.h"
#include "serialize/wire.h"
#include "sgx/measurement.h"

namespace speed::mle {

using serialize::Tag;

/// Hash-domain of a computation context. Whole-call tags, per-chunk tags and
/// whole-stream tags live in disjoint domains: a chunk whose bytes happen to
/// equal some whole input must not collide with that input's call tag, or the
/// store would serve one's result for the other. The domain picks the raw
/// label absorbed first into the midstate (the labels diverge within their
/// first eight bytes, so the raw encoding stays injective).
enum class Domain : std::uint8_t {
  kCall,    ///< "speed-comp-v2"   — one tag per function call (the default)
  kChunk,   ///< "speed-chunk-v1"  — one tag per content-defined chunk
  kStream,  ///< "speed-stream-v1" — one tag per whole chunked stream
};

struct FunctionIdentity {
  serialize::FunctionDescriptor descriptor;
  sgx::Measurement code_measurement{};

  /// The "universally unique value for function identification" of §IV-B.
  Bytes unique_value() const {
    serialize::Encoder enc;
    enc.var_bytes(descriptor.canonical());
    enc.raw(ByteView(code_measurement.data(), code_measurement.size()));
    return enc.take();
  }

  friend bool operator==(const FunctionIdentity&,
                         const FunctionIdentity&) = default;
};

/// SHA-256 midstate over the common (func, m) prefix of both derivations.
/// The runtime builds one context per call and derives the tag plus any
/// number of secondary keys from it; each derivation copies the midstate
/// and absorbs only its own small suffix. The secondary key still requires
/// knowing (func, m) — the midstate never leaves the enclave, and the tag
/// alone (which the store learns) does not determine it.
class ComputationContext {
 public:
  ComputationContext(const FunctionIdentity& fn, ByteView input,
                     Domain domain = Domain::kCall);

  /// t <- Hash(func, m). Algorithm 1/2, line 1.
  Tag tag() const;

  /// h <- Hash(func, m, r). Algorithm 1 line 6 / Algorithm 2 line 4.
  /// h wraps the per-result key k, so it is born secret and only meets k
  /// inside the audited RCE XOR (mle/rce.cc).
  secret::Bytes<crypto::kSha256DigestSize> secondary_key(
      ByteView challenge) const;

 private:
  friend class ChunkTagger;
  friend class ContextBuilder;
  struct FromMidstate {};
  ComputationContext(FromMidstate, const crypto::Sha256& midstate)
      : midstate_(midstate) {}

  crypto::Sha256 midstate_;  ///< absorbed: label ‖ len(uv) ‖ uv ‖ len(m) ‖ m
};

/// Derives many same-function contexts cheaply: the (domain-label, func)
/// prefix is absorbed once at construction, then each chunk forks that
/// midstate and absorbs only its own bytes. For a plan of N chunks this
/// saves N-1 hashes of the function identity — and keeps every chunk tag in
/// the chunk domain, disjoint from whole-call tags by construction.
class ChunkTagger {
 public:
  explicit ChunkTagger(const FunctionIdentity& fn,
                       Domain domain = Domain::kChunk);

  /// Context for one chunk: fork the (label, func) midstate, absorb the
  /// chunk bytes. Equivalent to ComputationContext(fn, chunk, domain) but
  /// without re-hashing the function identity.
  ComputationContext context(ByteView chunk) const;

 private:
  crypto::Sha256 prefix_;  ///< absorbed: label ‖ len(uv) ‖ uv
};

/// Builds a ComputationContext over an input that arrives in parts, without
/// concatenating it: the streaming data path walks the chunked input once,
/// feeding each chunk both to its own per-chunk context (via ChunkTagger)
/// and to the whole-stream context accumulating here. The finished context
/// is byte-for-byte the one ComputationContext(fn, whole_input, domain)
/// would produce, so stream tags are independent of how the walk was split.
class ContextBuilder {
 public:
  ContextBuilder(const FunctionIdentity& fn, std::uint64_t total_bytes,
                 Domain domain);

  void update(ByteView part);

  /// Consumes the builder. Throws if the absorbed bytes don't sum to the
  /// declared total (the length prefix was already committed to the hash).
  ComputationContext finish() &&;

 private:
  crypto::Sha256 midstate_;
  std::uint64_t remaining_;
};

/// t <- Hash(func, m). Algorithm 1/2, line 1.
Tag derive_tag(const FunctionIdentity& fn, ByteView input);

/// h <- Hash(func, m, r). Algorithm 1 line 6 / Algorithm 2 line 4.
secret::Bytes<crypto::kSha256DigestSize> derive_secondary_key(
    const FunctionIdentity& fn, ByteView input, ByteView challenge);

}  // namespace speed::mle
