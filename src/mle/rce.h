// Result encryption schemes.
//
// ResultCipher is the paper's main design (§III-C): a computation-flavoured
// randomized convergent encryption. The initial computation picks a fresh
// AES-128 key k and a random challenge r, encrypts the result under k with
// AES-GCM, and wraps k as [k] = k XOR h where h = Hash(func, m, r). Any
// application that *can perform the same computation* — owns the same code
// and input — recomputes h and recovers k; anyone else fails the GCM
// authenticity check (the ⊥ of Fig. 3). No system-wide key exists.
//
// BasicResultCipher is the strawman of §III-B: one shared system key.
// It is kept as the ablation baseline (bench_ablation_schemes) and to
// demonstrate the single-point-of-compromise contrast in tests.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/drbg.h"
#include "mle/tag.h"
#include "serialize/wire.h"

namespace speed::mle {

inline constexpr std::size_t kResultKeySize = 16;   ///< AES-128
inline constexpr std::size_t kChallengeSize = 32;   ///< |r|

class ResultCipher {
 public:
  /// Algorithm 1, lines 5-9: protect a freshly computed result.
  /// `drbg` supplies k and r (callers inside an enclave pass its trusted
  /// randomness). The returned payload is safe to store outside enclaves.
  static serialize::EntryPayload protect(const FunctionIdentity& fn,
                                         ByteView input, ByteView result,
                                         crypto::Drbg& drbg);
  /// Same, with the tag already derived (the runtime computed it for the
  /// duplicate check and should not hash the input a second time).
  static serialize::EntryPayload protect(const Tag& tag,
                                         const FunctionIdentity& fn,
                                         ByteView input, ByteView result,
                                         crypto::Drbg& drbg);
  /// Same, from a (func, m) midstate: the secondary key reuses the hash work
  /// already spent deriving the tag, so `input` is never hashed twice.
  static serialize::EntryPayload protect(const ComputationContext& ctx,
                                         ByteView result, crypto::Drbg& drbg);

  /// Algorithm 2, lines 4-6 + the Fig. 3 verification: recover the result
  /// from a stored payload. Returns nullopt iff the caller's (func, m) does
  /// not match the payload's — or the payload was tampered with. The
  /// recovered plaintext is secret until the runtime deliberately releases
  /// it to the application (an audited escape in dedup_runtime.cc).
  static std::optional<secret::Buffer> recover(
      const FunctionIdentity& fn, ByteView input,
      const serialize::EntryPayload& entry);
  /// Same, with the tag already derived.
  static std::optional<secret::Buffer> recover(
      const Tag& tag, const FunctionIdentity& fn, ByteView input,
      const serialize::EntryPayload& entry);
  /// Same, from a (func, m) midstate (see protect above).
  static std::optional<secret::Buffer> recover(
      const ComputationContext& ctx, const serialize::EntryPayload& entry);

  // Split-phase helpers used by the Table I microbenchmarks, which time
  // "Key Gen." (pick + wrap k) and "Key Rec." (recover k) separately from
  // result encryption/decryption.
  struct WrappedKey {
    secret::Buffer key;        ///< k (kept inside the enclave)
    secret::Buffer challenge;  ///< r (published only via an audited release)
    Bytes wrapped_key;         ///< [k] — protocol-public
  };
  static WrappedKey generate_key(const FunctionIdentity& fn, ByteView input,
                                 crypto::Drbg& drbg);
  static secret::Buffer recover_key(const FunctionIdentity& fn, ByteView input,
                                    ByteView challenge, ByteView wrapped_key);
  // Midstate variants for the streaming path: a ChunkPlan derives tag and h
  // for every chunk from one forked midstate, so per-chunk key wrap/unwrap
  // must not re-hash the chunk (mirrors the ctx protect/recover overloads).
  static WrappedKey generate_key(const ComputationContext& ctx,
                                 crypto::Drbg& drbg);
  static secret::Buffer recover_key(const ComputationContext& ctx,
                                    ByteView challenge, ByteView wrapped_key);
  // Result encryption is AEAD-bound to the computation tag (already derived
  // on the runtime's hot path — Algorithm 1/2 line 1 — so it is passed in
  // rather than re-derived from the full input).
  static Bytes encrypt_result(const Tag& tag, const secret::Buffer& key,
                              ByteView result, crypto::Drbg& drbg);
  static std::optional<secret::Buffer> decrypt_result(const Tag& tag,
                                                      const secret::Buffer& key,
                                                      ByteView result_ct);
};

/// §III-B basic design: every application shares `system_key`.
class BasicResultCipher {
 public:
  /// Absorbs `system_key` into the secret domain (the source is emptied).
  explicit BasicResultCipher(Bytes system_key);

  serialize::EntryPayload protect(const FunctionIdentity& fn, ByteView input,
                                  ByteView result, crypto::Drbg& drbg) const;
  std::optional<secret::Buffer> recover(
      const FunctionIdentity& fn, ByteView input,
      const serialize::EntryPayload& entry) const;

 private:
  secret::Buffer system_key_;
};

}  // namespace speed::mle
