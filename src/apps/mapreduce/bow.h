// Bag-of-words computation on MapReduce — the fourth SPEED case study.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/mapreduce/mapreduce.h"

namespace speed::mapreduce {

using WordHistogram = std::map<std::string, std::uint64_t>;

struct BowOptions {
  std::size_t min_word_length = 2;
  std::size_t workers = 2;
};

/// Lowercased alphanumeric tokens of `text`.
std::vector<std::string> tokenize(const std::string& text,
                                  std::size_t min_length = 2);

/// Bag-of-words over a batch of documents via the bow_mapper/bow_reducer
/// MapReduce job (the paper's customized Mapper()).
WordHistogram bag_of_words(const std::vector<std::string>& documents,
                           const BowOptions& options = {});

inline constexpr const char* kLibraryFamily = "speed-mapreduce";
inline constexpr const char* kLibraryVersion = "1.0";

}  // namespace speed::mapreduce
