#include "apps/mapreduce/bow.h"

#include <cctype>
#include <numeric>

namespace speed::mapreduce {

std::vector<std::string> tokenize(const std::string& text,
                                  std::size_t min_length) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      if (current.size() >= min_length) tokens.push_back(current);
      current.clear();
    }
  }
  if (current.size() >= min_length) tokens.push_back(current);
  return tokens;
}

WordHistogram bag_of_words(const std::vector<std::string>& documents,
                           const BowOptions& options) {
  JobConfig config;
  config.workers = options.workers;

  const std::function<void(const std::string&, Emitter<std::string, std::uint64_t>&)>
      bow_mapper = [&options](const std::string& doc,
                              Emitter<std::string, std::uint64_t>& out) {
        for (std::string& token : tokenize(doc, options.min_word_length)) {
          out.emit(std::move(token), 1);
        }
      };

  const std::function<std::uint64_t(const std::string&,
                                    const std::vector<std::uint64_t>&)>
      bow_reducer = [](const std::string&, const std::vector<std::uint64_t>& v) {
        return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
      };

  return run_job<std::string, std::string, std::uint64_t, std::uint64_t>(
      documents, bow_mapper, bow_reducer, config);
}

}  // namespace speed::mapreduce
