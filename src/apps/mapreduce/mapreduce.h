// A small in-memory MapReduce framework — the substrate of the BoW case
// study (paper Fig. 4 case 4 uses a C++ MapReduce library's Mapper()).
//
// The classic three phases: map tasks run in parallel over input splits and
// emit (K, V) pairs into hash partitions; shuffle groups values by key
// within each partition; reduce tasks fold each key's values. Deterministic
// output (ordered map) regardless of worker count — required for results to
// deduplicate.
#pragma once

#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "common/annotated_lock.h"
#include "common/error.h"

namespace speed::mapreduce {

template <typename K, typename V>
class Emitter {
 public:
  explicit Emitter(std::size_t partitions) : buckets_(partitions) {}

  void emit(K key, V value) {
    const std::size_t p = std::hash<K>{}(key) % buckets_.size();
    buckets_[p].emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::vector<std::pair<K, V>>>& buckets() { return buckets_; }

 private:
  std::vector<std::vector<std::pair<K, V>>> buckets_;
};

struct JobConfig {
  std::size_t workers = std::thread::hardware_concurrency();
  std::size_t partitions = 16;
};

/// Run a MapReduce job over `inputs`.
///   mapper(input, emitter)            — emit any number of (K, V)
///   reducer(key, values) -> OutV      — fold one key's values
template <typename InputT, typename K, typename V, typename OutV>
std::map<K, OutV> run_job(
    const std::vector<InputT>& inputs,
    const std::function<void(const InputT&, Emitter<K, V>&)>& mapper,
    const std::function<OutV(const K&, const std::vector<V>&)>& reducer,
    JobConfig config = JobConfig{}) {
  if (config.workers == 0) config.workers = 1;
  if (config.partitions == 0) throw Error("run_job: zero partitions");

  // ---- map phase: each worker owns a private emitter (no locking).
  const std::size_t workers = std::min(config.workers, std::max<std::size_t>(inputs.size(), 1));
  std::vector<Emitter<K, V>> emitters(workers, Emitter<K, V>(config.partitions));
  {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (std::size_t i = w; i < inputs.size(); i += workers) {
          mapper(inputs[i], emitters[w]);
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  // ---- shuffle: group values by key within each partition.
  std::vector<std::map<K, std::vector<V>>> grouped(config.partitions);
  for (auto& emitter : emitters) {
    for (std::size_t p = 0; p < config.partitions; ++p) {
      for (auto& [key, value] : emitter.buckets()[p]) {
        grouped[p][std::move(key)].push_back(std::move(value));
      }
    }
  }

  // ---- reduce phase: partitions in parallel, merged into an ordered map.
  std::map<K, OutV> result;
  // Held only around the merge of an already-reduced partition — the
  // reducer itself runs on the worker's private `local` map.
  Mutex result_mu{LockRank::kApp};
  {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (std::size_t p = w; p < config.partitions; p += workers) {
          std::map<K, OutV> local;
          for (const auto& [key, values] : grouped[p]) {
            local.emplace(key, reducer(key, values));
          }
          MutexLock lock(result_mu);
          result.merge(local);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  return result;
}

}  // namespace speed::mapreduce
