#include "apps/deflate/huffman.h"

#include <algorithm>
#include <numeric>

namespace speed::deflate {

namespace {

/// Package-merge item: a weight plus the multiset of leaf symbols inside.
struct Item {
  std::uint64_t weight;
  std::vector<std::uint16_t> symbols;
};

bool lighter(const Item& a, const Item& b) { return a.weight < b.weight; }

}  // namespace

std::vector<std::uint8_t> build_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_bits) {
  std::vector<std::uint8_t> lengths(freqs.size(), 0);

  std::vector<std::uint16_t> active;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] > 0) active.push_back(static_cast<std::uint16_t>(i));
  }
  if (active.empty()) return lengths;
  if (active.size() == 1) {
    lengths[active[0]] = 1;  // DEFLATE forbids zero-bit codes
    return lengths;
  }
  if ((static_cast<std::size_t>(1) << max_bits) < active.size()) {
    throw Error("build_code_lengths: alphabet too large for bit limit");
  }

  // Leaves sorted by weight, reused at every level.
  std::vector<Item> leaves;
  leaves.reserve(active.size());
  for (const std::uint16_t s : active) {
    leaves.push_back(Item{freqs[s], {s}});
  }
  std::sort(leaves.begin(), leaves.end(), lighter);

  // Package-merge: list_1 = leaves; list_l = merge(leaves, package(list_{l-1})).
  std::vector<Item> list = leaves;
  for (int level = 2; level <= max_bits; ++level) {
    std::vector<Item> packages;
    packages.reserve(list.size() / 2);
    for (std::size_t i = 0; i + 1 < list.size(); i += 2) {
      Item merged;
      merged.weight = list[i].weight + list[i + 1].weight;
      merged.symbols = list[i].symbols;
      merged.symbols.insert(merged.symbols.end(), list[i + 1].symbols.begin(),
                            list[i + 1].symbols.end());
      packages.push_back(std::move(merged));
    }
    std::vector<Item> next;
    next.reserve(leaves.size() + packages.size());
    std::merge(leaves.begin(), leaves.end(),
               std::make_move_iterator(packages.begin()),
               std::make_move_iterator(packages.end()),
               std::back_inserter(next), lighter);
    list = std::move(next);
  }

  // Select the cheapest 2n-2 items; each leaf occurrence deepens its symbol.
  const std::size_t take = 2 * active.size() - 2;
  for (std::size_t i = 0; i < take && i < list.size(); ++i) {
    for (const std::uint16_t s : list[i].symbols) ++lengths[s];
  }
  return lengths;
}

std::vector<std::uint16_t> assign_canonical_codes(
    const std::vector<std::uint8_t>& lengths) {
  std::uint32_t bl_count[kMaxCodeBits + 1] = {};
  for (const std::uint8_t len : lengths) {
    if (len > kMaxCodeBits) throw Error("assign_canonical_codes: length > 15");
    ++bl_count[len];
  }
  bl_count[0] = 0;

  std::uint32_t next_code[kMaxCodeBits + 1] = {};
  std::uint32_t code = 0;
  for (int bits = 1; bits <= kMaxCodeBits; ++bits) {
    code = (code + bl_count[bits - 1]) << 1;
    next_code[bits] = code;
  }

  std::vector<std::uint16_t> codes(lengths.size(), 0);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) {
      codes[i] = static_cast<std::uint16_t>(next_code[lengths[i]]++);
    }
  }
  return codes;
}

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t>& lengths) {
  std::uint64_t kraft = 0;  // in units of 2^-15
  for (const std::uint8_t len : lengths) {
    if (len > kMaxCodeBits) {
      throw SerializationError("HuffmanDecoder: code length > 15");
    }
    if (len > 0) {
      ++count_[len];
      kraft += 1ull << (kMaxCodeBits - len);
    }
  }
  if (kraft > (1ull << kMaxCodeBits)) {
    throw SerializationError("HuffmanDecoder: over-subscribed code");
  }

  // Sort symbols by (length, symbol) — canonical order.
  std::uint32_t index = 0;
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeBits; ++len) {
    code = (code + count_[len - 1]) << 1;
    first_code_[len] = code;
    first_index_[len] = index;
    index += count_[len];
  }
  sorted_symbols_.resize(index);
  std::uint32_t cursor[kMaxCodeBits + 1];
  std::copy(first_index_, first_index_ + kMaxCodeBits + 1, cursor);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      sorted_symbols_[cursor[lengths[s]]++] = static_cast<std::uint16_t>(s);
    }
  }
}

std::uint32_t HuffmanDecoder::read_symbol(BitReader& in) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeBits; ++len) {
    code = (code << 1) | in.read_bit();
    if (count_[len] != 0 && code >= first_code_[len] &&
        code - first_code_[len] < count_[len]) {
      return sorted_symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  throw SerializationError("HuffmanDecoder: invalid code in stream");
}

}  // namespace speed::deflate
