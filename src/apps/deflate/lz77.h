// LZ77 string matching for DEFLATE (hash chains with lazy evaluation,
// zlib-style). Produces the token stream the block encoder entropy-codes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace speed::deflate {

inline constexpr std::size_t kWindowSize = 32768;
inline constexpr std::size_t kMinMatch = 3;
inline constexpr std::size_t kMaxMatch = 258;

/// One DEFLATE token: a literal byte (distance == 0) or a back-reference
/// of `length` bytes at `distance`.
struct Token {
  std::uint16_t length = 0;
  std::uint16_t distance = 0;  ///< 0 => literal
  std::uint8_t literal = 0;
};

struct Lz77Params {
  /// Maximum hash-chain positions examined per match attempt; higher finds
  /// better matches, slower (zlib's good/nice/lazy knobs collapsed to one).
  std::size_t max_chain = 128;
  /// Stop searching once a match of at least this length is found.
  std::size_t nice_length = 128;
  /// Enable one-step lazy matching.
  bool lazy = true;
};

/// Parse `data` into a token stream. Matches never cross the 32 KB window.
std::vector<Token> lz77_parse(ByteView data, const Lz77Params& params = {});

/// Reconstruct original bytes from tokens (for tests and the decoder oracle).
Bytes lz77_reconstruct(const std::vector<Token>& tokens);

}  // namespace speed::deflate
