#include "apps/deflate/deflate.h"

#include <algorithm>
#include <memory>

#include "apps/deflate/bitio.h"
#include "apps/deflate/huffman.h"
#include "common/error.h"

namespace speed::deflate {

namespace {

// ---------------------------------------------------------- format tables

constexpr int kNumLitLenSymbols = 288;  // 0-255 literals, 256 EOB, 257-285 lengths
constexpr int kNumDistSymbols = 30;
constexpr int kNumClSymbols = 19;
constexpr int kEndOfBlock = 256;

struct RangeCode {
  std::uint16_t base;
  std::uint8_t extra_bits;
};

// Length codes 257..285 (RFC 1951 §3.2.5).
constexpr RangeCode kLengthCodes[29] = {
    {3, 0},  {4, 0},  {5, 0},  {6, 0},  {7, 0},  {8, 0},  {9, 0},  {10, 0},
    {11, 1}, {13, 1}, {15, 1}, {17, 1}, {19, 2}, {23, 2}, {27, 2}, {31, 2},
    {35, 3}, {43, 3}, {51, 3}, {59, 3}, {67, 4}, {83, 4}, {99, 4}, {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0}};

// Distance codes 0..29.
constexpr RangeCode kDistCodes[30] = {
    {1, 0},     {2, 0},     {3, 0},      {4, 0},      {5, 1},     {7, 1},
    {9, 2},     {13, 2},    {17, 3},     {25, 3},     {33, 4},    {49, 4},
    {65, 5},    {97, 5},    {129, 6},    {193, 6},    {257, 7},   {385, 7},
    {513, 8},   {769, 8},   {1025, 9},   {1537, 9},   {2049, 10}, {3073, 10},
    {4097, 11}, {6145, 11}, {8193, 12},  {12289, 12}, {16385, 13}, {24577, 13}};

// Code-length alphabet transmission order (RFC 1951 §3.2.7).
constexpr std::uint8_t kClOrder[kNumClSymbols] = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

int length_to_code(std::size_t len) {
  for (int c = 28; c >= 0; --c) {
    if (len >= kLengthCodes[c].base) {
      // Code 285 (index 28) is exactly 258; 284 covers 227..257.
      if (c == 28 && len != 258) continue;
      return c;
    }
  }
  throw Error("length_to_code: length out of range");
}

int dist_to_code(std::size_t dist) {
  for (int c = 29; c >= 0; --c) {
    if (dist >= kDistCodes[c].base) return c;
  }
  throw Error("dist_to_code: distance out of range");
}

std::vector<std::uint8_t> fixed_litlen_lengths() {
  std::vector<std::uint8_t> lengths(kNumLitLenSymbols);
  for (int i = 0; i <= 143; ++i) lengths[static_cast<std::size_t>(i)] = 8;
  for (int i = 144; i <= 255; ++i) lengths[static_cast<std::size_t>(i)] = 9;
  for (int i = 256; i <= 279; ++i) lengths[static_cast<std::size_t>(i)] = 7;
  for (int i = 280; i <= 287; ++i) lengths[static_cast<std::size_t>(i)] = 8;
  return lengths;
}

std::vector<std::uint8_t> fixed_dist_lengths() {
  return std::vector<std::uint8_t>(32, 5);
}

// --------------------------------------------------------------- encoder

struct BlockFrequencies {
  std::vector<std::uint64_t> litlen;
  std::vector<std::uint64_t> dist;
};

BlockFrequencies count_frequencies(const std::vector<Token>& tokens,
                                   std::size_t begin, std::size_t end) {
  BlockFrequencies f;
  f.litlen.assign(kNumLitLenSymbols, 0);
  f.dist.assign(kNumDistSymbols, 0);
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = tokens[i];
    if (t.distance == 0) {
      ++f.litlen[t.literal];
    } else {
      ++f.litlen[static_cast<std::size_t>(257 + length_to_code(t.length))];
      ++f.dist[static_cast<std::size_t>(dist_to_code(t.distance))];
    }
  }
  ++f.litlen[kEndOfBlock];
  return f;
}

void write_tokens(BitWriter& out, const std::vector<Token>& tokens,
                  std::size_t begin, std::size_t end,
                  const HuffmanEncoder& litlen, const HuffmanEncoder& dist) {
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = tokens[i];
    if (t.distance == 0) {
      litlen.write_symbol(out, t.literal);
    } else {
      const int lc = length_to_code(t.length);
      litlen.write_symbol(out, static_cast<std::size_t>(257 + lc));
      out.write_bits(
          static_cast<std::uint32_t>(t.length - kLengthCodes[lc].base),
          kLengthCodes[lc].extra_bits);
      const int dc = dist_to_code(t.distance);
      dist.write_symbol(out, static_cast<std::size_t>(dc));
      out.write_bits(
          static_cast<std::uint32_t>(t.distance - kDistCodes[dc].base),
          kDistCodes[dc].extra_bits);
    }
  }
  litlen.write_symbol(out, kEndOfBlock);
}

/// Run-length encode the concatenated code-length arrays with symbols
/// 16 (repeat previous 3-6), 17 (zeros 3-10), 18 (zeros 11-138).
struct ClToken {
  std::uint8_t symbol;
  std::uint8_t extra_value;
};

std::vector<ClToken> rle_code_lengths(const std::vector<std::uint8_t>& lengths) {
  std::vector<ClToken> out;
  std::size_t i = 0;
  while (i < lengths.size()) {
    const std::uint8_t len = lengths[i];
    std::size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == len) ++run;
    if (len == 0) {
      std::size_t left = run;
      while (left >= 11) {
        const std::size_t take = std::min<std::size_t>(left, 138);
        out.push_back({18, static_cast<std::uint8_t>(take - 11)});
        left -= take;
      }
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 10);
        out.push_back({17, static_cast<std::uint8_t>(take - 3)});
        left -= take;
      }
      for (std::size_t k = 0; k < left; ++k) out.push_back({0, 0});
    } else {
      out.push_back({len, 0});
      std::size_t left = run - 1;
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 6);
        out.push_back({16, static_cast<std::uint8_t>(take - 3)});
        left -= take;
      }
      for (std::size_t k = 0; k < left; ++k) out.push_back({len, 0});
    }
    i += run;
  }
  return out;
}

constexpr int kClExtraBits[19] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                  0, 0, 0, 0, 0, 0, 2, 3, 7};

/// Size in bits of a dynamic block with the given trees and frequencies.
std::size_t dynamic_block_bits(const std::vector<std::uint8_t>& ll_len,
                               const std::vector<std::uint8_t>& d_len,
                               const BlockFrequencies& f,
                               const std::vector<ClToken>& cl_tokens,
                               const std::vector<std::uint8_t>& cl_len,
                               int hclen) {
  std::size_t bits = 5 + 5 + 4 + static_cast<std::size_t>(hclen) * 3;
  for (const ClToken& t : cl_tokens) {
    bits += cl_len[t.symbol] + static_cast<std::size_t>(kClExtraBits[t.symbol]);
  }
  for (int s = 0; s < kNumLitLenSymbols; ++s) {
    const auto su = static_cast<std::size_t>(s);
    std::size_t sym_bits = ll_len[su];
    // 286-287 exist in the fixed code space but never occur (RFC 1951 §3.2.6).
    if (s >= 257 && s <= 285) sym_bits += kLengthCodes[s - 257].extra_bits;
    bits += f.litlen[su] * sym_bits;
  }
  for (int s = 0; s < kNumDistSymbols; ++s) {
    const auto su = static_cast<std::size_t>(s);
    bits += f.dist[su] * (d_len[su] + kDistCodes[su].extra_bits);
  }
  return bits;
}

std::size_t fixed_block_bits(const BlockFrequencies& f) {
  const auto ll = fixed_litlen_lengths();
  std::size_t bits = 0;
  for (int s = 0; s < kNumLitLenSymbols; ++s) {
    const auto su = static_cast<std::size_t>(s);
    std::size_t sym_bits = ll[su];
    // 286-287 exist in the fixed code space but never occur (RFC 1951 §3.2.6).
    if (s >= 257 && s <= 285) sym_bits += kLengthCodes[s - 257].extra_bits;
    bits += f.litlen[su] * sym_bits;
  }
  for (int s = 0; s < kNumDistSymbols; ++s) {
    const auto su = static_cast<std::size_t>(s);
    bits += f.dist[su] * (5u + kDistCodes[su].extra_bits);
  }
  return bits;
}

void write_stored_block(BitWriter& out, ByteView raw, bool final) {
  // Stored blocks carry at most 65535 bytes each.
  std::size_t off = 0;
  do {
    const std::size_t take = std::min<std::size_t>(raw.size() - off, 65535);
    const bool last_piece = final && off + take == raw.size();
    out.write_bits(last_piece ? 1 : 0, 1);
    out.write_bits(0, 2);  // BTYPE=00
    out.align_to_byte();
    const std::uint16_t len = static_cast<std::uint16_t>(take);
    out.write_byte(static_cast<std::uint8_t>(len));
    out.write_byte(static_cast<std::uint8_t>(len >> 8));
    out.write_byte(static_cast<std::uint8_t>(~len));
    out.write_byte(static_cast<std::uint8_t>((~len) >> 8));
    for (std::size_t i = 0; i < take; ++i) out.write_byte(raw[off + i]);
    off += take;
  } while (off < raw.size());
}

void write_block(BitWriter& out, const std::vector<Token>& tokens,
                 std::size_t begin, std::size_t end, ByteView raw_bytes,
                 bool final) {
  const BlockFrequencies f = count_frequencies(tokens, begin, end);

  // Build the dynamic trees.
  std::vector<std::uint8_t> ll_len = build_code_lengths(f.litlen);
  std::vector<std::uint8_t> d_len = build_code_lengths(f.dist);
  // DEFLATE requires at least one distance code to be describable; give the
  // all-literal case a 1-bit dummy code for distance 0.
  if (std::all_of(d_len.begin(), d_len.end(), [](std::uint8_t l) { return l == 0; })) {
    d_len[0] = 1;
  }

  const int hlit = [&] {
    int n = kNumLitLenSymbols;
    while (n > 257 && ll_len[static_cast<std::size_t>(n - 1)] == 0) --n;
    return n;
  }();
  const int hdist = [&] {
    int n = kNumDistSymbols;
    while (n > 1 && d_len[static_cast<std::size_t>(n - 1)] == 0) --n;
    return n;
  }();

  std::vector<std::uint8_t> combined(ll_len.begin(), ll_len.begin() + hlit);
  combined.insert(combined.end(), d_len.begin(), d_len.begin() + hdist);
  const std::vector<ClToken> cl_tokens = rle_code_lengths(combined);

  std::vector<std::uint64_t> cl_freq(kNumClSymbols, 0);
  for (const ClToken& t : cl_tokens) ++cl_freq[t.symbol];
  std::vector<std::uint8_t> cl_len = build_code_lengths(cl_freq, 7);

  const int hclen = [&] {
    int n = kNumClSymbols;
    while (n > 4 && cl_len[kClOrder[n - 1]] == 0) --n;
    return n;
  }();

  // Choose the cheapest representation.
  const std::size_t dyn_bits =
      dynamic_block_bits(ll_len, d_len, f, cl_tokens, cl_len, hclen);
  const std::size_t fix_bits = fixed_block_bits(f);
  const std::size_t stored_bits = 8 * (raw_bytes.size() + 5) + 7;

  if (stored_bits < dyn_bits && stored_bits < fix_bits) {
    write_stored_block(out, raw_bytes, final);
    return;
  }

  out.write_bits(final ? 1 : 0, 1);
  if (fix_bits <= dyn_bits) {
    out.write_bits(1, 2);  // BTYPE=01 fixed
    const HuffmanEncoder litlen(fixed_litlen_lengths());
    const HuffmanEncoder dist(fixed_dist_lengths());
    write_tokens(out, tokens, begin, end, litlen, dist);
    return;
  }

  out.write_bits(2, 2);  // BTYPE=10 dynamic
  out.write_bits(static_cast<std::uint32_t>(hlit - 257), 5);
  out.write_bits(static_cast<std::uint32_t>(hdist - 1), 5);
  out.write_bits(static_cast<std::uint32_t>(hclen - 4), 4);
  const HuffmanEncoder cl_encoder(cl_len);
  for (int i = 0; i < hclen; ++i) {
    out.write_bits(cl_len[kClOrder[i]], 3);
  }
  for (const ClToken& t : cl_tokens) {
    cl_encoder.write_symbol(out, t.symbol);
    if (t.symbol >= 16) {
      out.write_bits(t.extra_value, kClExtraBits[t.symbol]);
    }
  }
  const HuffmanEncoder litlen(ll_len);
  const HuffmanEncoder dist(d_len);
  write_tokens(out, tokens, begin, end, litlen, dist);
}

}  // namespace

Bytes compress(ByteView data, const DeflateOptions& options) {
  BitWriter out;
  if (data.empty()) {
    write_stored_block(out, data, true);
    return out.finish();
  }

  const std::vector<Token> tokens = lz77_parse(data, options.lz77);

  // Partition the token stream into blocks, tracking the raw byte span each
  // block covers (needed for the stored-block fallback).
  std::size_t token_begin = 0;
  std::size_t byte_begin = 0;
  while (token_begin < tokens.size()) {
    const std::size_t token_end =
        std::min(tokens.size(), token_begin + options.block_tokens);
    std::size_t byte_end = byte_begin;
    for (std::size_t i = token_begin; i < token_end; ++i) {
      byte_end += tokens[i].distance == 0 ? 1 : tokens[i].length;
    }
    const bool final = token_end == tokens.size();
    write_block(out, tokens, token_begin, token_end,
                data.subspan(byte_begin, byte_end - byte_begin), final);
    token_begin = token_end;
    byte_begin = byte_end;
  }
  return out.finish();
}

Bytes decompress(ByteView stream, std::size_t max_output) {
  BitReader in(stream);
  Bytes out;

  for (;;) {
    const std::uint32_t final = in.read_bit();
    const std::uint32_t btype = in.read_bits(2);

    if (btype == 0) {  // stored
      in.align_to_byte();
      const std::uint32_t len = in.read_byte() | (in.read_byte() << 8);
      const std::uint32_t nlen = in.read_byte() | (in.read_byte() << 8);
      if ((len ^ nlen) != 0xffff) {
        throw SerializationError("decompress: stored block LEN/NLEN mismatch");
      }
      if (out.size() + len > max_output) {
        throw SerializationError("decompress: output limit exceeded");
      }
      for (std::uint32_t i = 0; i < len; ++i) out.push_back(in.read_byte());
    } else if (btype == 1 || btype == 2) {
      std::unique_ptr<HuffmanDecoder> litlen;
      std::unique_ptr<HuffmanDecoder> dist;
      if (btype == 1) {
        litlen = std::make_unique<HuffmanDecoder>(fixed_litlen_lengths());
        dist = std::make_unique<HuffmanDecoder>(fixed_dist_lengths());
      } else {
        const int hlit = static_cast<int>(in.read_bits(5)) + 257;
        const int hdist = static_cast<int>(in.read_bits(5)) + 1;
        const int hclen = static_cast<int>(in.read_bits(4)) + 4;
        std::vector<std::uint8_t> cl_len(kNumClSymbols, 0);
        for (int i = 0; i < hclen; ++i) {
          cl_len[kClOrder[i]] = static_cast<std::uint8_t>(in.read_bits(3));
        }
        const HuffmanDecoder cl_decoder(cl_len);

        std::vector<std::uint8_t> combined;
        combined.reserve(static_cast<std::size_t>(hlit + hdist));
        while (combined.size() < static_cast<std::size_t>(hlit + hdist)) {
          const std::uint32_t sym = cl_decoder.read_symbol(in);
          if (sym < 16) {
            combined.push_back(static_cast<std::uint8_t>(sym));
          } else if (sym == 16) {
            if (combined.empty()) {
              throw SerializationError("decompress: repeat with no previous");
            }
            const std::uint32_t rep = 3 + in.read_bits(2);
            combined.insert(combined.end(), rep, combined.back());
          } else if (sym == 17) {
            combined.insert(combined.end(), 3 + in.read_bits(3), 0);
          } else {
            combined.insert(combined.end(), 11 + in.read_bits(7), 0);
          }
        }
        if (combined.size() != static_cast<std::size_t>(hlit + hdist)) {
          throw SerializationError("decompress: code length overrun");
        }
        std::vector<std::uint8_t> ll(combined.begin(), combined.begin() + hlit);
        ll.resize(kNumLitLenSymbols, 0);
        std::vector<std::uint8_t> dd(combined.begin() + hlit, combined.end());
        dd.resize(kNumDistSymbols, 0);
        if (ll[kEndOfBlock] == 0) {
          throw SerializationError("decompress: no end-of-block code");
        }
        litlen = std::make_unique<HuffmanDecoder>(ll);
        dist = std::make_unique<HuffmanDecoder>(dd);
      }

      for (;;) {
        const std::uint32_t sym = litlen->read_symbol(in);
        if (sym < 256) {
          if (out.size() + 1 > max_output) {
            throw SerializationError("decompress: output limit exceeded");
          }
          out.push_back(static_cast<std::uint8_t>(sym));
        } else if (sym == kEndOfBlock) {
          break;
        } else {
          const std::uint32_t lc = sym - 257;
          if (lc >= 29) throw SerializationError("decompress: bad length code");
          const std::size_t len =
              kLengthCodes[lc].base + in.read_bits(kLengthCodes[lc].extra_bits);
          const std::uint32_t dc = dist->read_symbol(in);
          if (dc >= 30) throw SerializationError("decompress: bad dist code");
          const std::size_t d =
              kDistCodes[dc].base + in.read_bits(kDistCodes[dc].extra_bits);
          if (d > out.size()) {
            throw SerializationError("decompress: distance before start");
          }
          if (out.size() + len > max_output) {
            throw SerializationError("decompress: output limit exceeded");
          }
          const std::size_t start = out.size() - d;
          for (std::size_t i = 0; i < len; ++i) out.push_back(out[start + i]);
        }
      }
    } else {
      throw SerializationError("decompress: reserved block type");
    }

    if (final) break;
  }
  return out;
}

}  // namespace speed::deflate
