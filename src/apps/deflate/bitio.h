// Bit-level I/O for the DEFLATE bitstream (RFC 1951 §3.1.1).
//
// Data elements are packed LSB-first into bytes; Huffman codes are the one
// exception — they are packed starting from the most significant bit of the
// code, which callers handle by reversing the code bits before write_bits().
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/error.h"

namespace speed::deflate {

class BitWriter {
 public:
  /// Append the low `count` bits of `bits`, LSB first. count <= 24.
  void write_bits(std::uint32_t bits, int count) {
    acc_ |= static_cast<std::uint64_t>(bits & ((1u << count) - 1)) << fill_;
    fill_ += count;
    while (fill_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  /// Pad with zero bits to the next byte boundary (stored-block alignment).
  void align_to_byte() {
    if (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      fill_ = 0;
    }
  }

  /// Append a raw byte (must be byte-aligned).
  void write_byte(std::uint8_t b) {
    if (fill_ != 0) throw Error("BitWriter: write_byte while unaligned");
    out_.push_back(b);
  }

  Bytes finish() {
    align_to_byte();
    return std::move(out_);
  }

  std::size_t bit_count() const { return out_.size() * 8 + fill_; }

 private:
  Bytes out_;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

class BitReader {
 public:
  explicit BitReader(ByteView data) : data_(data) {}

  /// Read `count` bits, LSB first. count <= 24.
  std::uint32_t read_bits(int count) {
    while (fill_ < count) {
      if (pos_ >= data_.size()) {
        throw SerializationError("BitReader: out of input");
      }
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << fill_;
      fill_ += 8;
    }
    const std::uint32_t v = static_cast<std::uint32_t>(acc_ & ((1u << count) - 1));
    acc_ >>= count;
    fill_ -= count;
    return v;
  }

  std::uint32_t read_bit() { return read_bits(1); }

  /// Discard bits up to the next byte boundary.
  void align_to_byte() {
    const int drop = fill_ % 8;
    acc_ >>= drop;
    fill_ -= drop;
  }

  /// Read a raw byte (must be byte-aligned — buffered whole bytes are fine).
  std::uint8_t read_byte() {
    if (fill_ % 8 != 0) throw SerializationError("BitReader: unaligned byte");
    return static_cast<std::uint8_t>(read_bits(8));
  }

  bool exhausted() const { return pos_ >= data_.size() && fill_ == 0; }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

/// Reverse the low `count` bits of `code` (Huffman codes are MSB-first).
inline std::uint32_t reverse_bits(std::uint32_t code, int count) {
  std::uint32_t out = 0;
  for (int i = 0; i < count; ++i) {
    out = (out << 1) | ((code >> i) & 1);
  }
  return out;
}

}  // namespace speed::deflate
