// DEFLATE compressed-data format (RFC 1951), encoder and decoder.
//
// This is the reproduction's stand-in for zlib's deflate(), the second
// SPEED case study (paper Fig. 4/5b). The encoder supports all three block
// types — stored, fixed-Huffman, dynamic-Huffman — and picks the cheapest
// per block; the decoder handles arbitrary conforming streams.
#pragma once

#include "common/bytes.h"
#include "apps/deflate/lz77.h"

namespace speed::deflate {

struct DeflateOptions {
  Lz77Params lz77;
  /// Tokens per block; each block chooses stored/fixed/dynamic independently.
  std::size_t block_tokens = 1u << 16;
};

/// Compress `data` into a raw DEFLATE stream.
Bytes compress(ByteView data, const DeflateOptions& options = {});

/// Decompress a raw DEFLATE stream; throws SerializationError on malformed
/// input or if the output would exceed `max_output` bytes.
Bytes decompress(ByteView stream, std::size_t max_output = 1u << 30);

/// The version string SPEED descriptors use for this library.
inline constexpr const char* kLibraryFamily = "speed-deflate";
inline constexpr const char* kLibraryVersion = "1.0";

}  // namespace speed::deflate
