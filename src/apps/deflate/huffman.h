// Canonical Huffman coding for DEFLATE (RFC 1951 §3.2.2).
//
// Encoding side: length-limited code lengths via the package-merge
// algorithm (limit 15), then canonical code assignment. Decoding side: a
// canonical decoder driven by per-length first-code/offset tables.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/deflate/bitio.h"
#include "common/bytes.h"

namespace speed::deflate {

inline constexpr int kMaxCodeBits = 15;

/// Compute length-limited Huffman code lengths for symbol frequencies.
/// Symbols with zero frequency get length 0 (absent). If exactly one symbol
/// has nonzero frequency it gets length 1 (DEFLATE forbids 0-bit codes for
/// present symbols). Throws if the limit is infeasible (cannot happen for
/// alphabet sizes <= 2^limit).
std::vector<std::uint8_t> build_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_bits = kMaxCodeBits);

/// Canonical code values for given lengths (RFC 1951 algorithm). codes[i]
/// is meaningful only where lengths[i] > 0; codes are in natural MSB-first
/// order — reverse before writing to the LSB-first bitstream.
std::vector<std::uint16_t> assign_canonical_codes(
    const std::vector<std::uint8_t>& lengths);

/// Encoder table: code + length per symbol.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(const std::vector<std::uint8_t>& lengths)
      : lengths_(lengths), codes_(assign_canonical_codes(lengths)) {}

  void write_symbol(BitWriter& out, std::size_t symbol) const {
    const int len = lengths_[symbol];
    out.write_bits(reverse_bits(codes_[symbol], len), len);
  }

  std::uint8_t length(std::size_t symbol) const { return lengths_[symbol]; }
  const std::vector<std::uint8_t>& lengths() const { return lengths_; }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint16_t> codes_;
};

/// Canonical decoder: reads one symbol by extending the code bit by bit
/// (MSB-first) and testing it against the per-length ranges.
class HuffmanDecoder {
 public:
  /// Throws SerializationError if `lengths` do not describe a valid
  /// (complete or single-code) canonical code.
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths);

  std::uint32_t read_symbol(BitReader& in) const;

 private:
  // first_code_[l]  : smallest code of length l
  // first_index_[l] : index into sorted_symbols_ of that code
  // count_[l]       : number of codes of length l
  std::uint32_t first_code_[kMaxCodeBits + 1] = {};
  std::uint32_t first_index_[kMaxCodeBits + 1] = {};
  std::uint32_t count_[kMaxCodeBits + 1] = {};
  std::vector<std::uint16_t> sorted_symbols_;
};

}  // namespace speed::deflate
