// zlib (RFC 1950) and gzip (RFC 1952) containers around raw DEFLATE.
//
// The paper's case study deduplicates zlib's deflate(); real deployments
// ship its output inside one of these containers, so the substrate provides
// both: header construction/validation plus the trailing checksums.
#pragma once

#include "apps/deflate/deflate.h"

namespace speed::deflate {

/// data -> zlib stream (CMF/FLG header ‖ deflate ‖ Adler-32).
Bytes zlib_compress(ByteView data, const DeflateOptions& options = {});

/// zlib stream -> data; throws SerializationError on bad header, bad
/// checksum, or malformed DEFLATE body.
Bytes zlib_decompress(ByteView stream, std::size_t max_output = 1u << 30);

/// data -> gzip member (10-byte header ‖ deflate ‖ CRC-32 ‖ ISIZE).
Bytes gzip_compress(ByteView data, const DeflateOptions& options = {});

/// gzip member -> data; handles the optional FNAME/FEXTRA/FCOMMENT fields.
Bytes gzip_decompress(ByteView stream, std::size_t max_output = 1u << 30);

}  // namespace speed::deflate
