#include "apps/deflate/container.h"

#include "apps/deflate/checksum.h"
#include "common/error.h"

namespace speed::deflate {

namespace {

void put_be32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_le32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_be32(ByteView b) {
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | b[3];
}

std::uint32_t get_le32(ByteView b) {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

}  // namespace

Bytes zlib_compress(ByteView data, const DeflateOptions& options) {
  Bytes out;
  // CMF: method 8 (deflate), 32K window (CINFO=7) -> 0x78.
  const std::uint8_t cmf = 0x78;
  // FLG: no dictionary, default compression level; FCHECK makes the
  // 16-bit header a multiple of 31.
  std::uint8_t flg = 0x80;  // FLEVEL=2 (default)
  flg = static_cast<std::uint8_t>(flg & 0xe0);
  const int rem = (cmf * 256 + flg) % 31;
  if (rem != 0) flg = static_cast<std::uint8_t>(flg + (31 - rem));
  out.push_back(cmf);
  out.push_back(flg);
  append(out, compress(data, options));
  put_be32(out, adler32(data));
  return out;
}

Bytes zlib_decompress(ByteView stream, std::size_t max_output) {
  if (stream.size() < 6) throw SerializationError("zlib: stream too short");
  const std::uint8_t cmf = stream[0];
  const std::uint8_t flg = stream[1];
  if ((cmf & 0x0f) != 8) throw SerializationError("zlib: method is not deflate");
  if ((cmf >> 4) > 7) throw SerializationError("zlib: window too large");
  if ((cmf * 256 + flg) % 31 != 0) throw SerializationError("zlib: bad FCHECK");
  if (flg & 0x20) throw SerializationError("zlib: preset dictionary unsupported");

  const ByteView body = stream.subspan(2, stream.size() - 6);
  const Bytes data = decompress(body, max_output);
  const std::uint32_t expected = get_be32(stream.last(4));
  if (adler32(data) != expected) {
    throw SerializationError("zlib: Adler-32 mismatch");
  }
  return data;
}

Bytes gzip_compress(ByteView data, const DeflateOptions& options) {
  Bytes out = {0x1f, 0x8b,  // magic
               8,           // CM = deflate
               0,           // FLG: no extra fields
               0, 0, 0, 0,  // MTIME = 0
               0,           // XFL
               255};        // OS = unknown
  append(out, compress(data, options));
  put_le32(out, crc32(data));
  put_le32(out, static_cast<std::uint32_t>(data.size()));
  return out;
}

Bytes gzip_decompress(ByteView stream, std::size_t max_output) {
  if (stream.size() < 18) throw SerializationError("gzip: stream too short");
  if (stream[0] != 0x1f || stream[1] != 0x8b) {
    throw SerializationError("gzip: bad magic");
  }
  if (stream[2] != 8) throw SerializationError("gzip: method is not deflate");
  const std::uint8_t flg = stream[3];
  if (flg & 0xe0) throw SerializationError("gzip: reserved flag bits set");

  std::size_t off = 10;
  auto need = [&](std::size_t n) {
    if (off + n + 8 > stream.size()) {
      throw SerializationError("gzip: truncated header");
    }
  };
  if (flg & 0x04) {  // FEXTRA
    need(2);
    const std::size_t xlen = stream[off] | (stream[off + 1] << 8);
    off += 2;
    need(xlen);
    off += xlen;
  }
  for (const std::uint8_t field : {0x08, 0x10}) {  // FNAME, FCOMMENT
    if (flg & field) {
      while (true) {
        need(1);
        if (stream[off++] == 0) break;
      }
    }
  }
  if (flg & 0x02) {  // FHCRC
    need(2);
    off += 2;
  }

  const ByteView body = stream.subspan(off, stream.size() - off - 8);
  const Bytes data = decompress(body, max_output);
  const std::uint32_t expected_crc = get_le32(stream.subspan(stream.size() - 8, 4));
  const std::uint32_t expected_size = get_le32(stream.last(4));
  if (crc32(data) != expected_crc) throw SerializationError("gzip: CRC mismatch");
  if (static_cast<std::uint32_t>(data.size()) != expected_size) {
    throw SerializationError("gzip: ISIZE mismatch");
  }
  return data;
}

}  // namespace speed::deflate
