#include "apps/deflate/checksum.h"

#include <array>

namespace speed::deflate {

std::uint32_t adler32(ByteView data, std::uint32_t seed) {
  constexpr std::uint32_t kMod = 65521;
  std::uint32_t a = seed & 0xffff;
  std::uint32_t b = (seed >> 16) & 0xffff;
  std::size_t i = 0;
  while (i < data.size()) {
    // 5552 is the largest n with n*(n+1)/2*255 + (n+1)*(65520) < 2^32.
    const std::size_t chunk = std::min<std::size_t>(5552, data.size() - i);
    for (std::size_t j = 0; j < chunk; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= kMod;
    b %= kMod;
    i += chunk;
  }
  return (b << 16) | a;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(ByteView data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (const std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace speed::deflate
