// Checksums for the DEFLATE container formats: Adler-32 (zlib, RFC 1950)
// and CRC-32 (gzip, RFC 1952 / IEEE 802.3).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace speed::deflate {

/// Adler-32 of `data`, optionally continuing from a previous value
/// (initial value 1, per RFC 1950).
std::uint32_t adler32(ByteView data, std::uint32_t seed = 1);

/// CRC-32 (reflected, polynomial 0xEDB88320), initial value 0.
std::uint32_t crc32(ByteView data, std::uint32_t seed = 0);

}  // namespace speed::deflate
