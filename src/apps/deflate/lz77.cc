#include "apps/deflate/lz77.h"

#include <algorithm>

#include "common/error.h"

namespace speed::deflate {

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Match length between data[a..] and data[b..], capped.
std::size_t match_length(ByteView data, std::size_t a, std::size_t b,
                         std::size_t cap) {
  std::size_t len = 0;
  while (len < cap && data[a + len] == data[b + len]) ++len;
  return len;
}

class Matcher {
 public:
  Matcher(ByteView data, const Lz77Params& params)
      : data_(data),
        params_(params),
        head_(kHashSize, kAbsent),
        prev_(std::min<std::size_t>(data.size(), 1u << 26), kAbsent) {}

  /// Best match at `pos`; returns length 0 if none of at least kMinMatch.
  std::pair<std::size_t, std::size_t> find(std::size_t pos) const {
    if (pos + kMinMatch > data_.size()) return {0, 0};
    const std::size_t cap = std::min(kMaxMatch, data_.size() - pos);
    std::size_t best_len = kMinMatch - 1;
    std::size_t best_dist = 0;
    std::uint32_t candidate = head_[hash3(data_.data() + pos)];
    std::size_t chain = params_.max_chain;
    while (candidate != kAbsent && chain-- > 0) {
      const std::size_t cpos = candidate;
      if (cpos >= pos) {  // self or future position (insertion ran ahead)
        candidate = prev_[cpos];
        continue;
      }
      if (pos - cpos > kWindowSize) break;
      const std::size_t len = match_length(data_, cpos, pos, cap);
      if (len > best_len) {
        best_len = len;
        best_dist = pos - cpos;
        if (len >= params_.nice_length || len == cap) break;
      }
      candidate = prev_[cpos];
    }
    if (best_dist == 0) return {0, 0};
    return {best_len, best_dist};
  }

  /// Register position `pos` in the hash chains.
  void insert(std::size_t pos) {
    if (pos + kMinMatch > data_.size()) return;
    const std::uint32_t h = hash3(data_.data() + pos);
    prev_[pos] = head_[h];
    head_[h] = static_cast<std::uint32_t>(pos);
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  ByteView data_;
  const Lz77Params& params_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> prev_;
};

}  // namespace

std::vector<Token> lz77_parse(ByteView data, const Lz77Params& params) {
  if (data.size() >= (1u << 26)) {
    throw Error("lz77_parse: input larger than 64 MB not supported");
  }
  std::vector<Token> tokens;
  tokens.reserve(data.size() / 4 + 16);
  Matcher matcher(data, params);

  // Every position enters the hash chains exactly once, in order; the
  // cursor may run ahead of `pos` during lazy lookahead (find() skips
  // candidates at or after the query position).
  std::size_t inserted = 0;
  const auto ensure_inserted = [&](std::size_t up_to) {
    while (inserted <= up_to && inserted < data.size()) {
      matcher.insert(inserted++);
    }
  };

  std::size_t pos = 0;
  while (pos < data.size()) {
    ensure_inserted(pos);
    auto [len, dist] = matcher.find(pos);
    if (len >= kMinMatch && params.lazy && pos + 1 < data.size()) {
      // One-step lazy evaluation: if the match starting at pos+1 is longer,
      // emit a literal and take the later match (zlib's strategy).
      ensure_inserted(pos + 1);
      const auto [next_len, next_dist] = matcher.find(pos + 1);
      if (next_len > len) {
        tokens.push_back(Token{0, 0, data[pos]});
        ++pos;
        len = next_len;
        dist = next_dist;
      }
    }

    if (len >= kMinMatch) {
      tokens.push_back(Token{static_cast<std::uint16_t>(len),
                             static_cast<std::uint16_t>(dist), 0});
      ensure_inserted(pos + len - 1);
      pos += len;
    } else {
      tokens.push_back(Token{0, 0, data[pos]});
      ++pos;
    }
  }
  return tokens;
}

Bytes lz77_reconstruct(const std::vector<Token>& tokens) {
  Bytes out;
  for (const Token& t : tokens) {
    if (t.distance == 0) {
      out.push_back(t.literal);
    } else {
      if (t.distance > out.size()) {
        throw SerializationError("lz77_reconstruct: distance past start");
      }
      const std::size_t start = out.size() - t.distance;
      for (std::size_t i = 0; i < t.length; ++i) {
        out.push_back(out[start + i]);  // byte-by-byte: overlaps are legal
      }
    }
  }
  return out;
}

}  // namespace speed::deflate
