// SIFT feature extraction (Lowe, IJCV 2004) — the first SPEED case study.
//
// The full classic pipeline: Gaussian scale-space pyramid, difference-of-
// Gaussians extrema with sub-pixel refinement, low-contrast and edge
// rejection, orientation-histogram assignment (multiple orientations per
// point), and 4x4x8 gradient descriptors with trilinear binning, normalized
// and quantized to bytes. Deterministic: the same image always produces the
// same keypoints — the property computation deduplication relies on.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/sift/image.h"

namespace speed::sift {

inline constexpr std::size_t kDescriptorSize = 128;

struct Keypoint {
  float x = 0;         ///< column in original-image coordinates
  float y = 0;         ///< row in original-image coordinates
  float sigma = 0;     ///< absolute scale
  float orientation = 0;  ///< radians in [-pi, pi)
  std::array<std::uint8_t, kDescriptorSize> descriptor{};

  friend bool operator==(const Keypoint&, const Keypoint&) = default;
};

struct SiftParams {
  int scales_per_octave = 3;       ///< Lowe's S
  double sigma0 = 1.6;             ///< base blur of each octave
  double contrast_threshold = 0.04;
  double edge_threshold = 10.0;    ///< Lowe's r
  int max_octaves = 8;
  /// Start from a 2x-upsampled image (Lowe's -1 octave): roughly quadruples
  /// stable keypoints at 4x the pyramid cost.
  bool upsample_first_octave = true;
};

/// Extract SIFT keypoints + descriptors from a grayscale image.
std::vector<Keypoint> extract_sift(const Image& image,
                                   const SiftParams& params = {});

/// Approximate peak working set of extract_sift (the Gaussian + DoG pyramid)
/// in bytes. Enclave-hosted callers charge this against the EPC: large
/// images overflow the ~90 MB usable EPC and pay paging, which is a big part
/// of why in-enclave SIFT baselines are slow (and why deduplicating it pays
/// off so dramatically in the paper's Fig. 5a).
std::size_t working_set_bytes(int width, int height,
                              const SiftParams& params = {});

/// Euclidean distance between two descriptors (for matching tests).
double descriptor_distance(const Keypoint& a, const Keypoint& b);

inline constexpr const char* kLibraryFamily = "speed-siftpp";
inline constexpr const char* kLibraryVersion = "1.0";

}  // namespace speed::sift

namespace speed::serialize {

template <>
struct Serde<speed::sift::Keypoint> {
  static void encode(Encoder& enc, const speed::sift::Keypoint& k) {
    enc.f64(k.x);
    enc.f64(k.y);
    enc.f64(k.sigma);
    enc.f64(k.orientation);
    enc.raw(ByteView(k.descriptor.data(), k.descriptor.size()));
  }
  static speed::sift::Keypoint decode(Decoder& dec) {
    speed::sift::Keypoint k;
    k.x = static_cast<float>(dec.f64());
    k.y = static_cast<float>(dec.f64());
    k.sigma = static_cast<float>(dec.f64());
    k.orientation = static_cast<float>(dec.f64());
    const ByteView d = dec.raw(k.descriptor.size());
    std::copy(d.begin(), d.end(), k.descriptor.begin());
    return k;
  }
};

}  // namespace speed::serialize
