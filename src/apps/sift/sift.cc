#include "apps/sift/sift.h"

#include <algorithm>
#include <cmath>

namespace speed::sift {

namespace {

constexpr double kPi = 3.14159265358979323846;

struct Octave {
  std::vector<Image> gaussians;  ///< S+3 levels
  std::vector<Image> dogs;       ///< S+2 levels
};

std::vector<Octave> build_pyramid(const Image& image, const SiftParams& p) {
  std::vector<Octave> pyramid;
  const int min_dim = std::min(image.width(), image.height());
  int octaves = 0;
  for (int d = min_dim; d >= 16 && octaves < p.max_octaves; d /= 2) ++octaves;
  if (octaves == 0 && min_dim >= 8) octaves = 1;

  const double k = std::pow(2.0, 1.0 / p.scales_per_octave);
  Image base = gaussian_blur(image, p.sigma0);

  for (int o = 0; o < octaves; ++o) {
    Octave oct;
    oct.gaussians.push_back(base);
    double sigma_prev = p.sigma0;
    for (int s = 1; s < p.scales_per_octave + 3; ++s) {
      const double sigma_total = p.sigma0 * std::pow(k, s);
      const double sigma_inc =
          std::sqrt(sigma_total * sigma_total - sigma_prev * sigma_prev);
      oct.gaussians.push_back(gaussian_blur(oct.gaussians.back(), sigma_inc));
      sigma_prev = sigma_total;
    }
    for (std::size_t s = 0; s + 1 < oct.gaussians.size(); ++s) {
      const Image& a = oct.gaussians[s];
      const Image& b = oct.gaussians[s + 1];
      Image dog(a.width(), a.height());
      for (std::size_t i = 0; i < dog.pixels().size(); ++i) {
        dog.pixels()[i] = b.pixels()[i] - a.pixels()[i];
      }
      oct.dogs.push_back(std::move(dog));
    }
    // The next octave starts from the gaussian with twice the base sigma.
    base = downsample_by_2(oct.gaussians[static_cast<std::size_t>(p.scales_per_octave)]);
    pyramid.push_back(std::move(oct));
  }
  return pyramid;
}

bool is_extremum(const Octave& oct, int s, int x, int y) {
  const float v = oct.dogs[static_cast<std::size_t>(s)].at(x, y);
  const bool maximum = v > 0;
  for (int ds = -1; ds <= 1; ++ds) {
    const Image& layer = oct.dogs[static_cast<std::size_t>(s + ds)];
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (ds == 0 && dx == 0 && dy == 0) continue;
        const float n = layer.at(x + dx, y + dy);
        if (maximum ? (n >= v) : (n <= v)) return false;
      }
    }
  }
  return true;
}

/// 3x3 linear solve via Cramer's rule; returns false if near-singular.
bool solve3(const double a[3][3], const double b[3], double out[3]) {
  const double det =
      a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
      a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
      a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
  if (std::abs(det) < 1e-12) return false;
  double m[3][3];
  for (int col = 0; col < 3; ++col) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) m[i][j] = a[i][j];
    }
    for (int i = 0; i < 3; ++i) m[i][col] = b[i];
    const double d =
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
        m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
        m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    out[col] = d / det;
  }
  return true;
}

struct RefinedPoint {
  double x, y, s;   ///< refined (sub-pixel) coordinates within the octave
  double contrast;  ///< interpolated |D|
};

/// Quadratic sub-pixel refinement (Brown & Lowe). Returns false when the
/// point diverges or fails the contrast/edge tests.
bool refine_extremum(const Octave& oct, int s, int x, int y,
                     const SiftParams& p, RefinedPoint& out) {
  const int width = oct.dogs[0].width();
  const int height = oct.dogs[0].height();
  const int max_s = static_cast<int>(oct.dogs.size()) - 2;

  double offset[3] = {0, 0, 0};
  for (int iter = 0; iter < 5; ++iter) {
    const Image& d0 = oct.dogs[static_cast<std::size_t>(s - 1)];
    const Image& d1 = oct.dogs[static_cast<std::size_t>(s)];
    const Image& d2 = oct.dogs[static_cast<std::size_t>(s + 1)];

    const double dx = (d1.at(x + 1, y) - d1.at(x - 1, y)) / 2.0;
    const double dy = (d1.at(x, y + 1) - d1.at(x, y - 1)) / 2.0;
    const double ds = (d2.at(x, y) - d0.at(x, y)) / 2.0;

    const double dxx = d1.at(x + 1, y) - 2.0 * d1.at(x, y) + d1.at(x - 1, y);
    const double dyy = d1.at(x, y + 1) - 2.0 * d1.at(x, y) + d1.at(x, y - 1);
    const double dss = d2.at(x, y) - 2.0 * d1.at(x, y) + d0.at(x, y);
    const double dxy = (d1.at(x + 1, y + 1) - d1.at(x - 1, y + 1) -
                        d1.at(x + 1, y - 1) + d1.at(x - 1, y - 1)) / 4.0;
    const double dxs = (d2.at(x + 1, y) - d2.at(x - 1, y) -
                        d0.at(x + 1, y) + d0.at(x - 1, y)) / 4.0;
    const double dys = (d2.at(x, y + 1) - d2.at(x, y - 1) -
                        d0.at(x, y + 1) + d0.at(x, y - 1)) / 4.0;

    const double hessian[3][3] = {{dxx, dxy, dxs}, {dxy, dyy, dys}, {dxs, dys, dss}};
    const double gradient[3] = {-dx, -dy, -ds};
    if (!solve3(hessian, gradient, offset)) return false;

    if (std::abs(offset[0]) < 0.5 && std::abs(offset[1]) < 0.5 &&
        std::abs(offset[2]) < 0.5) {
      // Converged: contrast test on the interpolated value.
      const double interpolated =
          d1.at(x, y) + 0.5 * (dx * offset[0] + dy * offset[1] + ds * offset[2]);
      if (std::abs(interpolated) <
          p.contrast_threshold / p.scales_per_octave) {
        return false;
      }
      // Edge rejection: ratio of principal curvatures (2x2 spatial Hessian).
      const double trace = dxx + dyy;
      const double det = dxx * dyy - dxy * dxy;
      const double r = p.edge_threshold;
      if (det <= 0 || trace * trace * r >= det * (r + 1) * (r + 1)) {
        return false;
      }
      out.x = x + offset[0];
      out.y = y + offset[1];
      out.s = s + offset[2];
      out.contrast = std::abs(interpolated);
      return true;
    }
    // Step to the neighbouring sample and retry.
    x += offset[0] > 0.5 ? 1 : (offset[0] < -0.5 ? -1 : 0);
    y += offset[1] > 0.5 ? 1 : (offset[1] < -0.5 ? -1 : 0);
    s += offset[2] > 0.5 ? 1 : (offset[2] < -0.5 ? -1 : 0);
    if (s < 1 || s > max_s || x < 1 || x >= width - 1 || y < 1 || y >= height - 1) {
      return false;
    }
  }
  return false;
}

/// Gradient magnitude/angle at an integer position of a gaussian level.
void gradient(const Image& img, int x, int y, double& mag, double& angle) {
  const double gx = img.at_clamped(x + 1, y) - img.at_clamped(x - 1, y);
  const double gy = img.at_clamped(x, y + 1) - img.at_clamped(x, y - 1);
  mag = std::sqrt(gx * gx + gy * gy);
  angle = std::atan2(gy, gx);
}

std::vector<double> orientation_peaks(const Image& gauss, double x, double y,
                                      double sigma) {
  constexpr int kBins = 36;
  double hist[kBins] = {};
  const double radius = 3.0 * 1.5 * sigma;
  const int r = static_cast<int>(std::round(radius));
  const int cx = static_cast<int>(std::round(x));
  const int cy = static_cast<int>(std::round(y));
  const double denom = 2.0 * (1.5 * sigma) * (1.5 * sigma);

  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      const int px = cx + dx;
      const int py = cy + dy;
      if (px < 1 || px >= gauss.width() - 1 || py < 1 || py >= gauss.height() - 1) {
        continue;
      }
      double mag, angle;
      gradient(gauss, px, py, mag, angle);
      const double w = std::exp(-(static_cast<double>(dx) * dx + static_cast<double>(dy) * dy) / denom);
      int bin = static_cast<int>(std::round(kBins * (angle + kPi) / (2 * kPi))) % kBins;
      if (bin < 0) bin += kBins;
      hist[bin] += w * mag;
    }
  }

  // Smooth the histogram twice with a [1 1 1]/3 box filter (standard).
  for (int pass = 0; pass < 2; ++pass) {
    double smoothed[kBins];
    for (int i = 0; i < kBins; ++i) {
      smoothed[i] = (hist[(i + kBins - 1) % kBins] + hist[i] +
                     hist[(i + 1) % kBins]) / 3.0;
    }
    std::copy(smoothed, smoothed + kBins, hist);
  }

  const double max_val = *std::max_element(hist, hist + kBins);
  std::vector<double> peaks;
  if (max_val <= 0) return peaks;
  for (int i = 0; i < kBins; ++i) {
    const double prev = hist[(i + kBins - 1) % kBins];
    const double next = hist[(i + 1) % kBins];
    if (hist[i] > prev && hist[i] > next && hist[i] >= 0.8 * max_val) {
      // Parabolic interpolation of the peak position.
      const double delta = 0.5 * (prev - next) / (prev - 2 * hist[i] + next);
      double bin = i + delta;
      double angle = (2 * kPi * bin) / kBins - kPi;
      if (angle >= kPi) angle -= 2 * kPi;
      if (angle < -kPi) angle += 2 * kPi;
      peaks.push_back(angle);
    }
  }
  return peaks;
}

std::array<std::uint8_t, kDescriptorSize> compute_descriptor(
    const Image& gauss, double x, double y, double sigma, double orientation) {
  constexpr int kSpatialBins = 4;
  constexpr int kOrientBins = 8;
  double raw[kSpatialBins][kSpatialBins][kOrientBins] = {};

  const double bin_width = 3.0 * sigma;
  const double radius = bin_width * (kSpatialBins + 1) * std::sqrt(2.0) / 2.0;
  const int r = std::min(static_cast<int>(std::round(radius)),
                         std::max(gauss.width(), gauss.height()));
  const double cos_o = std::cos(orientation);
  const double sin_o = std::sin(orientation);
  const int cx = static_cast<int>(std::round(x));
  const int cy = static_cast<int>(std::round(y));
  const double denom = 2.0 * (0.5 * kSpatialBins * bin_width) *
                       (0.5 * kSpatialBins * bin_width);

  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      const int px = cx + dx;
      const int py = cy + dy;
      if (px < 1 || px >= gauss.width() - 1 || py < 1 || py >= gauss.height() - 1) {
        continue;
      }
      // Rotate into the keypoint frame.
      const double rx = (cos_o * dx + sin_o * dy) / bin_width;
      const double ry = (-sin_o * dx + cos_o * dy) / bin_width;
      const double bx = rx + kSpatialBins / 2.0 - 0.5;
      const double by = ry + kSpatialBins / 2.0 - 0.5;
      if (bx <= -1 || bx >= kSpatialBins || by <= -1 || by >= kSpatialBins) {
        continue;
      }
      double mag, angle;
      gradient(gauss, px, py, mag, angle);
      double rel = angle - orientation;
      while (rel < 0) rel += 2 * kPi;
      while (rel >= 2 * kPi) rel -= 2 * kPi;
      const double bo = rel * kOrientBins / (2 * kPi);
      const double w =
          mag * std::exp(-(static_cast<double>(dx) * dx + static_cast<double>(dy) * dy) / denom);

      // Trilinear interpolation into (bx, by, bo).
      const int x0 = static_cast<int>(std::floor(bx));
      const int y0 = static_cast<int>(std::floor(by));
      const int o0 = static_cast<int>(std::floor(bo));
      const double fx = bx - x0;
      const double fy = by - y0;
      const double fo = bo - o0;
      for (int ix = 0; ix <= 1; ++ix) {
        const int xb = x0 + ix;
        if (xb < 0 || xb >= kSpatialBins) continue;
        for (int iy = 0; iy <= 1; ++iy) {
          const int yb = y0 + iy;
          if (yb < 0 || yb >= kSpatialBins) continue;
          for (int io = 0; io <= 1; ++io) {
            const int ob = (o0 + io) % kOrientBins;
            const double weight = w * (ix ? fx : 1 - fx) * (iy ? fy : 1 - fy) *
                                  (io ? fo : 1 - fo);
            raw[xb][yb][ob] += weight;
          }
        }
      }
    }
  }

  // Flatten, normalize, clamp at 0.2, renormalize, quantize.
  std::array<double, kDescriptorSize> v{};
  std::size_t idx = 0;
  for (int ix = 0; ix < kSpatialBins; ++ix) {
    for (int iy = 0; iy < kSpatialBins; ++iy) {
      for (int io = 0; io < kOrientBins; ++io) v[idx++] = raw[ix][iy][io];
    }
  }
  auto normalize = [&v] {
    double norm = 0;
    for (const double d : v) norm += d * d;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (double& d : v) d /= norm;
    }
  };
  normalize();
  for (double& d : v) d = std::min(d, 0.2);
  normalize();

  std::array<std::uint8_t, kDescriptorSize> out{};
  for (std::size_t i = 0; i < kDescriptorSize; ++i) {
    out[i] = static_cast<std::uint8_t>(std::min(255.0, std::round(v[i] * 512.0)));
  }
  return out;
}

}  // namespace

std::vector<Keypoint> extract_sift(const Image& image, const SiftParams& p) {
  std::vector<Keypoint> keypoints;
  if (image.width() < 8 || image.height() < 8) return keypoints;

  const int first_octave = p.upsample_first_octave ? -1 : 0;
  const Image base =
      p.upsample_first_octave ? upsample_by_2(image) : image;
  const std::vector<Octave> pyramid = build_pyramid(base, p);

  for (std::size_t o = 0; o < pyramid.size(); ++o) {
    const Octave& oct = pyramid[o];
    const double octave_scale =
        std::pow(2.0, static_cast<double>(o) + first_octave);
    const int width = oct.dogs[0].width();
    const int height = oct.dogs[0].height();

    for (int s = 1; s <= p.scales_per_octave; ++s) {
      const Image& layer = oct.dogs[static_cast<std::size_t>(s)];
      const float prefilter =
          static_cast<float>(0.8 * p.contrast_threshold / p.scales_per_octave);
      for (int y = 1; y < height - 1; ++y) {
        for (int x = 1; x < width - 1; ++x) {
          if (std::abs(layer.at(x, y)) < prefilter) continue;
          if (!is_extremum(oct, s, x, y)) continue;
          RefinedPoint rp;
          if (!refine_extremum(oct, s, x, y, p, rp)) continue;

          const double sigma =
              p.sigma0 * std::pow(2.0, rp.s / p.scales_per_octave);
          const int gauss_level = static_cast<int>(std::round(rp.s));
          const Image& gauss =
              oct.gaussians[static_cast<std::size_t>(std::clamp(
                  gauss_level, 0, static_cast<int>(oct.gaussians.size()) - 1))];

          for (const double angle :
               orientation_peaks(gauss, rp.x, rp.y, sigma)) {
            Keypoint kp;
            kp.x = static_cast<float>(rp.x * octave_scale);
            kp.y = static_cast<float>(rp.y * octave_scale);
            kp.sigma = static_cast<float>(sigma * octave_scale);
            kp.orientation = static_cast<float>(angle);
            kp.descriptor = compute_descriptor(gauss, rp.x, rp.y, sigma, angle);
            keypoints.push_back(kp);
          }
        }
      }
    }
  }

  // Deterministic output order regardless of any internal reordering.
  std::sort(keypoints.begin(), keypoints.end(), [](const Keypoint& a,
                                                   const Keypoint& b) {
    if (a.y != b.y) return a.y < b.y;
    if (a.x != b.x) return a.x < b.x;
    if (a.sigma != b.sigma) return a.sigma < b.sigma;
    return a.orientation < b.orientation;
  });
  return keypoints;
}

std::size_t working_set_bytes(int width, int height, const SiftParams& p) {
  std::size_t w = static_cast<std::size_t>(p.upsample_first_octave ? 2 * width : width);
  std::size_t h = static_cast<std::size_t>(p.upsample_first_octave ? 2 * height : height);
  const std::size_t layers =
      static_cast<std::size_t>(2 * p.scales_per_octave + 5);  // gaussians + DoGs
  std::size_t total = 0;
  int octaves = 0;
  for (std::size_t d = std::min(w, h); d >= 16 && octaves < p.max_octaves;
       d /= 2, ++octaves) {
    total += w * h * sizeof(float) * layers;
    w /= 2;
    h /= 2;
  }
  return total;
}

double descriptor_distance(const Keypoint& a, const Keypoint& b) {
  double sum = 0;
  for (std::size_t i = 0; i < kDescriptorSize; ++i) {
    const double d = static_cast<double>(a.descriptor[i]) - b.descriptor[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace speed::sift
