// Grayscale float images and the filtering primitives SIFT needs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "serialize/serde.h"

namespace speed::sift {

class Image {
 public:
  Image() = default;
  Image(int width, int height)
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0.0f) {}

  int width() const { return width_; }
  int height() const { return height_; }

  float at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(x)];
  }
  float& at(int x, int y) {
    return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(x)];
  }

  /// Clamped access (border replication).
  float at_clamped(int x, int y) const {
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return at(x, y);
  }

  const std::vector<float>& pixels() const { return pixels_; }
  std::vector<float>& pixels() { return pixels_; }

  friend bool operator==(const Image&, const Image&) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> pixels_;
};

/// Separable Gaussian blur with kernel radius ceil(3*sigma).
Image gaussian_blur(const Image& src, double sigma);

/// Decimate by 2 (every other pixel), as between SIFT octaves.
Image downsample_by_2(const Image& src);

/// Bilinear 2x upsampling, for SIFT's -1 octave (Lowe §3.3: doubling the
/// input image roughly quadruples the number of stable keypoints).
Image upsample_by_2(const Image& src);

/// Load from 8-bit grayscale bytes (row-major), normalized to [0,1].
Image image_from_gray8(int width, int height, ByteView pixels);

}  // namespace speed::sift

namespace speed::serialize {

/// Images serialize as width, height, then the raw little-endian f32 pixel
/// array — this is the input "m" the DedupRuntime hashes for the SIFT case
/// study, so the encoding is a straight memcpy, not a per-pixel loop.
template <>
struct Serde<speed::sift::Image> {
  static void encode(Encoder& enc, const speed::sift::Image& img) {
    enc.u32(static_cast<std::uint32_t>(img.width()));
    enc.u32(static_cast<std::uint32_t>(img.height()));
    static_assert(sizeof(float) == 4);
    enc.raw(ByteView(reinterpret_cast<const std::uint8_t*>(img.pixels().data()),
                     img.pixels().size() * sizeof(float)));
  }
  static speed::sift::Image decode(Decoder& dec) {
    const int w = static_cast<int>(dec.u32());
    const int h = static_cast<int>(dec.u32());
    if (w < 0 || h < 0 ||
        static_cast<std::uint64_t>(w) * static_cast<std::uint64_t>(h) > (1u << 26)) {
      throw SerializationError("Image: implausible dimensions");
    }
    speed::sift::Image img(w, h);
    const ByteView raw = dec.raw(img.pixels().size() * sizeof(float));
    __builtin_memcpy(img.pixels().data(), raw.data(), raw.size());
    return img;
  }
};

}  // namespace speed::serialize
