#include "apps/sift/image.h"

#include <cmath>

#include "common/error.h"

namespace speed::sift {

Image gaussian_blur(const Image& src, double sigma) {
  if (sigma <= 0) return src;
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-(static_cast<double>(i) * i) / (2 * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
    sum += v;
  }
  for (auto& k : kernel) k = static_cast<float>(k / sum);

  // Horizontal pass.
  Image tmp(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      float acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] * src.at_clamped(x + i, y);
      }
      tmp.at(x, y) = acc;
    }
  }
  // Vertical pass.
  Image out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      float acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] * tmp.at_clamped(x, y + i);
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

Image downsample_by_2(const Image& src) {
  const int w = std::max(1, src.width() / 2);
  const int h = std::max(1, src.height() / 2);
  Image out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      out.at(x, y) = src.at(2 * x, 2 * y);
    }
  }
  return out;
}

Image upsample_by_2(const Image& src) {
  const int w = src.width() * 2;
  const int h = src.height() * 2;
  Image out(w, h);
  for (int y = 0; y < h; ++y) {
    const float sy = static_cast<float>(y) / 2.0f;
    const int y0 = static_cast<int>(sy);
    const float fy = sy - static_cast<float>(y0);
    for (int x = 0; x < w; ++x) {
      const float sx = static_cast<float>(x) / 2.0f;
      const int x0 = static_cast<int>(sx);
      const float fx = sx - static_cast<float>(x0);
      const float v00 = src.at_clamped(x0, y0);
      const float v10 = src.at_clamped(x0 + 1, y0);
      const float v01 = src.at_clamped(x0, y0 + 1);
      const float v11 = src.at_clamped(x0 + 1, y0 + 1);
      out.at(x, y) = v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) +
                     v01 * (1 - fx) * fy + v11 * fx * fy;
    }
  }
  return out;
}

Image image_from_gray8(int width, int height, ByteView pixels) {
  if (static_cast<std::size_t>(width) * static_cast<std::size_t>(height) !=
      pixels.size()) {
    throw Error("image_from_gray8: dimensions do not match pixel count");
  }
  Image out(width, height);
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    out.pixels()[i] = static_cast<float>(pixels[i]) / 255.0f;
  }
  return out;
}

}  // namespace speed::sift
