// The fifth case study: an encrypt-then-dedup block store.
//
// The first four case studies deduplicate *computations* (deflate, SIFT,
// pcre, map-reduce). This one turns the same machinery on the classic
// encrypted-storage problem: a service that stores client blobs encrypted
// end-to-end, yet still deduplicates across versions and across clients.
// Each put() runs through runtime::StreamSession — content-defined
// chunking, one RCE-protected store entry per chunk, a sealed manifest
// tying the chunk list together — so editing a few bytes of a stored blob
// and putting it again only uploads the chunks the edit actually touched.
//
// BlockStore adds the storage-service surface on top of the session: a
// name -> StreamHandle index (the handle is the capability; the index is
// what a real service would persist per tenant), export/import of
// serialized handles for capability transfer, and per-object stat().
//
// The C API mirror (speed_stream_* in capi/speed_c.h) and the runnable
// example (examples/blockstore_service.cpp) build on this class.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/annotated_lock.h"
#include "runtime/dedup_runtime.h"
#include "runtime/stream_session.h"

namespace speed::blockstore {

inline constexpr const char* kLibraryFamily = "speed-blockstore";
inline constexpr const char* kLibraryVersion = "1.0";
inline constexpr const char* kStreamSignature = "bytes put_stream(bytes)";

/// Register the blockstore trusted library on `rt` (idempotent) and resolve
/// the stream identity every chunk tag binds to. Deployments that share
/// this identity — same library code measurement — dedup against each
/// other; anything else never will (§IV-B).
mle::FunctionIdentity register_blockstore(runtime::DedupRuntime& rt);

struct ObjectInfo {
  std::uint64_t bytes = 0;  ///< plaintext size of the stored object
  runtime::StreamHandle::Kind kind = runtime::StreamHandle::Kind::kWholeCall;
};

/// A named-object facade over one StreamSession. Thread-safe: the index is
/// mutex-guarded and StreamSession::put/get are safe to call concurrently.
class BlockStore {
 public:
  explicit BlockStore(runtime::DedupRuntime& rt,
                      runtime::StreamConfig config = {});

  /// Store (or overwrite) `name`. Chunk-level dedup happens here: bytes
  /// already held by the store — under any name, from any client sharing
  /// the blockstore identity — are referenced, not re-uploaded.
  void put(const std::string& name, ByteView data);

  /// Exact bytes previously put under `name`; nullopt if unknown.
  std::optional<Bytes> get(const std::string& name);

  /// Forget `name` (the capability; store entries are shared and stay).
  bool erase(const std::string& name);

  std::optional<ObjectInfo> stat(const std::string& name) const;
  std::vector<std::string> list() const;
  std::size_t size() const;

  /// Serialized StreamHandle for `name` — the transferable capability
  /// (throws std::out_of_range if unknown). Another BlockStore on the same
  /// deployment can import_object() it and read the data without ever
  /// seeing the original put.
  Bytes export_object(const std::string& name) const;
  void import_object(const std::string& name, ByteView handle);

  const runtime::StreamConfig& config() const { return session_.config(); }

 private:
  runtime::StreamSession session_;
  mutable Mutex mu_{LockRank::kApp};  // outermost: never held across store I/O
  std::map<std::string, runtime::StreamHandle> objects_ GUARDED_BY(mu_);
};

}  // namespace speed::blockstore
