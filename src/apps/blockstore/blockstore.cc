#include "apps/blockstore/blockstore.h"

#include <stdexcept>
#include <utility>

namespace speed::blockstore {

mle::FunctionIdentity register_blockstore(runtime::DedupRuntime& rt) {
  rt.libraries().register_library(kLibraryFamily, kLibraryVersion,
                                  as_bytes("speed-blockstore stream codec v1"));
  return rt.resolve({kLibraryFamily, kLibraryVersion, kStreamSignature});
}

BlockStore::BlockStore(runtime::DedupRuntime& rt, runtime::StreamConfig config)
    : session_(rt, register_blockstore(rt), config) {}

void BlockStore::put(const std::string& name, ByteView data) {
  // The store round trips run outside the lock: puts of different objects
  // proceed concurrently and only the index update is serialized.
  runtime::StreamHandle handle = session_.put(data);
  MutexLock lock(mu_);
  objects_.insert_or_assign(name, std::move(handle));
}

std::optional<Bytes> BlockStore::get(const std::string& name) {
  runtime::StreamHandle handle;
  {
    MutexLock lock(mu_);
    const auto it = objects_.find(name);
    if (it == objects_.end()) return std::nullopt;
    // Re-parse the serialized capability instead of holding the lock (or a
    // dangling reference) across the store round trips of session_.get():
    // a concurrent overwrite of `name` must not invalidate this read.
    handle = runtime::StreamHandle::deserialize(it->second.serialize());
  }
  return session_.get(handle);
}

bool BlockStore::erase(const std::string& name) {
  MutexLock lock(mu_);
  return objects_.erase(name) > 0;
}

std::optional<ObjectInfo> BlockStore::stat(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = objects_.find(name);
  if (it == objects_.end()) return std::nullopt;
  return ObjectInfo{it->second.total_bytes, it->second.kind};
}

std::vector<std::string> BlockStore::list() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, handle] : objects_) names.push_back(name);
  return names;
}

std::size_t BlockStore::size() const {
  MutexLock lock(mu_);
  return objects_.size();
}

Bytes BlockStore::export_object(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw std::out_of_range("blockstore: unknown object: " + name);
  }
  return it->second.serialize();
}

void BlockStore::import_object(const std::string& name, ByteView handle) {
  runtime::StreamHandle parsed = runtime::StreamHandle::deserialize(handle);
  MutexLock lock(mu_);
  objects_.insert_or_assign(name, std::move(parsed));
}

}  // namespace speed::blockstore
