#include "apps/match/ruleset.h"

#include <algorithm>

#include "common/error.h"

namespace speed::match {

namespace {

std::vector<Bytes> all_contents(const std::vector<Rule>& rules,
                                std::vector<std::uint32_t>& pattern_rule) {
  std::vector<Bytes> patterns;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    for (const Bytes& c : rules[r].contents) {
      patterns.push_back(c);
      pattern_rule.push_back(static_cast<std::uint32_t>(r));
    }
  }
  return patterns;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Decode a quoted Snort-style string with \" \\ escapes and |xx xx| hex.
Bytes decode_content(std::string_view s) {
  Bytes out;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      out.push_back(static_cast<std::uint8_t>(s[i + 1]));
      i += 2;
    } else if (c == '|') {
      ++i;
      while (i < s.size() && s[i] != '|') {
        if (s[i] == ' ') {
          ++i;
          continue;
        }
        if (i + 1 >= s.size()) throw Error("decode_content: dangling hex byte");
        const int hi = hex_nibble(s[i]);
        const int lo = hex_nibble(s[i + 1]);
        if (hi < 0 || lo < 0) throw Error("decode_content: bad hex digit");
        out.push_back(static_cast<std::uint8_t>(hi * 16 + lo));
        i += 2;
      }
      if (i >= s.size()) throw Error("decode_content: unterminated hex block");
      ++i;  // closing '|'
    } else {
      out.push_back(static_cast<std::uint8_t>(c));
      ++i;
    }
  }
  return out;
}

/// Extract a double-quoted string starting at s[pos] == '"'; advances pos
/// past the closing quote. Honors backslash escapes.
std::string take_quoted(std::string_view s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] != '"') throw Error("rule: expected '\"'");
  ++pos;
  std::string out;
  while (pos < s.size() && s[pos] != '"') {
    if (s[pos] == '\\' && pos + 1 < s.size()) {
      out.push_back(s[pos]);
      out.push_back(s[pos + 1]);
      pos += 2;
    } else {
      out.push_back(s[pos++]);
    }
  }
  if (pos >= s.size()) throw Error("rule: unterminated string");
  ++pos;
  return out;
}

void skip_ws(std::string_view s, std::size_t& pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
}

}  // namespace

Rule parse_rule(std::string_view line) {
  Rule rule;
  std::size_t pos = 0;
  skip_ws(line, pos);
  constexpr std::string_view kAlert = "alert";
  if (line.substr(pos, kAlert.size()) != kAlert) {
    throw Error("rule: must start with 'alert'");
  }
  pos += kAlert.size();
  skip_ws(line, pos);

  // Numeric id.
  std::size_t id_end = pos;
  while (id_end < line.size() && line[id_end] >= '0' && line[id_end] <= '9') {
    ++id_end;
  }
  if (id_end == pos) throw Error("rule: missing numeric id");
  rule.id = static_cast<std::uint32_t>(std::stoul(std::string(line.substr(pos, id_end - pos))));
  pos = id_end;
  skip_ws(line, pos);

  rule.message = take_quoted(line, pos);

  while (pos < line.size()) {
    skip_ws(line, pos);
    if (pos >= line.size()) break;
    if (line.compare(pos, 9, "content:\"") == 0) {
      pos += 8;
      rule.contents.push_back(decode_content(take_quoted(line, pos)));
    } else if (line.compare(pos, 6, "pcre:\"") == 0) {
      pos += 5;
      if (rule.pcre.has_value()) throw Error("rule: multiple pcre options");
      // Un-escape the rule-file quoting (\" and \\) before compiling.
      const std::string raw = take_quoted(line, pos);
      std::string pattern;
      for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] == '\\' && i + 1 < raw.size() &&
            (raw[i + 1] == '"')) {
          pattern.push_back('"');
          ++i;
        } else {
          pattern.push_back(raw[i]);
        }
      }
      rule.pcre = pattern;
    } else if (line[pos] == ';') {
      ++pos;
    } else {
      throw Error("rule: unknown option near '" +
                  std::string(line.substr(pos, 12)) + "'");
    }
  }
  if (rule.contents.empty() && !rule.pcre.has_value()) {
    throw Error("rule: needs at least one content or pcre option");
  }
  return rule;
}

RuleSet::RuleSet(std::vector<Rule> rules)
    : rules_(std::move(rules)),
      automaton_(all_contents(rules_, pattern_rule_)) {
  regexes_.reserve(rules_.size());
  has_regex_.reserve(rules_.size());
  contents_per_rule_.reserve(rules_.size());
  for (const Rule& r : rules_) {
    if (r.pcre.has_value()) {
      regexes_.emplace_back(*r.pcre);
      has_regex_.push_back(true);
    } else {
      regexes_.emplace_back("");  // placeholder, never used
      has_regex_.push_back(false);
    }
    contents_per_rule_.push_back(static_cast<std::uint32_t>(r.contents.size()));
  }
}

std::vector<std::uint32_t> RuleSet::scan(ByteView payload) const {
  // Phase 1: one multi-pattern pass counts distinct content hits per rule.
  const std::vector<bool> hit = automaton_.find_distinct(payload);
  std::vector<std::uint32_t> content_hits(rules_.size(), 0);
  for (std::size_t p = 0; p < hit.size(); ++p) {
    if (hit[p]) ++content_hits[pattern_rule_[p]];
  }
  // Phase 2: rules whose contents all occurred get regex confirmation.
  std::vector<std::uint32_t> fired;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    if (content_hits[r] != contents_per_rule_[r]) continue;
    if (has_regex_[r] && !regexes_[r].search(payload)) continue;
    fired.push_back(rules_[r].id);
  }
  std::sort(fired.begin(), fired.end());
  return fired;
}

std::vector<std::uint32_t> RuleSet::scan_sequential(ByteView payload) const {
  std::vector<std::uint32_t> fired;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    bool all_contents = true;
    for (const Bytes& content : rules_[r].contents) {
      const auto it = std::search(payload.begin(), payload.end(),
                                  content.begin(), content.end());
      if (it == payload.end()) {
        all_contents = false;
        break;
      }
    }
    if (!all_contents) continue;
    if (has_regex_[r] && !regexes_[r].search(payload)) continue;
    fired.push_back(rules_[r].id);
  }
  std::sort(fired.begin(), fired.end());
  return fired;
}

std::vector<std::uint64_t> RuleSet::scan_sequential_batch(
    const std::vector<Bytes>& payloads) const {
  std::vector<std::uint64_t> counts(rules_.size(), 0);
  std::vector<std::pair<std::uint32_t, std::size_t>> id_index;
  id_index.reserve(rules_.size());
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    id_index.emplace_back(rules_[r].id, r);
  }
  std::sort(id_index.begin(), id_index.end());
  for (const Bytes& payload : payloads) {
    for (const std::uint32_t id : scan_sequential(payload)) {
      const auto it = std::lower_bound(
          id_index.begin(), id_index.end(), std::make_pair(id, std::size_t{0}));
      if (it != id_index.end() && it->first == id) ++counts[it->second];
    }
  }
  return counts;
}

std::vector<std::uint64_t> RuleSet::scan_batch(
    const std::vector<Bytes>& payloads) const {
  std::vector<std::uint64_t> counts(rules_.size(), 0);
  // Map rule id -> index once (ids are arbitrary).
  std::vector<std::pair<std::uint32_t, std::size_t>> id_index;
  id_index.reserve(rules_.size());
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    id_index.emplace_back(rules_[r].id, r);
  }
  std::sort(id_index.begin(), id_index.end());
  for (const Bytes& payload : payloads) {
    for (const std::uint32_t id : scan(payload)) {
      const auto it = std::lower_bound(
          id_index.begin(), id_index.end(), std::make_pair(id, std::size_t{0}));
      if (it != id_index.end() && it->first == id) ++counts[it->second];
    }
  }
  return counts;
}

}  // namespace speed::match
