#include "apps/match/aho_corasick.h"

#include <deque>

#include "common/error.h"

namespace speed::match {

AhoCorasick::AhoCorasick(const std::vector<Bytes>& patterns)
    : patterns_(patterns.size()) {
  // Trie construction.
  next_.assign(256, 0);  // root, 0 = "no edge yet" is fixed up below
  output_.emplace_back();
  std::vector<std::uint32_t> lengths;  // pattern lengths for offsets

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const Bytes& pat = patterns[p];
    if (pat.empty()) throw Error("AhoCorasick: empty pattern");
    std::uint32_t state = 0;
    for (const std::uint8_t b : pat) {
      std::uint32_t nxt = transition(state, b);
      if (nxt == 0) {
        nxt = static_cast<std::uint32_t>(output_.size());
        next_.resize(next_.size() + 256, 0);
        output_.emplace_back();
        next_[static_cast<std::size_t>(state) * 256 + b] = nxt;
      }
      state = nxt;
    }
    output_[state].push_back(static_cast<std::uint32_t>(p));
  }

  // BFS to compute failure links and convert the trie into a DFA
  // (goto becomes total: missing edges follow failure transitions).
  fail_.assign(output_.size(), 0);
  std::deque<std::uint32_t> queue;
  for (int b = 0; b < 256; ++b) {
    const std::uint32_t child = next_[static_cast<std::size_t>(b)];
    if (child != 0) {
      fail_[child] = 0;
      queue.push_back(child);
    }
  }
  while (!queue.empty()) {
    const std::uint32_t state = queue.front();
    queue.pop_front();
    // Merge output of the failure target (suffix matches).
    for (const std::uint32_t pid : output_[fail_[state]]) {
      output_[state].push_back(pid);
    }
    for (int b = 0; b < 256; ++b) {
      const std::size_t slot = static_cast<std::size_t>(state) * 256 +
                               static_cast<std::size_t>(b);
      const std::uint32_t child = next_[slot];
      if (child != 0) {
        fail_[child] = transition(fail_[state], static_cast<std::uint8_t>(b));
        queue.push_back(child);
      } else {
        next_[slot] = transition(fail_[state], static_cast<std::uint8_t>(b));
      }
    }
  }
}

std::vector<AcMatch> AhoCorasick::find_all(ByteView text) const {
  std::vector<AcMatch> matches;
  std::uint32_t state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = transition(state, text[i]);
    for (const std::uint32_t pid : output_[state]) {
      matches.push_back(AcMatch{pid, i + 1});
    }
  }
  return matches;
}

std::vector<bool> AhoCorasick::find_distinct(ByteView text) const {
  std::vector<bool> seen(patterns_, false);
  std::uint32_t state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = transition(state, text[i]);
    for (const std::uint32_t pid : output_[state]) seen[pid] = true;
  }
  return seen;
}

}  // namespace speed::match
