// Snort-style rule sets and packet scanning — the pattern-matching case
// study (paper §V: >3,700 Snort rules over millions of packets).
//
// A rule has literal "content" patterns (all must occur) and optionally one
// "pcre" payload regex. Scanning compiles every content pattern of every
// rule into one Aho–Corasick automaton; a rule fires when all its contents
// occur and its regex (if any) matches. This mirrors how real IDS engines
// use multi-pattern prefilters before expensive regex confirmation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "apps/match/aho_corasick.h"
#include "apps/match/regex.h"
#include "serialize/serde.h"

namespace speed::match {

struct Rule {
  std::uint32_t id = 0;
  std::string message;                ///< human-readable alert text
  std::vector<Bytes> contents;        ///< literal patterns (all required)
  std::optional<std::string> pcre;    ///< optional payload regex
};

/// Parse a simplified Snort rule line:
///   alert <id> "<message>" content:"<lit>"; [content:"...";] [pcre:"<re>";]
/// Escapes inside quoted strings: \" \\ and |xx xx| hex blocks (Snort style).
Rule parse_rule(std::string_view line);

struct RuleMatch {
  std::uint32_t rule_id;
};

class RuleSet {
 public:
  explicit RuleSet(std::vector<Rule> rules);

  /// Scan one payload; returns the ids of every rule that fires, ascending.
  /// Uses the Aho–Corasick prefilter + regex confirmation (modern IDS style).
  std::vector<std::uint32_t> scan(ByteView payload) const;

  /// Paper-faithful sequential scan: every rule is evaluated independently —
  /// each content via a plain substring search and the pcre via pcre_exec-
  /// style regex search — with no shared automaton. This is the computation
  /// SPEED deduplicates in the paper's case study 3 (per-rule pcre_exec over
  /// each payload), and the reason its baseline is so expensive.
  std::vector<std::uint32_t> scan_sequential(ByteView payload) const;

  /// scan_sequential over a batch, aggregated per-rule (paper workload).
  std::vector<std::uint64_t> scan_sequential_batch(
      const std::vector<Bytes>& payloads) const;

  /// Scan a batch of payloads; returns per-rule hit counts (the shape the
  /// paper's virus-scanner workload aggregates).
  std::vector<std::uint64_t> scan_batch(
      const std::vector<Bytes>& payloads) const;

  std::size_t rule_count() const { return rules_.size(); }

 private:
  std::vector<Rule> rules_;
  std::vector<Regex> regexes_;             ///< parallel to rules_ (may be empty pattern)
  std::vector<bool> has_regex_;
  // pattern_rule_ is declared (and thus constructed) before automaton_: the
  // automaton's initializer fills it as a side effect.
  std::vector<std::uint32_t> pattern_rule_;///< AC pattern index -> rule index
  AhoCorasick automaton_;                  ///< all contents of all rules
  std::vector<std::uint32_t> contents_per_rule_;
};

inline constexpr const char* kLibraryFamily = "speed-pcre";
inline constexpr const char* kLibraryVersion = "1.0";

}  // namespace speed::match
