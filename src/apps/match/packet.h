// Network packets for the pattern-matching workload.
//
// The paper scans >4M packets from the m57-Patents and 4SICS captures; our
// substitute traces (src/workload) generate synthetic packets with the same
// relevant structure: a 5-tuple plus an opaque payload the rules scan.
#pragma once

#include <cstdint>
#include <vector>

#include "serialize/serde.h"

namespace speed::match {

struct Packet {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  ///< 6 = TCP, 17 = UDP
  Bytes payload;

  friend bool operator==(const Packet&, const Packet&) = default;
};

using PacketTrace = std::vector<Packet>;

}  // namespace speed::match

namespace speed::serialize {

template <>
struct Serde<speed::match::Packet> {
  static void encode(Encoder& enc, const speed::match::Packet& p) {
    enc.u32(p.src_ip);
    enc.u32(p.dst_ip);
    enc.u16(p.src_port);
    enc.u16(p.dst_port);
    enc.u8(p.protocol);
    enc.var_bytes(p.payload);
  }
  static speed::match::Packet decode(Decoder& dec) {
    speed::match::Packet p;
    p.src_ip = dec.u32();
    p.dst_ip = dec.u32();
    p.src_port = dec.u16();
    p.dst_port = dec.u16();
    p.protocol = dec.u8();
    p.payload = dec.var_bytes();
    return p;
  }
};

}  // namespace speed::serialize
