// Aho–Corasick multi-pattern string matching.
//
// The workhorse of the pattern-matching case study: Snort-style rules carry
// literal "content" patterns, and scanning a packet against thousands of
// them must be single-pass. Classic goto/failure/output automaton over full
// 256-symbol alphabet rows (dense rows; thousands of patterns stay in the
// tens of MB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace speed::match {

struct AcMatch {
  std::size_t pattern_index;  ///< which pattern matched
  std::size_t end_offset;     ///< offset one past the match's last byte
};

class AhoCorasick {
 public:
  /// Build the automaton; empty patterns are rejected.
  explicit AhoCorasick(const std::vector<Bytes>& patterns);

  /// All matches (every pattern occurrence, including overlaps).
  std::vector<AcMatch> find_all(ByteView text) const;

  /// Which distinct patterns occur at least once (bitmap by index).
  std::vector<bool> find_distinct(ByteView text) const;

  std::size_t pattern_count() const { return patterns_; }
  std::size_t node_count() const { return next_.size() / 256; }

 private:
  std::uint32_t transition(std::uint32_t state, std::uint8_t byte) const {
    return next_[static_cast<std::size_t>(state) * 256 + byte];
  }

  std::vector<std::uint32_t> next_;      ///< dense goto function
  std::vector<std::uint32_t> fail_;      ///< failure links
  std::vector<std::vector<std::uint32_t>> output_;  ///< pattern ids per node
  std::size_t patterns_ = 0;
};

}  // namespace speed::match
