// A compact regular-expression engine (PCRE subset) for rule payloads.
//
// The paper's third case study deduplicates pcre_exec() calls; this engine
// is our stand-in for libpcre. Supported syntax:
//
//   literals, '.'            any byte except newline
//   escapes \d \D \w \W \s \S \n \r \t \\ \. etc.
//   classes  [abc] [a-z0-9] [^...]
//   quantifiers * + ? {m} {m,} {m,n}   (greedy, with backtracking)
//   anchors  ^ $
//   groups   ( ... )  (non-capturing semantics)
//   alternation a|b
//
// Matching is backtracking with a global step budget, so pathological
// patterns degrade to a thrown RegexBudgetError instead of hanging.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"

namespace speed::match {

class RegexSyntaxError : public Error {
 public:
  explicit RegexSyntaxError(const std::string& what) : Error(what) {}
};

class RegexBudgetError : public Error {
 public:
  explicit RegexBudgetError(const std::string& what) : Error(what) {}
};

namespace detail {
struct Node;
}

class Regex {
 public:
  /// Compile; throws RegexSyntaxError on malformed patterns.
  explicit Regex(std::string_view pattern, std::size_t step_budget = 1u << 22);
  ~Regex();

  Regex(Regex&&) noexcept;
  Regex& operator=(Regex&&) noexcept;
  Regex(const Regex&) = delete;
  Regex& operator=(const Regex&) = delete;

  /// True if the pattern matches anywhere in `text` (pcre_exec semantics).
  bool search(ByteView text) const;
  bool search(std::string_view text) const { return search(as_bytes(text)); }

  const std::string& pattern() const { return pattern_; }

 private:
  std::string pattern_;
  std::shared_ptr<const detail::Node> root_;
  bool anchored_start_ = false;
  std::size_t step_budget_;
};

}  // namespace speed::match
