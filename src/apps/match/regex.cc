#include "apps/match/regex.h"

#include <array>
#include <functional>
#include <vector>

namespace speed::match {

namespace detail {

struct CharSet {
  std::array<std::uint64_t, 4> bits{};

  void add(std::uint8_t c) { bits[c >> 6] |= 1ull << (c & 63); }
  void add_range(std::uint8_t lo, std::uint8_t hi) {
    for (int c = lo; c <= hi; ++c) add(static_cast<std::uint8_t>(c));
  }
  void negate() {
    for (auto& w : bits) w = ~w;
  }
  bool test(std::uint8_t c) const { return (bits[c >> 6] >> (c & 63)) & 1; }
};

struct Node {
  enum class Kind {
    kClass,       ///< one byte from a character set
    kConcat,      ///< children in sequence
    kAlt,         ///< any one child
    kRepeat,      ///< child repeated [min, max] times (max < 0 = unbounded)
    kStartAnchor,
    kEndAnchor,
  };

  Kind kind;
  CharSet cls;
  std::vector<std::shared_ptr<const Node>> children;
  std::shared_ptr<const Node> child;
  int min = 0;
  int max = -1;
};

using NodePtr = std::shared_ptr<const Node>;

namespace {

// -------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::string_view pattern) : pat_(pattern) {}

  NodePtr parse() {
    NodePtr n = parse_alt();
    if (pos_ != pat_.size()) {
      throw RegexSyntaxError("unexpected ')' or trailing input");
    }
    return n;
  }

 private:
  bool eof() const { return pos_ >= pat_.size(); }
  char peek() const { return pat_[pos_]; }
  char take() { return pat_[pos_++]; }

  NodePtr parse_alt() {
    std::vector<NodePtr> branches;
    branches.push_back(parse_concat());
    while (!eof() && peek() == '|') {
      take();
      branches.push_back(parse_concat());
    }
    if (branches.size() == 1) return branches[0];
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kAlt;
    node->children = std::move(branches);
    return node;
  }

  NodePtr parse_concat() {
    std::vector<NodePtr> parts;
    while (!eof() && peek() != '|' && peek() != ')') {
      parts.push_back(parse_repeat());
    }
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kConcat;
    node->children = std::move(parts);
    return node;
  }

  NodePtr parse_repeat() {
    NodePtr atom = parse_atom();
    while (!eof()) {
      int min, max;
      const char c = peek();
      if (c == '*') {
        min = 0; max = -1; take();
      } else if (c == '+') {
        min = 1; max = -1; take();
      } else if (c == '?') {
        min = 0; max = 1; take();
      } else if (c == '{') {
        std::size_t save = pos_;
        take();
        if (!parse_bound(min, max)) {
          pos_ = save;  // literal '{'
          break;
        }
      } else {
        break;
      }
      if (atom->kind == Node::Kind::kStartAnchor ||
          atom->kind == Node::Kind::kEndAnchor) {
        throw RegexSyntaxError("quantifier on anchor");
      }
      auto rep = std::make_shared<Node>();
      rep->kind = Node::Kind::kRepeat;
      rep->child = atom;
      rep->min = min;
      rep->max = max;
      atom = rep;
    }
    return atom;
  }

  /// Parse "m}" / "m,}" / "m,n}" after the '{'. Returns false to treat the
  /// brace as a literal (PCRE behaviour for non-numeric braces).
  bool parse_bound(int& min, int& max) {
    if (eof() || !isdigit_(peek())) return false;
    min = parse_int();
    if (eof()) return false;
    if (peek() == '}') {
      take();
      max = min;
      return true;
    }
    if (peek() != ',') return false;
    take();
    if (!eof() && peek() == '}') {
      take();
      max = -1;
      return true;
    }
    if (eof() || !isdigit_(peek())) return false;
    max = parse_int();
    if (max < min) throw RegexSyntaxError("{m,n} with n < m");
    if (eof() || peek() != '}') return false;
    take();
    return true;
  }

  int parse_int() {
    int v = 0;
    while (!eof() && isdigit_(peek())) {
      v = v * 10 + (take() - '0');
      if (v > 1000) throw RegexSyntaxError("repetition bound too large");
    }
    return v;
  }

  static bool isdigit_(char c) { return c >= '0' && c <= '9'; }
  static bool ishex_(char c) {
    return isdigit_(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }
  static int hexval_(char c) {
    if (isdigit_(c)) return c - '0';
    if (c >= 'a') return c - 'a' + 10;
    return c - 'A' + 10;
  }

  NodePtr parse_atom() {
    if (eof()) throw RegexSyntaxError("pattern ends where atom expected");
    const char c = take();
    auto node = std::make_shared<Node>();
    switch (c) {
      case '(': {
        NodePtr inner = parse_alt();
        if (eof() || take() != ')') throw RegexSyntaxError("unclosed group");
        return inner;
      }
      case '[':
        node->kind = Node::Kind::kClass;
        node->cls = parse_class();
        return node;
      case '.':
        node->kind = Node::Kind::kClass;
        node->cls.negate();  // everything…
        node->cls.bits[static_cast<std::uint8_t>('\n') >> 6] &=
            ~(1ull << (static_cast<std::uint8_t>('\n') & 63));  // …but newline
        return node;
      case '^':
        node->kind = Node::Kind::kStartAnchor;
        return node;
      case '$':
        node->kind = Node::Kind::kEndAnchor;
        return node;
      case '\\':
        node->kind = Node::Kind::kClass;
        node->cls = parse_escape();
        return node;
      case '*':
      case '+':
      case '?':
        throw RegexSyntaxError("quantifier with nothing to repeat");
      case ')':
        throw RegexSyntaxError("unmatched ')'");
      default:
        node->kind = Node::Kind::kClass;
        node->cls.add(static_cast<std::uint8_t>(c));
        return node;
    }
  }

  CharSet parse_escape() {
    if (eof()) throw RegexSyntaxError("dangling backslash");
    const char c = take();
    CharSet set;
    switch (c) {
      case 'd': set.add_range('0', '9'); return set;
      case 'D': set.add_range('0', '9'); set.negate(); return set;
      case 'w':
        set.add_range('a', 'z'); set.add_range('A', 'Z');
        set.add_range('0', '9'); set.add('_');
        return set;
      case 'W':
        set.add_range('a', 'z'); set.add_range('A', 'Z');
        set.add_range('0', '9'); set.add('_'); set.negate();
        return set;
      case 's':
        for (const char ws : {' ', '\t', '\r', '\n', '\f', '\v'}) {
          set.add(static_cast<std::uint8_t>(ws));
        }
        return set;
      case 'S':
        for (const char ws : {' ', '\t', '\r', '\n', '\f', '\v'}) {
          set.add(static_cast<std::uint8_t>(ws));
        }
        set.negate();
        return set;
      case 'n': set.add('\n'); return set;
      case 'r': set.add('\r'); return set;
      case 't': set.add('\t'); return set;
      case 'f': set.add('\f'); return set;
      case 'v': set.add('\v'); return set;
      case '0': set.add(0); return set;
      case 'x': {
        if (pos_ + 1 >= pat_.size() || !ishex_(pat_[pos_]) ||
            !ishex_(pat_[pos_ + 1])) {
          throw RegexSyntaxError("\\x needs two hex digits");
        }
        const int v = hexval_(take()) * 16;
        set.add(static_cast<std::uint8_t>(v + hexval_(take())));
        return set;
      }
      default:
        set.add(static_cast<std::uint8_t>(c));  // escaped literal
        return set;
    }
  }

  CharSet parse_class() {
    CharSet set;
    bool negate = false;
    if (!eof() && peek() == '^') {
      negate = true;
      take();
    }
    bool any = false;
    while (true) {
      if (eof()) throw RegexSyntaxError("unclosed character class");
      char c = take();
      if (c == ']' && any) break;
      if (c == ']' && !any) {
        // ']' as the very first member is a literal (PCRE behaviour).
        set.add(static_cast<std::uint8_t>(']'));
        any = true;
        continue;
      }
      CharSet member;
      if (c == '\\') {
        member = parse_escape();
      } else {
        member.add(static_cast<std::uint8_t>(c));
      }
      // Range? Only for single-char members.
      if (!eof() && peek() == '-' && pos_ + 1 < pat_.size() &&
          pat_[pos_ + 1] != ']' && c != '\\') {
        take();  // '-'
        char hi = take();
        if (hi == '\\') throw RegexSyntaxError("escape as range end");
        if (static_cast<std::uint8_t>(hi) < static_cast<std::uint8_t>(c)) {
          throw RegexSyntaxError("reversed character range");
        }
        set.add_range(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(hi));
      } else {
        for (int i = 0; i < 256; ++i) {
          if (member.test(static_cast<std::uint8_t>(i))) {
            set.add(static_cast<std::uint8_t>(i));
          }
        }
      }
      any = true;
    }
    if (negate) set.negate();
    return set;
  }

  std::string_view pat_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------- matcher

using Cont = std::function<bool(std::size_t)>;

struct MatchContext {
  ByteView text;
  std::size_t steps_left;
};

bool match_node(const NodePtr& node, MatchContext& ctx, std::size_t pos,
                const Cont& cont);

bool match_seq(const std::vector<NodePtr>& nodes, std::size_t idx,
               MatchContext& ctx, std::size_t pos, const Cont& cont) {
  if (idx == nodes.size()) return cont(pos);
  return match_node(nodes[idx], ctx, pos, [&](std::size_t p) {
    return match_seq(nodes, idx + 1, ctx, p, cont);
  });
}

bool match_repeat(const NodePtr& child, int min, int max, int count,
                  MatchContext& ctx, std::size_t pos, const Cont& cont) {
  // Greedy: try one more repetition first, then yield to the continuation.
  if (max < 0 || count < max) {
    const bool more = match_node(child, ctx, pos, [&](std::size_t p) {
      if (p == pos) {
        // Empty-width iteration: let it count toward `min`, but never loop
        // past it (further empty repeats cannot change the outcome).
        if (count + 1 >= min) return false;
        return match_repeat(child, min, max, count + 1, ctx, p, cont);
      }
      return match_repeat(child, min, max, count + 1, ctx, p, cont);
    });
    if (more) return true;
  }
  if (count >= min) return cont(pos);
  return false;
}

bool match_node(const NodePtr& node, MatchContext& ctx, std::size_t pos,
                const Cont& cont) {
  if (ctx.steps_left-- == 0) {
    throw RegexBudgetError("regex step budget exhausted");
  }
  switch (node->kind) {
    case Node::Kind::kClass:
      return pos < ctx.text.size() && node->cls.test(ctx.text[pos]) &&
             cont(pos + 1);
    case Node::Kind::kConcat:
      return match_seq(node->children, 0, ctx, pos, cont);
    case Node::Kind::kAlt:
      for (const NodePtr& branch : node->children) {
        if (match_node(branch, ctx, pos, cont)) return true;
      }
      return false;
    case Node::Kind::kRepeat:
      return match_repeat(node->child, node->min, node->max, 0, ctx, pos, cont);
    case Node::Kind::kStartAnchor:
      return pos == 0 && cont(pos);
    case Node::Kind::kEndAnchor:
      return pos == ctx.text.size() && cont(pos);
  }
  return false;
}

}  // namespace
}  // namespace detail

Regex::Regex(std::string_view pattern, std::size_t step_budget)
    : pattern_(pattern), step_budget_(step_budget) {
  detail::Parser parser(pattern);
  root_ = parser.parse();
  // Start-anchor fast path: only safe when there is no top-level alternation
  // that could hide an unanchored branch (e.g. "^a|b" matches "b" anywhere).
  anchored_start_ = !pattern_.empty() && pattern_[0] == '^' &&
                    pattern_.find('|') == std::string::npos;
}

Regex::~Regex() = default;
Regex::Regex(Regex&&) noexcept = default;
Regex& Regex::operator=(Regex&&) noexcept = default;

bool Regex::search(ByteView text) const {
  detail::MatchContext ctx{text, step_budget_};
  const detail::Cont accept = [](std::size_t) { return true; };
  const std::size_t last_start = anchored_start_ ? 0 : text.size();
  for (std::size_t start = 0; start <= last_start; ++start) {
    if (detail::match_node(root_, ctx, start, accept)) return true;
  }
  return false;
}

}  // namespace speed::match
