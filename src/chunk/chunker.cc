#include "chunk/chunker.h"

#include <array>
#include <bit>
#include <stdexcept>

namespace speed::chunk {

namespace {

/// splitmix64 — the standard 64-bit mixer. Used only to derive the gear
/// table below; the table must be the same everywhere or chunk boundaries
/// (and with them chunk tags) would differ between peers.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::array<std::uint64_t, 256> make_gear_table() {
  std::array<std::uint64_t, 256> g{};
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = splitmix64(static_cast<std::uint64_t>(i));
  }
  return g;
}

constexpr std::array<std::uint64_t, 256> kGear = make_gear_table();

}  // namespace

void ChunkerConfig::validate() const {
  if (min_size == 0 || min_size > avg_size || avg_size > max_size) {
    throw std::invalid_argument(
        "ChunkerConfig: need 0 < min_size <= avg_size <= max_size");
  }
  if ((avg_size & (avg_size - 1)) != 0) {
    throw std::invalid_argument("ChunkerConfig: avg_size must be a power of 2");
  }
}

Chunker::Chunker(ChunkerConfig config) : config_(config) {
  config_.validate();
  // Judge the top log2(avg) bits (FastCDC-style): the low bits of a Gear
  // hash depend on only the last ~13 bytes and cut erratically on
  // low-entropy input, while every byte of the 64-byte window reaches the
  // high bits through the shift.
  const int bits = std::countr_zero(static_cast<std::uint64_t>(config_.avg_size));
  cut_mask_ = bits == 0 ? 0 : ~(~std::uint64_t{0} >> bits);
}

std::vector<ChunkRef> Chunker::split(ByteView data) const {
  std::vector<ChunkRef> chunks;
  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t limit = std::min(data.size() - start, config_.max_size);
    std::size_t cut = limit;  // forced cut at max (or the end of the input)
    if (limit > config_.min_size) {
      // The hash restarts at zero for each chunk; the shift in the update
      // ages a byte out after 64 steps, so the boundary decision at position
      // i depends only on bytes (i-64, i] — identical content windows cut
      // identically no matter what came before.
      std::uint64_t h = 0;
      for (std::size_t i = 0; i < limit; ++i) {
        h = (h << 1) + kGear[data[start + i]];
        if (i + 1 >= config_.min_size && (h & cut_mask_) == 0) {
          cut = i + 1;
          break;
        }
      }
    }
    chunks.push_back(ChunkRef{start, cut});
    start += cut;
  }
  return chunks;
}

}  // namespace speed::chunk
