#include "chunk/manifest.h"

#include "common/error.h"
#include "serialize/codec.h"

namespace speed::chunk {

namespace {

constexpr std::uint8_t kManifestVersion = 1;
constexpr std::uint8_t kKindRef = 0;
constexpr std::uint8_t kKindInline = 1;

/// Floor on the wire size of one entry (kind byte + the smaller variant's
/// fixed fields); bounds the count-prefix check against allocation bombs.
constexpr std::size_t kMinEntryWire = 1 + 4;

}  // namespace

Bytes encode_manifest(const Manifest& manifest) {
  serialize::Encoder enc;
  enc.u8(kManifestVersion);
  enc.u64(manifest.total_bytes);
  enc.u32(static_cast<std::uint32_t>(manifest.entries.size()));
  for (const ManifestEntry& e : manifest.entries) {
    if (e.inlined) {
      enc.u8(kKindInline);
      enc.var_bytes(e.inline_bytes);
    } else {
      enc.u8(kKindRef);
      enc.raw(ByteView(e.tag.data(), e.tag.size()));
      enc.u32(e.size);
      enc.var_bytes(
          e.key.reveal_for(secret::Purpose::of("stream_manifest_build")));
    }
  }
  return enc.take();
}

Manifest decode_manifest(ByteView plaintext) {
  serialize::Decoder dec(plaintext);
  if (dec.u8() != kManifestVersion) {
    throw SerializationError("manifest: unknown version");
  }
  Manifest m;
  m.total_bytes = dec.u64();
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining() / kMinEntryWire) {
    throw SerializationError("manifest: entry count exceeds frame");
  }
  m.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ManifestEntry e;
    const std::uint8_t kind = dec.u8();
    if (kind == kKindRef) {
      const ByteView t = dec.raw(e.tag.size());
      std::copy(t.begin(), t.end(), e.tag.begin());
      e.size = dec.u32();
      e.key = secret::Buffer::absorb(dec.var_bytes());
    } else if (kind == kKindInline) {
      e.inlined = true;
      e.inline_bytes = dec.var_bytes();
    } else {
      throw SerializationError("manifest: unknown entry kind");
    }
    m.entries.push_back(std::move(e));
  }
  dec.expect_done();
  return m;
}

}  // namespace speed::chunk
