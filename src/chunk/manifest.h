// Stream manifest — the sealed entry tying a chunk list to its stream tag.
//
// A chunked put stores each chunk as its own RCE-protected entry, then
// stores one manifest entry under the whole-stream tag. The manifest
// plaintext lists, per chunk, either
//
//   * a *ref*: (chunk tag, size, per-chunk key k_i) — the chunk's result
//     ciphertext lives under its own tag and k_i decrypts it; or
//   * an *inline* copy of the chunk bytes — the fallback when a chunk's PUT
//     was rejected or its stored entry is unrecoverable (a store keeps the
//     first write for a tag, so a poisoned entry cannot be replaced; inlining
//     keeps get() correct without it).
//
// The manifest plaintext contains every per-chunk key, so it is itself
// protected with RCE under the *stream-domain* context over the raw input
// before leaving the enclave: recovering it requires either performing the
// same computation on the same whole input (put-side dedup) or holding the
// stream handle's manifest key (get-side). Binding it to the raw input —
// not to the chunk-tag list — matters: the store observes chunk tags and
// function identities are public, so a tag-list-derived key would let a
// malicious store unwrap the manifest and with it every chunk key.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/secret.h"
#include "serialize/wire.h"

namespace speed::chunk {

struct ManifestEntry {
  bool inlined = false;

  // Ref kind: the chunk entry lives in the store under `tag`.
  serialize::Tag tag{};
  std::uint32_t size = 0;   ///< plaintext chunk size
  secret::Buffer key;       ///< k_i decrypting the chunk's result ciphertext

  // Inline kind: the chunk rides inside the manifest itself.
  Bytes inline_bytes;
};

struct Manifest {
  std::uint64_t total_bytes = 0;
  std::vector<ManifestEntry> entries;
};

/// Serialize the manifest plaintext (chunk keys are revealed into it — the
/// audited "stream_manifest_build" escape; the caller must RCE-protect the
/// returned bytes before they leave the enclave).
Bytes encode_manifest(const Manifest& manifest);

/// Parse a recovered manifest plaintext; chunk keys land back in the secret
/// domain. Throws SerializationError on malformed input.
Manifest decode_manifest(ByteView plaintext);

}  // namespace speed::chunk
