// ChunkPlan — the tag-per-chunk refactoring of the dedup API.
//
// The whole-call path derives one (tag, context) pair per call. A ChunkPlan
// derives one per content-defined chunk plus one for the whole stream, all
// in a single pass over the input:
//
//   * each chunk's context forks a shared (domain, func) midstate
//     (mle::ChunkTagger), so the function identity is hashed once, not once
//     per chunk;
//   * the whole-stream context accumulates the same walk incrementally
//     (mle::ContextBuilder) — the input is hashed exactly twice total
//     (once chunk-wise, once stream-wise) regardless of chunk count;
//   * chunk tags live in Domain::kChunk and the stream tag in
//     Domain::kStream, both disjoint from whole-call tags, so a chunk can
//     never alias a whole input's call entry in the store.
//
// Degrade rule (zero overhead for small inputs): an input that chunks to a
// single chunk is *not* a stream. The plan then carries exactly one context
// in Domain::kCall over the whole input — byte-identical to what
// DedupRuntime::execute would derive — and whole_call() tells StreamSession
// to take the existing per-call path with no manifest.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chunk/chunker.h"
#include "common/bytes.h"
#include "mle/tag.h"

namespace speed::chunk {

class ChunkPlan {
 public:
  /// Chunk `input` and derive every context in one pass. The plan borrows
  /// `input` (chunk byte windows point into it); the caller keeps the
  /// buffer alive for the plan's lifetime.
  static ChunkPlan build(const mle::FunctionIdentity& fn, ByteView input,
                         const Chunker& chunker);

  /// True iff the input produced at most one chunk; the single context is
  /// then the whole-call context and no manifest/stream machinery applies.
  bool whole_call() const { return whole_call_; }

  std::size_t chunk_count() const { return chunks_.size(); }
  const ChunkRef& chunk(std::size_t i) const { return chunks_[i]; }

  /// The bytes of chunk i (a window into the caller's input buffer).
  ByteView chunk_bytes(std::size_t i) const {
    return input_.subspan(chunks_[i].offset, chunks_[i].size);
  }

  const mle::ComputationContext& chunk_context(std::size_t i) const {
    return contexts_[i];
  }
  const serialize::Tag& chunk_tag(std::size_t i) const { return tags_[i]; }

  /// Whole-stream context/tag (Domain::kStream). For a whole_call() plan
  /// these are the whole-call context/tag instead — the degrade path.
  const mle::ComputationContext& stream_context() const { return *stream_; }
  const serialize::Tag& stream_tag() const { return stream_tag_; }

  std::uint64_t total_bytes() const { return input_.size(); }
  ByteView input() const { return input_; }

 private:
  ChunkPlan() = default;

  ByteView input_;
  std::vector<ChunkRef> chunks_;
  std::vector<mle::ComputationContext> contexts_;  ///< per chunk, kChunk
  std::vector<serialize::Tag> tags_;               ///< per chunk
  std::optional<mle::ComputationContext> stream_;  ///< kStream (or kCall)
  serialize::Tag stream_tag_{};
  bool whole_call_ = false;
};

}  // namespace speed::chunk
