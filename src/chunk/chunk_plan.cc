#include "chunk/chunk_plan.h"

namespace speed::chunk {

ChunkPlan ChunkPlan::build(const mle::FunctionIdentity& fn, ByteView input,
                           const Chunker& chunker) {
  ChunkPlan plan;
  plan.input_ = input;
  plan.chunks_ = chunker.split(input);

  if (plan.chunks_.size() <= 1) {
    // Degrade: one (or zero) chunks means no stream structure. Derive the
    // exact whole-call context the per-call path would — same domain, same
    // bytes — so downstream behaviour is indistinguishable from execute().
    plan.whole_call_ = true;
    plan.stream_.emplace(fn, input, mle::Domain::kCall);
    plan.stream_tag_ = plan.stream_->tag();
    return plan;
  }

  const mle::ChunkTagger tagger(fn);
  mle::ContextBuilder stream(fn, input.size(), mle::Domain::kStream);
  plan.contexts_.reserve(plan.chunks_.size());
  plan.tags_.reserve(plan.chunks_.size());
  for (const ChunkRef& c : plan.chunks_) {
    const ByteView bytes = input.subspan(c.offset, c.size);
    plan.contexts_.push_back(tagger.context(bytes));
    plan.tags_.push_back(plan.contexts_.back().tag());
    stream.update(bytes);
  }
  plan.stream_.emplace(std::move(stream).finish());
  plan.stream_tag_ = plan.stream_->tag();
  return plan;
}

}  // namespace speed::chunk
