// Content-defined chunking (Gear rolling hash).
//
// The streaming dedup path splits a large input into variable-size chunks
// whose boundaries depend only on the *content* in a ~64-byte window, not on
// byte offsets. An insert/delete/shift edit therefore perturbs at most the
// chunk it lands in plus its successor: the rolling hash resynchronizes at
// the next content boundary and every later chunk is byte-identical to the
// unedited version — which is what lets chunk-granularity dedup survive
// edits that would forfeit all reuse under whole-call tags.
//
// The chunker is the Gear variant of the Rabin-style rolling hash (the
// chunker idiom of Metadedup, MSST'19): h = (h << 1) + G[byte], with a cut
// when the HIGH log2(avg) bits of h are zero (the FastCDC observation: the
// left shift pushes every window byte's entropy into the high bits, while
// the low bits see only the last few bytes and misbehave on low-entropy
// text). The shift ages a byte out of the hash after 64 steps, giving the
// fixed-size window for free. The gear table is derived deterministically,
// so chunk boundaries — and thus chunk tags — are stable across processes
// and platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace speed::chunk {

/// Chunk-size policy. `avg_size` must be a power of two (it becomes the cut
/// mask); expected chunk size is roughly min_size + avg_size for random
/// data. Defaults target the block-store case study: big enough that the
/// per-chunk crypto amortizes, small enough that edits stay contained.
struct ChunkerConfig {
  std::size_t min_size = 2 * 1024;
  std::size_t avg_size = 8 * 1024;
  std::size_t max_size = 64 * 1024;

  /// Throws std::invalid_argument unless 0 < min <= avg <= max and avg is a
  /// power of two.
  void validate() const;
};

/// One chunk of the input: a half-open [offset, offset + size) window.
struct ChunkRef {
  std::size_t offset = 0;
  std::size_t size = 0;

  friend bool operator==(const ChunkRef&, const ChunkRef&) = default;
};

class Chunker {
 public:
  explicit Chunker(ChunkerConfig config = {});

  /// Split `data` into content-defined chunks. Every chunk's size is in
  /// [min_size, max_size] except the final chunk, which may be shorter
  /// (sub-min inputs yield exactly one chunk; empty input yields none).
  /// Chunks tile the input exactly: offsets are contiguous, sizes sum to
  /// data.size().
  std::vector<ChunkRef> split(ByteView data) const;

  const ChunkerConfig& config() const { return config_; }

 private:
  ChunkerConfig config_;
  std::uint64_t cut_mask_;
};

}  // namespace speed::chunk
