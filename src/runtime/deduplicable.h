// Deduplicable<> — the developer-facing API (paper §IV-C, Fig. 4).
//
// Making a function deduplicable takes two lines:
//
//   speed::runtime::Deduplicable<Bytes(const Bytes&)> dedup_deflate(
//       rt, {"zlib", "1.2.11", "bytes deflate(bytes)"}, my_deflate);
//   Bytes out = dedup_deflate(input);   // use as normal
//
// The wrapper owns the interaction with the underlying DedupRuntime and the
// conversion between data formats: arguments are canonically serialized to
// form the computation input m (parameters "are also viewed as a part of
// input data", §II-A), and the return value round-trips through Serde so a
// stored ciphertext decodes to exactly what the function would have
// returned. Any callable with a Serde-encodable argument/return types is
// accepted — the template is function-agnostic, like the prototype's
// "extensive C++ template features ... allowing it to accept, in principle,
// any functions".
#pragma once

#include <atomic>
#include <functional>
#include <utility>

#include "runtime/dedup_runtime.h"
#include "serialize/serde.h"

namespace speed::runtime {

template <typename Signature>
class Deduplicable;

template <typename R, typename... Args>
class Deduplicable<R(Args...)> {
  static_assert((serialize::Serializable<std::decay_t<Args>> && ...),
                "every argument type needs a Serde specialization");
  static_assert(serialize::Serializable<std::decay_t<R>>,
                "the result type needs a Serde specialization");

 public:
  /// Wrap `fn` under `descriptor`. The descriptor must resolve against the
  /// runtime's trusted-library registry (throws EnclaveError otherwise).
  Deduplicable(DedupRuntime& rt, serialize::FunctionDescriptor descriptor,
               std::function<R(Args...)> fn)
      : rt_(&rt), fn_(std::move(fn)), identity_(rt.resolve(descriptor)) {}

  /// Call through the deduplication routine: identical (code, input) pairs
  /// are served from the encrypted store without re-execution.
  R operator()(const Args&... args) {
    const Bytes input = encode_args(args...);
    auto outcome = rt_->execute(identity_, input, [&]() -> Bytes {
      return serialize::serialize<std::decay_t<R>>(fn_(args...));
    });
    last_was_deduplicated_ = outcome.deduplicated;
    return serialize::deserialize<std::decay_t<R>>(outcome.result);
  }

  /// Whether the most recent call was served from the store (for tests and
  /// instrumentation; not part of the 2-line usage).
  bool last_was_deduplicated() const { return last_was_deduplicated_; }

  const mle::FunctionIdentity& identity() const { return identity_; }

 private:
  static Bytes encode_args(const Args&... args) {
    serialize::Encoder enc;
    (serialize::Serde<std::decay_t<Args>>::encode(enc, args), ...);
    return enc.take();
  }

  DedupRuntime* rt_;
  std::function<R(Args...)> fn_;
  mle::FunctionIdentity identity_;
  std::atomic<bool> last_was_deduplicated_{false};  ///< callable from any thread
};

}  // namespace speed::runtime
