// Umbrella header: the public API of SPEED.
//
// A minimal integration looks like:
//
//   sgx::Platform platform;                          // the machine
//   store::ResultStore store(platform);              // encrypted ResultStore
//   auto enclave = platform.create_enclave("my-app");
//   store::StoreSession session(store, enclave->measurement());
//   runtime::DedupRuntime rt(*enclave, store.enclave().measurement(),
//                            session.transport());
//   rt.libraries().register_library("mylib", "1.0", code_bytes);
//
//   runtime::Deduplicable<Out(const In&)> fast_f(
//       rt, {"mylib", "1.0", "Out f(In)"}, f);       // line 1
//   Out out = fast_f(in);                            // line 2 — use as normal
#pragma once

#include "chunk/chunk_plan.h"
#include "chunk/chunker.h"
#include "chunk/manifest.h"
#include "mle/rce.h"
#include "mle/tag.h"
#include "net/channel.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "net/handshake.h"
#include "net/resilient.h"
#include "net/secure_channel.h"
#include "runtime/adaptive.h"
#include "runtime/dedup_runtime.h"
#include "runtime/deduplicable.h"
#include "runtime/stream_session.h"
#include "serialize/function_descriptor.h"
#include "serialize/rendezvous.h"
#include "serialize/serde.h"
#include "sgx/enclave.h"
#include "sgx/trusted_library.h"
#include "store/access_control.h"
#include "store/inproc_cluster.h"
#include "store/master_sync.h"
#include "store/replication.h"
#include "store/result_store.h"
#include "store/store_session.h"
