#include "runtime/stream_session.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.h"
#include "serialize/codec.h"

namespace speed::runtime {

using serialize::BatchOp;
using serialize::BatchReply;
using serialize::GetRequest;
using serialize::GetResponse;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;

Bytes StreamHandle::serialize() const {
  serialize::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(kind));
  enc.raw(ByteView(tag.data(), tag.size()));
  // Deliberate escape: the handle IS the capability to read the stream, and
  // it leaves the enclave to whoever stored the data. Key + inline manifest
  // (which holds chunk keys) travel together with the same trust.
  enc.var_bytes(key.reveal_for(secret::Purpose::of("stream_handle_release")));
  enc.u64(total_bytes);
  enc.var_bytes(manifest);
  return enc.take();
}

StreamHandle StreamHandle::deserialize(ByteView data) {
  serialize::Decoder dec(data);
  StreamHandle h;
  const std::uint8_t kind = dec.u8();
  if (kind > static_cast<std::uint8_t>(Kind::kInlineManifest)) {
    throw SerializationError("StreamHandle: unknown kind");
  }
  h.kind = static_cast<Kind>(kind);
  const ByteView t = dec.raw(h.tag.size());
  std::copy(t.begin(), t.end(), h.tag.begin());
  h.key = secret::Buffer::absorb(dec.var_bytes());
  h.total_bytes = dec.u64();
  h.manifest = dec.var_bytes();
  dec.expect_done();
  return h;
}

StreamSession::StreamSession(DedupRuntime& rt, mle::FunctionIdentity fn,
                             StreamConfig config)
    : rt_(rt), fn_(std::move(fn)), config_(config), chunker_(config.chunker) {
  if (config_.window == 0) config_.window = 1;
}

GetRequest StreamSession::make_get(const serialize::Tag& tag) const {
  GetRequest get;
  get.tag = tag;
  get.requester = rt_.enclave().measurement();
  return get;
}

StreamHandle StreamSession::put(ByteView data) {
  return rt_.enclave().ecall([&] { return put_trusted(data); });
}

Bytes StreamSession::get(const StreamHandle& handle) {
  return rt_.enclave().ecall([&] { return get_trusted(handle); });
}

StreamHandle StreamSession::put_trusted(ByteView data) {
  rt_.metrics_.stream_puts.inc();
  crypto::Drbg drbg(rt_.enclave().random_bytes(32));
  const chunk::ChunkPlan plan = chunk::ChunkPlan::build(fn_, data, chunker_);
  if (plan.whole_call()) return put_whole_call(plan, drbg);

  const bool fail_open = rt_.config_.fail_open;
  bool degraded = false;

  // Recover the per-entry key from a stored entry and prove it decrypts
  // under the expected tag. Returns the key, or nullopt for a missing,
  // foreign, or poisoned entry (the GCM ⊥ of Fig. 3).
  const auto adopt_entry =
      [](const mle::ComputationContext& ctx, const serialize::Tag& tag,
         const GetResponse& resp) -> std::optional<secret::Buffer> {
    if (!resp.found) return std::nullopt;
    if (resp.entry.wrapped_key.size() != mle::kResultKeySize) {
      return std::nullopt;
    }
    secret::Buffer key = mle::ResultCipher::recover_key(
        ctx, resp.entry.challenge, resp.entry.wrapped_key);
    if (!mle::ResultCipher::decrypt_result(tag, key, resp.entry.result_ct)
             .has_value()) {
      return std::nullopt;
    }
    return key;
  };

  // Fast path: some client (maybe us) already stored this exact stream —
  // one GET dedups the whole put.
  bool stream_tag_taken = false;  // an entry we cannot use squats on the tag
  {
    std::vector<BatchReply> replies =
        rt_.stream_ops({make_get(plan.stream_tag())});
    if (const auto* get_resp = std::get_if<GetResponse>(&replies.front())) {
      if (get_resp->found) {
        auto key =
            adopt_entry(plan.stream_context(), plan.stream_tag(), *get_resp);
        if (key.has_value()) {
          rt_.metrics_.stream_whole_hits.inc();
          rt_.metrics_.stream_bytes_deduped.inc(data.size());
          StreamHandle handle;
          handle.kind = StreamHandle::Kind::kStream;
          handle.tag = plan.stream_tag();
          handle.key = std::move(*key);
          handle.total_bytes = data.size();
          return handle;
        }
        stream_tag_taken = true;
      }
    }
    // An error reply here is not yet fatal: the chunk walk below will hit
    // the same failure per window and degrade chunk-by-chunk.
  }

  rt_.metrics_.stream_chunks.inc(plan.chunk_count());

  chunk::Manifest manifest;
  manifest.total_bytes = data.size();
  manifest.entries.resize(plan.chunk_count());

  // A chunk that cannot live in the store (PUT refused, poisoned tag, store
  // down) rides inside the manifest instead; get() stays correct.
  const auto inline_chunk = [&](std::size_t i) {
    chunk::ManifestEntry& e = manifest.entries[i];
    e.inlined = true;
    const ByteView bytes = plan.chunk_bytes(i);
    e.inline_bytes.assign(bytes.begin(), bytes.end());
    rt_.metrics_.stream_inline_chunks.inc();
  };
  const auto ref_chunk = [&](std::size_t i, secret::Buffer key) {
    chunk::ManifestEntry& e = manifest.entries[i];
    e.tag = plan.chunk_tag(i);
    e.size = static_cast<std::uint32_t>(plan.chunk(i).size);
    e.key = std::move(key);
  };

  for (std::size_t base = 0; base < plan.chunk_count();
       base += config_.window) {
    const std::size_t end =
        std::min(base + config_.window, plan.chunk_count());

    // One batched GET frame for the window (per-node sub-batches in cluster
    // mode: each chunk tag routes to its own primary).
    std::vector<BatchOp> gets;
    gets.reserve(end - base);
    for (std::size_t i = base; i < end; ++i) {
      gets.emplace_back(make_get(plan.chunk_tag(i)));
    }
    const std::vector<BatchReply> replies = rt_.stream_ops(std::move(gets));

    std::vector<std::size_t> misses;
    for (std::size_t i = base; i < end; ++i) {
      const BatchReply& reply = replies[i - base];
      const auto* get_resp = std::get_if<GetResponse>(&reply);
      if (get_resp == nullptr) {
        if (!fail_open) {
          throw net::StoreUnavailableError("stream put: chunk GET failed");
        }
        degraded = true;
        inline_chunk(i);
        continue;
      }
      if (get_resp->found) {
        auto key =
            adopt_entry(plan.chunk_context(i), plan.chunk_tag(i), *get_resp);
        if (key.has_value()) {
          rt_.metrics_.stream_chunk_hits.inc();
          rt_.metrics_.stream_bytes_deduped.inc(plan.chunk(i).size);
          ref_chunk(i, std::move(*key));
        } else {
          inline_chunk(i);  // squatted tag: first write wins, we cannot reuse
        }
        continue;
      }
      misses.push_back(i);
    }

    if (misses.empty()) continue;

    // One batched PUT frame for the window's misses. Synchronous by design:
    // put() returns only once every referenced chunk is durable, and a
    // refusal can still demote the chunk to inline.
    std::vector<BatchOp> puts;
    std::vector<secret::Buffer> keys;  // parallel to misses
    puts.reserve(misses.size());
    keys.reserve(misses.size());
    for (const std::size_t i : misses) {
      auto wk = mle::ResultCipher::generate_key(plan.chunk_context(i), drbg);
      PutRequest put;
      put.tag = plan.chunk_tag(i);
      put.requester = rt_.enclave().measurement();
      put.entry.wrapped_key = std::move(wk.wrapped_key);
      put.entry.result_ct = mle::ResultCipher::encrypt_result(
          plan.chunk_tag(i), wk.key, plan.chunk_bytes(i), drbg);
      put.entry.challenge = std::move(wk.challenge)
                                .release_for(secret::Purpose::of(
                                    "rce_challenge_publish"));
      puts.emplace_back(std::move(put));
      keys.push_back(std::move(wk.key));
    }
    const std::vector<BatchReply> put_replies =
        rt_.stream_ops(std::move(puts));

    std::vector<std::size_t> races;  // kAlreadyPresent: a concurrent writer won
    for (std::size_t j = 0; j < misses.size(); ++j) {
      const std::size_t i = misses[j];
      const auto* put_resp = std::get_if<PutResponse>(&put_replies[j]);
      if (put_resp == nullptr) {
        if (!fail_open) {
          throw net::StoreUnavailableError("stream put: chunk PUT failed");
        }
        degraded = true;
        inline_chunk(i);
        continue;
      }
      rt_.metrics_.puts_sent.inc();
      if (put_resp->status == PutStatus::kStored) {
        ref_chunk(i, std::move(keys[j]));
      } else if (put_resp->status == PutStatus::kAlreadyPresent) {
        races.push_back(i);  // the stored entry wraps the winner's key, not ours
      } else {
        rt_.metrics_.puts_rejected.inc();
        inline_chunk(i);  // quota or policy refusal
      }
    }

    if (races.empty()) continue;
    // Re-GET raced tags and adopt the winner's entry (same content, so the
    // secondary key recovers their k). A failure here inlines the chunk.
    std::vector<BatchOp> regets;
    regets.reserve(races.size());
    for (const std::size_t i : races) {
      regets.emplace_back(make_get(plan.chunk_tag(i)));
    }
    const std::vector<BatchReply> reget_replies =
        rt_.stream_ops(std::move(regets));
    for (std::size_t j = 0; j < races.size(); ++j) {
      const std::size_t i = races[j];
      const auto* get_resp = std::get_if<GetResponse>(&reget_replies[j]);
      std::optional<secret::Buffer> key;
      if (get_resp != nullptr) {
        key = adopt_entry(plan.chunk_context(i), plan.chunk_tag(i), *get_resp);
      }
      if (key.has_value()) {
        rt_.metrics_.stream_chunk_hits.inc();
        rt_.metrics_.stream_bytes_deduped.inc(plan.chunk(i).size);
        ref_chunk(i, std::move(*key));
      } else {
        if (get_resp == nullptr) degraded = true;
        inline_chunk(i);
      }
    }
  }

  const Bytes manifest_plain = chunk::encode_manifest(manifest);
  rt_.metrics_.stream_manifest_bytes.record(manifest_plain.size());

  StreamHandle handle;
  handle.kind = StreamHandle::Kind::kStream;
  handle.tag = plan.stream_tag();
  handle.total_bytes = data.size();

  // Last resort: the manifest rides inside the handle. The chunk entries
  // that did land in the store are still referenced and still dedup.
  const auto inline_manifest = [&] {
    handle.kind = StreamHandle::Kind::kInlineManifest;
    handle.key = secret::Buffer();
    handle.manifest = manifest_plain;
  };

  if (stream_tag_taken) {
    inline_manifest();  // squatted stream tag: first write wins
  } else {
    auto wk = mle::ResultCipher::generate_key(plan.stream_context(), drbg);
    PutRequest put;
    put.tag = plan.stream_tag();
    put.requester = rt_.enclave().measurement();
    put.entry.wrapped_key = std::move(wk.wrapped_key);
    put.entry.result_ct = mle::ResultCipher::encrypt_result(
        plan.stream_tag(), wk.key, manifest_plain, drbg);
    put.entry.challenge = std::move(wk.challenge)
                              .release_for(secret::Purpose::of(
                                  "rce_challenge_publish"));
    std::vector<BatchReply> replies = rt_.stream_ops({std::move(put)});
    const auto* put_resp = std::get_if<PutResponse>(&replies.front());
    if (put_resp == nullptr) {
      if (!fail_open) {
        throw net::StoreUnavailableError("stream put: manifest PUT failed");
      }
      degraded = true;
      inline_manifest();
    } else if (put_resp->status == PutStatus::kStored) {
      rt_.metrics_.puts_sent.inc();
      handle.key = std::move(wk.key);
    } else if (put_resp->status == PutStatus::kAlreadyPresent) {
      // Raced manifest writer: adopt theirs (same stream, same content).
      rt_.metrics_.puts_sent.inc();
      std::vector<BatchReply> reget =
          rt_.stream_ops({make_get(plan.stream_tag())});
      const auto* get_resp = std::get_if<GetResponse>(&reget.front());
      std::optional<secret::Buffer> key;
      if (get_resp != nullptr) {
        key = adopt_entry(plan.stream_context(), plan.stream_tag(), *get_resp);
      }
      if (key.has_value()) {
        handle.key = std::move(*key);
      } else {
        if (get_resp == nullptr) degraded = true;
        inline_manifest();
      }
    } else {
      rt_.metrics_.puts_sent.inc();
      rt_.metrics_.puts_rejected.inc();
      inline_manifest();
    }
  }

  if (degraded) rt_.metrics_.stream_degraded.inc();
  return handle;
}

StreamHandle StreamSession::put_whole_call(const chunk::ChunkPlan& plan,
                                           crypto::Drbg& drbg) {
  // Single-chunk degrade: exactly the per-call protocol — whole-call domain
  // context, one GET, one plain PUT on a miss, no manifest. The wire frames
  // are the ones DedupRuntime::execute would produce for this input.
  const mle::ComputationContext& ctx = plan.stream_context();  // Domain::kCall
  const serialize::Tag& tag = plan.stream_tag();
  const bool fail_open = rt_.config_.fail_open;

  StreamHandle handle;
  handle.kind = StreamHandle::Kind::kWholeCall;
  handle.tag = tag;
  handle.total_bytes = plan.total_bytes();

  // Store unusable for this input: the handle carries a one-entry inline
  // manifest, keeping get() self-contained.
  const auto inline_degrade = [&] {
    chunk::Manifest m;
    m.total_bytes = plan.total_bytes();
    chunk::ManifestEntry e;
    e.inlined = true;
    const ByteView input = plan.input();
    e.inline_bytes.assign(input.begin(), input.end());
    m.entries.push_back(std::move(e));
    handle.kind = StreamHandle::Kind::kInlineManifest;
    handle.key = secret::Buffer();
    handle.manifest = chunk::encode_manifest(m);
    rt_.metrics_.stream_inline_chunks.inc();
  };

  const auto adopt = [&](const GetResponse& resp) -> std::optional<secret::Buffer> {
    if (!resp.found || resp.entry.wrapped_key.size() != mle::kResultKeySize) {
      return std::nullopt;
    }
    secret::Buffer key = mle::ResultCipher::recover_key(
        ctx, resp.entry.challenge, resp.entry.wrapped_key);
    if (!mle::ResultCipher::decrypt_result(tag, key, resp.entry.result_ct)
             .has_value()) {
      return std::nullopt;
    }
    return key;
  };

  std::vector<BatchReply> replies = rt_.stream_ops({make_get(tag)});
  const auto* get_resp = std::get_if<GetResponse>(&replies.front());
  if (get_resp == nullptr) {
    if (!fail_open) {
      throw net::StoreUnavailableError("stream put: GET failed");
    }
    rt_.metrics_.stream_degraded.inc();
    inline_degrade();
    return handle;
  }
  if (get_resp->found) {
    auto key = adopt(*get_resp);
    if (key.has_value()) {
      rt_.metrics_.stream_whole_hits.inc();
      rt_.metrics_.stream_bytes_deduped.inc(plan.total_bytes());
      handle.key = std::move(*key);
      return handle;
    }
    inline_degrade();  // poisoned/foreign entry squats on the tag
    return handle;
  }

  // Miss: protect + synchronous PUT (put() returns with the data durable).
  auto wk = mle::ResultCipher::generate_key(ctx, drbg);
  PutRequest put;
  put.tag = tag;
  put.requester = rt_.enclave().measurement();
  put.entry.wrapped_key = std::move(wk.wrapped_key);
  put.entry.result_ct =
      mle::ResultCipher::encrypt_result(tag, wk.key, plan.input(), drbg);
  put.entry.challenge = std::move(wk.challenge)
                            .release_for(secret::Purpose::of(
                                "rce_challenge_publish"));
  std::vector<BatchReply> put_replies = rt_.stream_ops({std::move(put)});
  const auto* put_resp = std::get_if<PutResponse>(&put_replies.front());
  if (put_resp == nullptr) {
    if (!fail_open) {
      throw net::StoreUnavailableError("stream put: PUT failed");
    }
    rt_.metrics_.stream_degraded.inc();
    inline_degrade();
    return handle;
  }
  rt_.metrics_.puts_sent.inc();
  if (put_resp->status == PutStatus::kStored) {
    handle.key = std::move(wk.key);
    return handle;
  }
  if (put_resp->status == PutStatus::kAlreadyPresent) {
    std::vector<BatchReply> reget = rt_.stream_ops({make_get(tag)});
    const auto* reget_resp = std::get_if<GetResponse>(&reget.front());
    std::optional<secret::Buffer> key;
    if (reget_resp != nullptr) key = adopt(*reget_resp);
    if (key.has_value()) {
      handle.key = std::move(*key);
      return handle;
    }
    if (reget_resp == nullptr) rt_.metrics_.stream_degraded.inc();
    inline_degrade();
    return handle;
  }
  rt_.metrics_.puts_rejected.inc();
  inline_degrade();
  return handle;
}

Bytes StreamSession::get_trusted(const StreamHandle& handle) {
  rt_.metrics_.stream_gets.inc();
  switch (handle.kind) {
    case StreamHandle::Kind::kInlineManifest:
      return assemble(chunk::decode_manifest(handle.manifest));

    case StreamHandle::Kind::kWholeCall: {
      if (handle.key.size() != mle::kResultKeySize) {
        throw ProtocolError("stream get: malformed handle key");
      }
      std::vector<BatchReply> replies = rt_.stream_ops({make_get(handle.tag)});
      const auto* get_resp = std::get_if<GetResponse>(&replies.front());
      if (get_resp == nullptr || !get_resp->found) {
        throw net::StoreUnavailableError("stream get: entry unavailable");
      }
      auto plain = mle::ResultCipher::decrypt_result(handle.tag, handle.key,
                                                     get_resp->entry.result_ct);
      if (!plain.has_value()) {
        throw net::StoreUnavailableError(
            "stream get: entry failed authentication");
      }
      Bytes out = std::move(*plain).release_for(
          secret::Purpose::of("stream_result_release"));
      if (out.size() != handle.total_bytes) {
        throw net::StoreUnavailableError("stream get: size mismatch");
      }
      return out;
    }

    case StreamHandle::Kind::kStream: {
      if (handle.key.size() != mle::kResultKeySize) {
        throw ProtocolError("stream get: malformed handle key");
      }
      std::vector<BatchReply> replies = rt_.stream_ops({make_get(handle.tag)});
      const auto* get_resp = std::get_if<GetResponse>(&replies.front());
      if (get_resp == nullptr || !get_resp->found) {
        throw net::StoreUnavailableError("stream get: manifest unavailable");
      }
      auto plain = mle::ResultCipher::decrypt_result(handle.tag, handle.key,
                                                     get_resp->entry.result_ct);
      if (!plain.has_value()) {
        throw net::StoreUnavailableError(
            "stream get: manifest failed authentication");
      }
      // The manifest plaintext holds chunk keys; it is parsed inside the
      // enclave and never leaves it.
      const chunk::Manifest manifest = chunk::decode_manifest(
          plain->reveal_for(secret::Purpose::of("stream_manifest_parse")));
      Bytes out = assemble(manifest);
      if (out.size() != handle.total_bytes) {
        throw net::StoreUnavailableError("stream get: size mismatch");
      }
      return out;
    }
  }
  throw ProtocolError("stream get: unknown handle kind");
}

Bytes StreamSession::assemble(const chunk::Manifest& manifest) {
  std::vector<std::size_t> refs;
  refs.reserve(manifest.entries.size());
  for (std::size_t i = 0; i < manifest.entries.size(); ++i) {
    if (!manifest.entries[i].inlined) refs.push_back(i);
  }

  std::vector<Bytes> plain(manifest.entries.size());
  for (std::size_t base = 0; base < refs.size(); base += config_.window) {
    const std::size_t end = std::min(base + config_.window, refs.size());
    std::vector<BatchOp> gets;
    gets.reserve(end - base);
    for (std::size_t j = base; j < end; ++j) {
      gets.emplace_back(make_get(manifest.entries[refs[j]].tag));
    }
    const std::vector<BatchReply> replies = rt_.stream_ops(std::move(gets));
    for (std::size_t j = base; j < end; ++j) {
      const std::size_t i = refs[j];
      const chunk::ManifestEntry& e = manifest.entries[i];
      const auto* get_resp = std::get_if<GetResponse>(&replies[j - base]);
      if (get_resp == nullptr || !get_resp->found) {
        throw net::StoreUnavailableError("stream get: chunk unavailable");
      }
      if (e.key.size() != mle::kResultKeySize) {
        throw SerializationError("stream get: malformed chunk key");
      }
      auto pt = mle::ResultCipher::decrypt_result(e.tag, e.key,
                                                  get_resp->entry.result_ct);
      if (!pt.has_value()) {
        throw net::StoreUnavailableError(
            "stream get: chunk failed authentication");
      }
      plain[i] = std::move(*pt).release_for(
          secret::Purpose::of("stream_result_release"));
      if (plain[i].size() != e.size) {
        throw net::StoreUnavailableError("stream get: chunk size mismatch");
      }
    }
  }

  Bytes out;
  out.reserve(manifest.total_bytes);
  for (std::size_t i = 0; i < manifest.entries.size(); ++i) {
    const chunk::ManifestEntry& e = manifest.entries[i];
    if (e.inlined) {
      append(out, e.inline_bytes);
    } else {
      append(out, plain[i]);
    }
  }
  if (out.size() != manifest.total_bytes) {
    throw net::StoreUnavailableError("stream get: stream size mismatch");
  }
  return out;
}

}  // namespace speed::runtime
