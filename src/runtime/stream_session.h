// StreamSession — chunk-granularity dedup inside the data path.
//
// The per-call API (DedupRuntime::execute) derives one tag per call, so a
// one-byte edit to a large input forfeits all reuse. A StreamSession splits
// the input with a content-defined chunker (chunk/chunker.h), dedups every
// chunk as its own RCE-protected store entry, and ties the chunk list
// together with a sealed *manifest* stored under the whole-stream tag
// (chunk/manifest.h) — the encrypt-then-dedup storage data path of Harnik
// et al. run through SPEED's computation-dedup machinery.
//
//   put(data) -> StreamHandle:
//     1. Build a ChunkPlan (one pass: per-chunk tags in Domain::kChunk, the
//        whole-stream tag in Domain::kStream).
//     2. Fast path: GET the stream tag. A recoverable manifest means some
//        client already stored this exact stream — one round trip, done.
//     3. Otherwise walk the plan in windows of `StreamConfig::window`
//        chunks: one batched GET frame per window (PR 7 micro-batcher; in
//        cluster mode each chunk routes to its own node), then one batched
//        PUT frame for the window's misses. Hits contribute their recovered
//        per-chunk key to the manifest; misses contribute the fresh key
//        that protected them.
//     4. Store the manifest under the stream tag; hand back a StreamHandle
//        carrying (stream tag, manifest key).
//
//   get(handle) -> bytes: fetch + decrypt the manifest with the handle key,
//     then fetch chunk entries in batched windows and decrypt each with its
//     manifest key. No knowledge of the original input is needed — the
//     handle is the capability.
//
// Degradation never loses data. A chunk whose PUT is refused (quota,
// poisoned tag, store down under fail_open) is *inlined* into the manifest;
// if the manifest itself cannot be stored, the manifest is inlined into the
// handle. Worst case — store fully unreachable — the handle degrades to
// carrying the whole stream, and get() still returns the exact bytes.
//
// Inputs that chunk to a single chunk are not streams: put() follows the
// exact whole-call path (Domain::kCall context, plain GET + PUT, no
// manifest), so small-input workloads pay zero streaming overhead.
#pragma once

#include <cstdint>

#include "chunk/chunk_plan.h"
#include "chunk/chunker.h"
#include "chunk/manifest.h"
#include "mle/tag.h"
#include "runtime/dedup_runtime.h"

namespace speed::runtime {

struct StreamConfig {
  chunk::ChunkerConfig chunker;

  /// Chunk ops coalesced per batch frame: each window of the plan issues
  /// one GET frame (and one PUT frame if it had misses). Bounded by the
  /// store's max_batch_entries (4096) when batching is negotiated.
  std::size_t window = 64;
};

/// The client capability for one stored stream. Holding the handle is
/// holding the data: the key decrypts the manifest, the manifest holds the
/// chunk keys. serialize() is the audited escape that turns it into app
/// bytes (e.g. for the C API or an index kept by a storage service).
struct StreamHandle {
  enum class Kind : std::uint8_t {
    kWholeCall,       ///< single chunk stored as a plain call entry
    kStream,          ///< manifest stored under `tag`; `key` decrypts it
    kInlineManifest,  ///< manifest rides in the handle (degraded put)
  };

  Kind kind = Kind::kWholeCall;
  serialize::Tag tag{};        ///< call tag (kWholeCall) / stream tag (kStream)
  secret::Buffer key;          ///< result key / manifest key
  std::uint64_t total_bytes = 0;
  Bytes manifest;              ///< kInlineManifest: encoded manifest plaintext

  Bytes serialize() const;
  static StreamHandle deserialize(ByteView data);
};

class StreamSession {
 public:
  /// `fn` names the stream namespace: chunk tags bind (fn, chunk bytes), so
  /// distinct services (or versions) never cross-dedup. Resolve it via
  /// DedupRuntime::resolve like any marked function.
  StreamSession(DedupRuntime& rt, mle::FunctionIdentity fn,
                StreamConfig config = {});

  /// Store `data`; returns the capability for get(). Runs inside the app
  /// enclave (one ECALL for the whole stream). Throws StoreUnavailableError
  /// only when fail_open is disabled; otherwise degrades per the scheme
  /// above and always returns a working handle.
  StreamHandle put(ByteView data);

  /// Retrieve the exact bytes of a stored stream. Throws
  /// StoreUnavailableError if a referenced entry is missing or fails
  /// authentication (a misbehaving store can deny service, never corrupt).
  Bytes get(const StreamHandle& handle);

  const StreamConfig& config() const { return config_; }

 private:
  StreamHandle put_trusted(ByteView data);
  StreamHandle put_whole_call(const chunk::ChunkPlan& plan, crypto::Drbg& drbg);
  Bytes get_trusted(const StreamHandle& handle);
  Bytes assemble(const chunk::Manifest& manifest);

  serialize::GetRequest make_get(const serialize::Tag& tag) const;

  DedupRuntime& rt_;
  mle::FunctionIdentity fn_;
  StreamConfig config_;
  chunk::Chunker chunker_;
};

}  // namespace speed::runtime
