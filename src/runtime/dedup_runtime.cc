#include "runtime/dedup_runtime.h"

#include <chrono>

#include "common/error.h"

namespace speed::runtime {

using serialize::GetRequest;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;

namespace {

/// Exported label per CallOutcome, in enum order. Literals, not runtime
/// strings: the label whitelist (telemetry/label.h) is compile-time.
constexpr std::array<telemetry::LabelValue,
                     static_cast<std::size_t>(telemetry::CallOutcome::kCount)>
    kOutcomeLabels{
        telemetry::LabelValue::lit("local_hit"),
        telemetry::LabelValue::lit("store_hit"),
        telemetry::LabelValue::lit("miss"),
        telemetry::LabelValue::lit("failed_recovery"),
        telemetry::LabelValue::lit("degraded"),
    };

}  // namespace

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave,
                           const sgx::Measurement& store_measurement,
                           std::unique_ptr<net::Transport> transport,
                           RuntimeConfig config)
    : DedupRuntime(app_enclave,
                   net::derive_channel_key(app_enclave, store_measurement),
                   std::move(transport), std::move(config)) {}

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave, Bytes session_key,
                           std::unique_ptr<net::Transport> transport,
                           RuntimeConfig config)
    : DedupRuntime(app_enclave, secret::Buffer::absorb(std::move(session_key)),
                   std::move(transport), std::move(config)) {}

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave,
                           secret::Buffer session_key,
                           std::unique_ptr<net::Transport> transport,
                           RuntimeConfig config)
    : enclave_(app_enclave),
      transport_(std::move(transport)),
      config_(std::move(config)),
      channel_(std::in_place, std::move(session_key), /*is_initiator=*/true),
      cache_charge_(app_enclave, 0) {
  if (transport_ == nullptr) {
    throw ProtocolError("DedupRuntime: transport is required");
  }
  // A recovering transport (net/resilient.h) re-runs the attested handshake
  // after a reconnect; stage the fresh key for the next round trip.
  transport_->set_rekey_callback([this](secret::Buffer key) {
    std::lock_guard<std::mutex> lock(rekey_mu_);
    pending_rekey_ = std::move(key);
  });
  init_common();
}

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave,
                           std::shared_ptr<net::ClusterTransport> cluster,
                           RuntimeConfig config)
    : enclave_(app_enclave),
      cluster_(std::move(cluster)),
      config_(std::move(config)),
      cache_charge_(app_enclave, 0) {
  if (cluster_ == nullptr) {
    throw ProtocolError("DedupRuntime: cluster transport is required");
  }
  // No single-link channel/rekey state: every cluster link carries its own
  // attested channel and reconnect machinery (net/cluster.h).
  init_common();
}

void DedupRuntime::init_common() {
  if (config_.scheme == RuntimeConfig::Scheme::kBasicSingleKey) {
    // Move the key into the cipher's secret domain; no plain copy stays
    // behind in the stored config.
    basic_cipher_.emplace(std::move(config_.system_key));
  }
  if (config_.async_put) {
    put_thread_ = std::thread([this] { put_worker(); });
  }
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        constexpr auto kOutcome = telemetry::LabelKey::of("outcome");
        sink.counter("speed_runtime_calls_total", "Marked calls executed", {},
                     metrics_.calls.value());
        const std::array<std::uint64_t, 5> outcome_counts{
            metrics_.local_hits.value(),       metrics_.hits.value(),
            metrics_.misses.value(),           metrics_.failed_recoveries.value(),
            metrics_.degraded_calls.value()};
        for (std::size_t i = 0; i < outcome_counts.size(); ++i) {
          sink.counter("speed_runtime_outcomes_total",
                       "Marked calls by how they were served",
                       {{kOutcome, kOutcomeLabels[i]}}, outcome_counts[i]);
          sink.histogram("speed_runtime_call_ns",
                         "Whole-call latency of marked calls by outcome",
                         {{kOutcome, kOutcomeLabels[i]}}, metrics_.call_ns[i]);
        }
        sink.counter("speed_runtime_puts_sent_total",
                     "PUT round trips completed", {},
                     metrics_.puts_sent.value());
        sink.counter("speed_runtime_puts_rejected_total",
                     "PUTs refused by the store or failed in flight", {},
                     metrics_.puts_rejected.value());
        sink.counter("speed_runtime_puts_dropped_total",
                     "PUTs evicted from a full async queue", {},
                     metrics_.puts_dropped.value());
        sink.histogram("speed_runtime_round_trip_ns",
                       "Secure-channel round trips issued by the runtime", {},
                       metrics_.round_trip_ns);
        {
          std::lock_guard<std::mutex> lock(cache_mu_);
          sink.gauge("speed_runtime_cache_bytes",
                     "In-enclave hot-result cache footprint", {},
                     static_cast<std::int64_t>(cache_bytes_));
          sink.gauge("speed_runtime_cache_entries",
                     "In-enclave hot-result cache entries", {},
                     static_cast<std::int64_t>(cache_.size()));
        }
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          sink.gauge("speed_runtime_put_queue_depth",
                     "Asynchronous PUTs waiting to ship", {},
                     static_cast<std::int64_t>(put_queue_.size()));
        }
      });
}

DedupRuntime::~DedupRuntime() {
  if (put_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      shutting_down_ = true;
    }
    queue_cv_.notify_all();
    put_thread_.join();
  }
}

mle::FunctionIdentity DedupRuntime::resolve(
    const serialize::FunctionDescriptor& desc) const {
  const auto measurement = libraries_.lookup(desc.family, desc.version);
  if (!measurement.has_value()) {
    throw EnclaveError("DedupRuntime: application does not own trusted library " +
                       desc.family + "/" + desc.version);
  }
  return mle::FunctionIdentity{desc, *measurement};
}

void DedupRuntime::install_rekey_locked() {
  std::lock_guard<std::mutex> lock(rekey_mu_);
  if (!pending_rekey_.has_value()) return;
  channel_.emplace(std::move(*pending_rekey_), /*is_initiator=*/true);
  pending_rekey_.reset();
  channel_poisoned_ = false;
}

Message DedupRuntime::secure_round_trip(const Message& request) {
  if (cluster_ != nullptr) {
    // Cluster mode: routing, per-node channels, failover, and OCALLs all
    // live in the ClusterTransport; it throws StoreUnavailableError when no
    // node can serve, which the fail-open GET path degrades to compute.
    const Stopwatch rtt_sw;
    Message response = cluster_->round_trip_message(request);
    metrics_.round_trip_ns.record(rtt_sw.elapsed_ns());
    return response;
  }
  std::lock_guard<std::mutex> lock(channel_mu_);
  install_rekey_locked();
  if (channel_poisoned_) {
    // The old key must never wrap another frame. Ask the transport for a
    // fresh connection + key (ResilientTransport re-runs the handshake and
    // stages the key through the rekey callback; plain transports cannot).
    enclave_.ocall([&] { return transport_->recover(); });
    install_rekey_locked();
    if (channel_poisoned_) {
      throw net::StoreUnavailableError(
          "DedupRuntime: secure channel poisoned and transport cannot rekey");
    }
  }
  // Wrap inside the enclave, cross to the host to hit the transport (the
  // prototype's customized OCALL carrying the request), unwrap back inside.
  const Bytes frame = channel_->wrap(serialize::encode_message(request));
  Bytes response_frame;
  const Stopwatch rtt_sw;
  try {
    response_frame =
        enclave_.ocall([&] { return transport_->round_trip(frame); });
    metrics_.round_trip_ns.record(rtt_sw.elapsed_ns());
  } catch (...) {
    // Request possibly consumed, response never seen: sequence numbers are
    // out of sync with the store's session for good.
    channel_poisoned_ = true;
    throw;
  }
  const auto plain = channel_->unwrap(response_frame);
  if (!plain.has_value()) {
    // Tampered/garbled response (or a response under a stale server
    // session). Either way the channel state is no longer trustworthy.
    channel_poisoned_ = true;
    throw ProtocolError("DedupRuntime: store response failed channel check");
  }
  return serialize::decode_message(*plain);
}

DedupRuntime::Outcome DedupRuntime::execute(
    const mle::FunctionIdentity& fn, ByteView input,
    const std::function<Bytes()>& compute) {
  return enclave_.ecall([&]() -> Outcome {
    metrics_.calls.inc();

    telemetry::TraceRing* ring = nullptr;
    if (config_.tracing) {
      ring = config_.trace_ring != nullptr ? config_.trace_ring
                                           : &telemetry::TraceRing::global();
    }
    telemetry::TraceSpan span(ring);
    telemetry::CallOutcome outcome = telemetry::CallOutcome::kMiss;
    std::uint64_t result_bytes = 0;
    const Stopwatch call_sw;
    // Runs on every exit path, before `span` pushes into the ring.
    struct Finish {
      Metrics& m;
      telemetry::TraceSpan& span;
      telemetry::CallOutcome& outcome;
      std::uint64_t& result_bytes;
      const Stopwatch& sw;
      ~Finish() {
        span.set_outcome(outcome);
        span.set_result_bytes(result_bytes);
        m.call_ns[static_cast<std::size_t>(outcome)].record(sw.elapsed_ns());
      }
    } finish{metrics_, span, outcome, result_bytes, call_sw};

    // Algorithm 1/2 line 1-2: derive the tag, query the store. The context
    // absorbs (func, m) once; tag and (on the RCE paths below) the secondary
    // key h fork off the shared SHA-256 midstate.
    std::optional<mle::ComputationContext> ctx_storage;
    std::optional<mle::Tag> tag_storage;
    {
      const telemetry::TraceSpan::StageTimer t(span,
                                               telemetry::Stage::kTagDerive);
      ctx_storage.emplace(fn, input);
      tag_storage.emplace(ctx_storage->tag());
    }
    const mle::ComputationContext& ctx = *ctx_storage;
    const mle::Tag& tag = *tag_storage;

    // Hot path: a result this runtime already saw is served straight from
    // the in-enclave cache — no round trip, no decryption.
    if (config_.local_cache) {
      std::optional<Bytes> cached;
      {
        const telemetry::TraceSpan::StageTimer t(
            span, telemetry::Stage::kCacheLookup);
        cached = cache_lookup(tag);
      }
      if (cached.has_value()) {
        metrics_.local_hits.inc();
        outcome = telemetry::CallOutcome::kLocalHit;
        result_bytes = cached->size();
        return Outcome{std::move(*cached), true};
      }
    }

    GetRequest get;
    get.tag = tag;
    get.requester = enclave_.measurement();

    // Fail-open: the store is an accelerator, not a dependency. Any
    // transport/channel/protocol failure on the GET path degrades this call
    // to a local compute; the breaker/reconnect machinery (if present)
    // restores service for later calls.
    Message response;
    const GetResponse* get_resp = nullptr;
    {
      const telemetry::TraceSpan::StageTimer t(span,
                                               telemetry::Stage::kStoreGet);
      if (config_.fail_open) {
        try {
          response = secure_round_trip(get);
          get_resp = std::get_if<GetResponse>(&response);
        } catch (const Error&) {
          get_resp = nullptr;
        }
      } else {
        response = secure_round_trip(get);
        get_resp = std::get_if<GetResponse>(&response);
        if (get_resp == nullptr) {
          throw ProtocolError("DedupRuntime: expected GET_RESPONSE");
        }
      }
    }
    if (get_resp == nullptr) {
      // Store unreachable or talking nonsense: compute locally and skip the
      // PUT (we cannot know whether the entry exists, and the connection is
      // being re-established anyway).
      metrics_.degraded_calls.inc();
      outcome = telemetry::CallOutcome::kDegraded;
      Bytes local;
      {
        const telemetry::TraceSpan::StageTimer t(span,
                                                 telemetry::Stage::kCompute);
        local = compute();
      }
      // Still worth caching: repeats of this call ride out the outage
      // without recomputing (or waiting on the broken transport).
      if (config_.local_cache) cache_insert(tag, local);
      result_bytes = local.size();
      return Outcome{std::move(local), false};
    }

    if (get_resp->found) {
      // Algorithm 2 lines 4-6 + Fig. 3 verification.
      std::optional<secret::Buffer> result;
      {
        const telemetry::TraceSpan::StageTimer t(span,
                                                 telemetry::Stage::kRecover);
        if (basic_cipher_.has_value()) {
          result = basic_cipher_->recover(fn, input, get_resp->entry);
        } else {
          result = mle::ResultCipher::recover(ctx, get_resp->entry);
        }
      }
      if (result.has_value()) {
        // Deliberate protocol step: the recovered plaintext leaves the
        // secret domain exactly here, handed back to the application that
        // proved it could have computed it (Fig. 3). Move, not copy — the
        // store-hit hot path stays copy-free.
        Bytes plain = std::move(*result).release_for(
            secret::Purpose::of("app_result_release"));
        if (config_.local_cache) cache_insert(tag, plain);
        metrics_.hits.inc();
        outcome = telemetry::CallOutcome::kStoreHit;
        result_bytes = plain.size();
        return Outcome{std::move(plain), true};
      }
      // ⊥: entry exists but we cannot authenticate/decrypt it (poisoned or
      // foreign). Fall through to local computation.
      metrics_.failed_recoveries.inc();
      outcome = telemetry::CallOutcome::kFailedRecovery;
    } else {
      metrics_.misses.inc();
      outcome = telemetry::CallOutcome::kMiss;
    }

    // Algorithm 1 lines 4-10: compute, protect, and ship the result.
    Bytes result;
    {
      const telemetry::TraceSpan::StageTimer t(span,
                                               telemetry::Stage::kCompute);
      result = compute();
    }
    if (config_.local_cache) cache_insert(tag, result);
    result_bytes = result.size();

    if (!get_resp->found) {
      const telemetry::TraceSpan::StageTimer t(span,
                                               telemetry::Stage::kPutEnqueue);
      crypto::Drbg seeded(enclave_.random_bytes(32));
      serialize::EntryPayload entry;
      if (basic_cipher_.has_value()) {
        entry = basic_cipher_->protect(fn, input, result, seeded);
      } else {
        entry = mle::ResultCipher::protect(ctx, result, seeded);
      }
      PutRequest put;
      put.tag = tag;
      put.requester = enclave_.measurement();
      put.entry = std::move(entry);
      enqueue_put(std::move(put));
    }
    return Outcome{std::move(result), false};
  });
}

void DedupRuntime::enqueue_put(PutRequest put) {
  if (config_.async_put) {
    bool dropped = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (config_.put_queue_capacity > 0 &&
          put_queue_.size() >= config_.put_queue_capacity) {
        // Drop-oldest: newer results are likelier to be re-requested soon,
        // and a dead store must not grow this queue without bound.
        put_queue_.pop_front();
        dropped = true;
      }
      put_queue_.push_back(std::move(put));
    }
    if (dropped) metrics_.puts_dropped.inc();
    queue_cv_.notify_one();
  } else if (config_.fail_open) {
    try {
      send_put(put);
    } catch (const Error&) {
      metrics_.puts_rejected.inc();
    }
  } else {
    send_put(put);
  }
}

void DedupRuntime::send_put(const PutRequest& put) {
  const Message response = secure_round_trip(put);
  const auto* put_resp = std::get_if<PutResponse>(&response);
  if (put_resp == nullptr) {
    throw ProtocolError("DedupRuntime: expected PUT_RESPONSE");
  }
  metrics_.puts_sent.inc();
  if (put_resp->status != PutStatus::kStored &&
      put_resp->status != PutStatus::kAlreadyPresent) {
    metrics_.puts_rejected.inc();
  }
}

void DedupRuntime::put_worker() {
  for (;;) {
    PutRequest put;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return shutting_down_ || !put_queue_.empty(); });
      if (put_queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      put = std::move(put_queue_.front());
      put_queue_.pop_front();
      ++puts_in_flight_;
    }
    // The worker enters the enclave for the channel crypto, like any other
    // trusted-thread ECALL.
    try {
      enclave_.ecall([&] { send_put(put); });
    } catch (const Error&) {
      metrics_.puts_rejected.inc();
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --puts_in_flight_;
    }
    drained_cv_.notify_all();
  }
}

bool DedupRuntime::flush(std::int64_t timeout_ms) {
  if (!config_.async_put) return true;
  std::unique_lock<std::mutex> lock(queue_mu_);
  const auto drained = [this] {
    return put_queue_.empty() && puts_in_flight_ == 0;
  };
  if (timeout_ms < 0) {
    drained_cv_.wait(lock, drained);
    return true;
  }
  return drained_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              drained);
}

namespace {
/// Trusted-memory footprint of one cache entry: the plaintext plus the tag
/// key, LRU node, and hash-map slot.
std::size_t cache_entry_footprint(std::size_t result_bytes) {
  return result_bytes + sizeof(mle::Tag) + 3 * sizeof(void*) + 16;
}
}  // namespace

std::optional<Bytes> DedupRuntime::cache_lookup(const mle::Tag& tag) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(tag);
  if (it == cache_.end()) return std::nullopt;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
  return it->second.result;
}

void DedupRuntime::cache_insert(const mle::Tag& tag, const Bytes& result) {
  const std::size_t footprint = cache_entry_footprint(result.size());
  if (footprint > config_.local_cache_bytes) return;  // never cacheable
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(tag);
  if (it != cache_.end()) {
    // Raced insert of the same tag: keep the existing copy, refresh recency.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
    return;
  }
  while (cache_bytes_ + footprint > config_.local_cache_bytes &&
         !cache_lru_.empty()) {
    const mle::Tag victim = cache_lru_.back();
    auto vit = cache_.find(victim);
    cache_bytes_ -= cache_entry_footprint(vit->second.result.size());
    cache_.erase(vit);
    cache_lru_.pop_back();
  }
  cache_lru_.push_front(tag);
  cache_.emplace(tag, CacheEntry{result, cache_lru_.begin()});
  cache_bytes_ += footprint;
  cache_charge_.resize(cache_bytes_);
}

DedupRuntime::Stats DedupRuntime::stats() const {
  Stats s;
  s.calls = metrics_.calls.value();
  s.local_hits = metrics_.local_hits.value();
  s.hits = metrics_.hits.value();
  s.misses = metrics_.misses.value();
  s.failed_recoveries = metrics_.failed_recoveries.value();
  s.degraded_calls = metrics_.degraded_calls.value();
  s.puts_sent = metrics_.puts_sent.value();
  s.puts_rejected = metrics_.puts_rejected.value();
  s.puts_dropped = metrics_.puts_dropped.value();
  return s;
}

}  // namespace speed::runtime
