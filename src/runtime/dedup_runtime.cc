#include "runtime/dedup_runtime.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/error.h"

namespace speed::runtime {

using serialize::GetRequest;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;

namespace {

/// Exported label per CallOutcome, in enum order. Literals, not runtime
/// strings: the label whitelist (telemetry/label.h) is compile-time.
constexpr std::array<telemetry::LabelValue,
                     static_cast<std::size_t>(telemetry::CallOutcome::kCount)>
    kOutcomeLabels{
        telemetry::LabelValue::lit("local_hit"),
        telemetry::LabelValue::lit("store_hit"),
        telemetry::LabelValue::lit("miss"),
        telemetry::LabelValue::lit("failed_recovery"),
        telemetry::LabelValue::lit("degraded"),
    };

}  // namespace

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave,
                           const sgx::Measurement& store_measurement,
                           std::unique_ptr<net::Transport> transport,
                           RuntimeConfig config)
    : DedupRuntime(app_enclave,
                   net::derive_channel_key(app_enclave, store_measurement),
                   std::move(transport), std::move(config)) {}

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave, Bytes session_key,
                           std::unique_ptr<net::Transport> transport,
                           RuntimeConfig config)
    : DedupRuntime(app_enclave, secret::Buffer::absorb(std::move(session_key)),
                   std::move(transport), std::move(config)) {}

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave,
                           secret::Buffer session_key,
                           std::unique_ptr<net::Transport> transport,
                           RuntimeConfig config)
    : enclave_(app_enclave),
      transport_(std::move(transport)),
      config_(std::move(config)),
      channel_(std::in_place, std::move(session_key), /*is_initiator=*/true),
      cache_charge_(app_enclave, 0) {
  if (transport_ == nullptr) {
    throw ProtocolError("DedupRuntime: transport is required");
  }
  // A recovering transport (net/resilient.h) re-runs the attested handshake
  // after a reconnect; stage the fresh key for the next round trip.
  transport_->set_rekey_callback([this](secret::Buffer key) {
    MutexLock lock(rekey_mu_);
    pending_rekey_ = std::move(key);
  });
  init_common();
}

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave,
                           std::shared_ptr<net::ClusterTransport> cluster,
                           RuntimeConfig config)
    : enclave_(app_enclave),
      cluster_(std::move(cluster)),
      config_(std::move(config)),
      cache_charge_(app_enclave, 0) {
  if (cluster_ == nullptr) {
    throw ProtocolError("DedupRuntime: cluster transport is required");
  }
  // No single-link channel/rekey state: every cluster link carries its own
  // attested channel and reconnect machinery (net/cluster.h).
  init_common();
}

void DedupRuntime::init_common() {
  if (config_.scheme == RuntimeConfig::Scheme::kBasicSingleKey) {
    // Move the key into the cipher's secret domain; no plain copy stays
    // behind in the stored config.
    basic_cipher_.emplace(std::move(config_.system_key));
  }
  if (config_.async_put) {
    put_thread_ = std::thread([this] { put_worker(); });
  }
  telemetry_handle_ = telemetry::Registry::global().add_collector(
      [this](telemetry::SampleSink& sink) {
        constexpr auto kOutcome = telemetry::LabelKey::of("outcome");
        sink.counter("speed_runtime_calls_total", "Marked calls executed", {},
                     metrics_.calls.value());
        const std::array<std::uint64_t, 5> outcome_counts{
            metrics_.local_hits.value(),       metrics_.hits.value(),
            metrics_.misses.value(),           metrics_.failed_recoveries.value(),
            metrics_.degraded_calls.value()};
        for (std::size_t i = 0; i < outcome_counts.size(); ++i) {
          sink.counter("speed_runtime_outcomes_total",
                       "Marked calls by how they were served",
                       {{kOutcome, kOutcomeLabels[i]}}, outcome_counts[i]);
          sink.histogram("speed_runtime_call_ns",
                         "Whole-call latency of marked calls by outcome",
                         {{kOutcome, kOutcomeLabels[i]}}, metrics_.call_ns[i]);
        }
        sink.counter("speed_runtime_puts_sent_total",
                     "PUT round trips completed", {},
                     metrics_.puts_sent.value());
        sink.counter("speed_runtime_puts_rejected_total",
                     "PUTs refused by the store or failed in flight", {},
                     metrics_.puts_rejected.value());
        sink.counter("speed_runtime_puts_dropped_total",
                     "PUTs evicted from a full async queue", {},
                     metrics_.puts_dropped.value());
        sink.histogram("speed_runtime_round_trip_ns",
                       "Secure-channel round trips issued by the runtime", {},
                       metrics_.round_trip_ns);
        sink.counter("speed_runtime_batches_total",
                     "Batch frames shipped by the micro-batcher", {},
                     metrics_.batches.value());
        sink.histogram("speed_runtime_batch_ops",
                       "Ops coalesced per shipped batch frame", {},
                       metrics_.batch_ops);
        sink.counter("speed_runtime_stream_puts_total",
                     "Streams stored via StreamSession::put", {},
                     metrics_.stream_puts.value());
        sink.counter("speed_runtime_stream_gets_total",
                     "Streams retrieved via StreamSession::get", {},
                     metrics_.stream_gets.value());
        sink.counter("speed_runtime_stream_whole_hits_total",
                     "Stream puts deduplicated whole by the stream tag", {},
                     metrics_.stream_whole_hits.value());
        sink.counter("speed_runtime_stream_chunks_total",
                     "Chunks examined on the stream put path", {},
                     metrics_.stream_chunks.value());
        sink.counter("speed_runtime_stream_chunk_hits_total",
                     "Chunks served by existing store entries", {},
                     metrics_.stream_chunk_hits.value());
        sink.counter("speed_runtime_stream_bytes_deduped_total",
                     "Plaintext bytes not re-stored thanks to chunk dedup", {},
                     metrics_.stream_bytes_deduped.value());
        sink.counter("speed_runtime_stream_inline_chunks_total",
                     "Chunks inlined into manifests (PUT refused/poisoned)", {},
                     metrics_.stream_inline_chunks.value());
        sink.counter("speed_runtime_stream_degraded_total",
                     "Stream puts degraded by store failures", {},
                     metrics_.stream_degraded.value());
        sink.histogram("speed_runtime_stream_manifest_bytes",
                       "Manifest plaintext size per stored stream", {},
                       metrics_.stream_manifest_bytes);
        {
          MutexLock lock(cache_mu_);
          sink.gauge("speed_runtime_cache_bytes",
                     "In-enclave hot-result cache footprint", {},
                     static_cast<std::int64_t>(cache_bytes_));
          sink.gauge("speed_runtime_cache_entries",
                     "In-enclave hot-result cache entries", {},
                     static_cast<std::int64_t>(cache_.size()));
        }
        {
          MutexLock lock(queue_mu_);
          sink.gauge("speed_runtime_put_queue_depth",
                     "Asynchronous PUTs waiting to ship", {},
                     static_cast<std::int64_t>(put_queue_.size()));
        }
      });
}

DedupRuntime::~DedupRuntime() {
  if (put_thread_.joinable()) {
    {
      MutexLock lock(queue_mu_);
      shutting_down_ = true;
    }
    queue_cv_.notify_all();
    put_thread_.join();
  }
}

mle::FunctionIdentity DedupRuntime::resolve(
    const serialize::FunctionDescriptor& desc) const {
  const auto measurement = libraries_.lookup(desc.family, desc.version);
  if (!measurement.has_value()) {
    throw EnclaveError("DedupRuntime: application does not own trusted library " +
                       desc.family + "/" + desc.version);
  }
  return mle::FunctionIdentity{desc, *measurement};
}

void DedupRuntime::install_rekey_locked() {
  MutexLock lock(rekey_mu_);
  if (!pending_rekey_.has_value()) return;
  channel_.emplace(std::move(*pending_rekey_), /*is_initiator=*/true);
  pending_rekey_.reset();
  channel_poisoned_ = false;
}

// channel_mu_ is held across the transport recover/round-trip OCALLs: the
// secure channel is a strict single-link strand (sequence numbers admit no
// interleaving), so wrap -> ship -> unwrap must be one critical section.
// lockdiscipline-allow: LD004 channel sequence numbers admit no interleaving
Message DedupRuntime::secure_round_trip(const Message& request) {
  if (cluster_ != nullptr) {
    // Cluster mode: routing, per-node channels, failover, and OCALLs all
    // live in the ClusterTransport; it throws StoreUnavailableError when no
    // node can serve, which the fail-open GET path degrades to compute.
    const Stopwatch rtt_sw;
    Message response = cluster_->round_trip_message(request);
    metrics_.round_trip_ns.record(rtt_sw.elapsed_ns());
    return response;
  }
  MutexLock lock(channel_mu_);
  install_rekey_locked();
  if (channel_poisoned_) {
    // The old key must never wrap another frame. Ask the transport for a
    // fresh connection + key (ResilientTransport re-runs the handshake and
    // stages the key through the rekey callback; plain transports cannot).
    enclave_.ocall([&] { return transport_->recover(); });
    install_rekey_locked();
    if (channel_poisoned_) {
      throw net::StoreUnavailableError(
          "DedupRuntime: secure channel poisoned and transport cannot rekey");
    }
  }
  // Wrap inside the enclave, cross to the host to hit the transport (the
  // prototype's customized OCALL carrying the request), unwrap back inside.
  const Bytes frame = channel_->wrap(serialize::encode_message(request));
  Bytes response_frame;
  const Stopwatch rtt_sw;
  try {
    response_frame =
        enclave_.ocall([&] { return transport_->round_trip(frame); });
    metrics_.round_trip_ns.record(rtt_sw.elapsed_ns());
  } catch (...) {
    // Request possibly consumed, response never seen: sequence numbers are
    // out of sync with the store's session for good.
    channel_poisoned_ = true;
    throw;
  }
  const auto plain = channel_->unwrap(response_frame);
  if (!plain.has_value()) {
    // Tampered/garbled response (or a response under a stale server
    // session). Either way the channel state is no longer trustworthy.
    channel_poisoned_ = true;
    throw ProtocolError("DedupRuntime: store response failed channel check");
  }
  return serialize::decode_message(*plain);
}

namespace {

/// Lift a batch sub-reply back to a top-level message; a per-op error
/// becomes StoreUnavailableError so fail-open degrades exactly this call.
Message reply_to_message(serialize::BatchReply reply) {
  if (auto* get_resp = std::get_if<GetResponse>(&reply)) {
    return Message(std::move(*get_resp));
  }
  if (const auto* put_resp = std::get_if<PutResponse>(&reply)) {
    return Message(*put_resp);
  }
  const auto& err = std::get<serialize::ErrorResponse>(reply);
  throw net::StoreUnavailableError("DedupRuntime: batched op refused: " +
                                   err.detail);
}

}  // namespace

Message DedupRuntime::batched_round_trip(const Message& request) {
  if (!config_.batching.enabled) return secure_round_trip(request);
  serialize::BatchOp op;
  if (const auto* get = std::get_if<GetRequest>(&request)) {
    op = *get;
  } else if (const auto* put = std::get_if<PutRequest>(&request)) {
    op = *put;
  } else {
    return secure_round_trip(request);  // only GET/PUT are batchable
  }
  std::vector<serialize::BatchReply> replies = batch_execute({std::move(op)});
  return reply_to_message(std::move(replies.front()));
}

std::vector<serialize::BatchReply> DedupRuntime::batch_execute(
    std::vector<serialize::BatchOp> ops) {
  // Leader/follower rendezvous: every thread parks its ops in the shared
  // pending list; the first one in becomes the leader, waits briefly for
  // followers, then ships everything pending as one frame. Followers just
  // wait for their slots to complete.
  std::vector<PendingOp> slots(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) slots[i].op = std::move(ops[i]);

  // Slots are guarded by batch_mu_ by convention: they are stack-local, but
  // their addresses are shared through batch_pending_ and mutated by
  // whichever thread ends up shipping them.
  const auto slots_done = [&slots]() {
    for (const auto& slot : slots) {
      if (!slot.done) return false;
    }
    return true;
  };

  ScopedLock lock(batch_mu_);
  ++batch_inflight_;
  for (auto& slot : slots) batch_pending_.push_back(&slot);
  if (batch_pending_.size() >= config_.batching.max_ops) {
    batch_fill_cv_.notify_one();
  }
  if (batch_leader_active_) {
    // Follower. The current leader (or a later one) ships our slots.
    while (!slots_done()) batch_done_cv_.wait(batch_mu_);
  } else {
    batch_leader_active_ = true;
    if (batch_pending_.size() < config_.batching.max_ops &&
        config_.batching.flush_delay_us > 0 && batch_inflight_ > 1) {
      // Adaptive flush: flush_delay_us caps the total wait, but the leader
      // ships as soon as arrivals quiesce — a grace interval passing with no
      // new op. Fewer concurrent threads than max_ops then costs one grace
      // period, not the full delay, while a steady trickle of arrivals keeps
      // filling the frame up to the cap.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config_.batching.flush_delay_us);
      const auto grace = std::chrono::microseconds(
          std::max<std::uint64_t>(config_.batching.flush_delay_us / 4, 1));
      std::size_t seen = batch_pending_.size();
      while (batch_pending_.size() < config_.batching.max_ops) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        const auto slice = std::min(deadline, now + grace);
        while (batch_pending_.size() < config_.batching.max_ops &&
               batch_fill_cv_.wait_until(batch_mu_, slice) !=
                   std::cv_status::timeout) {
        }
        if (batch_pending_.size() == seen) break;  // quiesced
        seen = batch_pending_.size();
      }
    }
    std::vector<PendingOp*> shipping;
    shipping.swap(batch_pending_);
    batch_leader_active_ = false;  // late arrivals elect the next leader
    lock.unlock();

    metrics_.batches.inc();
    metrics_.batch_ops.record(shipping.size());

    // One op needs no envelope — and stays decodable by a legacy store.
    std::optional<Message> response;
    bool transport_failed = false;
    std::string failure = "store unreachable";
    try {
      if (shipping.size() == 1) {
        response = std::visit(
            [this](const auto& o) { return secure_round_trip(Message(o)); },
            shipping.front()->op);
      } else {
        serialize::BatchRequest batch;
        batch.ops.reserve(shipping.size());
        for (const PendingOp* slot : shipping) batch.ops.push_back(slot->op);
        response = secure_round_trip(batch);
      }
    } catch (const Error& e) {
      transport_failed = true;
      failure = e.what();
    }

    lock.lock();
    if (!transport_failed && shipping.size() == 1) {
      // Map the plain reply into the slot; a non-GET/PUT reply (including a
      // top-level ErrorResponse) is a per-op refusal.
      if (auto* get_resp = std::get_if<GetResponse>(&*response)) {
        shipping.front()->reply = std::move(*get_resp);
      } else if (const auto* put_resp = std::get_if<PutResponse>(&*response)) {
        shipping.front()->reply = *put_resp;
      } else if (const auto* err =
                     std::get_if<serialize::ErrorResponse>(&*response)) {
        shipping.front()->reply = *err;
      } else {
        shipping.front()->reply = serialize::ErrorResponse{
            serialize::ErrorCode::kBadRequest, "unexpected reply type"};
      }
    } else if (!transport_failed) {
      const auto* batch_resp = std::get_if<serialize::BatchResponse>(&*response);
      if (batch_resp != nullptr &&
          batch_resp->replies.size() == shipping.size()) {
        for (std::size_t i = 0; i < shipping.size(); ++i) {
          shipping[i]->reply = batch_resp->replies[i];
        }
      } else if (const auto* err =
                     std::get_if<serialize::ErrorResponse>(&*response)) {
        // Top-level refusal (e.g. kBatchTooLarge) applies to every op.
        for (PendingOp* slot : shipping) slot->reply = *err;
      } else {
        transport_failed = true;
        failure = "malformed batch response";
      }
    }
    if (transport_failed) {
      for (PendingOp* slot : shipping) {
        slot->reply = serialize::ErrorResponse{
            serialize::ErrorCode::kUnavailable, failure};
      }
    }
    for (PendingOp* slot : shipping) slot->done = true;
    batch_done_cv_.notify_all();
    // Our own slots may have been shipped by an earlier leader instead.
    while (!slots_done()) batch_done_cv_.wait(batch_mu_);
  }
  --batch_inflight_;  // lock is held again on both paths

  std::vector<serialize::BatchReply> replies;
  replies.reserve(slots.size());
  for (auto& slot : slots) replies.push_back(std::move(slot.reply));
  return replies;
}

DedupRuntime::Outcome DedupRuntime::execute(
    const mle::FunctionIdentity& fn, ByteView input,
    const std::function<Bytes()>& compute) {
  return enclave_.ecall([&]() -> Outcome {
    metrics_.calls.inc();

    telemetry::TraceRing* ring = nullptr;
    if (config_.tracing) {
      ring = config_.trace_ring != nullptr ? config_.trace_ring
                                           : &telemetry::TraceRing::global();
    }
    telemetry::TraceSpan span(ring);
    telemetry::CallOutcome outcome = telemetry::CallOutcome::kMiss;
    std::uint64_t result_bytes = 0;
    const Stopwatch call_sw;
    // Runs on every exit path, before `span` pushes into the ring.
    struct Finish {
      Metrics& m;
      telemetry::TraceSpan& span;
      telemetry::CallOutcome& outcome;
      std::uint64_t& result_bytes;
      const Stopwatch& sw;
      ~Finish() {
        span.set_outcome(outcome);
        span.set_result_bytes(result_bytes);
        m.call_ns[static_cast<std::size_t>(outcome)].record(sw.elapsed_ns());
      }
    } finish{metrics_, span, outcome, result_bytes, call_sw};

    // Algorithm 1/2 line 1-2: derive the tag, query the store. The context
    // absorbs (func, m) once; tag and (on the RCE paths below) the secondary
    // key h fork off the shared SHA-256 midstate.
    std::optional<mle::ComputationContext> ctx_storage;
    std::optional<mle::Tag> tag_storage;
    {
      const telemetry::TraceSpan::StageTimer t(span,
                                               telemetry::Stage::kTagDerive);
      ctx_storage.emplace(fn, input);
      tag_storage.emplace(ctx_storage->tag());
    }
    const mle::ComputationContext& ctx = *ctx_storage;
    const mle::Tag& tag = *tag_storage;

    // Hot path: a result this runtime already saw is served straight from
    // the in-enclave cache — no round trip, no decryption.
    if (config_.local_cache) {
      std::optional<Bytes> cached;
      {
        const telemetry::TraceSpan::StageTimer t(
            span, telemetry::Stage::kCacheLookup);
        cached = cache_lookup(tag);
      }
      if (cached.has_value()) {
        metrics_.local_hits.inc();
        outcome = telemetry::CallOutcome::kLocalHit;
        result_bytes = cached->size();
        return Outcome{std::move(*cached), true};
      }
    }

    GetRequest get;
    get.tag = tag;
    get.requester = enclave_.measurement();

    // Fail-open: the store is an accelerator, not a dependency. Any
    // transport/channel/protocol failure on the GET path degrades this call
    // to a local compute; the breaker/reconnect machinery (if present)
    // restores service for later calls.
    Message response;
    const GetResponse* get_resp = nullptr;
    {
      const telemetry::TraceSpan::StageTimer t(span,
                                               telemetry::Stage::kStoreGet);
      if (config_.fail_open) {
        try {
          response = batched_round_trip(get);
          get_resp = std::get_if<GetResponse>(&response);
        } catch (const Error&) {
          get_resp = nullptr;
        }
      } else {
        response = batched_round_trip(get);
        get_resp = std::get_if<GetResponse>(&response);
        if (get_resp == nullptr) {
          throw ProtocolError("DedupRuntime: expected GET_RESPONSE");
        }
      }
    }
    if (get_resp == nullptr) {
      // Store unreachable or talking nonsense: compute locally and skip the
      // PUT (we cannot know whether the entry exists, and the connection is
      // being re-established anyway).
      metrics_.degraded_calls.inc();
      outcome = telemetry::CallOutcome::kDegraded;
      Bytes local;
      {
        const telemetry::TraceSpan::StageTimer t(span,
                                                 telemetry::Stage::kCompute);
        local = compute();
      }
      // Still worth caching: repeats of this call ride out the outage
      // without recomputing (or waiting on the broken transport).
      if (config_.local_cache) cache_insert(tag, local);
      result_bytes = local.size();
      return Outcome{std::move(local), false};
    }

    if (get_resp->found) {
      // Algorithm 2 lines 4-6 + Fig. 3 verification.
      std::optional<secret::Buffer> result;
      {
        const telemetry::TraceSpan::StageTimer t(span,
                                                 telemetry::Stage::kRecover);
        if (basic_cipher_.has_value()) {
          result = basic_cipher_->recover(fn, input, get_resp->entry);
        } else {
          result = mle::ResultCipher::recover(ctx, get_resp->entry);
        }
      }
      if (result.has_value()) {
        // Deliberate protocol step: the recovered plaintext leaves the
        // secret domain exactly here, handed back to the application that
        // proved it could have computed it (Fig. 3). Move, not copy — the
        // store-hit hot path stays copy-free.
        Bytes plain = std::move(*result).release_for(
            secret::Purpose::of("app_result_release"));
        if (config_.local_cache) cache_insert(tag, plain);
        metrics_.hits.inc();
        outcome = telemetry::CallOutcome::kStoreHit;
        result_bytes = plain.size();
        return Outcome{std::move(plain), true};
      }
      // ⊥: entry exists but we cannot authenticate/decrypt it (poisoned or
      // foreign). Fall through to local computation.
      metrics_.failed_recoveries.inc();
      outcome = telemetry::CallOutcome::kFailedRecovery;
    } else {
      metrics_.misses.inc();
      outcome = telemetry::CallOutcome::kMiss;
    }

    // Algorithm 1 lines 4-10: compute, protect, and ship the result.
    Bytes result;
    {
      const telemetry::TraceSpan::StageTimer t(span,
                                               telemetry::Stage::kCompute);
      result = compute();
    }
    if (config_.local_cache) cache_insert(tag, result);
    result_bytes = result.size();

    if (!get_resp->found) {
      const telemetry::TraceSpan::StageTimer t(span,
                                               telemetry::Stage::kPutEnqueue);
      crypto::Drbg seeded(enclave_.random_bytes(32));
      serialize::EntryPayload entry;
      if (basic_cipher_.has_value()) {
        entry = basic_cipher_->protect(fn, input, result, seeded);
      } else {
        entry = mle::ResultCipher::protect(ctx, result, seeded);
      }
      PutRequest put;
      put.tag = tag;
      put.requester = enclave_.measurement();
      put.entry = std::move(entry);
      enqueue_put(std::move(put));
    }
    return Outcome{std::move(result), false};
  });
}

void DedupRuntime::enqueue_put(PutRequest put) {
  if (config_.async_put) {
    bool dropped = false;
    {
      MutexLock lock(queue_mu_);
      if (config_.put_queue_capacity > 0 &&
          put_queue_.size() >= config_.put_queue_capacity) {
        // Drop-oldest: newer results are likelier to be re-requested soon,
        // and a dead store must not grow this queue without bound.
        put_queue_.pop_front();
        dropped = true;
      }
      put_queue_.push_back(std::move(put));
    }
    if (dropped) metrics_.puts_dropped.inc();
    queue_cv_.notify_one();
  } else if (config_.fail_open) {
    try {
      send_put(put);
    } catch (const Error&) {
      metrics_.puts_rejected.inc();
    }
  } else {
    send_put(put);
  }
}

void DedupRuntime::send_put(const PutRequest& put) {
  const Message response = secure_round_trip(put);
  const auto* put_resp = std::get_if<PutResponse>(&response);
  if (put_resp == nullptr) {
    throw ProtocolError("DedupRuntime: expected PUT_RESPONSE");
  }
  metrics_.puts_sent.inc();
  if (put_resp->status != PutStatus::kStored &&
      put_resp->status != PutStatus::kAlreadyPresent) {
    metrics_.puts_rejected.inc();
  }
}

void DedupRuntime::send_put_batch(const std::vector<PutRequest>& puts) {
  if (!config_.batching.enabled || puts.size() == 1) {
    for (const auto& put : puts) send_put(put);
    return;
  }
  // The whole drained run rides the micro-batcher, where it may coalesce
  // further with concurrent GETs into one frame.
  std::vector<serialize::BatchOp> ops;
  ops.reserve(puts.size());
  for (const auto& put : puts) ops.emplace_back(put);
  const std::vector<serialize::BatchReply> replies =
      batch_execute(std::move(ops));
  for (const auto& reply : replies) {
    const auto* put_resp = std::get_if<PutResponse>(&reply);
    if (put_resp == nullptr) {
      metrics_.puts_rejected.inc();  // per-op error or malformed reply kind
      continue;
    }
    metrics_.puts_sent.inc();
    if (put_resp->status != PutStatus::kStored &&
        put_resp->status != PutStatus::kAlreadyPresent) {
      metrics_.puts_rejected.inc();
    }
  }
}

void DedupRuntime::put_worker() {
  for (;;) {
    std::vector<PutRequest> puts;
    {
      MutexLock lock(queue_mu_);
      while (!shutting_down_ && put_queue_.empty()) {
        queue_cv_.wait(queue_mu_);
      }
      if (put_queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      // Drain a run: with batching on, everything queued (up to max_ops)
      // ships in one frame under one ECALL; otherwise one PUT per ECALL,
      // the historical behavior.
      const std::size_t take =
          config_.batching.enabled
              ? std::min(put_queue_.size(),
                         std::max<std::size_t>(config_.batching.max_ops, 1))
              : 1;
      puts.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        puts.push_back(std::move(put_queue_.front()));
        put_queue_.pop_front();
      }
      puts_in_flight_ += take;
    }
    // The worker enters the enclave for the channel crypto, like any other
    // trusted-thread ECALL.
    try {
      enclave_.ecall([&] { send_put_batch(puts); });
    } catch (const Error&) {
      metrics_.puts_rejected.inc();
    }
    {
      MutexLock lock(queue_mu_);
      puts_in_flight_ -= puts.size();
    }
    drained_cv_.notify_all();
  }
}

bool DedupRuntime::flush(std::int64_t timeout_ms) {
  if (!config_.async_put) return true;
  MutexLock lock(queue_mu_);
  if (timeout_ms < 0) {
    while (!put_queue_.empty() || puts_in_flight_ != 0) {
      drained_cv_.wait(queue_mu_);
    }
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!put_queue_.empty() || puts_in_flight_ != 0) {
    if (drained_cv_.wait_until(queue_mu_, deadline) ==
        std::cv_status::timeout) {
      return put_queue_.empty() && puts_in_flight_ == 0;
    }
  }
  return true;
}

namespace {
/// Trusted-memory footprint of one cache entry: the plaintext plus the tag
/// key, LRU node, and hash-map slot.
std::size_t cache_entry_footprint(std::size_t result_bytes) {
  return result_bytes + sizeof(mle::Tag) + 3 * sizeof(void*) + 16;
}
}  // namespace

std::optional<Bytes> DedupRuntime::cache_lookup(const mle::Tag& tag) {
  MutexLock lock(cache_mu_);
  auto it = cache_.find(tag);
  if (it == cache_.end()) return std::nullopt;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
  return it->second.result;
}

void DedupRuntime::cache_insert(const mle::Tag& tag, const Bytes& result) {
  const std::size_t footprint = cache_entry_footprint(result.size());
  if (footprint > config_.local_cache_bytes) return;  // never cacheable
  MutexLock lock(cache_mu_);
  auto it = cache_.find(tag);
  if (it != cache_.end()) {
    // Raced insert of the same tag: keep the existing copy, refresh recency.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
    return;
  }
  while (cache_bytes_ + footprint > config_.local_cache_bytes &&
         !cache_lru_.empty()) {
    const mle::Tag victim = cache_lru_.back();
    auto vit = cache_.find(victim);
    cache_bytes_ -= cache_entry_footprint(vit->second.result.size());
    cache_.erase(vit);
    cache_lru_.pop_back();
  }
  cache_lru_.push_front(tag);
  cache_.emplace(tag, CacheEntry{result, cache_lru_.begin()});
  cache_bytes_ += footprint;
  cache_charge_.resize(cache_bytes_);
}

DedupRuntime::Stats DedupRuntime::stats() const {
  Stats s;
  s.calls = metrics_.calls.value();
  s.local_hits = metrics_.local_hits.value();
  s.hits = metrics_.hits.value();
  s.misses = metrics_.misses.value();
  s.failed_recoveries = metrics_.failed_recoveries.value();
  s.degraded_calls = metrics_.degraded_calls.value();
  s.puts_sent = metrics_.puts_sent.value();
  s.puts_rejected = metrics_.puts_rejected.value();
  s.puts_dropped = metrics_.puts_dropped.value();
  s.stream_puts = metrics_.stream_puts.value();
  s.stream_gets = metrics_.stream_gets.value();
  s.stream_whole_hits = metrics_.stream_whole_hits.value();
  s.stream_chunks = metrics_.stream_chunks.value();
  s.stream_chunk_hits = metrics_.stream_chunk_hits.value();
  s.stream_bytes_deduped = metrics_.stream_bytes_deduped.value();
  s.stream_inline_chunks = metrics_.stream_inline_chunks.value();
  s.stream_degraded = metrics_.stream_degraded.value();
  return s;
}

std::vector<serialize::BatchReply> DedupRuntime::stream_ops(
    std::vector<serialize::BatchOp> ops) {
  if (ops.empty()) return {};
  if (config_.batching.enabled) return batch_execute(std::move(ops));
  // Unbatched (or v1-only peer): one plain round trip per op, failures
  // mapped to per-op error replies so the caller's degrade logic is
  // identical on both paths.
  std::vector<serialize::BatchReply> replies;
  replies.reserve(ops.size());
  for (const serialize::BatchOp& op : ops) {
    try {
      Message response = std::visit(
          [this](const auto& o) { return secure_round_trip(Message(o)); }, op);
      if (auto* get_resp = std::get_if<GetResponse>(&response)) {
        replies.emplace_back(std::move(*get_resp));
      } else if (const auto* put_resp = std::get_if<PutResponse>(&response)) {
        replies.emplace_back(*put_resp);
      } else if (const auto* err =
                     std::get_if<serialize::ErrorResponse>(&response)) {
        replies.emplace_back(*err);
      } else {
        replies.emplace_back(serialize::ErrorResponse{
            serialize::ErrorCode::kBadRequest, "unexpected reply type"});
      }
    } catch (const Error& e) {
      replies.emplace_back(serialize::ErrorResponse{
          serialize::ErrorCode::kUnavailable, e.what()});
    }
  }
  return replies;
}

}  // namespace speed::runtime
