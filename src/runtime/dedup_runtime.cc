#include "runtime/dedup_runtime.h"

#include "common/error.h"

namespace speed::runtime {

using serialize::GetRequest;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave,
                           const sgx::Measurement& store_measurement,
                           std::unique_ptr<net::Transport> transport,
                           RuntimeConfig config)
    : DedupRuntime(app_enclave,
                   net::derive_channel_key(app_enclave, store_measurement),
                   std::move(transport), std::move(config)) {}

DedupRuntime::DedupRuntime(sgx::Enclave& app_enclave, Bytes session_key,
                           std::unique_ptr<net::Transport> transport,
                           RuntimeConfig config)
    : enclave_(app_enclave),
      transport_(std::move(transport)),
      config_(std::move(config)),
      channel_(std::move(session_key), /*is_initiator=*/true) {
  if (transport_ == nullptr) {
    throw ProtocolError("DedupRuntime: transport is required");
  }
  if (config_.scheme == RuntimeConfig::Scheme::kBasicSingleKey) {
    basic_cipher_.emplace(config_.system_key);
  }
  if (config_.async_put) {
    put_thread_ = std::thread([this] { put_worker(); });
  }
}

DedupRuntime::~DedupRuntime() {
  if (put_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      shutting_down_ = true;
    }
    queue_cv_.notify_all();
    put_thread_.join();
  }
}

mle::FunctionIdentity DedupRuntime::resolve(
    const serialize::FunctionDescriptor& desc) const {
  const auto measurement = libraries_.lookup(desc.family, desc.version);
  if (!measurement.has_value()) {
    throw EnclaveError("DedupRuntime: application does not own trusted library " +
                       desc.family + "/" + desc.version);
  }
  return mle::FunctionIdentity{desc, *measurement};
}

Message DedupRuntime::secure_round_trip(const Message& request) {
  std::lock_guard<std::mutex> lock(channel_mu_);
  // Wrap inside the enclave, cross to the host to hit the transport (the
  // prototype's customized OCALL carrying the request), unwrap back inside.
  const Bytes frame = channel_.wrap(serialize::encode_message(request));
  const Bytes response_frame =
      enclave_.ocall([&] { return transport_->round_trip(frame); });
  const auto plain = channel_.unwrap(response_frame);
  if (!plain.has_value()) {
    throw ProtocolError("DedupRuntime: store response failed channel check");
  }
  return serialize::decode_message(*plain);
}

DedupRuntime::Outcome DedupRuntime::execute(
    const mle::FunctionIdentity& fn, ByteView input,
    const std::function<Bytes()>& compute) {
  return enclave_.ecall([&]() -> Outcome {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.calls;
    }

    // Algorithm 1/2 line 1-2: derive the tag, query the store.
    const mle::Tag tag = mle::derive_tag(fn, input);
    GetRequest get;
    get.tag = tag;
    get.requester = enclave_.measurement();
    const Message response = secure_round_trip(get);
    const auto* get_resp = std::get_if<GetResponse>(&response);
    if (get_resp == nullptr) {
      throw ProtocolError("DedupRuntime: expected GET_RESPONSE");
    }

    if (get_resp->found) {
      // Algorithm 2 lines 4-6 + Fig. 3 verification.
      std::optional<Bytes> result;
      if (basic_cipher_.has_value()) {
        result = basic_cipher_->recover(fn, input, get_resp->entry);
      } else {
        result = mle::ResultCipher::recover(tag, fn, input, get_resp->entry);
      }
      if (result.has_value()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.hits;
        return Outcome{std::move(*result), true};
      }
      // ⊥: entry exists but we cannot authenticate/decrypt it (poisoned or
      // foreign). Fall through to local computation.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failed_recoveries;
    } else {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.misses;
    }

    // Algorithm 1 lines 4-10: compute, protect, and ship the result.
    Bytes result = compute();

    if (!get_resp->found) {
      crypto::Drbg seeded(enclave_.random_bytes(32));
      serialize::EntryPayload entry;
      if (basic_cipher_.has_value()) {
        entry = basic_cipher_->protect(fn, input, result, seeded);
      } else {
        entry = mle::ResultCipher::protect(tag, fn, input, result, seeded);
      }
      PutRequest put;
      put.tag = tag;
      put.requester = enclave_.measurement();
      put.entry = std::move(entry);
      enqueue_put(std::move(put));
    }
    return Outcome{std::move(result), false};
  });
}

void DedupRuntime::enqueue_put(PutRequest put) {
  if (config_.async_put) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      put_queue_.push_back(std::move(put));
    }
    queue_cv_.notify_one();
  } else {
    send_put(put);
  }
}

void DedupRuntime::send_put(const PutRequest& put) {
  const Message response = secure_round_trip(put);
  const auto* put_resp = std::get_if<PutResponse>(&response);
  if (put_resp == nullptr) {
    throw ProtocolError("DedupRuntime: expected PUT_RESPONSE");
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.puts_sent;
  if (put_resp->status != PutStatus::kStored &&
      put_resp->status != PutStatus::kAlreadyPresent) {
    ++stats_.puts_rejected;
  }
}

void DedupRuntime::put_worker() {
  for (;;) {
    PutRequest put;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return shutting_down_ || !put_queue_.empty(); });
      if (put_queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      put = std::move(put_queue_.front());
      put_queue_.pop_front();
      ++puts_in_flight_;
    }
    // The worker enters the enclave for the channel crypto, like any other
    // trusted-thread ECALL.
    try {
      enclave_.ecall([&] { send_put(put); });
    } catch (const Error&) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.puts_rejected;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --puts_in_flight_;
    }
    drained_cv_.notify_all();
  }
}

void DedupRuntime::flush() {
  if (!config_.async_put) return;
  std::unique_lock<std::mutex> lock(queue_mu_);
  drained_cv_.wait(lock,
                   [this] { return put_queue_.empty() && puts_in_flight_ == 0; });
}

DedupRuntime::Stats DedupRuntime::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace speed::runtime
