// Adaptive deduplication strategy — the paper's future-work direction
// (§VII: "an automatic extension to enable the application to adjust its
// deduplication strategy via dynamically analyzing the underlying
// computations during its runtime").
//
// AdaptiveDeduplicable profiles each marked function online:
//
//   compute_ns   EMA of the function's own execution time (observed on
//                misses and on bypassed calls),
//   overhead_ns  EMA of the dedup machinery's cost (hit-path total, or
//                miss-path total minus compute),
//   hit_rate     EMA of store-hit probability.
//
// Expected cost with dedup  = overhead + (1 - hit_rate) * compute
// Expected cost without     = compute
// => dedup pays off iff overhead < hit_rate * compute.
//
// When the inequality fails (with hysteresis), calls bypass the store and
// run the function directly — the right call for cheap functions or
// duplicate-free workloads, where Fig. 5(b)/(d) show SPEED's overhead can
// exceed its benefit. While bypassing, every probe_interval-th call still
// goes through the dedup path so the profile keeps tracking the workload.
#pragma once

#include <cstdint>

#include "common/annotated_lock.h"
#include "common/clock.h"
#include "runtime/deduplicable.h"

namespace speed::runtime {

struct AdaptiveConfig {
  double ema_alpha = 0.2;        ///< smoothing of the online estimates
  std::size_t min_samples = 8;   ///< dedup unconditionally until then
  double hysteresis = 1.25;      ///< margin before flipping to bypass
  std::size_t probe_interval = 16;  ///< dedup probe cadence while bypassing
};

/// Online profile + policy. Thread-safe.
class AdaptiveProfile {
 public:
  explicit AdaptiveProfile(AdaptiveConfig config = {}) : config_(config) {}

  void record_hit(std::uint64_t total_ns) {
    MutexLock lock(mu_);
    ++samples_;
    update(overhead_ns_, static_cast<double>(total_ns));
    update(hit_rate_, 1.0);
  }

  void record_miss(std::uint64_t total_ns, std::uint64_t compute_ns) {
    MutexLock lock(mu_);
    ++samples_;
    update(compute_ns_, static_cast<double>(compute_ns));
    const double overhead = total_ns > compute_ns
                                ? static_cast<double>(total_ns - compute_ns)
                                : 0.0;
    update(overhead_ns_, overhead);
    update(hit_rate_, 0.0);
  }

  void record_bypass(std::uint64_t compute_ns) {
    MutexLock lock(mu_);
    update(compute_ns_, static_cast<double>(compute_ns));
  }

  /// Policy decision for the next call: true = skip the store entirely
  /// (unless this call is a probe, see next_is_probe()).
  bool should_bypass() const {
    MutexLock lock(mu_);
    if (samples_ < config_.min_samples) return false;
    return overhead_ns_ > config_.hysteresis * hit_rate_ * compute_ns_;
  }

  /// Call once per bypassed invocation; true on probe turns.
  bool next_is_probe() {
    MutexLock lock(mu_);
    return ++bypass_counter_ % config_.probe_interval == 0;
  }

  struct Snapshot {
    double compute_ns = 0;
    double overhead_ns = 0;
    double hit_rate = 0;
    std::size_t samples = 0;
  };
  Snapshot snapshot() const {
    MutexLock lock(mu_);
    return {compute_ns_, overhead_ns_, hit_rate_, samples_};
  }

 private:
  void update(double& ema, double value) const REQUIRES(mu_) {
    ema = ema == 0 ? value : (1 - config_.ema_alpha) * ema + config_.ema_alpha * value;
  }

  AdaptiveConfig config_;
  mutable Mutex mu_{LockRank::kRuntimeAdaptive};  // standalone EMA state
  double compute_ns_ GUARDED_BY(mu_) = 0;
  double overhead_ns_ GUARDED_BY(mu_) = 0;
  double hit_rate_ GUARDED_BY(mu_) = 0;
  std::size_t samples_ GUARDED_BY(mu_) = 0;
  std::size_t bypass_counter_ GUARDED_BY(mu_) = 0;
};

template <typename Signature>
class AdaptiveDeduplicable;

template <typename R, typename... Args>
class AdaptiveDeduplicable<R(Args...)> {
 public:
  AdaptiveDeduplicable(DedupRuntime& rt,
                       serialize::FunctionDescriptor descriptor,
                       std::function<R(Args...)> fn,
                       AdaptiveConfig config = {})
      : fn_(fn),
        profile_(config),
        dedup_(rt, std::move(descriptor), [this, fn](const Args&... args) {
          // Time the inner computation so the miss path can split
          // "compute" from "dedup overhead".
          Stopwatch sw;
          R result = fn(args...);
          last_compute_ns_ = sw.elapsed_ns();
          return result;
        }) {}

  R operator()(const Args&... args) {
    if (profile_.should_bypass() && !profile_.next_is_probe()) {
      Stopwatch sw;
      R result = fn_(args...);
      profile_.record_bypass(sw.elapsed_ns());
      last_action_ = Action::kBypassed;
      return result;
    }
    Stopwatch sw;
    R result = dedup_(args...);
    const std::uint64_t total_ns = sw.elapsed_ns();
    if (dedup_.last_was_deduplicated()) {
      profile_.record_hit(total_ns);
      last_action_ = Action::kHit;
    } else {
      profile_.record_miss(total_ns, last_compute_ns_);
      last_action_ = Action::kMiss;
    }
    return result;
  }

  enum class Action { kHit, kMiss, kBypassed };
  Action last_action() const { return last_action_; }
  const AdaptiveProfile& profile() const { return profile_; }

 private:
  std::function<R(Args...)> fn_;
  AdaptiveProfile profile_;
  std::uint64_t last_compute_ns_ = 0;
  Deduplicable<R(Args...)> dedup_;
  Action last_action_ = Action::kMiss;
};

}  // namespace speed::runtime
