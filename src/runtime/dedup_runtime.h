// Secure deduplication runtime (paper §IV-B).
//
// DedupRuntime is the trusted library linked into an application enclave.
// For every marked computation it runs the paper's main routine:
//
//   Algorithm 2 (hit):  t = Hash(func, m) -> GET -> recover k = [k] XOR h
//                       -> AES-GCM decrypt -> return res
//   Algorithm 1 (miss): compute res = func(m) -> pick r, k -> wrap, encrypt
//                       -> asynchronous PUT -> return res
//
// The whole routine executes inside the application enclave (one ECALL per
// marked call); the GET/PUT exchanges leave through OCALLs wrapping the
// transport, exactly like the prototype's synchronous GET and asynchronous
// PUT (§IV-B, §V-B). All store traffic travels in an attested secure channel.
//
// Failed recoveries — a poisoned or foreign entry that does not authenticate
// — degrade to a local recompute (the ⊥ branch of Fig. 3), preserving
// correctness against a malicious store at the cost of the speedup.
//
// The same fail-open posture extends to the transport: with
// `RuntimeConfig::fail_open` (the default), a crashed store, dropped
// connection, timeout, or malformed frame on the GET path degrades the call
// to `compute()` (counted in `Stats::degraded_calls`) instead of throwing
// into the application. A failed round trip poisons the SecureChannel —
// its sequence numbers are in an unknown state and are never reused — and
// the runtime asks the transport to recover() on the next call, installing
// the fresh session key a ResilientTransport reports after re-running the
// attested handshake (see net/resilient.h, docs/PROTOCOL.md §"Failure
// semantics").
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "common/annotated_lock.h"
#include "mle/rce.h"
#include "mle/tag.h"
#include "net/channel.h"
#include "net/cluster.h"
#include "net/secure_channel.h"
#include "serialize/function_descriptor.h"
#include "serialize/wire.h"
#include "sgx/enclave.h"
#include "sgx/trusted_library.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace speed::runtime {

struct RuntimeConfig {
  /// Ship PUTs from a background thread (§V-B: "the remaining PUT operations
  /// can be processed in a separated thread for better efficiency").
  bool async_put = true;

  /// Upper bound on queued asynchronous PUTs. When the store falls behind
  /// (or dies), the oldest queued PUT is dropped — counted in
  /// `Stats::puts_dropped` — so a dead store cannot grow memory without
  /// bound. PUTs are an optimization (the result is already computed), so
  /// dropping them costs only future dedup opportunities. 0 = unbounded.
  std::size_t put_queue_capacity = 1024;

  /// Fail-open mode: store/transport/channel failures on the GET path
  /// degrade to local compute instead of throwing into the application.
  /// Disable only in tests that assert on raw failure propagation.
  bool fail_open = true;

  /// Result-encryption scheme. kRce is the paper's cross-application design
  /// (§III-C); kBasicSingleKey is the §III-B strawman and requires
  /// `system_key` (16 bytes). Kept for the scheme ablation.
  enum class Scheme { kRce, kBasicSingleKey };
  Scheme scheme = Scheme::kRce;
  Bytes system_key;

  /// In-enclave hot-result cache: a tag-keyed LRU of plaintext results kept
  /// inside the application enclave, so a repeated marked call is served
  /// with zero store round trips (counted in `Stats::local_hits`). The
  /// cached plaintext never leaves the enclave and is charged against the
  /// app enclave's trusted memory. Disabling restores the pre-cache
  /// behavior exactly: every call goes to the store.
  bool local_cache = true;
  /// Byte cap on cached plaintext (plus per-entry bookkeeping). Results
  /// larger than the cap are never cached.
  std::size_t local_cache_bytes = 4ull * 1024 * 1024;

  /// Per-call request tracing: each marked call pushes a TraceRecord (stage
  /// timings, outcome, result size — never tags/keys/inputs) into a bounded
  /// ring exported via the admin endpoint's /traces.json.
  bool tracing = true;
  /// Ring receiving completed spans; nullptr = the process-global ring.
  telemetry::TraceRing* trace_ring = nullptr;

  /// Client-side micro-batching (wire protocol v2). When enabled, concurrent
  /// GETs from application threads and drained async PUTs coalesce into
  /// BatchRequest frames: the first op's thread becomes the batch leader and
  /// waits up to `flush_delay_us` (or until `max_ops` ops are pending) before
  /// shipping one frame, paying one channel round trip — and, server-side,
  /// one enclave transition — for the whole batch. A batch that ends up with
  /// a single op is sent as a plain v1 message, so enabling batching against
  /// a legacy store degrades gracefully under low concurrency; only enable
  /// it when the negotiated version is >= net::kProtocolVersionBatch (see
  /// TcpAppConnection::protocol_version). Disabled by default: behavior is
  /// then bit-for-bit the pre-batching one-message-per-round-trip protocol.
  struct Batching {
    bool enabled = false;
    /// Flush as soon as this many ops are pending.
    std::size_t max_ops = 32;
    /// Upper bound on the leader's wait for followers. The flush is
    /// adaptive: the leader ships early once a quarter of this delay passes
    /// with no new arrival, so the full delay is only ever paid under a
    /// steady trickle of joiners.
    std::uint64_t flush_delay_us = 200;
  };
  Batching batching;
};

class DedupRuntime {
 public:
  /// Pre-provisioned-key mode: `store_measurement` identifies the
  /// ResultStore enclave and the channel key derives from the platform (see
  /// net/secure_channel.h); `transport` delivers frames to the store.
  DedupRuntime(sgx::Enclave& app_enclave,
               const sgx::Measurement& store_measurement,
               std::unique_ptr<net::Transport> transport,
               RuntimeConfig config = RuntimeConfig{});

  /// Attested-handshake mode: `session_key` comes from a completed
  /// ChannelKeyExchange (see store::connect_app / net/handshake.h).
  DedupRuntime(sgx::Enclave& app_enclave, secret::Buffer session_key,
               std::unique_ptr<net::Transport> transport,
               RuntimeConfig config = RuntimeConfig{});
  /// Convenience for callers holding a plain key (tests, fixed vectors):
  /// absorbs it into the secret domain, emptying the source.
  DedupRuntime(sgx::Enclave& app_enclave, Bytes session_key,
               std::unique_ptr<net::Transport> transport,
               RuntimeConfig config = RuntimeConfig{});

  /// Cluster mode: GET/PUT route across a replicated store cluster instead
  /// of one connection. The ClusterTransport owns a per-node attested
  /// secure channel (plus reconnect/breaker machinery), so the runtime's
  /// own single-link channel state stays disengaged; shared_ptr because the
  /// deployment layer (capi, examples) keeps the cluster alive across
  /// runtimes and probes it for health independently.
  DedupRuntime(sgx::Enclave& app_enclave,
               std::shared_ptr<net::ClusterTransport> cluster,
               RuntimeConfig config = RuntimeConfig{});
  ~DedupRuntime();

  DedupRuntime(const DedupRuntime&) = delete;
  DedupRuntime& operator=(const DedupRuntime&) = delete;

  /// Trusted libraries available to this application; Deduplicable
  /// descriptors must resolve against this registry.
  sgx::TrustedLibraryRegistry& libraries() { return libraries_; }

  /// Resolve a descriptor to a full function identity; throws EnclaveError
  /// if the application does not own the named library ("verify that the
  /// application indeed owns the actual code of the function", §IV-B).
  mle::FunctionIdentity resolve(const serialize::FunctionDescriptor& desc) const;

  struct Outcome {
    Bytes result;             ///< serialized result bytes
    bool deduplicated = false;  ///< true iff served from the store
  };

  /// The main routine on serialized input. `compute` is invoked only on the
  /// miss path and must return the serialized result.
  Outcome execute(const mle::FunctionIdentity& fn, ByteView input,
                  const std::function<Bytes()>& compute);

  /// Block until all queued asynchronous PUTs are delivered (or failed).
  /// `timeout_ms` bounds the wait so shutdown cannot hang on a dead store;
  /// -1 waits forever. Returns true iff the queue fully drained.
  bool flush(std::int64_t timeout_ms = -1);

  /// Point-in-time view over this runtime's telemetry cells (also exported
  /// process-wide as speed_runtime_* via the registry).
  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t local_hits = 0;       ///< served from the in-enclave cache
    std::uint64_t hits = 0;             ///< results served from the store
    std::uint64_t misses = 0;           ///< store had no entry
    std::uint64_t failed_recoveries = 0;///< entry present but not decryptable
    std::uint64_t degraded_calls = 0;   ///< store unreachable; served locally
    std::uint64_t puts_sent = 0;
    std::uint64_t puts_rejected = 0;
    std::uint64_t puts_dropped = 0;     ///< evicted from a full PUT queue

    // Streaming data path (runtime/stream_session.h).
    std::uint64_t stream_puts = 0;        ///< StreamSession::put calls
    std::uint64_t stream_gets = 0;        ///< StreamSession::get calls
    std::uint64_t stream_whole_hits = 0;  ///< whole stream deduped in one GET
    std::uint64_t stream_chunks = 0;      ///< chunks examined on the put path
    std::uint64_t stream_chunk_hits = 0;  ///< chunks served by existing entries
    std::uint64_t stream_bytes_deduped = 0;  ///< plaintext bytes not re-stored
    std::uint64_t stream_inline_chunks = 0;  ///< chunks inlined into manifests
    std::uint64_t stream_degraded = 0;    ///< puts degraded by store failures
  };
  Stats stats() const;

  sgx::Enclave& enclave() { return enclave_; }

  /// Cluster mode only; nullptr in single-store mode.
  const std::shared_ptr<net::ClusterTransport>& cluster() const {
    return cluster_;
  }

 private:
  /// The streaming data path issues its chunk GET/PUT windows and bumps the
  /// stream metric cells through the runtime's private machinery.
  friend class StreamSession;

  /// Shared tail of every constructor: scheme setup, PUT worker, telemetry.
  void init_common();

  /// Ship a window of chunk ops and return their replies in input order.
  /// With batching enabled the window rides the micro-batcher as one frame
  /// (splitting per node in cluster mode); otherwise each op is a plain v1
  /// round trip. Transport failures surface as per-op
  /// ErrorResponse{kUnavailable} — never as exceptions — so the streaming
  /// path can degrade chunk-by-chunk.
  std::vector<serialize::BatchReply> stream_ops(
      std::vector<serialize::BatchOp> ops);

  /// One request/response over the secure channel. Must be called from
  /// inside the enclave; takes the channel lock to keep sequence numbers
  /// aligned with delivery order. If the channel is poisoned, first asks
  /// the transport to recover() and installs any staged fresh key; throws
  /// StoreUnavailableError when the store cannot be reached.
  serialize::Message secure_round_trip(const serialize::Message& request);

  /// Swap in a SecureChannel under a freshly negotiated key, if the
  /// transport staged one. Caller holds channel_mu_.
  void install_rekey_locked() REQUIRES(channel_mu_);

  /// Like secure_round_trip, but routes through the micro-batcher when
  /// batching is enabled: the op may share a BatchRequest frame with other
  /// threads' ops. A per-op ErrorResponse surfaces as StoreUnavailableError,
  /// so fail-open degrades only this call.
  serialize::Message batched_round_trip(const serialize::Message& request);

  /// Submit `ops` to the micro-batcher and wait for their replies (in input
  /// order). One participating thread becomes the leader and ships every op
  /// pending at flush time in a single frame. A whole-batch transport
  /// failure is reported as ErrorResponse{kUnavailable} per op.
  std::vector<serialize::BatchReply> batch_execute(
      std::vector<serialize::BatchOp> ops);

  void enqueue_put(serialize::PutRequest put);
  void put_worker();
  void send_put(const serialize::PutRequest& put);
  /// Ship a drained run of queued PUTs — one BatchRequest frame when
  /// batching is on (and there is more than one), per-op messages otherwise.
  void send_put_batch(const std::vector<serialize::PutRequest>& puts);

  /// Hot-result cache (guarded by cache_mu_; only touched inside ECALLs).
  /// Lookup copies the plaintext out and refreshes recency; insert evicts
  /// from the LRU tail until the new entry fits under the byte cap.
  std::optional<Bytes> cache_lookup(const mle::Tag& tag);
  void cache_insert(const mle::Tag& tag, const Bytes& result);

  sgx::Enclave& enclave_;
  std::unique_ptr<net::Transport> transport_;
  std::shared_ptr<net::ClusterTransport> cluster_;
  RuntimeConfig config_;
  sgx::TrustedLibraryRegistry libraries_;
  std::optional<mle::BasicResultCipher> basic_cipher_;

  Mutex channel_mu_{LockRank::kRuntimeChannel};
  /// Single-link secure channel; disengaged in cluster mode (each cluster
  /// link owns its own channel).
  std::optional<net::SecureChannel> channel_ GUARDED_BY(channel_mu_);
  /// A failed round trip leaves the channel's sequence numbers in an
  /// unknown state; the key must never wrap another frame.
  bool channel_poisoned_ GUARDED_BY(channel_mu_) = false;
  /// Fresh session key staged by the transport's rekey callback, installed
  /// at the next secure_round_trip (own lock: the callback runs while
  /// channel_mu_ is already held by this thread).
  Mutex rekey_mu_{LockRank::kRekeyStaging};
  std::optional<secret::Buffer> pending_rekey_ GUARDED_BY(rekey_mu_);

  /// Lock-free metric cells; execute()'s hot path bumps these instead of
  /// taking a stats mutex.
  struct Metrics {
    telemetry::Counter calls;
    telemetry::Counter local_hits;
    telemetry::Counter hits;
    telemetry::Counter misses;
    telemetry::Counter failed_recoveries;
    telemetry::Counter degraded_calls;
    telemetry::Counter puts_sent;
    telemetry::Counter puts_rejected;
    telemetry::Counter puts_dropped;
    /// Whole-call latency, one histogram per outcome.
    std::array<telemetry::Histogram,
               static_cast<std::size_t>(telemetry::CallOutcome::kCount)>
        call_ns;
    /// Secure-channel round trips issued by this runtime (GET + PUT).
    telemetry::Histogram round_trip_ns;
    /// Batch frames shipped by the micro-batcher and their op counts.
    telemetry::Counter batches;
    telemetry::Histogram batch_ops;
    /// Streaming data path (see Stats for semantics).
    telemetry::Counter stream_puts;
    telemetry::Counter stream_gets;
    telemetry::Counter stream_whole_hits;
    telemetry::Counter stream_chunks;
    telemetry::Counter stream_chunk_hits;
    telemetry::Counter stream_bytes_deduped;
    telemetry::Counter stream_inline_chunks;
    telemetry::Counter stream_degraded;
    /// Manifest plaintext size per stored stream.
    telemetry::Histogram stream_manifest_bytes;
  };
  Metrics metrics_;

  /// Micro-batcher rendezvous (leader/follower; see RuntimeConfig::Batching).
  struct PendingOp {
    serialize::BatchOp op;
    serialize::BatchReply reply;
    bool done = false;
  };
  Mutex batch_mu_{LockRank::kBatch};
  CondVar batch_fill_cv_;  ///< leader waits for followers
  CondVar batch_done_cv_;  ///< followers wait for replies
  std::vector<PendingOp*> batch_pending_ GUARDED_BY(batch_mu_);
  bool batch_leader_active_ GUARDED_BY(batch_mu_) = false;
  /// Threads currently inside batch_execute (submitted, not yet answered).
  /// A leader that is provably alone — no other submitter in flight — skips
  /// the follower wait: nothing can arrive to share its frame, so waiting
  /// would only add latency. A single-threaded caller with batching enabled
  /// thus runs at unbatched speed.
  std::size_t batch_inflight_ GUARDED_BY(batch_mu_) = 0;

  // Hot-result cache state. Tags are SHA-256 outputs, so the first 8 bytes
  // hash them perfectly well.
  struct TagHash {
    std::size_t operator()(const mle::Tag& t) const {
      std::size_t h;
      static_assert(sizeof(h) <= 32);
      __builtin_memcpy(&h, t.data(), sizeof(h));
      return h;
    }
  };
  struct CacheEntry {
    Bytes result;
    std::list<mle::Tag>::iterator lru_it;
  };
  Mutex cache_mu_{LockRank::kRuntimeCache};
  std::unordered_map<mle::Tag, CacheEntry, TagHash> cache_ GUARDED_BY(cache_mu_);
  std::list<mle::Tag> cache_lru_ GUARDED_BY(cache_mu_);  ///< front = MRU
  std::size_t cache_bytes_ GUARDED_BY(cache_mu_) = 0;  ///< plaintext + bookkeeping
  sgx::TrustedCharge cache_charge_;

  // Asynchronous PUT pipeline.
  Mutex queue_mu_{LockRank::kRuntimeQueue};
  CondVar queue_cv_;
  CondVar drained_cv_;
  std::deque<serialize::PutRequest> put_queue_ GUARDED_BY(queue_mu_);
  std::size_t puts_in_flight_ GUARDED_BY(queue_mu_) = 0;
  bool shutting_down_ GUARDED_BY(queue_mu_) = false;
  std::thread put_thread_;

  // Declared last: the collector reads metrics_, cache, and queue state, so
  // it must deregister before any of them is destroyed.
  telemetry::Registry::Handle telemetry_handle_;
};

}  // namespace speed::runtime
