// Synthetic workload generation (the reproduction's stand-in for the
// paper's external datasets — see DESIGN.md substitutions).
//
//   * images       ~ "different sized images from the Internet" (Fig. 5a)
//   * text         ~ Boost library text files (Fig. 5b)
//   * packet traces~ m57-Patents / 4SICS captures (Fig. 5c)
//   * rule sets    ~ ~3,700 Snort rules (Fig. 5c)
//   * web pages    ~ CommonCrawl WET documents (Fig. 5d)
//
// All generators are seed-deterministic so experiments are reproducible,
// and duplicate-request streams are Zipf-skewed to model the hot repeated
// computations SPEED exploits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/match/packet.h"
#include "apps/match/ruleset.h"
#include "apps/sift/image.h"
#include "common/rng.h"

namespace speed::workload {

/// Structured grayscale image with blobs, bars, and corner features so SIFT
/// finds a healthy number of keypoints (plain noise yields almost none).
sift::Image synth_image(int width, int height, std::uint64_t seed);

/// Natural-language-like text: Zipf-distributed vocabulary plus repeated
/// phrases, sized to `bytes`. Compresses like real prose (~3-4x).
std::string synth_text(std::size_t bytes, std::uint64_t seed);

/// Synthetic web page (headline + paragraphs), for the BoW workload.
std::string synth_web_page(std::size_t approx_bytes, std::uint64_t seed);

/// `count` Snort-like rules: literal contents drawn from a token pool, a
/// fraction with an additional pcre option, and a fraction that is
/// pcre-only (no content gate — the expensive kind an IDS without a
/// prefilter must regex-execute on every packet).
std::vector<match::Rule> synth_ruleset(std::size_t count, std::uint64_t seed,
                                       double pcre_fraction = 0.15,
                                       double pcre_only_fraction = 0.0);

/// Packet trace; roughly `hit_fraction` of payloads embed some rule content
/// so scans produce alerts (like a real capture scanned with Snort rules).
match::PacketTrace synth_packet_trace(std::size_t count,
                                      std::size_t payload_bytes,
                                      const std::vector<match::Rule>& rules,
                                      double hit_fraction, std::uint64_t seed);

/// A stream of `length` indices over `universe` distinct items with Zipf
/// skew: models clients resubmitting popular inputs (dedup opportunities).
std::vector<std::size_t> zipf_request_stream(std::size_t universe,
                                             std::size_t length, double skew,
                                             std::uint64_t seed);

}  // namespace speed::workload
