#include "workload/stream_corpus.h"

#include <algorithm>

#include "common/rng.h"

namespace speed::workload {

namespace {

/// Content of building block `rank` under `seed` — a function of the two
/// alone, so every blob drawing rank r gets byte-identical content.
Bytes building_block(std::uint64_t seed, std::size_t rank,
                     std::size_t block_bytes) {
  Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (rank + 1)));
  return rng.bytes(block_bytes);
}

}  // namespace

Bytes synth_stream_blob(const StreamCorpusConfig& config, std::uint64_t seed,
                        std::uint64_t salt) {
  const std::size_t block = std::max<std::size_t>(1, config.block_bytes);
  const std::size_t universe = std::max<std::size_t>(1, config.universe);
  Xoshiro256 rng(seed ^ (salt * 0xbf58476d1ce4e5b9ULL));
  const ZipfSampler zipf(universe, config.skew);
  Bytes blob;
  blob.reserve(config.blob_bytes);
  while (blob.size() < config.blob_bytes) {
    const Bytes piece = building_block(seed, zipf(rng), block);
    const std::size_t take =
        std::min(piece.size(), config.blob_bytes - blob.size());
    blob.insert(blob.end(), piece.begin(), piece.begin() + take);
  }
  return blob;
}

Bytes edit_stream_blob(ByteView base, std::size_t count,
                       std::size_t edit_bytes, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes blob(base.begin(), base.end());
  for (std::size_t i = 0; i < count; ++i) {
    // +-50% size jitter so edits do not all land on the same granularity.
    const std::size_t span = std::max<std::size_t>(
        1, edit_bytes / 2 + rng.below(std::max<std::size_t>(1, edit_bytes)));
    const std::size_t offset = blob.empty() ? 0 : rng.below(blob.size() + 1);
    switch (rng.below(3)) {
      case 0: {  // insert fresh bytes
        const Bytes fresh = rng.bytes(span);
        blob.insert(blob.begin() + offset, fresh.begin(), fresh.end());
        break;
      }
      case 1: {  // delete
        const std::size_t n = std::min(span, blob.size() - offset);
        blob.erase(blob.begin() + offset, blob.begin() + offset + n);
        break;
      }
      default: {  // replace in place
        const std::size_t n = std::min(span, blob.size() - offset);
        const Bytes fresh = rng.bytes(n);
        std::copy(fresh.begin(), fresh.end(), blob.begin() + offset);
        break;
      }
    }
  }
  return blob;
}

Bytes shift_stream_blob(ByteView base, std::size_t shift_bytes,
                        std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes blob = rng.bytes(shift_bytes);
  blob.insert(blob.end(), base.begin(), base.end());
  return blob;
}

std::vector<Bytes> stream_version_chain(const StreamCorpusConfig& config,
                                        std::size_t versions,
                                        std::size_t edits_per_version,
                                        std::size_t edit_bytes,
                                        std::uint64_t seed) {
  std::vector<Bytes> chain;
  chain.reserve(versions);
  if (versions == 0) return chain;
  chain.push_back(synth_stream_blob(config, seed));
  for (std::size_t v = 1; v < versions; ++v) {
    chain.push_back(
        edit_stream_blob(chain.back(), edits_per_version, edit_bytes,
                         seed + 0x51ed5eedULL * v));
  }
  return chain;
}

}  // namespace speed::workload
