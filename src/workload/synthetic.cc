#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>

namespace speed::workload {

namespace {

/// Small English-like vocabulary; Zipf rank order.
const char* const kVocabulary[] = {
    "the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
    "system", "data", "secure", "enclave", "cloud", "compute", "result",
    "application", "network", "packet", "memory", "hash", "key", "store",
    "runtime", "trusted", "hardware", "function", "input", "output",
    "deduplication", "encryption", "performance", "overhead", "throughput",
    "latency", "protocol", "library", "developer", "pattern", "matching",
    "feature", "extraction", "compression", "processing", "analysis",
    "experiment", "evaluation", "baseline", "speedup", "measurement",
    "platform", "machine", "server", "client", "request", "response",
    "channel", "integrity", "confidentiality", "attestation", "isolation"};
constexpr std::size_t kVocabularySize = sizeof(kVocabulary) / sizeof(char*);

}  // namespace

sift::Image synth_image(int width, int height, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x1234567890abcdefULL);
  sift::Image img(width, height);

  // Smooth background gradient.
  const double gx = rng.uniform() * 0.3;
  const double gy = rng.uniform() * 0.3;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      img.at(x, y) = static_cast<float>(0.2 + gx * x / width + gy * y / height);
    }
  }

  // Gaussian blobs at random positions/scales (classic SIFT targets);
  // density scales with image area so larger images carry more features.
  const int blobs = std::max(10, width * height / 600) +
                    static_cast<int>(rng.below(8));
  for (int b = 0; b < blobs; ++b) {
    const double cx = rng.uniform() * width;
    const double cy = rng.uniform() * height;
    const double radius = 2.0 + rng.uniform() * std::min(width, height) / 12.0;
    const double amplitude = (rng.uniform() < 0.5 ? -0.5 : 0.5) * (0.4 + rng.uniform() * 0.6);
    const int r = static_cast<int>(radius * 3);
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        const int px = static_cast<int>(cx) + dx;
        const int py = static_cast<int>(cy) + dy;
        if (px < 0 || px >= width || py < 0 || py >= height) continue;
        const double d2 = static_cast<double>(dx) * dx + static_cast<double>(dy) * dy;
        img.at(px, py) += static_cast<float>(
            amplitude * std::exp(-d2 / (2 * radius * radius)));
      }
    }
  }

  // High-contrast rectangles (corners).
  const int rects = 2 + static_cast<int>(rng.below(4));
  for (int q = 0; q < rects; ++q) {
    const int x0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(std::max(1, width - 8))));
    const int y0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(std::max(1, height - 8))));
    const int w = 4 + static_cast<int>(rng.below(static_cast<std::uint64_t>(width / 4 + 1)));
    const int h = 4 + static_cast<int>(rng.below(static_cast<std::uint64_t>(height / 4 + 1)));
    const float level = static_cast<float>(rng.uniform());
    for (int y = y0; y < std::min(height, y0 + h); ++y) {
      for (int x = x0; x < std::min(width, x0 + w); ++x) {
        img.at(x, y) = 0.7f * img.at(x, y) + 0.3f * level;
      }
    }
  }

  // Mild pixel noise.
  for (float& p : img.pixels()) {
    p += static_cast<float>((rng.uniform() - 0.5) * 0.02);
    p = std::clamp(p, 0.0f, 1.0f);
  }
  return img;
}

std::string synth_text(std::size_t bytes, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0xfeedfacecafebeefULL);
  const ZipfSampler zipf(kVocabularySize, 1.05);
  std::string out;
  out.reserve(bytes + 64);
  std::size_t words_in_sentence = 0;
  while (out.size() < bytes) {
    // Occasionally splice in a repeated stock phrase (compressible runs).
    if (rng.below(20) == 0) {
      out += "secure deduplication of general computations inside enclaves ";
    } else {
      out += kVocabulary[zipf(rng)];
      out.push_back(' ');
    }
    if (++words_in_sentence >= 8 + rng.below(10)) {
      out.back() = '.';
      out.push_back(' ');
      words_in_sentence = 0;
    }
  }
  out.resize(bytes);
  return out;
}

std::string synth_web_page(std::size_t approx_bytes, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x0ddba11deadbea7ULL);
  std::string page = "title: " + synth_text(40, seed * 31 + 1) + "\n\n";
  while (page.size() < approx_bytes) {
    page += synth_text(200 + rng.below(400), rng());
    // Real crawl documents carry a long tail of unique tokens (names, ids,
    // urls); they are what make BoW maps big and shuffle phases expensive.
    const std::size_t rare = 5 + rng.below(15);
    for (std::size_t i = 0; i < rare; ++i) {
      page += " tok";
      page += std::to_string(rng.below(1000000));
    }
    page += "\n\n";
  }
  return page;
}

std::vector<match::Rule> synth_ruleset(std::size_t count, std::uint64_t seed,
                                       double pcre_fraction,
                                       double pcre_only_fraction) {
  Xoshiro256 rng(seed ^ 0x5eed5eed5eed5eedULL);
  std::vector<match::Rule> rules;
  rules.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    match::Rule rule;
    rule.id = static_cast<std::uint32_t>(1000 + i);
    rule.message = "synthetic rule " + std::to_string(rule.id);
    if (rng.uniform() < pcre_only_fraction) {
      // Content-free payload regex (distinct per rule via the prefix).
      rule.pcre = "p" + std::to_string(i) + "_[a-z]{3,}=[0-9]{2,}";
      rules.push_back(std::move(rule));
      continue;
    }
    const std::size_t contents = 1 + rng.below(2);
    for (std::size_t c = 0; c < contents; ++c) {
      // 6-14 byte distinctive literals (like exploit signatures).
      const std::size_t len = 6 + rng.below(9);
      std::string pat = "sig" + std::to_string(i) + "_";
      pat += rng.ascii(len);
      rule.contents.push_back(to_bytes(pat));
    }
    if (rng.uniform() < pcre_fraction) {
      // Simple payload regexes in the style of Snort web rules.
      switch (rng.below(4)) {
        case 0: rule.pcre = "GET /[a-z0-9_]{4,}\\.php"; break;
        case 1: rule.pcre = "cmd=[a-z]+&id=\\d+"; break;
        case 2: rule.pcre = "(admin|root|guest):[^\\s]{8,}"; break;
        default: rule.pcre = "\\x90{8,}"; break;  // NOP sled
      }
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

match::PacketTrace synth_packet_trace(std::size_t count,
                                      std::size_t payload_bytes,
                                      const std::vector<match::Rule>& rules,
                                      double hit_fraction, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x9ac4e77e12345678ULL);
  match::PacketTrace trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    match::Packet p;
    p.src_ip = static_cast<std::uint32_t>(rng());
    p.dst_ip = static_cast<std::uint32_t>(rng());
    p.src_port = static_cast<std::uint16_t>(1024 + rng.below(60000));
    p.dst_port = rng.below(2) ? 80 : 443;
    p.protocol = rng.below(10) ? 6 : 17;
    // HTTP-ish payload baseline.
    std::string body = "GET /index_" + std::to_string(rng.below(1000)) +
                       ".html HTTP/1.1\r\nHost: example" +
                       std::to_string(rng.below(100)) + ".com\r\n\r\n";
    body += rng.ascii(payload_bytes > body.size() ? payload_bytes - body.size() : 0);
    p.payload = to_bytes(body);
    // Embed a rule's content(s) with the requested probability.
    if (!rules.empty() && rng.uniform() < hit_fraction) {
      const match::Rule& r = rules[rng.below(rules.size())];
      std::size_t offset = rng.below(std::max<std::size_t>(p.payload.size() / 2, 1));
      for (const Bytes& content : r.contents) {
        if (offset + content.size() >= p.payload.size()) {
          p.payload.resize(offset + content.size() + 1);
        }
        std::copy(content.begin(), content.end(), p.payload.begin() + static_cast<long>(offset));
        offset += content.size() + 3;
      }
    }
    trace.push_back(std::move(p));
  }
  return trace;
}

std::vector<std::size_t> zipf_request_stream(std::size_t universe,
                                             std::size_t length, double skew,
                                             std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x21f7a54321f7a543ULL);
  const ZipfSampler zipf(universe, skew);
  std::vector<std::size_t> stream;
  stream.reserve(length);
  for (std::size_t i = 0; i < length; ++i) stream.push_back(zipf(rng));
  return stream;
}

}  // namespace speed::workload
