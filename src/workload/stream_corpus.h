// Streaming corpora for the chunk-dedup experiments (block-store case
// study and bench_stream).
//
// Real storage workloads that benefit from content-defined chunking share
// two traits: blobs are assembled from a skewed pool of recurring pieces
// (VM images, backups, container layers), and successive versions of a
// blob differ by small localized edits. These generators reproduce both
// knobs deterministically:
//
//   * synth_stream_blob   — Zipf-sampled building blocks; hot blocks recur
//                           within and across blobs, so corpora have a
//                           controllable intrinsic dedup ratio.
//   * edit_stream_blob    — random insert/delete/replace edits, the
//                           version-to-version delta of a mutating volume.
//   * shift_stream_blob   — prepend fresh bytes, shifting every offset:
//                           the classic fixed-chunking (and whole-call
//                           dedup) killer that CDC is built to survive.
//   * stream_version_chain— base blob plus a chain of edited snapshots.
//
// All functions are pure in their seed. Randomized tests derive the seed
// through tests/test_seed.h, so SPEED_TEST_SEED reproduces any workload.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace speed::workload {

struct StreamCorpusConfig {
  std::size_t blob_bytes = 256 * 1024;  ///< size of each generated blob
  std::size_t block_bytes = 4 * 1024;   ///< building-block granularity
  std::size_t universe = 64;            ///< distinct building blocks
  double skew = 1.0;                    ///< Zipf skew over the block pool
};

/// One blob of `config.blob_bytes`, assembled from Zipf-sampled building
/// blocks. Blocks are derived from `seed` alone (not the blob index), so
/// blobs generated with the same seed share their block pool and
/// deduplicate against each other; `salt` varies the sampling sequence.
Bytes synth_stream_blob(const StreamCorpusConfig& config, std::uint64_t seed,
                        std::uint64_t salt = 0);

/// `count` random edits applied to `base`: each inserts, deletes, or
/// replaces roughly `edit_bytes` at a random offset. Models the delta
/// between two snapshots of the same volume.
Bytes edit_stream_blob(ByteView base, std::size_t count,
                       std::size_t edit_bytes, std::uint64_t seed);

/// `base` with `shift_bytes` of fresh data prepended — every byte offset
/// moves, no content changes.
Bytes shift_stream_blob(ByteView base, std::size_t shift_bytes,
                        std::uint64_t seed);

/// Version 0 is a fresh blob; each later version is edit_stream_blob of its
/// predecessor. The shape bench_stream replays against put().
std::vector<Bytes> stream_version_chain(const StreamCorpusConfig& config,
                                        std::size_t versions,
                                        std::size_t edits_per_version,
                                        std::size_t edit_bytes,
                                        std::uint64_t seed);

}  // namespace speed::workload
