#include "common/bytes.h"

#include <stdexcept>

namespace speed {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("hex_decode: invalid hex digit");
}
}  // namespace

std::string hex_encode(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("hex_decode: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(hex[i]) << 4) |
                                            hex_nibble(hex[i + 1])));
  }
  return out;
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void secure_zero(void* p, std::size_t n) {
  volatile std::uint8_t* vp = static_cast<volatile std::uint8_t*>(p);
  while (n--) *vp++ = 0;
}

Bytes xor_bytes(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_bytes: length mismatch");
  }
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

}  // namespace speed
