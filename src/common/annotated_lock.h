// Capability-annotated locks with a global acquisition-order (rank) check.
//
// Every mutex in this codebase is a speed::Mutex (or speed::SharedMutex)
// constructed with an explicit LockRank. Two independent mechanisms make
// lock discipline a checked property instead of a convention:
//
//   * Clang Thread Safety Analysis (compile time). Under clang the wrapper
//     types carry `capability` attributes and the GUARDED_BY / REQUIRES /
//     ACQUIRE / RELEASE macros expand to the corresponding annotations, so
//     `-Wthread-safety -Wthread-safety-beta` (wired as -Werror in CI via
//     SPEED_WERROR) rejects unlocked access to guarded fields and calls to
//     *_locked methods without their lock. On non-clang compilers every
//     macro expands to nothing and the wrappers degrade to thin shims over
//     std::mutex / std::shared_mutex — zero overhead, zero semantic change.
//
//   * LockRank ordering (run time, SPEED_LOCK_RANK_CHECK builds). Locks may
//     only be acquired in strictly increasing rank order per thread; a
//     violation calls the rank-violation handler (default: report + abort).
//     Any interleaving that would need ranks to decrease is a potential
//     deadlock cycle, so a clean run of the suite is evidence the documented
//     order in docs/LOCK_ORDER.md is acyclic — deadlock freedom by
//     construction. The canonical rank table lives in docs/LOCK_ORDER.md;
//     tools/lint/lockdiscipline.py keeps this enum and that table in sync.
//
// Condition variables: use speed::CondVar (std::condition_variable_any) and
// wait on the annotated Mutex directly — wait() releases/reacquires through
// Mutex::unlock()/lock(), so rank bookkeeping stays exact. Write waits as
// explicit `while (!pred) cv.wait(mu);` loops rather than the predicate
// overloads: the analysis treats a lambda as a separate function, so guarded
// fields read inside a predicate lambda would (correctly) fail to compile.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (standard names, see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Empty on other
// compilers.
// --------------------------------------------------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define SPEED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPEED_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) SPEED_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY SPEED_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) SPEED_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SPEED_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) SPEED_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SPEED_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) SPEED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SPEED_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SPEED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SPEED_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SPEED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SPEED_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  SPEED_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) SPEED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SPEED_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) SPEED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SPEED_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  SPEED_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) SPEED_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  SPEED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace speed {

// --------------------------------------------------------------------------
// Lock ranks. A thread may only acquire a lock of STRICTLY greater rank than
// every lock it already holds (MutexLockAll is the one blessed multi-lock of
// equal rank and acquires in a canonical order). The values are the
// documented acquisition order — see docs/LOCK_ORDER.md for the full table,
// the invariants behind each gap, and the two non-obvious placements
// (telemetry registry, transport sub-ranks).
// --------------------------------------------------------------------------

enum class LockRank : std::uint16_t {
  kApp = 100,              ///< BlockStore index, mapreduce result merge
  kRuntimeChannel = 200,   ///< DedupRuntime::channel_mu_
  kRuntimeAdaptive = 240,  ///< AdaptiveProfile::mu_ (standalone EMAs)
  kBatch = 300,            ///< DedupRuntime::batch_mu_ (micro-batcher)
  kClusterLink = 400,      ///< ClusterTransport Link::mu (per-node strand)
  kTelemetryRegistry = 450,///< Registry::mu_ (held across collectors)
  kRuntimeCache = 460,     ///< DedupRuntime::cache_mu_ (hot-result LRU)
  kRuntimeQueue = 470,     ///< DedupRuntime::queue_mu_ (async PUT queue)
  kTransport = 500,        ///< ResilientTransport::mu_ (breaker + reconnect)
  kTransportInject = 505,  ///< FaultInjectingTransport::mu_ (under resilient)
  kTransportLink = 510,    ///< TcpTransport / LoopbackTransport (innermost)
  kClusterNode = 530,      ///< InprocCluster Node::mu (dialed under resilient)
  kRekeyStaging = 540,     ///< rekey staging (runtime rekey_mu_, Link rekey_mu)
  kSession = 560,          ///< StoreSession::mu_ (per-session strand)
  kSwitchless = 580,       ///< SwitchlessRing::mu_ (submission ring)
  kAccess = 590,           ///< AccessPolicy / RateLimiter / GatedResultStore
  kStoreShard = 600,       ///< ResultStore Shard::mu (lock-striped dict)
  kStoreCluster = 620,     ///< ResultStore::cluster_mu_ (membership epoch)
  kQuota = 650,            ///< QuotaLedger Stripe::mu (inside a shard lock)
  kStoreWal = 700,         ///< ResultStore::wal_mu_ (MAC-chained WAL order)
  kBackendInject = 750,    ///< FaultInjectingBackend::mu_ (fault schedule)
  kBackend = 760,          ///< FileBackend::mu_, MemoryBackend Stripe::mu
  kBackendWal = 780,       ///< MemoryBackend::wal_mu_ (in-memory WAL tape)
  kServerConn = 840,       ///< StoreTcpServer Conn::mu (per-connection state)
  kServerPool = 850,       ///< StoreTcpServer ready_mu_ / completed_mu_
  kTrace = 900,            ///< TraceRing::mu_ (span push from any context)
  kCryptoDrbg = 950,       ///< Enclave::drbg_mu_, Drbg::system_bytes
};

constexpr std::uint16_t rank_value(LockRank r) {
  return static_cast<std::uint16_t>(r);
}

/// Called on an out-of-order acquisition attempt in rank-checked builds:
/// `acquiring` is the offending lock's rank, `held` the highest rank already
/// held by this thread. The default handler prints both and aborts. Tests
/// install their own handler to assert the check fires; the handler runs
/// INSTEAD of abort, and the acquisition then proceeds (the caller is a
/// test that knows what it is doing).
using RankViolationHandler = void (*)(LockRank acquiring, LockRank held);

namespace lockdetail {

#if defined(SPEED_LOCK_RANK_CHECK)

inline std::atomic<RankViolationHandler>& violation_handler() {
  static std::atomic<RankViolationHandler> handler{nullptr};
  return handler;
}

[[noreturn]] inline void default_violation(LockRank acquiring, LockRank held) {
  std::fprintf(stderr,
               "speed: lock-rank violation: acquiring rank %u while holding "
               "rank %u (acquisition order must strictly increase; see "
               "docs/LOCK_ORDER.md)\n",
               rank_value(acquiring), rank_value(held));
  std::abort();
}

/// Per-thread multiset of held ranks. Fixed capacity: a thread that nests
/// more than kMaxHeld locks is itself a discipline bug. Unlock order may be
/// arbitrary (guard objects in containers), so release removes the newest
/// matching entry rather than popping.
struct HeldRanks {
  static constexpr std::size_t kMaxHeld = 32;
  std::uint16_t ranks[kMaxHeld];
  std::size_t depth = 0;

  std::uint16_t max_held() const {
    std::uint16_t m = 0;
    for (std::size_t i = 0; i < depth; ++i) {
      if (ranks[i] > m) m = ranks[i];
    }
    return m;
  }
};

inline HeldRanks& held_ranks() {
  thread_local HeldRanks held;
  return held;
}

/// Rank check + bookkeeping for a blocking acquisition.
inline void note_acquire(LockRank rank) {
  HeldRanks& held = held_ranks();
  if (held.depth > 0) {
    const std::uint16_t top = held.max_held();
    if (top >= rank_value(rank)) {
      RankViolationHandler handler =
          violation_handler().load(std::memory_order_acquire);
      if (handler != nullptr) {
        handler(rank, static_cast<LockRank>(top));
      } else {
        default_violation(rank, static_cast<LockRank>(top));
      }
    }
  }
  if (held.depth < HeldRanks::kMaxHeld) held.ranks[held.depth] = rank_value(rank);
  ++held.depth;
}

/// Bookkeeping for a successful try-lock: no order check (a try that would
/// deadlock merely fails), but the rank still counts against later blocking
/// acquisitions.
inline void note_try_acquire(LockRank rank) {
  HeldRanks& held = held_ranks();
  if (held.depth < HeldRanks::kMaxHeld) held.ranks[held.depth] = rank_value(rank);
  ++held.depth;
}

inline void note_release(LockRank rank) {
  HeldRanks& held = held_ranks();
  if (held.depth > HeldRanks::kMaxHeld) {
    // Deep overflow: entries past the array were not recorded; just shrink.
    --held.depth;
    return;
  }
  for (std::size_t i = held.depth; i > 0; --i) {
    if (held.ranks[i - 1] == rank_value(rank)) {
      for (std::size_t j = i - 1; j + 1 < held.depth; ++j) {
        held.ranks[j] = held.ranks[j + 1];
      }
      --held.depth;
      return;
    }
  }
  // Releasing a rank that was never noted: tolerated (handler-continued
  // tests can reach here); do not underflow.
}

#else  // !SPEED_LOCK_RANK_CHECK

inline void note_acquire(LockRank) {}
inline void note_try_acquire(LockRank) {}
inline void note_release(LockRank) {}

#endif  // SPEED_LOCK_RANK_CHECK

}  // namespace lockdetail

/// Install a rank-violation handler (tests only); returns the previous one.
/// Passing nullptr restores the default report-and-abort behavior. In
/// builds without SPEED_LOCK_RANK_CHECK this is a no-op returning nullptr.
inline RankViolationHandler set_rank_violation_handler(
    RankViolationHandler handler) {
#if defined(SPEED_LOCK_RANK_CHECK)
  return lockdetail::violation_handler().exchange(handler,
                                                  std::memory_order_acq_rel);
#else
  (void)handler;
  return nullptr;
#endif
}

/// True when this build enforces rank order at run time.
constexpr bool lock_rank_check_enabled() {
#if defined(SPEED_LOCK_RANK_CHECK)
  return true;
#else
  return false;
#endif
}

// --------------------------------------------------------------------------
// Annotated mutex types.
// --------------------------------------------------------------------------

class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) noexcept : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    lockdetail::note_acquire(rank_);
    mu_.lock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
    lockdetail::note_release(rank_);
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockdetail::note_try_acquire(rank_);
    return true;
  }

  LockRank rank() const { return rank_; }

  /// Tell the analysis this capability is held — for code whose acquisition
  /// the analysis cannot track (the MutexLockAll range lock). Purely a
  /// compile-time fact; no runtime effect.
  void assert_held() const ASSERT_CAPABILITY(this) {}

 private:
  template <typename>
  friend class MutexLockAll;

  /// Untracked access for MutexLockAll only: the range lock does its own
  /// (single) rank note and must skip the per-element strict-order check.
  std::mutex& raw() { return mu_; }

  std::mutex mu_;
  const LockRank rank_;
};

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) noexcept : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    lockdetail::note_acquire(rank_);
    mu_.lock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
    lockdetail::note_release(rank_);
  }

  void lock_shared() ACQUIRE_SHARED() {
    lockdetail::note_acquire(rank_);
    mu_.lock_shared();
  }

  void unlock_shared() RELEASE_SHARED() {
    mu_.unlock_shared();
    lockdetail::note_release(rank_);
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockdetail::note_try_acquire(rank_);
    return true;
  }

  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    lockdetail::note_try_acquire(rank_);
    return true;
  }

  LockRank rank() const { return rank_; }

  void assert_held() const ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
};

// --------------------------------------------------------------------------
// Scoped guards.
// --------------------------------------------------------------------------

/// Exclusive RAII guard (the std::lock_guard shape).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Shared (reader) RAII guard over a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Exclusive writer guard over a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Guard with a mid-scope release/reacquire window (the std::unique_lock
/// shape the micro-batcher leader needs: drop the rendezvous lock across
/// the wire round trip, retake it to publish replies).
class SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  ~ScopedLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  void unlock() RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Locks a contiguous range of equal-rank Mutexes in index order — the one
/// sanctioned multi-lock (ResultStore snapshot/restore over all shards).
/// The range's rank is noted ONCE, so later nested acquisitions are checked
/// against it; the per-element capabilities are invisible to the analysis —
/// call `mu.assert_held()` on each element before touching guarded state.
template <typename GetMutex>
class MutexLockAll {
 public:
  MutexLockAll(std::size_t count, GetMutex get) NO_THREAD_SAFETY_ANALYSIS
      : count_(count),
        get_(get) {
    if (count_ > 0) lockdetail::note_acquire(get_(0).rank());
    for (std::size_t i = 0; i < count_; ++i) lock_raw(get_(i));
  }

  ~MutexLockAll() NO_THREAD_SAFETY_ANALYSIS {
    for (std::size_t i = count_; i > 0; --i) unlock_raw(get_(i - 1));
    if (count_ > 0) lockdetail::note_release(get_(0).rank());
  }

  MutexLockAll(const MutexLockAll&) = delete;
  MutexLockAll& operator=(const MutexLockAll&) = delete;

 private:
  // Bypass Mutex::lock()'s per-lock rank note: N equal ranks would trip the
  // strict ordering the rest of the system obeys. The range itself is noted
  // once in the constructor.
  static void lock_raw(Mutex& mu) NO_THREAD_SAFETY_ANALYSIS { mu.raw().lock(); }
  static void unlock_raw(Mutex& mu) NO_THREAD_SAFETY_ANALYSIS {
    mu.raw().unlock();
  }

  std::size_t count_;
  GetMutex get_;
};

/// Condition variable usable with the annotated Mutex: wait(mu) releases and
/// reacquires through the annotated lock()/unlock(), keeping rank
/// bookkeeping exact. The analysis treats the capability as held across the
/// wait (the abseil CondVar convention).
using CondVar = std::condition_variable_any;

}  // namespace speed
