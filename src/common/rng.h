// Deterministic (non-cryptographic) randomness for workload generation.
//
// Benchmarks and tests need reproducible inputs: the same seed must generate
// the same synthetic image / packet trace / web page on every run, or the
// dedup hit-rate of an experiment would not be stable. Cryptographic
// randomness (key generation, RCE challenges) lives in crypto/drbg.h instead
// and must NOT use these generators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace speed {

/// xoshiro256** 1.0 (Blackman & Vigna) seeded via SplitMix64.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()();

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// `n` random bytes.
  Bytes bytes(std::size_t n);

  /// Printable ASCII string of length `n` (for text workloads).
  std::string ascii(std::size_t n);

 private:
  std::uint64_t s_[4];
};

/// Zipf(s) sampler over ranks {0, ..., n-1}; rank 0 is the most popular.
/// Used to model skewed duplicate-request streams (hot computations repeat).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  std::size_t operator()(Xoshiro256& rng) const;

  std::size_t universe() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace speed
