// Byte-buffer primitives shared by every SPEED module.
//
// The whole system moves opaque binary blobs around (serialized inputs,
// ciphertexts, wire frames), so we standardize on std::vector<uint8_t> for
// owned buffers and std::span<const uint8_t> for borrowed views, plus the
// small set of helpers (concat, hex, constant-time compare, secure wipe)
// that otherwise get re-invented per module.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace speed {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Borrow the bytes of a string without copying.
inline ByteView as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copy a string's bytes into an owned buffer.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Copy a byte view into a std::string (for text payloads / test assertions).
inline std::string to_string(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Append `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Concatenate any number of byte views into one owned buffer.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  std::size_t total = (static_cast<std::size_t>(0) + ... + ByteView(views).size());
  out.reserve(total);
  (append(out, ByteView(views)), ...);
  return out;
}

/// Lowercase hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string hex_encode(ByteView data);

/// Decode lowercase/uppercase hex; throws std::invalid_argument on bad input.
Bytes hex_decode(std::string_view hex);

/// Constant-time equality; returns false on length mismatch without leaking
/// the mismatch position. Used for MACs and tags.
bool ct_equal(ByteView a, ByteView b);

/// Best-effort secure wipe that the optimizer cannot elide.
void secure_zero(void* p, std::size_t n);

/// XOR `b` into `a` element-wise; the buffers must be the same length.
/// Throws std::invalid_argument otherwise. Used by the RCE key wrap.
Bytes xor_bytes(ByteView a, ByteView b);

}  // namespace speed
