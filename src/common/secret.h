// Taint types for key material.
//
// SPEED's security argument (PROTOCOL.md §5, DESIGN.md) requires that the
// per-result key k, the secondary key h, session keys, X25519 private keys,
// and recovered plaintext never escape the trusted boundary except through
// deliberate, reviewed protocol steps. The telemetry label whitelist
// (telemetry/label.h) already enforces "labels can't leak" structurally;
// these types generalize that to "secrets can't leak":
//
//   * secret::Bytes<N> (fixed size) and secret::Buffer (dynamic) are the
//     only containers key material flows through;
//   * they are non-copyable (clone() is explicit), non-streamable, and
//     non-formattable — a secret cannot reach a log line, a metric label,
//     or an ostream by construction;
//   * operator== is deleted in favor of the constant-time ct_equal, so a
//     timing-leaky comparison of two secrets does not compile;
//   * contents are securely wiped on destruction, move-out, and wipe(),
//     covering early-return and exception paths without manual secure_zero;
//   * raw bytes escape only via reveal_for(Purpose) / release_for(Purpose),
//     where Purpose is a compile-time literal audit tag. Every escape site
//     in src/ must be listed in docs/SECRET_AUDIT.md; the secret-flow
//     linter (tools/lint/secretflow.py) fails CI on unaudited escapes.
//
// The types deliberately have no implicit conversion to ByteView: passing a
// secret to hex_encode, concat, a serializer, or an OCALL signature is a
// compile error unless routed through an audited reveal.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <span>
#include <stdexcept>
#include <utility>

#include "common/bytes.h"

namespace speed::secret {

namespace detail {
/// Charset for audit purpose tags: [a-z0-9_], same spirit as the telemetry
/// label whitelist — no room for runtime data to masquerade as a tag.
consteval bool purpose_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

consteval const char* checked_purpose(const char* s) {
  if (s == nullptr || *s == '\0') throw "secret purpose: empty tag";
  for (const char* p = s; *p != '\0'; ++p) {
    if (!purpose_char(*p)) throw "secret purpose: character outside [a-z0-9_]";
  }
  return s;
}
}  // namespace detail

/// Audit tag naming why a secret's raw bytes are being exposed. Only
/// constructible from a compile-time literal, so every reveal site carries a
/// greppable, linter-checkable purpose next to it in the source.
class Purpose {
 public:
  static consteval Purpose of(const char* tag) {
    return Purpose(detail::checked_purpose(tag));
  }
  const char* tag() const { return tag_; }

 private:
  consteval explicit Purpose(const char* tag) : tag_(tag) {}
  const char* tag_;
};

/// Fixed-size secret (X25519 scalars, shared secrets, secondary keys h).
template <std::size_t N>
class Bytes {
 public:
  Bytes() = default;  ///< zero-initialized

  /// Copy `b` (which must be exactly N bytes) into a fresh secret.
  static Bytes copy_of(ByteView b) {
    if (b.size() != N) {
      throw std::invalid_argument("secret::Bytes: size mismatch");
    }
    Bytes out;
    std::copy(b.begin(), b.end(), out.data_.begin());
    return out;
  }

  ~Bytes() { wipe(); }

  Bytes(Bytes&& other) noexcept : data_(other.data_) { other.wipe(); }
  Bytes& operator=(Bytes&& other) noexcept {
    if (this != &other) {
      data_ = other.data_;
      other.wipe();
    }
    return *this;
  }

  Bytes(const Bytes&) = delete;
  Bytes& operator=(const Bytes&) = delete;

  /// Explicit duplicate — the only way to copy a secret.
  Bytes clone() const {
    Bytes out;
    out.data_ = data_;
    return out;
  }

  static constexpr std::size_t size() { return N; }

  /// In-place fill target for trusted randomness / key derivation. Writing
  /// into a secret is always allowed; only reading out is audited.
  std::span<std::uint8_t, N> writable() { return data_; }

  /// Zero the contents now (also runs on destruction and move-out).
  void wipe() { secure_zero(data_.data(), N); }

  /// Timing-leaky comparison is a compile error; use ct_equal.
  bool operator==(const Bytes&) const = delete;

  /// Audited escape: expose the raw bytes for `purpose`. The (file, purpose)
  /// pair must be listed in docs/SECRET_AUDIT.md for files under src/.
  ByteView reveal_for([[maybe_unused]] Purpose purpose) const {
    return ByteView(data_.data(), N);
  }

  friend bool ct_equal(const Bytes& a, const Bytes& b) {
    return speed::ct_equal(ByteView(a.data_.data(), N),
                           ByteView(b.data_.data(), N));
  }
  friend bool ct_equal(const Bytes& a, ByteView b) {
    return speed::ct_equal(ByteView(a.data_.data(), N), b);
  }

  template <typename C, typename T>
  friend std::basic_ostream<C, T>& operator<<(std::basic_ostream<C, T>&,
                                              const Bytes&) = delete;

 private:
  std::array<std::uint8_t, N> data_{};
};

/// Dynamic-size secret (AES keys, session keys, recovered plaintext).
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t n) : data_(n, 0) {}

  static Buffer copy_of(ByteView b) {
    Buffer out;
    out.data_.assign(b.begin(), b.end());
    return out;
  }

  /// Take ownership of already-materialized plain bytes, pulling them into
  /// the secret domain (plain -> secret needs no audit; only the reverse
  /// direction does). The source is left empty.
  static Buffer absorb(speed::Bytes&& b) {
    Buffer out;
    out.data_ = std::move(b);
    b.clear();
    return out;
  }

  ~Buffer() { wipe(); }

  Buffer(Buffer&& other) noexcept : data_(std::move(other.data_)) {
    other.data_.clear();
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      wipe();
      data_ = std::move(other.data_);
      other.data_.clear();
    }
    return *this;
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  Buffer clone() const { return copy_of(ByteView(data_.data(), data_.size())); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<std::uint8_t> writable() { return data_; }

  void wipe() { secure_zero(data_.data(), data_.size()); }

  bool operator==(const Buffer&) const = delete;

  ByteView reveal_for([[maybe_unused]] Purpose purpose) const {
    return ByteView(data_.data(), data_.size());
  }

  /// Audited consuming escape: move the bytes out of the secret domain
  /// without a copy (ownership transfers, so nothing is left to wipe).
  /// Used where the protocol deliberately hands bytes onward — e.g. the
  /// recovered result returned to the application inside its enclave.
  speed::Bytes release_for([[maybe_unused]] Purpose purpose) && {
    return std::move(data_);
  }

  friend bool ct_equal(const Buffer& a, const Buffer& b) {
    return speed::ct_equal(ByteView(a.data_.data(), a.data_.size()),
                           ByteView(b.data_.data(), b.data_.size()));
  }
  friend bool ct_equal(const Buffer& a, ByteView b) {
    return speed::ct_equal(ByteView(a.data_.data(), a.data_.size()), b);
  }

  template <typename C, typename T>
  friend std::basic_ostream<C, T>& operator<<(std::basic_ostream<C, T>&,
                                              const Buffer&) = delete;

 private:
  speed::Bytes data_;
};

}  // namespace speed::secret
