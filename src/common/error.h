// Exception hierarchy for SPEED.
//
// Per the project's error-handling policy (C++ Core Guidelines I.10/E.2),
// failures to meet a function's postcondition throw. Expected outcomes that
// callers branch on — e.g. "tag not found in the store", "AEAD verification
// failed so treat as a miss" — are represented in return types, not thrown.
#pragma once

#include <stdexcept>
#include <string>

namespace speed {

/// Base class for all SPEED errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed wire data, truncated frames, bad serialization.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Misuse of or faults inside the simulated enclave runtime
/// (e.g. EPC exhaustion beyond the paging model, calls into a destroyed
/// enclave, attestation failures).
class EnclaveError : public Error {
 public:
  explicit EnclaveError(const std::string& what) : Error(what) {}
};

/// Cryptographic API misuse (bad key/IV lengths). Note: *authentication
/// failure* on decrypt is an expected outcome, reported via std::optional,
/// not via this exception.
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error(what) {}
};

/// Protocol violations between DedupRuntime and ResultStore.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

}  // namespace speed
