// Timing utilities used by the SGX cost model and the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace speed {

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  double elapsed_us() const { return static_cast<double>(elapsed_ns()) / 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Spin for approximately `ns` nanoseconds. The SGX simulator charges
/// ECALL/OCALL transition and EPC paging costs with real wall-clock time so
/// that the benchmarks reproduce the paper's with-SGX/without-SGX gap
/// (Fig. 6) instead of merely accounting for it.
inline void busy_wait_ns(std::uint64_t ns) {
  if (ns == 0) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // spin
  }
}

}  // namespace speed
