// Minimal fixed-width table printer for the benchmark harnesses.
//
// Every bench binary regenerating a paper table/figure prints its rows in a
// uniform, diff-friendly format so EXPERIMENTS.md can quote them directly.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace speed {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::ostream& os = std::cout)
      : headers_(std::move(headers)), os_(os) {
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print() const {
    print_row(headers_);
    std::string sep;
    for (std::size_t w : widths_) sep += std::string(w + 2, '-') + "+";
    os_ << sep << "\n";
    for (const auto& r : rows_) print_row(r);
    os_.flush();
  }

  static std::string fmt(double v, int precision = 3) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
  }

 private:
  void print_row(const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os_ << " " << std::setw(static_cast<int>(widths_[i])) << cells[i] << " |";
    }
    os_ << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
  std::ostream& os_;
};

}  // namespace speed
