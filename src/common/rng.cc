#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace speed {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Xoshiro256::below: bound == 0");
  // Lemire's nearly-divisionless method; the tiny modulo bias of the plain
  // multiply-shift is rejected away.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Bytes Xoshiro256::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t v = (*this)();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  if (i < n) {
    std::uint64_t v = (*this)();
    while (i < n) {
      out[i++] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

std::string Xoshiro256::ascii(std::size_t n) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:";
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kAlphabet[below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty universe");
  if (skew < 0) throw std::invalid_argument("ZipfSampler: negative skew");
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::operator()(Xoshiro256& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace speed
