# Empty compiler generated dependencies file for speed_common.
# This may be replaced when dependencies are built.
