file(REMOVE_RECURSE
  "CMakeFiles/speed_common.dir/bytes.cc.o"
  "CMakeFiles/speed_common.dir/bytes.cc.o.d"
  "CMakeFiles/speed_common.dir/rng.cc.o"
  "CMakeFiles/speed_common.dir/rng.cc.o.d"
  "libspeed_common.a"
  "libspeed_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
