file(REMOVE_RECURSE
  "libspeed_common.a"
)
