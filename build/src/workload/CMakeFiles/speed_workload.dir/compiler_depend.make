# Empty compiler generated dependencies file for speed_workload.
# This may be replaced when dependencies are built.
