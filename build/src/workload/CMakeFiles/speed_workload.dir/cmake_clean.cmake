file(REMOVE_RECURSE
  "CMakeFiles/speed_workload.dir/synthetic.cc.o"
  "CMakeFiles/speed_workload.dir/synthetic.cc.o.d"
  "libspeed_workload.a"
  "libspeed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
