
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/speed_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/speed_workload.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/speed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/sift/CMakeFiles/speed_sift.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/match/CMakeFiles/speed_match.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/speed_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
