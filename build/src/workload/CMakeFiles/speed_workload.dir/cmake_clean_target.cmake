file(REMOVE_RECURSE
  "libspeed_workload.a"
)
