# Empty dependencies file for speed_crypto.
# This may be replaced when dependencies are built.
