file(REMOVE_RECURSE
  "libspeed_crypto.a"
)
