file(REMOVE_RECURSE
  "CMakeFiles/speed_crypto.dir/aes.cc.o"
  "CMakeFiles/speed_crypto.dir/aes.cc.o.d"
  "CMakeFiles/speed_crypto.dir/aesni.cc.o"
  "CMakeFiles/speed_crypto.dir/aesni.cc.o.d"
  "CMakeFiles/speed_crypto.dir/drbg.cc.o"
  "CMakeFiles/speed_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/speed_crypto.dir/gcm.cc.o"
  "CMakeFiles/speed_crypto.dir/gcm.cc.o.d"
  "CMakeFiles/speed_crypto.dir/hmac.cc.o"
  "CMakeFiles/speed_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/speed_crypto.dir/sha256.cc.o"
  "CMakeFiles/speed_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/speed_crypto.dir/x25519.cc.o"
  "CMakeFiles/speed_crypto.dir/x25519.cc.o.d"
  "libspeed_crypto.a"
  "libspeed_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
