
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/handshake.cc" "src/net/CMakeFiles/speed_net.dir/handshake.cc.o" "gcc" "src/net/CMakeFiles/speed_net.dir/handshake.cc.o.d"
  "/root/repo/src/net/resilient.cc" "src/net/CMakeFiles/speed_net.dir/resilient.cc.o" "gcc" "src/net/CMakeFiles/speed_net.dir/resilient.cc.o.d"
  "/root/repo/src/net/secure_channel.cc" "src/net/CMakeFiles/speed_net.dir/secure_channel.cc.o" "gcc" "src/net/CMakeFiles/speed_net.dir/secure_channel.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/speed_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/speed_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/speed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/speed_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/speed_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/speed_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
