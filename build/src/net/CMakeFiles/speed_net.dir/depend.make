# Empty dependencies file for speed_net.
# This may be replaced when dependencies are built.
