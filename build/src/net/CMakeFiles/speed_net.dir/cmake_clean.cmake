file(REMOVE_RECURSE
  "CMakeFiles/speed_net.dir/handshake.cc.o"
  "CMakeFiles/speed_net.dir/handshake.cc.o.d"
  "CMakeFiles/speed_net.dir/resilient.cc.o"
  "CMakeFiles/speed_net.dir/resilient.cc.o.d"
  "CMakeFiles/speed_net.dir/secure_channel.cc.o"
  "CMakeFiles/speed_net.dir/secure_channel.cc.o.d"
  "CMakeFiles/speed_net.dir/tcp.cc.o"
  "CMakeFiles/speed_net.dir/tcp.cc.o.d"
  "libspeed_net.a"
  "libspeed_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
