file(REMOVE_RECURSE
  "libspeed_net.a"
)
