file(REMOVE_RECURSE
  "CMakeFiles/speed_store.dir/access_control.cc.o"
  "CMakeFiles/speed_store.dir/access_control.cc.o.d"
  "CMakeFiles/speed_store.dir/result_store.cc.o"
  "CMakeFiles/speed_store.dir/result_store.cc.o.d"
  "CMakeFiles/speed_store.dir/tcp_server.cc.o"
  "CMakeFiles/speed_store.dir/tcp_server.cc.o.d"
  "libspeed_store.a"
  "libspeed_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
