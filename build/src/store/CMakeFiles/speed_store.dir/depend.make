# Empty dependencies file for speed_store.
# This may be replaced when dependencies are built.
