file(REMOVE_RECURSE
  "libspeed_store.a"
)
