# Empty dependencies file for speed_capi.
# This may be replaced when dependencies are built.
