file(REMOVE_RECURSE
  "libspeed_capi.a"
)
