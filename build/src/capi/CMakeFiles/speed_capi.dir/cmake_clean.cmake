file(REMOVE_RECURSE
  "CMakeFiles/speed_capi.dir/speed_c.cc.o"
  "CMakeFiles/speed_capi.dir/speed_c.cc.o.d"
  "libspeed_capi.a"
  "libspeed_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
