# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("sgx")
subdirs("serialize")
subdirs("net")
subdirs("mle")
subdirs("store")
subdirs("runtime")
subdirs("capi")
subdirs("apps/deflate")
subdirs("apps/sift")
subdirs("apps/match")
subdirs("apps/mapreduce")
subdirs("workload")
