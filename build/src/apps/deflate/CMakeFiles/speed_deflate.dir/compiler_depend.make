# Empty compiler generated dependencies file for speed_deflate.
# This may be replaced when dependencies are built.
