file(REMOVE_RECURSE
  "libspeed_deflate.a"
)
