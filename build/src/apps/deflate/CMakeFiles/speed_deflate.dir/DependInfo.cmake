
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/deflate/checksum.cc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/checksum.cc.o" "gcc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/checksum.cc.o.d"
  "/root/repo/src/apps/deflate/container.cc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/container.cc.o" "gcc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/container.cc.o.d"
  "/root/repo/src/apps/deflate/deflate.cc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/deflate.cc.o" "gcc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/deflate.cc.o.d"
  "/root/repo/src/apps/deflate/huffman.cc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/huffman.cc.o" "gcc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/huffman.cc.o.d"
  "/root/repo/src/apps/deflate/lz77.cc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/lz77.cc.o" "gcc" "src/apps/deflate/CMakeFiles/speed_deflate.dir/lz77.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/speed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
