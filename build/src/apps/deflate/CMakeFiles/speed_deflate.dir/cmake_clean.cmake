file(REMOVE_RECURSE
  "CMakeFiles/speed_deflate.dir/checksum.cc.o"
  "CMakeFiles/speed_deflate.dir/checksum.cc.o.d"
  "CMakeFiles/speed_deflate.dir/container.cc.o"
  "CMakeFiles/speed_deflate.dir/container.cc.o.d"
  "CMakeFiles/speed_deflate.dir/deflate.cc.o"
  "CMakeFiles/speed_deflate.dir/deflate.cc.o.d"
  "CMakeFiles/speed_deflate.dir/huffman.cc.o"
  "CMakeFiles/speed_deflate.dir/huffman.cc.o.d"
  "CMakeFiles/speed_deflate.dir/lz77.cc.o"
  "CMakeFiles/speed_deflate.dir/lz77.cc.o.d"
  "libspeed_deflate.a"
  "libspeed_deflate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
