file(REMOVE_RECURSE
  "libspeed_match.a"
)
