file(REMOVE_RECURSE
  "CMakeFiles/speed_match.dir/aho_corasick.cc.o"
  "CMakeFiles/speed_match.dir/aho_corasick.cc.o.d"
  "CMakeFiles/speed_match.dir/regex.cc.o"
  "CMakeFiles/speed_match.dir/regex.cc.o.d"
  "CMakeFiles/speed_match.dir/ruleset.cc.o"
  "CMakeFiles/speed_match.dir/ruleset.cc.o.d"
  "libspeed_match.a"
  "libspeed_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
