# Empty dependencies file for speed_match.
# This may be replaced when dependencies are built.
