# Empty compiler generated dependencies file for speed_match.
# This may be replaced when dependencies are built.
