
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/match/aho_corasick.cc" "src/apps/match/CMakeFiles/speed_match.dir/aho_corasick.cc.o" "gcc" "src/apps/match/CMakeFiles/speed_match.dir/aho_corasick.cc.o.d"
  "/root/repo/src/apps/match/regex.cc" "src/apps/match/CMakeFiles/speed_match.dir/regex.cc.o" "gcc" "src/apps/match/CMakeFiles/speed_match.dir/regex.cc.o.d"
  "/root/repo/src/apps/match/ruleset.cc" "src/apps/match/CMakeFiles/speed_match.dir/ruleset.cc.o" "gcc" "src/apps/match/CMakeFiles/speed_match.dir/ruleset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/speed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/speed_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
