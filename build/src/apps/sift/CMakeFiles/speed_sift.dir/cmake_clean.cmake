file(REMOVE_RECURSE
  "CMakeFiles/speed_sift.dir/image.cc.o"
  "CMakeFiles/speed_sift.dir/image.cc.o.d"
  "CMakeFiles/speed_sift.dir/sift.cc.o"
  "CMakeFiles/speed_sift.dir/sift.cc.o.d"
  "libspeed_sift.a"
  "libspeed_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
