file(REMOVE_RECURSE
  "libspeed_sift.a"
)
