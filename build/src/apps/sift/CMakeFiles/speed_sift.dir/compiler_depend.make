# Empty compiler generated dependencies file for speed_sift.
# This may be replaced when dependencies are built.
