file(REMOVE_RECURSE
  "CMakeFiles/speed_mapreduce.dir/bow.cc.o"
  "CMakeFiles/speed_mapreduce.dir/bow.cc.o.d"
  "libspeed_mapreduce.a"
  "libspeed_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
