# Empty compiler generated dependencies file for speed_mapreduce.
# This may be replaced when dependencies are built.
