file(REMOVE_RECURSE
  "libspeed_mapreduce.a"
)
