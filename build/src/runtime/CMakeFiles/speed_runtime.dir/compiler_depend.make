# Empty compiler generated dependencies file for speed_runtime.
# This may be replaced when dependencies are built.
