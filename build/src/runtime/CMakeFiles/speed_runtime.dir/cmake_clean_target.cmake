file(REMOVE_RECURSE
  "libspeed_runtime.a"
)
