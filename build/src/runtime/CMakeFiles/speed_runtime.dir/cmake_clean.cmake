file(REMOVE_RECURSE
  "CMakeFiles/speed_runtime.dir/dedup_runtime.cc.o"
  "CMakeFiles/speed_runtime.dir/dedup_runtime.cc.o.d"
  "libspeed_runtime.a"
  "libspeed_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
