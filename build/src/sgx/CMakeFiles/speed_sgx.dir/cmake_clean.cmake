file(REMOVE_RECURSE
  "CMakeFiles/speed_sgx.dir/enclave.cc.o"
  "CMakeFiles/speed_sgx.dir/enclave.cc.o.d"
  "libspeed_sgx.a"
  "libspeed_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
