# Empty compiler generated dependencies file for speed_sgx.
# This may be replaced when dependencies are built.
