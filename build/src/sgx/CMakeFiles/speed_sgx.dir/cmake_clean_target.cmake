file(REMOVE_RECURSE
  "libspeed_sgx.a"
)
