file(REMOVE_RECURSE
  "CMakeFiles/speed_mle.dir/rce.cc.o"
  "CMakeFiles/speed_mle.dir/rce.cc.o.d"
  "CMakeFiles/speed_mle.dir/tag.cc.o"
  "CMakeFiles/speed_mle.dir/tag.cc.o.d"
  "libspeed_mle.a"
  "libspeed_mle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_mle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
