# Empty dependencies file for speed_mle.
# This may be replaced when dependencies are built.
