file(REMOVE_RECURSE
  "libspeed_mle.a"
)
