file(REMOVE_RECURSE
  "CMakeFiles/speed_serialize.dir/wire.cc.o"
  "CMakeFiles/speed_serialize.dir/wire.cc.o.d"
  "libspeed_serialize.a"
  "libspeed_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
