# Empty compiler generated dependencies file for speed_serialize.
# This may be replaced when dependencies are built.
