file(REMOVE_RECURSE
  "libspeed_serialize.a"
)
