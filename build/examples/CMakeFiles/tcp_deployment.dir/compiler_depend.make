# Empty compiler generated dependencies file for tcp_deployment.
# This may be replaced when dependencies are built.
