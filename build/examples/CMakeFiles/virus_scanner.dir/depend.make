# Empty dependencies file for virus_scanner.
# This may be replaced when dependencies are built.
