file(REMOVE_RECURSE
  "CMakeFiles/virus_scanner.dir/virus_scanner.cpp.o"
  "CMakeFiles/virus_scanner.dir/virus_scanner.cpp.o.d"
  "virus_scanner"
  "virus_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virus_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
