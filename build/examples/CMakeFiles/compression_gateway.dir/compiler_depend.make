# Empty compiler generated dependencies file for compression_gateway.
# This may be replaced when dependencies are built.
