file(REMOVE_RECURSE
  "CMakeFiles/compression_gateway.dir/compression_gateway.cpp.o"
  "CMakeFiles/compression_gateway.dir/compression_gateway.cpp.o.d"
  "compression_gateway"
  "compression_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
