file(REMOVE_RECURSE
  "CMakeFiles/bow_analytics.dir/bow_analytics.cpp.o"
  "CMakeFiles/bow_analytics.dir/bow_analytics.cpp.o.d"
  "bow_analytics"
  "bow_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bow_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
