# Empty compiler generated dependencies file for bow_analytics.
# This may be replaced when dependencies are built.
