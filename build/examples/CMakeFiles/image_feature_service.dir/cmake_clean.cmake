file(REMOVE_RECURSE
  "CMakeFiles/image_feature_service.dir/image_feature_service.cpp.o"
  "CMakeFiles/image_feature_service.dir/image_feature_service.cpp.o.d"
  "image_feature_service"
  "image_feature_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_feature_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
