# Empty dependencies file for image_feature_service.
# This may be replaced when dependencies are built.
