# Empty compiler generated dependencies file for bench_fig5d_bow.
# This may be replaced when dependencies are built.
