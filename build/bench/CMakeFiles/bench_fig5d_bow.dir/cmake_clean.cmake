file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5d_bow.dir/bench_fig5d_bow.cc.o"
  "CMakeFiles/bench_fig5d_bow.dir/bench_fig5d_bow.cc.o.d"
  "bench_fig5d_bow"
  "bench_fig5d_bow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5d_bow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
