file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_sift.dir/bench_fig5a_sift.cc.o"
  "CMakeFiles/bench_fig5a_sift.dir/bench_fig5a_sift.cc.o.d"
  "bench_fig5a_sift"
  "bench_fig5a_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
