# Empty dependencies file for bench_fig5a_sift.
# This may be replaced when dependencies are built.
