file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_transitions.dir/bench_ablation_transitions.cc.o"
  "CMakeFiles/bench_ablation_transitions.dir/bench_ablation_transitions.cc.o.d"
  "bench_ablation_transitions"
  "bench_ablation_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
