file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_async_put.dir/bench_ablation_async_put.cc.o"
  "CMakeFiles/bench_ablation_async_put.dir/bench_ablation_async_put.cc.o.d"
  "bench_ablation_async_put"
  "bench_ablation_async_put.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_async_put.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
