# Empty dependencies file for bench_ablation_async_put.
# This may be replaced when dependencies are built.
