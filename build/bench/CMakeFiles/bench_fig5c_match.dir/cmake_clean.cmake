file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_match.dir/bench_fig5c_match.cc.o"
  "CMakeFiles/bench_fig5c_match.dir/bench_fig5c_match.cc.o.d"
  "bench_fig5c_match"
  "bench_fig5c_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
