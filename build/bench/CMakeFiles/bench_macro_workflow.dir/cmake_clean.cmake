file(REMOVE_RECURSE
  "CMakeFiles/bench_macro_workflow.dir/bench_macro_workflow.cc.o"
  "CMakeFiles/bench_macro_workflow.dir/bench_macro_workflow.cc.o.d"
  "bench_macro_workflow"
  "bench_macro_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_macro_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
