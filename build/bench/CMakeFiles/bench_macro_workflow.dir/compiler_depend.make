# Empty compiler generated dependencies file for bench_macro_workflow.
# This may be replaced when dependencies are built.
