file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_store.dir/bench_fig6_store.cc.o"
  "CMakeFiles/bench_fig6_store.dir/bench_fig6_store.cc.o.d"
  "bench_fig6_store"
  "bench_fig6_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
