# Empty dependencies file for bench_fig6_store.
# This may be replaced when dependencies are built.
