# Empty dependencies file for bench_fig5b_deflate.
# This may be replaced when dependencies are built.
