file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_deflate.dir/bench_fig5b_deflate.cc.o"
  "CMakeFiles/bench_fig5b_deflate.dir/bench_fig5b_deflate.cc.o.d"
  "bench_fig5b_deflate"
  "bench_fig5b_deflate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
