# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sgx_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/mle_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/deflate_test[1]_include.cmake")
include("/root/repo/build/tests/sift_test[1]_include.cmake")
include("/root/repo/build/tests/match_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/x25519_test[1]_include.cmake")
include("/root/repo/build/tests/handshake_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/capi_test[1]_include.cmake")
include("/root/repo/build/tests/access_control_test[1]_include.cmake")
include("/root/repo/build/tests/container_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/params_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
