
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/fault_injection_test.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/fault_injection_test.dir/fault_injection_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/speed_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mle/CMakeFiles/speed_mle.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/speed_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/speed_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/speed_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/speed_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/speed_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/speed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
