file(REMOVE_RECURSE
  "CMakeFiles/sift_test.dir/sift_test.cc.o"
  "CMakeFiles/sift_test.dir/sift_test.cc.o.d"
  "sift_test"
  "sift_test.pdb"
  "sift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
