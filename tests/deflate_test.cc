// Tests for the DEFLATE substrate: bit I/O, canonical Huffman, LZ77, and
// full compress/decompress round trips including golden fixed-Huffman
// bitstreams and adversarial decoder inputs.
#include <gtest/gtest.h>

#include "apps/deflate/bitio.h"
#include "apps/deflate/deflate.h"
#include "apps/deflate/huffman.h"
#include "apps/deflate/lz77.h"
#include "common/rng.h"

namespace speed::deflate {
namespace {

// ------------------------------------------------------------------ bit IO

TEST(BitIoTest, WriteReadRoundTrip) {
  BitWriter w;
  w.write_bits(0b101, 3);
  w.write_bits(0b11111111, 8);
  w.write_bits(0, 1);
  w.write_bits(0x1234, 16);
  const Bytes data = w.finish();

  BitReader r(data);
  EXPECT_EQ(r.read_bits(3), 0b101u);
  EXPECT_EQ(r.read_bits(8), 0b11111111u);
  EXPECT_EQ(r.read_bits(1), 0u);
  EXPECT_EQ(r.read_bits(16), 0x1234u);
}

TEST(BitIoTest, AlignmentAndBytes) {
  BitWriter w;
  w.write_bits(1, 1);
  w.align_to_byte();
  w.write_byte(0xab);
  const Bytes data = w.finish();
  ASSERT_EQ(data.size(), 2u);

  BitReader r(data);
  EXPECT_EQ(r.read_bit(), 1u);
  r.align_to_byte();
  EXPECT_EQ(r.read_byte(), 0xab);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitIoTest, ReaderThrowsPastEnd) {
  const Bytes one = {0xff};
  BitReader r(one);
  r.read_bits(8);
  EXPECT_THROW(r.read_bit(), SerializationError);
}

TEST(BitIoTest, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b1, 1), 0b1u);
  EXPECT_EQ(reverse_bits(0b100, 3), 0b001u);
  EXPECT_EQ(reverse_bits(0b1010, 4), 0b0101u);
  EXPECT_EQ(reverse_bits(0x8000 >> 1, 15), 1u);
}

// ----------------------------------------------------------------- huffman

TEST(HuffmanTest, LengthsRespectKraftAndLimit) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freqs(288);
    for (auto& f : freqs) f = rng.below(1000);
    const auto lengths = build_code_lengths(freqs);
    std::uint64_t kraft = 0;
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      if (freqs[i] > 0) {
        ASSERT_GE(lengths[i], 1) << "present symbol needs a code";
        ASSERT_LE(lengths[i], kMaxCodeBits);
        kraft += 1ull << (kMaxCodeBits - lengths[i]);
      } else {
        ASSERT_EQ(lengths[i], 0);
      }
    }
    EXPECT_LE(kraft, 1ull << kMaxCodeBits) << "Kraft inequality";
  }
}

TEST(HuffmanTest, SkewedFrequenciesHitTheLimit) {
  // Exponential frequencies would want depth > 15 without limiting.
  std::vector<std::uint64_t> freqs(30);
  std::uint64_t f = 1;
  for (auto& v : freqs) {
    v = f;
    f = f * 2 + 1;
  }
  const auto lengths = build_code_lengths(freqs);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_LE(lengths[i], kMaxCodeBits);
    EXPECT_GE(lengths[i], 1);
  }
}

TEST(HuffmanTest, SingleSymbolGetsOneBit) {
  std::vector<std::uint64_t> freqs(10, 0);
  freqs[4] = 99;
  const auto lengths = build_code_lengths(freqs);
  EXPECT_EQ(lengths[4], 1);
}

TEST(HuffmanTest, EmptyAlphabetAllZero) {
  const auto lengths = build_code_lengths(std::vector<std::uint64_t>(5, 0));
  for (const auto l : lengths) EXPECT_EQ(l, 0);
}

TEST(HuffmanTest, CanonicalCodesArePrefixFree) {
  const std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto codes = assign_canonical_codes(lengths);
  // RFC 1951 worked example: lengths {3,3,3,3,3,2,4,4} ->
  // codes {010,011,100,101,110,00,1110,1111}.
  EXPECT_EQ(codes[5], 0b00u);
  EXPECT_EQ(codes[0], 0b010u);
  EXPECT_EQ(codes[6], 0b1110u);
  EXPECT_EQ(codes[7], 0b1111u);
}

TEST(HuffmanTest, EncodeDecodeAllSymbols) {
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> freqs(60);
  for (auto& f : freqs) f = 1 + rng.below(500);
  const auto lengths = build_code_lengths(freqs);
  const HuffmanEncoder enc(lengths);
  const HuffmanDecoder dec(lengths);

  std::vector<std::size_t> symbols;
  for (int i = 0; i < 2000; ++i) symbols.push_back(rng.below(60));

  BitWriter w;
  for (const auto s : symbols) enc.write_symbol(w, s);
  const Bytes data = w.finish();
  BitReader r(data);
  for (const auto s : symbols) {
    ASSERT_EQ(dec.read_symbol(r), s);
  }
}

TEST(HuffmanTest, DecoderRejectsOversubscribedCode) {
  const std::vector<std::uint8_t> bad = {1, 1, 1};  // three 1-bit codes
  EXPECT_THROW(HuffmanDecoder{bad}, SerializationError);
}

// -------------------------------------------------------------------- LZ77

TEST(Lz77Test, RoundTripStructuredData) {
  std::string text;
  for (int i = 0; i < 200; ++i) text += "the quick brown fox ";
  const Bytes data = to_bytes(text);
  const auto tokens = lz77_parse(data);
  EXPECT_EQ(lz77_reconstruct(tokens), data);
  EXPECT_LT(tokens.size(), data.size() / 4) << "repetitive text must match well";
}

TEST(Lz77Test, RoundTripRandomData) {
  Xoshiro256 rng(11);
  const Bytes data = rng.bytes(50000);
  EXPECT_EQ(lz77_reconstruct(lz77_parse(data)), data);
}

TEST(Lz77Test, OverlappingMatch) {
  // "aaaa..." forces distance-1 matches that overlap their own output.
  const Bytes data(1000, 'a');
  const auto tokens = lz77_parse(data);
  EXPECT_EQ(lz77_reconstruct(tokens), data);
  EXPECT_LE(tokens.size(), 8u);
}

TEST(Lz77Test, EmptyAndTinyInputs) {
  EXPECT_TRUE(lz77_parse({}).empty());
  const Bytes two = {1, 2};
  const auto tokens = lz77_parse(two);
  EXPECT_EQ(tokens.size(), 2u);
  EXPECT_EQ(lz77_reconstruct(tokens), two);
}

TEST(Lz77Test, MatchesNeverExceedWindow) {
  Xoshiro256 rng(13);
  Bytes data = rng.bytes(1000);
  Bytes tail = data;
  // Repeat the first KB 40 KB later: beyond the window, must not match it.
  data.resize(40000, 0x7e);
  append(data, tail);
  for (const Token& t : lz77_parse(data)) {
    if (t.distance != 0) {
      EXPECT_LE(t.distance, kWindowSize);
      EXPECT_GE(t.length, kMinMatch);
      EXPECT_LE(t.length, kMaxMatch);
    }
  }
}

// --------------------------------------------------------------- end-to-end

TEST(DeflateTest, EmptyInput) {
  const Bytes stream = compress({});
  EXPECT_EQ(decompress(stream), Bytes{});
}

TEST(DeflateTest, RoundTripText) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "SPEED accelerates enclave applications via secure deduplication. ";
  }
  const Bytes data = to_bytes(text);
  const Bytes stream = compress(data);
  EXPECT_EQ(decompress(stream), data);
  EXPECT_LT(stream.size(), data.size() / 5) << "repetitive text compresses well";
}

TEST(DeflateTest, RandomDataFallsBackGracefully) {
  Xoshiro256 rng(17);
  const Bytes data = rng.bytes(100000);
  const Bytes stream = compress(data);
  EXPECT_EQ(decompress(stream), data);
  EXPECT_LT(stream.size(), data.size() + data.size() / 64 + 128)
      << "incompressible data must not blow up (stored blocks)";
}

TEST(DeflateTest, AllByteValues) {
  Bytes data;
  for (int round = 0; round < 16; ++round) {
    for (int b = 0; b < 256; ++b) data.push_back(static_cast<std::uint8_t>(b));
  }
  EXPECT_EQ(decompress(compress(data)), data);
}

TEST(DeflateTest, MultiBlockStreams) {
  Xoshiro256 rng(19);
  // Small block size forces multiple blocks with different types.
  DeflateOptions opts;
  opts.block_tokens = 100;
  std::string text;
  for (int i = 0; i < 300; ++i) text += "abcabcabc random filler ";
  Bytes data = to_bytes(text);
  append(data, rng.bytes(5000));
  const Bytes stream = compress(data, opts);
  EXPECT_EQ(decompress(stream), data);
}

TEST(DeflateTest, GoldenFixedHuffmanStream) {
  // Hand-assembled fixed-Huffman block: literals 'a' (0x61), 'b', EOB.
  // 'a'=97 -> 8-bit code 0x30+97-0 ... literals 0-143 are codes 00110000
  // through 10111111. 'a' = 0b00110000 + 97 = 0b10010001.
  BitWriter w;
  w.write_bits(1, 1);  // BFINAL
  w.write_bits(1, 2);  // fixed
  w.write_bits(reverse_bits(0b00110000 + 'a', 8), 8);
  w.write_bits(reverse_bits(0b00110000 + 'b', 8), 8);
  w.write_bits(0, 7);  // EOB = code 0 (7 bits)
  const Bytes stream = w.finish();
  EXPECT_EQ(decompress(stream), to_bytes("ab"));
}

TEST(DeflateTest, GoldenStoredBlock) {
  // 1 00 <pad> 0300 fcff 'x' 'y' 'z'
  const Bytes stream = {0x01, 0x03, 0x00, 0xfc, 0xff, 'x', 'y', 'z'};
  EXPECT_EQ(decompress(stream), to_bytes("xyz"));
}

TEST(DeflateTest, MalformedStreamsThrow) {
  EXPECT_THROW(decompress({}), SerializationError);
  const Bytes reserved_type = {0x07};  // BFINAL=1, BTYPE=11
  EXPECT_THROW(decompress(reserved_type), SerializationError);
  const Bytes bad_stored = {0x01, 0x03, 0x00, 0x00, 0x00, 'x', 'y', 'z'};
  EXPECT_THROW(decompress(bad_stored), SerializationError);

  // Truncations of a valid stream must throw, not crash.
  const Bytes good = compress(to_bytes("truncate me please truncate me"));
  for (std::size_t cut = 0; cut + 1 < good.size(); ++cut) {
    EXPECT_THROW(decompress(ByteView(good).first(cut)), SerializationError);
  }
}

TEST(DeflateTest, OutputLimitEnforced) {
  const Bytes data(100000, 'a');  // highly compressible bomb-style input
  const Bytes stream = compress(data);
  EXPECT_THROW(decompress(stream, 1000), SerializationError);
  EXPECT_EQ(decompress(stream, 100000).size(), 100000u);
}

// Property sweep: round trip across sizes and data shapes.
struct DeflateCase {
  const char* name;
  std::size_t size;
  int shape;  // 0 random, 1 text-ish, 2 zeros, 3 alternating
};

class DeflateSweep : public ::testing::TestWithParam<DeflateCase> {};

TEST_P(DeflateSweep, RoundTrips) {
  const auto& p = GetParam();
  Xoshiro256 rng(p.size + static_cast<std::size_t>(p.shape));
  Bytes data;
  switch (p.shape) {
    case 0: data = rng.bytes(p.size); break;
    case 1: data = to_bytes(rng.ascii(p.size)); break;
    case 2: data = Bytes(p.size, 0); break;
    default:
      data.resize(p.size);
      for (std::size_t i = 0; i < p.size; ++i) {
        data[i] = static_cast<std::uint8_t>(i % 7);
      }
  }
  EXPECT_EQ(decompress(compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DeflateSweep,
    ::testing::Values(DeflateCase{"tiny_random", 1, 0},
                      DeflateCase{"small_random", 100, 0},
                      DeflateCase{"mid_random", 10000, 0},
                      DeflateCase{"big_random", 300000, 0},
                      DeflateCase{"tiny_text", 10, 1},
                      DeflateCase{"mid_text", 20000, 1},
                      DeflateCase{"big_text", 250000, 1},
                      DeflateCase{"zeros", 65536, 2},
                      DeflateCase{"pattern", 70000, 3}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace speed::deflate
