// Tests for the mini-MapReduce framework and the BoW computation.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/mapreduce/bow.h"
#include "apps/mapreduce/mapreduce.h"
#include "workload/synthetic.h"

namespace speed::mapreduce {
namespace {

TEST(MapReduceTest, WordCountBasics) {
  const std::vector<std::string> inputs = {"a b a", "b c", "a"};
  const std::function<void(const std::string&, Emitter<std::string, int>&)>
      mapper = [](const std::string& doc, Emitter<std::string, int>& out) {
        std::string word;
        for (const char c : doc + " ") {
          if (c == ' ') {
            if (!word.empty()) out.emit(word, 1);
            word.clear();
          } else {
            word.push_back(c);
          }
        }
      };
  const std::function<int(const std::string&, const std::vector<int>&)>
      reducer = [](const std::string&, const std::vector<int>& v) {
        return std::accumulate(v.begin(), v.end(), 0);
      };

  const auto result = run_job<std::string, std::string, int, int>(
      inputs, mapper, reducer);
  EXPECT_EQ(result.at("a"), 3);
  EXPECT_EQ(result.at("b"), 2);
  EXPECT_EQ(result.at("c"), 1);
  EXPECT_EQ(result.size(), 3u);
}

TEST(MapReduceTest, DeterministicAcrossWorkerCounts) {
  std::vector<std::string> docs;
  for (int i = 0; i < 50; ++i) {
    docs.push_back(workload::synth_text(500, static_cast<std::uint64_t>(i)));
  }
  BowOptions one_worker{.min_word_length = 2, .workers = 1};
  BowOptions four_workers{.min_word_length = 2, .workers = 4};
  EXPECT_EQ(bag_of_words(docs, one_worker), bag_of_words(docs, four_workers));
}

TEST(MapReduceTest, EmptyInputs) {
  const auto result = bag_of_words({});
  EXPECT_TRUE(result.empty());
  const auto result2 = bag_of_words({"", "", ""});
  EXPECT_TRUE(result2.empty());
}

TEST(MapReduceTest, ReducerSeesAllValuesForKey) {
  // Max-reduction: checks values are grouped, not pre-folded.
  const std::vector<int> inputs = {5, 3, 9, 1, 9, 2};
  const std::function<void(const int&, Emitter<std::string, int>&)> mapper =
      [](const int& v, Emitter<std::string, int>& out) {
        out.emit(v % 2 == 0 ? "even" : "odd", v);
      };
  const std::function<int(const std::string&, const std::vector<int>&)>
      reducer = [](const std::string&, const std::vector<int>& v) {
        int best = 0;
        for (const int x : v) best = std::max(best, x);
        return best;
      };
  const auto result =
      run_job<int, std::string, int, int>(inputs, mapper, reducer);
  EXPECT_EQ(result.at("odd"), 9);
  EXPECT_EQ(result.at("even"), 2);
}

TEST(TokenizeTest, LowercasesAndSplits) {
  const auto tokens = tokenize("Hello, World! API v2 — x", 2);
  const std::vector<std::string> expected = {"hello", "world", "api", "v2"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizeTest, MinLengthFilter) {
  EXPECT_TRUE(tokenize("a b c", 2).empty());
  EXPECT_EQ(tokenize("a bb c", 1).size(), 3u);
}

TEST(BowTest, CountsMatchNaiveOracle) {
  std::vector<std::string> docs;
  for (int i = 0; i < 10; ++i) {
    docs.push_back(workload::synth_web_page(800, static_cast<std::uint64_t>(i)));
  }
  const WordHistogram hist = bag_of_words(docs);

  WordHistogram oracle;
  for (const auto& d : docs) {
    for (const auto& t : tokenize(d, 2)) ++oracle[t];
  }
  EXPECT_EQ(hist, oracle);
  EXPECT_FALSE(hist.empty());
}

TEST(BowTest, HistogramSerdeRoundTrip) {
  const WordHistogram hist = bag_of_words({workload::synth_web_page(500, 7)});
  const Bytes data = serialize::serialize(hist);
  EXPECT_EQ(serialize::deserialize<WordHistogram>(data), hist);
}

}  // namespace
}  // namespace speed::mapreduce
