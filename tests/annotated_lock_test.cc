// Tests for src/common/annotated_lock.h: guard round-trips, try-lock
// semantics, the ScopedLock release/reacquire window, the MutexLockAll
// range lock, CondVar integration, and the run-time lock-rank checker
// (fire on a deliberate inversion, no fire on ascending order).
#include "common/annotated_lock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace speed {
namespace {

TEST(AnnotatedLockTest, MutexLockSerializesIncrements) {
  Mutex mu{LockRank::kApp};
  std::uint64_t counter GUARDED_BY(mu) = 0;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();

  MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(AnnotatedLockTest, TryLockFailsWhileHeldSucceedsAfterRelease) {
  Mutex mu{LockRank::kApp};
  mu.lock();
  // From another thread (same-thread re-try on std::mutex is undefined).
  std::thread contender([&] { EXPECT_FALSE(mu.try_lock()); });
  contender.join();
  mu.unlock();

  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(AnnotatedLockTest, ScopedLockReleaseWindowAdmitsOtherThreads) {
  Mutex mu{LockRank::kApp};
  std::atomic<bool> other_ran{false};

  ScopedLock lock(mu);
  lock.unlock();
  {
    std::thread other([&] {
      MutexLock inner(mu);
      other_ran.store(true);
    });
    other.join();
  }
  EXPECT_TRUE(other_ran.load());
  lock.lock();  // reacquire; destructor releases exactly once
}

TEST(AnnotatedLockTest, MutexLockAllHoldsEveryElement) {
  std::vector<std::unique_ptr<Mutex>> shards;
  for (int i = 0; i < 4; ++i) {
    shards.push_back(std::make_unique<Mutex>(LockRank::kStoreShard));
  }
  const auto get = [&](std::size_t i) -> Mutex& { return *shards[i]; };
  {
    MutexLockAll<decltype(get)> all(shards.size(), get);
    std::thread contender([&] {
      for (auto& shard : shards) EXPECT_FALSE(shard->try_lock());
    });
    contender.join();
  }
  // Destructor released the whole range.
  for (auto& shard : shards) {
    EXPECT_TRUE(shard->try_lock());
    shard->unlock();
  }
}

TEST(AnnotatedLockTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu{LockRank::kApp};
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;

  std::thread producer([&] {
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(AnnotatedLockTest, ReaderLocksShareWriterLockExcludes) {
  SharedMutex mu{LockRank::kAccess};
  int value GUARDED_BY(mu) = 7;

  // Two concurrent readers: both must be inside the lock at once.
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      ReaderLock lock(mu);
      const int now = inside.fetch_add(1) + 1;
      int prev = peak.load();
      while (prev < now && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      EXPECT_EQ(value, 7);
      inside.fetch_sub(1);
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(peak.load(), 2);

  {
    WriterLock lock(mu);
    value = 8;
  }
  ReaderLock lock(mu);
  EXPECT_EQ(value, 8);
}

// ---------------------------------------------------------------- rank check

std::atomic<int> g_violations{0};
std::atomic<std::uint16_t> g_last_acquiring{0};
std::atomic<std::uint16_t> g_last_held{0};

void record_violation(LockRank acquiring, LockRank held) {
  g_violations.fetch_add(1);
  g_last_acquiring.store(rank_value(acquiring));
  g_last_held.store(rank_value(held));
}

class RankCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!lock_rank_check_enabled()) {
      GTEST_SKIP() << "built without SPEED_LOCK_RANK_CHECK";
    }
    g_violations.store(0);
    prev_ = set_rank_violation_handler(&record_violation);
  }
  void TearDown() override {
    if (lock_rank_check_enabled()) set_rank_violation_handler(prev_);
  }
  RankViolationHandler prev_ = nullptr;
};

TEST_F(RankCheckTest, DeliberateInversionFires) {
  Mutex outer{LockRank::kStoreShard};    // 600
  Mutex inner{LockRank::kRuntimeChannel};  // 200
  {
    MutexLock a(outer);
    MutexLock b(inner);  // 200 under 600: out of order
  }
  EXPECT_EQ(g_violations.load(), 1);
  EXPECT_EQ(g_last_acquiring.load(), rank_value(LockRank::kRuntimeChannel));
  EXPECT_EQ(g_last_held.load(), rank_value(LockRank::kStoreShard));
}

TEST_F(RankCheckTest, EqualRankNestingFires) {
  Mutex first{LockRank::kStoreShard};
  Mutex second{LockRank::kStoreShard};
  {
    MutexLock a(first);
    MutexLock b(second);  // equal rank: the order must STRICTLY increase
  }
  EXPECT_EQ(g_violations.load(), 1);
}

TEST_F(RankCheckTest, AscendingOrderDoesNotFire) {
  Mutex low{LockRank::kApp};           // 100
  Mutex mid{LockRank::kStoreShard};    // 600
  Mutex high{LockRank::kCryptoDrbg};   // 950
  {
    MutexLock a(low);
    MutexLock b(mid);
    MutexLock c(high);
  }
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(RankCheckTest, ReleaseResetsTheCeiling) {
  Mutex low{LockRank::kApp};
  Mutex high{LockRank::kStoreShard};
  {
    MutexLock lock(high);
  }
  // high is released: acquiring the lower rank now is fine.
  MutexLock lock(low);
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(RankCheckTest, TryLockSkipsOrderCheckButCountsAsHeld) {
  Mutex outer{LockRank::kStoreShard};    // 600
  Mutex tried{LockRank::kRuntimeQueue};  // 470
  Mutex low{LockRank::kApp};             // 100
  {
    MutexLock a(outer);
    // A try-lock that would invert merely succeeds without a check (a try
    // that would deadlock just fails) — no violation...
    ASSERT_TRUE(tried.try_lock());
    EXPECT_EQ(g_violations.load(), 0);
    // ...but its rank still counts against later BLOCKING acquisitions.
    MutexLock b(low);
    EXPECT_EQ(g_violations.load(), 1);
    tried.unlock();
  }
}

TEST_F(RankCheckTest, HeldRanksAreThreadLocal) {
  Mutex high{LockRank::kStoreShard};
  Mutex low{LockRank::kApp};
  MutexLock lock(high);
  // Another thread's acquisitions are checked against ITS held set only.
  std::thread other([&] { MutexLock inner(low); });
  other.join();
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(RankCheckTest, MutexLockAllNotesRankOnce) {
  std::vector<std::unique_ptr<Mutex>> shards;
  for (int i = 0; i < 8; ++i) {
    shards.push_back(std::make_unique<Mutex>(LockRank::kStoreShard));
  }
  const auto get = [&](std::size_t i) -> Mutex& { return *shards[i]; };
  {
    // Eight equal-rank locks through the sanctioned range lock: no violation
    // (element-wise MutexLocks would fire on the second element).
    MutexLockAll<decltype(get)> all(shards.size(), get);
    EXPECT_EQ(g_violations.load(), 0);
    // The range's rank is live: a lower acquisition still trips.
    Mutex low{LockRank::kApp};
    MutexLock lock(low);
    EXPECT_EQ(g_violations.load(), 1);
  }
}

}  // namespace
}  // namespace speed
