// X25519 tests: RFC 7748 vectors, the iterated-ladder vector, and
// Diffie-Hellman properties.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "crypto/x25519.h"

namespace speed::crypto {
namespace {

X25519Key key_from_hex(const std::string& hex) {
  const Bytes b = hex_decode(hex);
  X25519Key k{};
  std::copy(b.begin(), b.end(), k.begin());
  return k;
}

std::string key_hex(const X25519Key& k) {
  return hex_encode(ByteView(k.data(), k.size()));
}

TEST(X25519Test, Rfc7748Vector1) {
  const auto scalar = key_from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto point = key_from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(key_hex(x25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519Test, Rfc7748Vector2) {
  const auto scalar = key_from_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const auto point = key_from_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(key_hex(x25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519Test, Rfc7748IteratedLadder) {
  // RFC 7748 §5.2: k = u = 0900...; iterate k, u = x25519(k, u), k.
  X25519Key k{};
  k[0] = 9;
  X25519Key u = k;
  X25519Key next = x25519(k, u);
  EXPECT_EQ(key_hex(next),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079")
      << "after 1 iteration";
  for (int i = 1; i < 1000; ++i) {
    u = k;
    k = next;
    next = x25519(k, u);
  }
  EXPECT_EQ(key_hex(next),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51")
      << "after 1000 iterations";
}

TEST(X25519Test, Rfc7748DiffieHellman) {
  // RFC 7748 §6.1 full DH example.
  const auto alice_priv = key_from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_priv = key_from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  const auto alice_pub = x25519_base(alice_priv);
  const auto bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(key_hex(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(key_hex(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const auto alice_scalar = secret::Bytes<kX25519KeySize>::copy_of(
      ByteView(alice_priv.data(), alice_priv.size()));
  const auto bob_scalar = secret::Bytes<kX25519KeySize>::copy_of(
      ByteView(bob_priv.data(), bob_priv.size()));
  secret::Bytes<kX25519KeySize> shared_a, shared_b;
  ASSERT_TRUE(x25519_shared(alice_scalar, bob_pub, shared_a));
  ASSERT_TRUE(x25519_shared(bob_scalar, alice_pub, shared_b));
  EXPECT_TRUE(ct_equal(shared_a, shared_b));
  EXPECT_EQ(
      hex_encode(shared_a.reveal_for(secret::Purpose::of("test_vector_check"))),
      "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519Test, RandomPairsAgree) {
  Drbg drbg(to_bytes("x25519-dh"));
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = x25519_generate(drbg);
    const auto b = x25519_generate(drbg);
    secret::Bytes<kX25519KeySize> sa, sb;
    ASSERT_TRUE(x25519_shared(a.private_key, b.public_key, sa));
    ASSERT_TRUE(x25519_shared(b.private_key, a.public_key, sb));
    EXPECT_TRUE(ct_equal(sa, sb));
    EXPECT_NE(a.public_key, b.public_key);
  }
}

TEST(X25519Test, LowOrderPointRejected) {
  Drbg drbg(to_bytes("low-order"));
  const auto pair = x25519_generate(drbg);
  X25519Key zero_point{};  // u = 0 is a low-order point
  secret::Bytes<kX25519KeySize> shared;
  EXPECT_FALSE(x25519_shared(pair.private_key, zero_point, shared));
}

TEST(X25519Test, ClampingMakesBitsIrrelevant) {
  Drbg drbg(to_bytes("clamp"));
  X25519Key scalar;
  drbg.fill(scalar);
  X25519Key variant = scalar;
  variant[0] |= 7;    // bits cleared by clamping
  variant[31] |= 128;  // top bit cleared by clamping
  EXPECT_EQ(x25519_base([&] {
              X25519Key s = scalar;
              s[0] &= 248;
              s[31] &= 127;
              s[31] |= 64;
              return s;
            }()),
            x25519_base([&] {
              X25519Key s = variant;
              s[0] &= 248;
              s[31] &= 127;
              s[31] |= 64;
              return s;
            }()));
}

}  // namespace
}  // namespace speed::crypto
