// Tests for the SIFT substrate: image primitives and feature-extraction
// invariants (determinism, localization, descriptor well-formedness,
// scale/shift behaviour).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/sift/sift.h"
#include "workload/synthetic.h"

namespace speed::sift {
namespace {

TEST(ImageTest, BasicAccessAndClamping) {
  Image img(4, 3);
  img.at(2, 1) = 0.5f;
  EXPECT_EQ(img.at(2, 1), 0.5f);
  EXPECT_EQ(img.at_clamped(-5, 1), img.at(0, 1));
  EXPECT_EQ(img.at_clamped(100, 2), img.at(3, 2));
  EXPECT_EQ(img.at_clamped(2, -1), img.at(2, 0));
}

TEST(ImageTest, GaussianBlurPreservesMeanAndSmooths) {
  Image img(32, 32);
  img.at(16, 16) = 1.0f;  // delta impulse
  const Image blurred = gaussian_blur(img, 2.0);

  double sum = 0, peak = 0;
  for (const float p : blurred.pixels()) {
    sum += p;
    peak = std::max<double>(peak, p);
  }
  EXPECT_NEAR(sum, 1.0, 0.02) << "blur is (nearly) mass-preserving";
  EXPECT_LT(peak, 0.1) << "impulse spreads out";
  EXPECT_GT(blurred.at(16, 16), blurred.at(20, 16)) << "monotone falloff";
}

TEST(ImageTest, BlurWithZeroSigmaIsIdentity) {
  const Image img = workload::synth_image(16, 16, 1);
  EXPECT_EQ(gaussian_blur(img, 0.0), img);
}

TEST(ImageTest, DownsampleHalves) {
  const Image img = workload::synth_image(33, 17, 2);
  const Image down = downsample_by_2(img);
  EXPECT_EQ(down.width(), 16);
  EXPECT_EQ(down.height(), 8);
  EXPECT_EQ(down.at(3, 2), img.at(6, 4));
}

TEST(ImageTest, FromGray8NormalizesAndValidates) {
  const Bytes pixels = {0, 128, 255, 64, 32, 16};
  const Image img = image_from_gray8(3, 2, pixels);
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(2, 0), 1.0f);
  EXPECT_THROW(image_from_gray8(4, 2, pixels), Error);
}

TEST(ImageTest, SerdeRoundTrip) {
  const Image img = workload::synth_image(24, 18, 3);
  const Bytes data = serialize::serialize(img);
  EXPECT_EQ(serialize::deserialize<Image>(data), img);
}

TEST(SiftTest, FindsKeypointsOnStructuredImage) {
  const Image img = workload::synth_image(128, 128, 42);
  const auto keypoints = extract_sift(img);
  EXPECT_GE(keypoints.size(), 10u) << "structured image must yield features";
  for (const Keypoint& kp : keypoints) {
    EXPECT_GE(kp.x, 0.0f);
    EXPECT_LT(kp.x, 128.0f);
    EXPECT_GE(kp.y, 0.0f);
    EXPECT_LT(kp.y, 128.0f);
    EXPECT_GT(kp.sigma, 0.0f);
    EXPECT_GE(kp.orientation, -3.1416f);
    EXPECT_LT(kp.orientation, 3.1416f);
  }
}

TEST(SiftTest, DeterministicAcrossRuns) {
  const Image img = workload::synth_image(96, 96, 7);
  const auto k1 = extract_sift(img);
  const auto k2 = extract_sift(img);
  EXPECT_EQ(k1, k2) << "dedup requires bitwise-deterministic extraction";
}

TEST(SiftTest, DescriptorsAreNormalizedAndNonTrivial) {
  const Image img = workload::synth_image(128, 128, 9);
  const auto keypoints = extract_sift(img);
  ASSERT_FALSE(keypoints.empty());
  for (const Keypoint& kp : keypoints) {
    double norm2 = 0;
    int nonzero = 0;
    for (const std::uint8_t d : kp.descriptor) {
      norm2 += (d / 512.0) * (d / 512.0);
      nonzero += d != 0;
    }
    EXPECT_GT(nonzero, 4) << "descriptor must carry structure";
    EXPECT_GT(norm2, 0.3) << "roughly unit norm after quantization";
    EXPECT_LT(norm2, 2.0);
  }
}

TEST(SiftTest, FlatImageYieldsNothing) {
  Image flat(64, 64);
  for (float& p : flat.pixels()) p = 0.5f;
  EXPECT_TRUE(extract_sift(flat).empty());
}

TEST(SiftTest, TinyImageYieldsNothingGracefully) {
  EXPECT_TRUE(extract_sift(Image(4, 4)).empty());
  EXPECT_TRUE(extract_sift(Image(0, 0)).empty());
}

TEST(SiftTest, BlobIsLocalized) {
  // A single bright blob: some keypoint should sit on it.
  Image img(64, 64);
  for (float& p : img.pixels()) p = 0.3f;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const double d2 = (x - 32.0) * (x - 32.0) + (y - 32.0) * (y - 32.0);
      img.at(x, y) += static_cast<float>(0.6 * std::exp(-d2 / (2 * 4.0 * 4.0)));
    }
  }
  const auto keypoints = extract_sift(img);
  ASSERT_FALSE(keypoints.empty());
  bool near_center = false;
  for (const Keypoint& kp : keypoints) {
    if (std::abs(kp.x - 32) < 4 && std::abs(kp.y - 32) < 4) near_center = true;
  }
  EXPECT_TRUE(near_center);
}

TEST(SiftTest, ShiftedImageShiftsKeypoints) {
  // Translate content by 8 pixels; the keypoint cloud should translate too.
  Image a(96, 96), b(96, 96);
  for (float& p : a.pixels()) p = 0.3f;
  for (float& p : b.pixels()) p = 0.3f;
  auto add_blob = [](Image& img, double cx, double cy) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
        img.at(x, y) += static_cast<float>(0.5 * std::exp(-d2 / (2 * 9.0)));
      }
    }
  };
  add_blob(a, 40, 40);
  add_blob(b, 48, 48);
  const auto ka = extract_sift(a);
  const auto kb = extract_sift(b);
  ASSERT_FALSE(ka.empty());
  ASSERT_FALSE(kb.empty());
  // Compare the strongest (first) keypoints' offsets.
  EXPECT_NEAR(kb[0].x - ka[0].x, 8.0, 2.0);
  EXPECT_NEAR(kb[0].y - ka[0].y, 8.0, 2.0);
}

TEST(SiftTest, MatchingDescriptorsAcrossNoise) {
  // The same scene with tiny noise: nearest-descriptor matching should link
  // keypoints at (almost) the same location.
  const Image a = workload::synth_image(128, 128, 21);
  Image b = a;
  Xoshiro256 rng(99);
  for (float& p : b.pixels()) {
    p = std::clamp(p + static_cast<float>((rng.uniform() - 0.5) * 0.01), 0.0f, 1.0f);
  }
  const auto ka = extract_sift(a);
  const auto kb = extract_sift(b);
  ASSERT_GE(ka.size(), 5u);
  ASSERT_GE(kb.size(), 5u);

  int good = 0, checked = 0;
  for (std::size_t i = 0; i < ka.size() && checked < 10; ++i) {
    double best = 1e18;
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < kb.size(); ++j) {
      const double d = descriptor_distance(ka[i], kb[j]);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    ++checked;
    if (std::abs(ka[i].x - kb[best_j].x) < 3 &&
        std::abs(ka[i].y - kb[best_j].y) < 3) {
      ++good;
    }
  }
  EXPECT_GE(good * 2, checked) << "most matches should be spatially correct";
}

TEST(SiftTest, KeypointSerdeRoundTrip) {
  const Image img = workload::synth_image(64, 64, 5);
  const auto keypoints = extract_sift(img);
  const Bytes data = serialize::serialize(keypoints);
  EXPECT_EQ(serialize::deserialize<std::vector<Keypoint>>(data), keypoints);
}

}  // namespace
}  // namespace speed::sift
