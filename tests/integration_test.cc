// End-to-end integration tests: the four paper case studies running through
// the real SPEED stack (app enclaves + secure channels + encrypted store),
// cross-application sharing, Zipf workloads, master-store replication across
// machines, EPC behaviour, and store persistence across restarts.
#include <gtest/gtest.h>

#include "apps/deflate/deflate.h"
#include "apps/mapreduce/bow.h"
#include "apps/sift/sift.h"
#include "apps/match/ruleset.h"
#include "runtime/speed.h"
#include "workload/synthetic.h"

namespace speed {
namespace {

using runtime::Deduplicable;
using runtime::DedupRuntime;
using runtime::RuntimeConfig;

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

struct App {
  App(sgx::Platform& platform, store::ResultStore& store,
      const std::string& identity, RuntimeConfig config = RuntimeConfig{})
      : enclave(platform.create_enclave(identity)),
        connection(store::connect_app(store, *enclave)),
        rt(*enclave, std::move(connection.session_key), std::move(connection.transport),
           std::move(config)) {}

  std::unique_ptr<sgx::Enclave> enclave;
  store::AppConnection connection;
  DedupRuntime rt;
};

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : platform_(fast_model()), store_(platform_) {}

  sgx::Platform platform_;
  store::ResultStore store_;
};

// --------------------------------------------------- case study 1: SIFT

TEST_F(IntegrationTest, SiftFeatureExtractionService) {
  App app(platform_, store_, "image-service");
  app.rt.libraries().register_library(sift::kLibraryFamily,
                                      sift::kLibraryVersion,
                                      as_bytes("sift-code-v1"));
  int executions = 0;
  Deduplicable<std::vector<sift::Keypoint>(const sift::Image&)> dedup_sift(
      app.rt, {sift::kLibraryFamily, sift::kLibraryVersion,
               "vector<Keypoint> sift(Image)"},
      [&](const sift::Image& img) {
        ++executions;
        return sift::extract_sift(img);
      });

  const sift::Image img = workload::synth_image(96, 96, 1);
  const auto k1 = dedup_sift(img);
  app.rt.flush();
  const auto k2 = dedup_sift(img);

  EXPECT_EQ(k1, k2);
  EXPECT_EQ(executions, 1);
  EXPECT_FALSE(k1.empty());
  EXPECT_TRUE(dedup_sift.last_was_deduplicated());
}

// ------------------------------------------------ case study 2: deflate

TEST_F(IntegrationTest, CompressionGatewayCrossApplication) {
  App gateway_a(platform_, store_, "gateway-a");
  App gateway_b(platform_, store_, "gateway-b");
  for (App* app : {&gateway_a, &gateway_b}) {
    app->rt.libraries().register_library(deflate::kLibraryFamily,
                                         deflate::kLibraryVersion,
                                         as_bytes("deflate-code-v1"));
  }
  const serialize::FunctionDescriptor desc{
      deflate::kLibraryFamily, deflate::kLibraryVersion, "bytes deflate(bytes)"};

  int exec_a = 0, exec_b = 0;
  Deduplicable<Bytes(const Bytes&)> deflate_a(
      gateway_a.rt, desc, [&](const Bytes& in) {
        ++exec_a;
        return deflate::compress(in);
      });
  Deduplicable<Bytes(const Bytes&)> deflate_b(
      gateway_b.rt, desc, [&](const Bytes& in) {
        ++exec_b;
        return deflate::compress(in);
      });

  const Bytes file = to_bytes(workload::synth_text(50000, 3));
  const Bytes ca = deflate_a(file);
  gateway_a.rt.flush();
  const Bytes cb = deflate_b(file);  // different app, same file

  EXPECT_EQ(ca, cb);
  EXPECT_EQ(exec_a, 1);
  EXPECT_EQ(exec_b, 0) << "gateway B reused gateway A's result";
  EXPECT_EQ(deflate::decompress(cb), file) << "reused result decompresses";
}

// ------------------------------------------- case study 3: pattern match

TEST_F(IntegrationTest, VirusScannerOnRepeatedTraffic) {
  App scanner(platform_, store_, "virus-scanner");
  scanner.rt.libraries().register_library(match::kLibraryFamily,
                                          match::kLibraryVersion,
                                          as_bytes("pcre-code-v1"));
  const auto rules = workload::synth_ruleset(150, 5);
  const match::RuleSet ruleset(rules);

  int executions = 0;
  Deduplicable<std::vector<std::uint32_t>(const Bytes&)> dedup_scan(
      scanner.rt,
      {match::kLibraryFamily, match::kLibraryVersion,
       "vector<u32> pcre_exec(payload)"},
      [&](const Bytes& payload) {
        ++executions;
        return ruleset.scan(payload);
      });

  // 40 distinct payloads, scanned through a Zipf stream of 200 requests —
  // the "repeated files at an online virus scanner" scenario.
  const auto trace = workload::synth_packet_trace(40, 512, rules, 0.3, 7);
  const auto stream = workload::zipf_request_stream(40, 200, 1.1, 9);
  std::size_t alerts = 0;
  for (const std::size_t idx : stream) {
    alerts += dedup_scan(trace[idx].payload).size();
    scanner.rt.flush();
  }
  EXPECT_LE(executions, 40) << "each distinct payload scanned at most once";
  const auto stats = scanner.rt.stats();
  EXPECT_EQ(stats.calls, 200u);
  // Repeats are deduplicated either by the store or by the runtime's
  // in-enclave result cache; every non-computed call is one or the other.
  EXPECT_EQ(stats.hits + stats.local_hits,
            200u - static_cast<std::uint64_t>(executions));
  (void)alerts;
}

// --------------------------------------------------- case study 4: BoW

TEST_F(IntegrationTest, BowOverIncrementalCrawl) {
  App analytics(platform_, store_, "bow-analytics");
  analytics.rt.libraries().register_library(mapreduce::kLibraryFamily,
                                            mapreduce::kLibraryVersion,
                                            as_bytes("mapreduce-code-v1"));
  int executions = 0;
  Deduplicable<mapreduce::WordHistogram(const std::vector<std::string>&)>
      dedup_bow(analytics.rt,
                {mapreduce::kLibraryFamily, mapreduce::kLibraryVersion,
                 "histogram bow_mapper(docs)"},
                [&](const std::vector<std::string>& docs) {
                  ++executions;
                  return mapreduce::bag_of_words(docs);
                });

  std::vector<std::string> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(workload::synth_web_page(1500, static_cast<std::uint64_t>(i)));
  }
  const auto h1 = dedup_bow(batch);
  analytics.rt.flush();
  // Incremental crawl re-processes the same batch (plus a new one).
  const auto h2 = dedup_bow(batch);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(executions, 1);

  batch.push_back(workload::synth_web_page(1500, 99));
  const auto h3 = dedup_bow(batch);
  EXPECT_EQ(executions, 2) << "extended batch is a new computation";
  EXPECT_NE(h3, h1);
}

// ------------------------------------------------------- cross-cutting

TEST_F(IntegrationTest, ManyAppsShareOneStore) {
  // Four different applications (the paper's deployment) hitting one store
  // with overlapping workloads; the store sees each unique tag once.
  std::vector<std::unique_ptr<App>> apps;
  for (int i = 0; i < 4; ++i) {
    apps.push_back(std::make_unique<App>(platform_, store_,
                                         "tenant-" + std::to_string(i)));
    apps.back()->rt.libraries().register_library("common-lib", "1.0",
                                                 as_bytes("common-code"));
  }
  int total_exec = 0;
  std::vector<std::unique_ptr<Deduplicable<Bytes(const Bytes&)>>> fns;
  for (auto& app : apps) {
    fns.push_back(std::make_unique<Deduplicable<Bytes(const Bytes&)>>(
        app->rt, serialize::FunctionDescriptor{"common-lib", "1.0", "f"},
        [&total_exec](const Bytes& in) {
          ++total_exec;
          return concat(in, as_bytes("-out"));
        }));
  }
  // Each app processes the same 10 inputs.
  for (int round = 0; round < 10; ++round) {
    const Bytes input = to_bytes("shared-input-" + std::to_string(round));
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const Bytes out = (*fns[a])(input);
      EXPECT_EQ(out, concat(input, as_bytes("-out")));
      apps[a]->rt.flush();
    }
  }
  EXPECT_EQ(total_exec, 10) << "each input computed once across 4 apps";
  EXPECT_EQ(store_.stats().entries, 10u);
  EXPECT_EQ(store_.stats().hits, 30u);
}

TEST_F(IntegrationTest, MasterSyncAcrossMachines) {
  // Machine A computes; its store syncs to a master; machine B's store
  // pulls from the master; machine B's app decrypts without recomputing —
  // the §IV-B Remark scenario.
  sgx::Platform machine_b(fast_model());
  store::ResultStore store_b(machine_b);
  store::ResultStore master(platform_);

  App app_a(platform_, store_, "worker");
  app_a.rt.libraries().register_library("lib", "1", as_bytes("code"));
  int exec_a = 0;
  Deduplicable<Bytes(const Bytes&)> fa(
      app_a.rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++exec_a;
        return concat(in, as_bytes("!"));
      });
  const Bytes input = to_bytes("popular-input");
  fa(input);
  app_a.rt.flush();

  // Replicate A's store -> master -> B's store.
  EXPECT_EQ(store::sync_replica_from_master(master, store_, 10), 1u);
  EXPECT_EQ(store::sync_replica_from_master(store_b, master, 10), 1u);

  // Machine B's application (same code + input) reuses the result.
  App app_b(machine_b, store_b, "worker");
  app_b.rt.libraries().register_library("lib", "1", as_bytes("code"));
  int exec_b = 0;
  Deduplicable<Bytes(const Bytes&)> fb(
      app_b.rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++exec_b;
        return concat(in, as_bytes("!"));
      });
  const Bytes out = fb(input);
  EXPECT_EQ(out, concat(input, as_bytes("!")));
  EXPECT_EQ(exec_b, 0) << "cross-machine reuse through the master store";
  EXPECT_EQ(exec_a, 1);
}

TEST_F(IntegrationTest, StoreRestartWithSealedSnapshot) {
  App app(platform_, store_, "persistent-app");
  app.rt.libraries().register_library("lib", "1", as_bytes("code"));
  int executions = 0;
  Deduplicable<Bytes(const Bytes&)> f(
      app.rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++executions;
        return in;
      });
  f(to_bytes("survives"));
  app.rt.flush();

  const Bytes snapshot = store_.seal_snapshot();
  store::ResultStore revived(platform_);
  ASSERT_TRUE(revived.restore_snapshot(snapshot));

  App app2(platform_, revived, "persistent-app");
  app2.rt.libraries().register_library("lib", "1", as_bytes("code"));
  Deduplicable<Bytes(const Bytes&)> f2(
      app2.rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++executions;
        return in;
      });
  EXPECT_EQ(f2(to_bytes("survives")), to_bytes("survives"));
  EXPECT_EQ(executions, 1) << "restored store serves the old result";
}

TEST_F(IntegrationTest, EpcStaysSmallWhileCiphertextsGrow) {
  // The trusted-footprint bound below is about the *store*; disable the
  // app-side result cache so its (legitimate, byte-capped) EPC charge does
  // not drown the measurement.
  RuntimeConfig no_cache;
  no_cache.local_cache = false;
  App app(platform_, store_, "bulk-app", std::move(no_cache));
  app.rt.libraries().register_library("lib", "1", as_bytes("code"));
  Deduplicable<Bytes(const Bytes&)> f(
      app.rt, {"lib", "1", "expand"}, [](const Bytes& in) {
        Bytes out;
        for (int i = 0; i < 64; ++i) append(out, in);  // 64x expansion
        return out;
      });
  const std::uint64_t epc_before = platform_.epc().used_bytes();
  Xoshiro256 rng(77);
  for (int i = 0; i < 50; ++i) {
    f(rng.bytes(4096));  // each result ~256 KB ciphertext
  }
  app.rt.flush();
  const std::uint64_t epc_growth = platform_.epc().used_bytes() - epc_before;
  const std::uint64_t ct_bytes = store_.stats().ciphertext_bytes;
  EXPECT_GT(ct_bytes, 10ull << 20) << "~12 MB of ciphertext stored";
  EXPECT_LT(epc_growth, 64ull << 10)
      << "trusted footprint stays metadata-sized (paper §III-A)";
}

TEST_F(IntegrationTest, HostCorruptionDegradesGracefully) {
  // Exercises the store's corrupt-blob detection on a repeated call; the
  // local cache would serve the repeat without ever touching the bad blob.
  RuntimeConfig no_cache;
  no_cache.local_cache = false;
  App app(platform_, store_, "resilient-app", std::move(no_cache));
  app.rt.libraries().register_library("lib", "1", as_bytes("code"));
  int executions = 0;
  Deduplicable<Bytes(const Bytes&)> f(
      app.rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++executions;
        return concat(in, as_bytes("?"));
      });
  const Bytes input = to_bytes("target");
  const Bytes expected = concat(input, as_bytes("?"));
  EXPECT_EQ(f(input), expected);
  app.rt.flush();

  // Malicious host flips bits in the stored ciphertext.
  const auto fn = app.rt.resolve({"lib", "1", "f"});
  serialize::Encoder enc;
  serialize::Serde<Bytes>::encode(enc, input);
  ASSERT_TRUE(store_.corrupt_blob_for_testing(mle::derive_tag(fn, enc.view())));

  // Next call: store detects the bad blob, misses, app recomputes + re-puts.
  EXPECT_EQ(f(input), expected);
  EXPECT_EQ(executions, 2);
  app.rt.flush();
  // And the store is healthy again.
  EXPECT_EQ(f(input), expected);
  EXPECT_EQ(executions, 2);
  EXPECT_EQ(store_.stats().corrupt_blobs, 1u);
}

}  // namespace
}  // namespace speed
