// Randomized robustness tests ("fuzz-lite", deterministic seeds):
//  - wire decoder over random bytes and mutated valid messages,
//  - ResultStore invariants under random operation sequences,
//  - secure channel frames under random mutation,
//  - regex engine over generated patterns and binary inputs,
//  - DEFLATE decoder over mutated valid streams.
#include <gtest/gtest.h>

#include "apps/deflate/deflate.h"
#include "apps/match/regex.h"
#include "common/rng.h"
#include "net/secure_channel.h"
#include "serialize/wire.h"
#include "store/result_store.h"
#include "test_seed.h"

namespace speed {
namespace {

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

TEST(WireFuzzTest, RandomBytesNeverCrash) {
  SPEED_SEEDED_RNG(rng, 101);
  int decoded = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const Bytes junk = rng.bytes(rng.below(200));
    try {
      (void)serialize::decode_message(junk);
      ++decoded;  // possible if the junk happens to be well-formed
    } catch (const SerializationError&) {
      // expected
    }
  }
  // Random bytes should essentially never parse.
  EXPECT_LT(decoded, 3);
}

TEST(WireFuzzTest, MutatedValidMessagesThrowOrParse) {
  SPEED_SEEDED_RNG(rng, 103);
  serialize::PutRequest put;
  put.tag.fill(0xaa);
  put.requester.fill(0xbb);
  put.entry.challenge = rng.bytes(32);
  put.entry.wrapped_key = rng.bytes(16);
  put.entry.result_ct = rng.bytes(100);
  const Bytes valid = serialize::encode_message(put);

  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] = static_cast<std::uint8_t>(rng());
    }
    if (rng.below(4) == 0 && !mutated.empty()) {
      mutated.resize(rng.below(mutated.size()));
    }
    try {
      (void)serialize::decode_message(mutated);  // parsing garbage is fine...
    } catch (const SerializationError&) {
      // ...and so is rejecting it. Anything else (crash, bad_alloc from a
      // wild length) is a bug the length-validation must prevent.
    }
  }
}

TEST(StoreFuzzTest, InvariantsUnderRandomOps) {
  SPEED_SEEDED_RNG(rng, 107);
  store::StoreConfig cfg;
  cfg.max_ciphertext_bytes = 40'000;
  cfg.per_app_quota_bytes = 25'000;
  cfg.max_entries = 64;
  sgx::Platform platform(fast_model());
  store::ResultStore store(platform, cfg);

  // Reference map of everything successfully stored (tag -> payload).
  std::map<std::array<std::uint8_t, 32>, serialize::EntryPayload> stored;

  for (int op = 0; op < 3000; ++op) {
    serialize::Tag tag{};
    tag[0] = static_cast<std::uint8_t>(rng.below(40));  // small tag space: collisions
    serialize::AppId app{};
    app[0] = static_cast<std::uint8_t>(rng.below(3));

    switch (rng.below(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // PUT
        serialize::PutRequest put;
        put.tag = tag;
        put.requester = app;
        put.entry.challenge = rng.bytes(32);
        put.entry.wrapped_key = rng.bytes(16);
        put.entry.result_ct = rng.bytes(100 + rng.below(3000));
        const auto resp = store.put(put);
        if (resp.status == serialize::PutStatus::kStored) {
          stored[tag] = put.entry;
        }
        break;
      }
      case 4: {  // corrupt a random blob like a malicious host
        if (store.corrupt_blob_for_testing(tag)) {
          stored.erase(tag);
          // Force the store to notice and drop the entry now; otherwise a
          // second single-bit corruption could restore the original blob
          // and legitimately hit again (an artifact of the test's XOR, not
          // a store defect).
          serialize::GetRequest probe;
          probe.tag = tag;
          probe.requester = app;
          ASSERT_FALSE(store.get(probe).found)
              << "corrupted blob served as a hit";
        }
        break;
      }
      default: {  // GET
        serialize::GetRequest get;
        get.tag = tag;
        get.requester = app;
        const auto resp = store.get(get);
        if (resp.found) {
          const auto it = stored.find(tag);
          // Eviction may remove entries we remember, but the store must
          // never serve a payload that was not the one stored (or was
          // corrupted).
          ASSERT_NE(it, stored.end())
              << "hit for a tag that was corrupted or never stored";
          ASSERT_EQ(resp.entry, it->second) << "payload integrity violated";
        }
        break;
      }
    }

    // Global invariants after every operation.
    const auto stats = store.stats();
    ASSERT_LE(stats.ciphertext_bytes, cfg.max_ciphertext_bytes);
    ASSERT_LE(stats.entries, cfg.max_entries);
  }
  const auto stats = store.stats();
  EXPECT_GT(stats.stored, 100u) << "the fuzz actually exercised the store";
  EXPECT_GT(stats.hits, 50u);
}

TEST(ChannelFuzzTest, MutatedFramesNeverDecryptWrongly) {
  SPEED_SEEDED_RNG(rng, 109);
  sgx::Platform platform(fast_model());
  auto a = platform.create_enclave("a");
  auto b = platform.create_enclave("b");
  net::SecureChannel client(net::derive_channel_key(*a, b->measurement()), true);

  for (int trial = 0; trial < 300; ++trial) {
    net::SecureChannel server(net::derive_channel_key(*b, a->measurement()),
                              false);
    net::SecureChannel fresh_client(
        net::derive_channel_key(*a, b->measurement()), true);
    const Bytes plain = rng.bytes(rng.below(300));
    Bytes frame = fresh_client.wrap(plain);
    if (rng.below(2) == 0) {
      // mutate
      const std::size_t pos = rng.below(frame.size());
      frame[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      EXPECT_FALSE(server.unwrap(frame).has_value());
    } else {
      const auto out = server.unwrap(frame);
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, plain);
    }
  }
}

TEST(RegexFuzzTest, GeneratedPatternsNeverHang) {
  SPEED_SEEDED_RNG(rng, 113);
  const char* const atoms[] = {"a",   "b",    ".",  "\\d", "\\w",
                               "[ab]", "[^c]", "x",  "\\x41"};
  const char* const quants[] = {"", "*", "+", "?", "{2}", "{1,3}"};

  int compiled = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string pattern;
    const std::size_t parts = 1 + rng.below(6);
    for (std::size_t i = 0; i < parts; ++i) {
      if (rng.below(8) == 0) pattern += "(";
      pattern += atoms[rng.below(sizeof(atoms) / sizeof(atoms[0]))];
      if (rng.below(8) == 0) pattern += ")";
      pattern += quants[rng.below(sizeof(quants) / sizeof(quants[0]))];
      if (rng.below(6) == 0) pattern += "|";
    }
    try {
      const match::Regex re(pattern, /*step_budget=*/200000);
      ++compiled;
      for (int input = 0; input < 5; ++input) {
        const Bytes text = rng.bytes(rng.below(100));
        try {
          (void)re.search(ByteView(text));
        } catch (const match::RegexBudgetError&) {
          // pathological but bounded: exactly what the budget is for
        }
      }
    } catch (const match::RegexSyntaxError&) {
      // generated garbage like "a|*" — rejection is correct
    }
  }
  EXPECT_GT(compiled, 100) << "most generated patterns should compile";
}

TEST(DeflateFuzzTest, MutatedStreamsThrowCleanly) {
  SPEED_SEEDED_RNG(rng, 127);
  const Bytes data = to_bytes(rng.ascii(20000));
  const Bytes valid = deflate::compress(data);

  for (int trial = 0; trial < 500; ++trial) {
    Bytes mutated = valid;
    for (int m = 0; m < 3; ++m) {
      mutated[rng.below(mutated.size())] = static_cast<std::uint8_t>(rng());
    }
    try {
      const Bytes out = deflate::decompress(mutated, 1u << 22);
      // Decoding to *something* is acceptable (the mutation may not break
      // framing); decoding must just never crash or run away.
      (void)out;
    } catch (const SerializationError&) {
      // expected for most mutations
    }
  }
}

}  // namespace
}  // namespace speed
