// Conformance suite for the batched wire protocol (docs/PROTOCOL.md §9):
// batch codec, version negotiation, per-entry statuses, server frame/batch
// limits, the epoll server's pipelining, switchless transition
// amortization, the client micro-batcher, and cluster batch routing. The
// disconnect/fault-injection variants live in batch_chaos_test.cc.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "runtime/speed.h"
#include "store/inproc_cluster.h"
#include "store/tcp_server.h"
#include "test_seed.h"

namespace speed {
namespace {

using serialize::BatchOp;
using serialize::BatchReply;
using serialize::BatchRequest;
using serialize::BatchResponse;
using serialize::ErrorCode;
using serialize::ErrorResponse;
using serialize::GetRequest;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;
using serialize::Tag;

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

Tag nth_tag(std::uint8_t base, std::uint8_t n) {
  Tag t{};
  t.fill(base);
  t[0] = n;
  return t;
}

PutRequest make_put(const Tag& tag, const sgx::Measurement& requester,
                    std::size_t ct_bytes = 48) {
  PutRequest req;
  req.tag = tag;
  req.requester = requester;
  req.entry.challenge = Bytes{1, 2, 3, 4};
  req.entry.wrapped_key = Bytes(16, 0x42);
  req.entry.result_ct = Bytes(ct_bytes, 0x99);
  return req;
}

GetRequest make_get(const Tag& tag, const sgx::Measurement& requester) {
  GetRequest req;
  req.tag = tag;
  req.requester = requester;
  return req;
}

// ---------------------------------------------------------------- codec --

TEST(BatchWireTest, RoundTripMixedBatch) {
  const sgx::Measurement app{};
  BatchRequest req;
  req.ops.emplace_back(make_put(nth_tag(0xAA, 1), app));
  req.ops.emplace_back(make_get(nth_tag(0xAA, 2), app));

  const Bytes wire = serialize::encode_message(Message(req));
  const Message decoded = serialize::decode_message(wire);
  const auto* back = std::get_if<BatchRequest>(&decoded);
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->ops.size(), 2u);
  const auto* put = std::get_if<PutRequest>(&back->ops[0]);
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->tag, nth_tag(0xAA, 1));
  EXPECT_EQ(put->entry, std::get<PutRequest>(req.ops[0]).entry);
  const auto* get = std::get_if<GetRequest>(&back->ops[1]);
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->tag, nth_tag(0xAA, 2));

  BatchResponse resp;
  GetResponse found;
  found.found = true;
  found.entry = put->entry;
  resp.replies.emplace_back(found);
  resp.replies.emplace_back(GetResponse{});
  resp.replies.emplace_back(PutResponse{PutStatus::kAlreadyPresent});
  resp.replies.emplace_back(
      ErrorResponse{ErrorCode::kUnavailable, "node down"});

  const Message decoded_resp =
      serialize::decode_message(serialize::encode_message(Message(resp)));
  const auto* resp_back = std::get_if<BatchResponse>(&decoded_resp);
  ASSERT_NE(resp_back, nullptr);
  ASSERT_EQ(resp_back->replies.size(), 4u);
  EXPECT_TRUE(std::get<GetResponse>(resp_back->replies[0]).found);
  EXPECT_EQ(std::get<GetResponse>(resp_back->replies[0]).entry, found.entry);
  EXPECT_FALSE(std::get<GetResponse>(resp_back->replies[1]).found);
  EXPECT_EQ(std::get<PutResponse>(resp_back->replies[2]).status,
            PutStatus::kAlreadyPresent);
  EXPECT_EQ(std::get<ErrorResponse>(resp_back->replies[3]).code,
            ErrorCode::kUnavailable);
  EXPECT_EQ(std::get<ErrorResponse>(resp_back->replies[3]).detail,
            "node down");
}

TEST(BatchWireTest, ImplausibleOpCountRejectedBeforeAllocation) {
  // A hostile header claiming 2^32-1 ops in a tiny buffer must be rejected
  // by arithmetic on the remaining bytes, never by attempting the reserve.
  serialize::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(serialize::MessageType::kBatchRequest));
  enc.u32(0xFFFFFFFFu);
  EXPECT_THROW(serialize::decode_message(enc.take()),
               SerializationError);

  serialize::Encoder resp_enc;
  resp_enc.u8(static_cast<std::uint8_t>(serialize::MessageType::kBatchResponse));
  resp_enc.u32(0xFFFFFFFFu);
  EXPECT_THROW(serialize::decode_message(resp_enc.take()),
               SerializationError);
}

// ---------------------------------------------------- version negotiation --

TEST(BatchVersionTest, HandshakeCarriesAndNegotiatesVersion) {
  sgx::Platform platform(fast_model());
  auto app = platform.create_enclave("version-app");
  const net::ChannelKeyExchange kx(*app);
  const sgx::Measurement store_meas{};

  const auto v1_hello = kx.hello(store_meas, net::kProtocolVersionLegacy);
  EXPECT_EQ(net::handshake_version(v1_hello), net::kProtocolVersionLegacy);
  const auto v2_hello = kx.hello(store_meas);
  EXPECT_EQ(net::handshake_version(v2_hello), net::kProtocolVersionBatch);

  EXPECT_EQ(net::negotiate_version(net::kProtocolVersionBatch,
                                   net::kProtocolVersionLegacy),
            net::kProtocolVersionLegacy);
  EXPECT_EQ(net::negotiate_version(net::kProtocolVersionBatch,
                                   net::kProtocolVersionBatch),
            net::kProtocolVersionBatch);
}

TEST(BatchVersionTest, SessionRecordsPeerVersion) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  auto app = platform.create_enclave("version-app");
  const net::ChannelKeyExchange kx(*app);

  store::StoreSession legacy(
      result_store,
      kx.hello(result_store.enclave().measurement(),
               net::kProtocolVersionLegacy));
  EXPECT_EQ(legacy.peer_version(), net::kProtocolVersionLegacy);

  const net::ChannelKeyExchange kx2(*app);
  store::StoreSession current(
      result_store, kx2.hello(result_store.enclave().measurement()));
  EXPECT_EQ(current.peer_version(), net::kProtocolVersionBatch);
}

// ------------------------------------------------------- session batches --

// Raw secure-channel client around an in-process AppConnection: wraps and
// unwraps wire messages itself so tests control exactly what hits the
// session.
struct RawClient {
  explicit RawClient(store::AppConnection& conn)
      : channel(std::move(conn.session_key), /*is_initiator=*/true),
        transport(conn.transport.get()) {}

  Message call(const Message& request) {
    const Bytes frame =
        channel.wrap(serialize::encode_message(request));
    const Bytes response = transport->round_trip(frame);
    const auto plain = channel.unwrap(response);
    EXPECT_TRUE(plain.has_value()) << "response failed channel unwrap";
    return serialize::decode_message(*plain);
  }

  net::SecureChannel channel;
  net::Transport* transport;
};

TEST(BatchSessionTest, MixedBatchGetsPerEntryStatuses) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  auto app = platform.create_enclave("batch-app");
  auto conn = store::connect_app(result_store, *app);
  RawClient client(conn);
  const sgx::Measurement me = app->measurement();

  BatchRequest batch;
  batch.ops.emplace_back(make_put(nth_tag(0xB0, 1), me));
  batch.ops.emplace_back(make_get(nth_tag(0xB0, 1), me));  // hits op 0's PUT
  batch.ops.emplace_back(make_get(nth_tag(0xB0, 2), me));  // never stored
  batch.ops.emplace_back(make_put(nth_tag(0xB0, 1), me));  // duplicate

  const Message reply = client.call(Message(batch));
  const auto* resp = std::get_if<BatchResponse>(&reply);
  ASSERT_NE(resp, nullptr);
  ASSERT_EQ(resp->replies.size(), 4u);
  EXPECT_EQ(std::get<PutResponse>(resp->replies[0]).status,
            PutStatus::kStored);
  // Ops execute in order: the GET right after the PUT sees the entry.
  ASSERT_TRUE(std::get<GetResponse>(resp->replies[1]).found);
  EXPECT_EQ(std::get<GetResponse>(resp->replies[1]).entry,
            std::get<PutRequest>(batch.ops[0]).entry);
  EXPECT_FALSE(std::get<GetResponse>(resp->replies[2]).found);
  EXPECT_EQ(std::get<PutResponse>(resp->replies[3]).status,
            PutStatus::kAlreadyPresent);
}

TEST(BatchSessionTest, QuotaFailureIsConfinedToItsEntry) {
  sgx::Platform platform(fast_model());
  store::StoreConfig config;
  config.per_app_quota_bytes = 256;  // fits the small entry, not the big one
  store::ResultStore result_store(platform, config);
  auto app = platform.create_enclave("quota-app");
  auto conn = store::connect_app(result_store, *app);
  RawClient client(conn);
  const sgx::Measurement me = app->measurement();

  BatchRequest batch;
  batch.ops.emplace_back(make_put(nth_tag(0xC0, 1), me, /*ct_bytes=*/48));
  batch.ops.emplace_back(make_put(nth_tag(0xC0, 2), me, /*ct_bytes=*/4096));
  batch.ops.emplace_back(make_get(nth_tag(0xC0, 1), me));

  const Message reply = client.call(Message(batch));
  const auto* resp = std::get_if<BatchResponse>(&reply);
  ASSERT_NE(resp, nullptr);
  ASSERT_EQ(resp->replies.size(), 3u);
  EXPECT_EQ(std::get<PutResponse>(resp->replies[0]).status,
            PutStatus::kStored);
  EXPECT_EQ(std::get<PutResponse>(resp->replies[1]).status,
            PutStatus::kQuotaExceeded);
  EXPECT_TRUE(std::get<GetResponse>(resp->replies[2]).found);
}

TEST(BatchSessionTest, OversizedBatchRefusedSessionSurvives) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  auto app = platform.create_enclave("cap-app");
  auto conn = store::connect_app(result_store, *app);
  conn.session->set_max_batch_entries(2);
  RawClient client(conn);
  const sgx::Measurement me = app->measurement();

  BatchRequest batch;
  for (std::uint8_t i = 0; i < 3; ++i) {
    batch.ops.emplace_back(make_get(nth_tag(0xD0, i), me));
  }
  const Message refused = client.call(Message(batch));
  const auto* err = std::get_if<ErrorResponse>(&refused);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, ErrorCode::kBatchTooLarge);

  // The refusal is protocol-clean: the same channel serves the split batch.
  BatchRequest half;
  half.ops.emplace_back(make_get(nth_tag(0xD0, 0), me));
  half.ops.emplace_back(make_get(nth_tag(0xD0, 1), me));
  const Message served = client.call(Message(half));
  const auto* resp = std::get_if<BatchResponse>(&served);
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->replies.size(), 2u);
}

// ------------------------------------------------------------ TCP server --

TEST(BatchTcpTest, ClientNegotiatesBatchVersion) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);

  auto app = platform.create_enclave("nego-app");
  auto conn = store::connect_tcp_app(*app,
                                     result_store.enclave().measurement(),
                                     "127.0.0.1", server.port());
  EXPECT_EQ(conn.protocol_version, net::kProtocolVersionBatch);
}

TEST(BatchTcpTest, LegacyV1ClientServedByNewServer) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);

  auto app = platform.create_enclave("v1-app");
  net::FramedSocket sock = net::tcp_connect("127.0.0.1", server.port());
  const net::ChannelKeyExchange kx(*app);
  // A pre-batching client: its hello advertises no version byte beyond
  // legacy, and it only ever sends single-op frames.
  sock.send_frame(net::encode_handshake(
      kx.hello(result_store.enclave().measurement(),
               net::kProtocolVersionLegacy)));
  const auto server_hello = net::decode_handshake(sock.recv_frame());
  EXPECT_EQ(net::handshake_version(server_hello), net::kProtocolVersionBatch);
  auto key = kx.derive(server_hello, result_store.enclave().measurement());
  ASSERT_TRUE(key.has_value());
  net::SecureChannel channel(std::move(*key), /*is_initiator=*/true);
  const sgx::Measurement me = app->measurement();

  auto call = [&](const Message& m) {
    sock.send_frame(channel.wrap(serialize::encode_message(m)));
    const auto plain = channel.unwrap(sock.recv_frame());
    EXPECT_TRUE(plain.has_value());
    return serialize::decode_message(*plain);
  };

  const Message miss = call(Message(make_get(nth_tag(0xE0, 1), me)));
  EXPECT_FALSE(std::get<GetResponse>(miss).found);
  const Message stored = call(Message(make_put(nth_tag(0xE0, 1), me)));
  EXPECT_EQ(std::get<PutResponse>(stored).status, PutStatus::kStored);
  const Message hit = call(Message(make_get(nth_tag(0xE0, 1), me)));
  EXPECT_TRUE(std::get<GetResponse>(hit).found);
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(server.session_errors(), 0u);
}

// TCP client that wraps frames itself, for pipelining / limit tests.
struct RawTcpClient {
  RawTcpClient(sgx::Enclave& app, store::ResultStore& result_store,
               std::uint16_t port)
      : sock(net::tcp_connect("127.0.0.1", port)) {
    const net::ChannelKeyExchange kx(app);
    sock.send_frame(net::encode_handshake(
        kx.hello(result_store.enclave().measurement())));
    auto key = kx.derive(net::decode_handshake(sock.recv_frame()),
                         result_store.enclave().measurement());
    if (!key.has_value()) throw ProtocolError("raw client: bad server hello");
    channel.emplace(std::move(*key), /*is_initiator=*/true);
  }

  void send(const Message& m) {
    sock.send_frame(channel->wrap(serialize::encode_message(m)));
  }
  Message recv() {
    const auto plain = channel->unwrap(sock.recv_frame());
    if (!plain.has_value()) throw ProtocolError("raw client: bad frame");
    return serialize::decode_message(*plain);
  }

  net::FramedSocket sock;
  std::optional<net::SecureChannel> channel;
};

TEST(BatchTcpTest, PipelinedFramesAnswerInOrder) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);
  auto app = platform.create_enclave("pipeline-app");
  RawTcpClient client(*app, result_store, server.port());
  const sgx::Measurement me = app->measurement();

  // Ship 8 frames back-to-back without reading: PUT n, then GET n. The
  // secure channel's strictly-increasing sequence numbers make any
  // reordering an unwrap failure, so 8 clean unwraps prove FIFO service.
  constexpr int kPairs = 4;
  for (std::uint8_t n = 0; n < kPairs; ++n) {
    client.send(Message(make_put(nth_tag(0xF0, n), me)));
    client.send(Message(make_get(nth_tag(0xF0, n), me)));
  }
  for (int n = 0; n < kPairs; ++n) {
    const Message put_reply = client.recv();
    EXPECT_EQ(std::get<PutResponse>(put_reply).status, PutStatus::kStored);
    const Message get_reply = client.recv();
    EXPECT_TRUE(std::get<GetResponse>(get_reply).found);
  }
}

TEST(BatchTcpTest, HostileFrameHeaderRefusedWithoutBuffering) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreServerConfig config;
  config.max_frame_bytes = 1 << 20;
  store::StoreTcpServer server(result_store, 0, std::nullopt, config);
  auto app = platform.create_enclave("hostile-app");
  RawTcpClient client(*app, result_store, server.port());

  // Announce a 64 MB frame. The server must refuse it from the 4-byte
  // length prefix alone — the payload is never sent, so if the refusal
  // waited for the body this test would hang, and if the server reserved
  // the announced size a fleet of such clients could balloon its memory.
  const std::uint32_t huge = 64u * 1024 * 1024;
  const Bytes header = {
      static_cast<std::uint8_t>(huge & 0xFF),
      static_cast<std::uint8_t>((huge >> 8) & 0xFF),
      static_cast<std::uint8_t>((huge >> 16) & 0xFF),
      static_cast<std::uint8_t>((huge >> 24) & 0xFF)};
  ASSERT_EQ(::send(client.sock.fd(), header.data(), header.size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(header.size()));

  // The refusal is a typed wire error on the secure channel, then EOF.
  const auto refusal = client.sock.try_recv_frame();
  ASSERT_TRUE(refusal.has_value());
  const auto plain = client.channel->unwrap(*refusal);
  ASSERT_TRUE(plain.has_value());
  const Message m = serialize::decode_message(*plain);
  const auto* err = std::get_if<ErrorResponse>(&m);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, ErrorCode::kFrameTooLarge);
  EXPECT_FALSE(client.sock.try_recv_frame().has_value());
  EXPECT_EQ(server.oversized_frames(), 1u);

  // Only the hostile connection died; the server keeps serving.
  auto app2 = platform.create_enclave("polite-app");
  RawTcpClient polite(*app2, result_store, server.port());
  polite.send(Message(make_get(nth_tag(0xAB, 0), app2->measurement())));
  EXPECT_FALSE(std::get<GetResponse>(polite.recv()).found);
}

TEST(BatchTcpTest, BatchOverTcpMatchesPerOpResults) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);
  auto app = platform.create_enclave("tcp-batch-app");
  RawTcpClient client(*app, result_store, server.port());
  const sgx::Measurement me = app->measurement();

  BatchRequest batch;
  constexpr std::uint8_t kOps = 16;
  for (std::uint8_t n = 0; n < kOps; ++n) {
    batch.ops.emplace_back(make_put(nth_tag(0xBA, n), me));
  }
  for (std::uint8_t n = 0; n < kOps; ++n) {
    batch.ops.emplace_back(make_get(nth_tag(0xBA, n), me));
  }
  client.send(Message(batch));
  const Message reply = client.recv();
  const auto* resp = std::get_if<BatchResponse>(&reply);
  ASSERT_NE(resp, nullptr);
  ASSERT_EQ(resp->replies.size(), 2u * kOps);
  for (std::size_t i = 0; i < kOps; ++i) {
    EXPECT_EQ(std::get<PutResponse>(resp->replies[i]).status,
              PutStatus::kStored);
    EXPECT_TRUE(std::get<GetResponse>(resp->replies[kOps + i]).found);
  }
}

// ------------------------------------------------------------ switchless --

TEST(SwitchlessTest, RingAmortizesEnclaveTransitions) {
  // A 50 µs parked ecall makes drains slow enough that concurrent
  // submitters pile onto the ring while one drain runs — so bursts form and
  // the crossing count provably drops below one-per-call.
  sgx::CostModel model;
  model.ecall_ns = 50'000;
  model.ocall_ns = 0;
  model.wait = sgx::CostModel::Wait::kSleep;
  sgx::Platform platform(model);
  store::ResultStore result_store(platform);
  sgx::SwitchlessRing ring(result_store.enclave());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4;
  std::vector<store::AppConnection> conns;
  std::vector<std::unique_ptr<sgx::Enclave>> apps;
  for (int i = 0; i < kThreads; ++i) {
    apps.push_back(platform.create_enclave("sw-app-" + std::to_string(i)));
    conns.push_back(store::connect_app(result_store, *apps.back()));
    conns.back().session->set_switchless(&ring);
  }

  const std::uint64_t ecalls_before = result_store.enclave().ecall_count();
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      RawClient client(conns[static_cast<std::size_t>(i)]);
      const sgx::Measurement me = apps[static_cast<std::size_t>(i)]->measurement();
      for (std::uint8_t n = 0; n < kOpsPerThread; ++n) {
        const Message m = client.call(
            Message(make_get(nth_tag(static_cast<std::uint8_t>(i), n), me)));
        EXPECT_FALSE(std::get<GetResponse>(m).found);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = ring.stats();
  const std::uint64_t ecall_delta =
      result_store.enclave().ecall_count() - ecalls_before;
  EXPECT_EQ(stats.calls, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  // Honest accounting: exactly one enclave crossing per drain, and every
  // crossing a per-call design would have paid beyond that is "saved".
  EXPECT_EQ(ecall_delta, stats.drains);
  EXPECT_EQ(stats.transitions_saved, stats.calls - stats.drains);
  EXPECT_GE(stats.transitions_saved, 1u);
  EXPECT_LT(stats.drains, stats.calls);
}

TEST(SwitchlessTest, ServerRingServesTcpClients) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreServerConfig config;
  config.switchless = true;
  store::StoreTcpServer server(result_store, 0, std::nullopt, config);
  ASSERT_NE(server.switchless_ring(), nullptr);

  auto app = platform.create_enclave("sw-tcp-app");
  auto conn = store::connect_tcp_app(*app,
                                     result_store.enclave().measurement(),
                                     "127.0.0.1", server.port());
  runtime::DedupRuntime rt(*app, std::move(conn.session_key),
                           std::move(conn.transport));
  rt.libraries().register_library("lib", "1", as_bytes("code"));

  int executions = 0;
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++executions;
        return concat(in, as_bytes("+sw"));
      });
  const Bytes r1 = f(to_bytes("payload"));
  rt.flush();
  const Bytes r2 = f(to_bytes("payload"));
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(executions, 1);
  // Every post-handshake frame went through the ring, not a private ECALL.
  EXPECT_GE(server.switchless_ring()->stats().calls, 2u);
}

// --------------------------------------------------------- micro-batcher --

// Forwards to the wrapped transport after a short sleep, pinning each frame
// "on the wire" long enough for the other test threads to reach the batcher.
// On a single-core runner the threads otherwise run strictly one after
// another, each leader is provably alone, and there is nothing to coalesce.
struct SlowTransport : net::Transport {
  explicit SlowTransport(std::unique_ptr<net::Transport> wrapped)
      : inner(std::move(wrapped)) {}
  Bytes round_trip(ByteView request) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return inner->round_trip(request);
  }
  std::unique_ptr<net::Transport> inner;
};

TEST(MicroBatchTest, ConcurrentGetsCoalesceIntoOneFrame) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  auto app = platform.create_enclave("mb-app");
  auto conn = store::connect_app(result_store, *app);
  auto* loopback = static_cast<net::LoopbackTransport*>(conn.transport.get());
  conn.transport = std::make_unique<SlowTransport>(std::move(conn.transport));

  runtime::RuntimeConfig config;
  config.local_cache = false;  // every repeat call must hit the store
  config.batching.enabled = true;
  config.batching.max_ops = 4;
  config.batching.flush_delay_us = 50'000;
  runtime::DedupRuntime rt(*app, std::move(conn.session_key),
                           std::move(conn.transport), config);
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [](const Bytes& in) { return in; });

  constexpr int kThreads = 4;
  auto run_round = [&] {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        const Bytes input = {static_cast<std::uint8_t>(i)};
        EXPECT_EQ(f(input), input);
      });
    }
    for (auto& t : threads) t.join();
  };

  run_round();  // 4 misses; the GETs share frames, the PUTs drain batched
  ASSERT_TRUE(rt.flush());
  const std::uint64_t after_misses = loopback->round_trips();
  // Unbatched this round costs 8 round trips (4 GETs + 4 PUTs); batching
  // must provably collapse some of them.
  EXPECT_LT(after_misses, 8u);

  run_round();  // 4 store hits, again through the batcher
  const auto stats = rt.stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.puts_sent, 4u);
  EXPECT_EQ(stats.degraded_calls, 0u);
  EXPECT_LT(loopback->round_trips() - after_misses, 4u);
}

TEST(MicroBatchTest, SequentialCallsDegradeToPlainMessages) {
  // One-op batches are sent as plain v1 messages, so a batching client
  // against a legacy-capped session (max one op) still works sequentially.
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  auto app = platform.create_enclave("seq-app");
  auto conn = store::connect_app(result_store, *app);
  conn.session->set_max_batch_entries(1);

  runtime::RuntimeConfig config;
  config.batching.enabled = true;
  config.async_put = false;  // sequential PUTs: exactly one op at a time
  runtime::DedupRuntime rt(*app, std::move(conn.session_key),
                           std::move(conn.transport), config);
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  int executions = 0;
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++executions;
        return in;
      });

  for (int round = 0; round < 2; ++round) {
    for (std::uint8_t i = 0; i < 3; ++i) {
      const Bytes input = {i};
      EXPECT_EQ(f(input), input);
    }
  }
  EXPECT_EQ(executions, 3);
  EXPECT_EQ(rt.stats().degraded_calls, 0u);
}

// ---------------------------------------------------------- cluster batch --

TEST(ClusterBatchTest, BatchRoutesAcrossNodes) {
  sgx::Platform platform(fast_model());
  store::InprocClusterConfig cc;
  cc.nodes = 3;
  cc.cluster.replicas = 0;  // quorum 1: every sub-answer is authoritative
  store::InprocCluster cluster(platform, cc);
  auto app = platform.create_enclave("cb-app");
  auto transport = cluster.connect(*app);
  const sgx::Measurement me = app->measurement();

  // Real tags are SHA-256 outputs; model that with seeded-random tags so
  // the rendezvous ring actually spreads them across nodes.
  SPEED_SEEDED_RNG(rng, 0xBA7C4B01ull);
  constexpr std::uint8_t kTags = 12;
  std::vector<Tag> tags;
  for (std::uint8_t n = 0; n < kTags; ++n) {
    Tag t;
    for (auto& b : t) b = static_cast<std::uint8_t>(rng());
    tags.push_back(t);
  }

  BatchRequest batch;
  for (const Tag& t : tags) batch.ops.emplace_back(make_put(t, me));
  for (const Tag& t : tags) batch.ops.emplace_back(make_get(t, me));
  batch.ops.emplace_back(make_get(nth_tag(0x5D, 0), me));  // never stored

  const Message reply = app->ecall(
      [&] { return transport->round_trip_message(Message(batch)); });
  const auto* resp = std::get_if<BatchResponse>(&reply);
  ASSERT_NE(resp, nullptr);
  ASSERT_EQ(resp->replies.size(), 2u * kTags + 1);
  for (std::size_t i = 0; i < kTags; ++i) {
    EXPECT_EQ(std::get<PutResponse>(resp->replies[i]).status,
              PutStatus::kStored);
    EXPECT_TRUE(std::get<GetResponse>(resp->replies[kTags + i]).found);
  }
  EXPECT_FALSE(std::get<GetResponse>(resp->replies[2 * kTags]).found);
  // Tags spread across nodes: more than one store holds entries.
  int populated = 0;
  for (std::size_t n = 0; n < cc.nodes; ++n) {
    if (cluster.store(n).stats().entries > 0) ++populated;
  }
  EXPECT_GT(populated, 1);
}

TEST(ClusterBatchTest, ReplicatedPutsKeepQuorumAckSemantics) {
  sgx::Platform platform(fast_model());
  store::InprocClusterConfig cc;
  cc.nodes = 3;
  cc.cluster.replicas = 1;  // quorum 2: batched PUTs must fall back to the walk
  store::InprocCluster cluster(platform, cc);
  auto app = platform.create_enclave("cbq-app");
  auto transport = cluster.connect(*app);
  const sgx::Measurement me = app->measurement();

  BatchRequest batch;
  constexpr std::uint8_t kTags = 8;
  for (std::uint8_t n = 0; n < kTags; ++n) {
    batch.ops.emplace_back(make_put(nth_tag(0x6C, n), me));
  }
  const Message reply = app->ecall(
      [&] { return transport->round_trip_message(Message(batch)); });
  const auto* resp = std::get_if<BatchResponse>(&reply);
  ASSERT_NE(resp, nullptr);
  ASSERT_EQ(resp->replies.size(), static_cast<std::size_t>(kTags));
  for (const BatchReply& r : resp->replies) {
    EXPECT_EQ(std::get<PutResponse>(r).status, PutStatus::kStored);
  }
  // An acked batched PUT carries the same guarantee as an unbatched one:
  // a full quorum of owners holds the entry.
  for (std::uint8_t n = 0; n < kTags; ++n) {
    const Tag tag = nth_tag(0x6C, n);
    auto order = transport->preference_order(tag);
    for (std::size_t i = 0; i < 2; ++i) {
      GetRequest g = make_get(tag, me);
      const Message m = serialize::decode_message(
          cluster.store(order[i]).handle(
              serialize::encode_message(Message(g))));
      EXPECT_TRUE(std::get<GetResponse>(m).found)
          << "owner " << order[i] << " missing acked entry " << int(n);
    }
  }
}

// -------------------------------------------------------------- listener --

TEST(ListenerTest, TryAcceptReturnsEmptyWithoutPendingConnection) {
  net::TcpListener listener(0);
  listener.set_nonblocking();
  EXPECT_FALSE(listener.try_accept().has_value());
  net::FramedSocket client = net::tcp_connect("127.0.0.1", listener.port());
  // The connection lands asynchronously; poll for it.
  std::optional<net::FramedSocket> accepted;
  for (int i = 0; i < 200 && !accepted.has_value(); ++i) {
    accepted = listener.try_accept();
    if (!accepted.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(accepted.has_value());
  client.send_frame(as_bytes("ping"));
  EXPECT_EQ(accepted->recv_frame(), to_bytes("ping"));
}

TEST(ListenerTest, AcceptAfterCloseThrowsInsteadOfSpinning) {
  net::TcpListener listener(0);
  listener.close();
  EXPECT_THROW(listener.accept(), net::TcpError);
}

}  // namespace
}  // namespace speed
